#!/usr/bin/env python
"""From the paper's MBU rates to an ECC/interleaving decision.

The paper stops at the physics: alpha MBU/SEU is 6-7 %.  This study
carries that result to the architectural question it raises -- how far
must word bits be physically interleaved so SEC-DED survives the MBUs?

Steps:
1. run the flow for the SEU/MBU FIT decomposition (paper eqs. 5-6),
2. collect the failing-pair *offset* statistics (which cells fail
   together, and where they sit relative to each other),
3. evaluate uncorrectable-failure rates for ECC schemes x interleave
   distances.
"""

import numpy as np

from repro import FlowConfig, SerFlow, get_particle
from repro.reliability.ecc import DEC_TED, NO_ECC, SEC_DED, word_failure_rates
from repro.ser import collect_pair_offsets
from repro.sram import CharacterizationConfig


def main():
    vdd = 0.7
    flow = SerFlow(
        FlowConfig(
            vdd_list=(vdd,),
            yield_trials_per_energy=10000,
            characterization=CharacterizationConfig(
                vdd_list=(vdd,), n_samples=150
            ),
            mc_particles_per_bin=40000,
            n_energy_bins=5,
        ),
        cache_dir=".repro-cache",
    )

    print("Step 1: SEU/MBU decomposition (alpha, Vdd = 0.7 V) ...")
    fit = flow.fit("alpha", vdd)
    print(
        f"  SEU = {fit.fit_seu:.4g} FIT, MBU = {fit.fit_mbu:.4g} FIT "
        f"(MBU/SEU = {100 * fit.mbu_to_seu_ratio:.1f}%)"
    )

    print("\nStep 2: failing-pair offsets (60k alpha tracks @2 MeV) ...")
    stats = collect_pair_offsets(
        flow.simulator(),
        get_particle("alpha"),
        2.0,
        vdd,
        60000,
        np.random.default_rng(3),
    )
    print("  top pair offsets (|d_row|, |d_col|) by expected rate:")
    for key, rate in sorted(
        stats.expected_pairs.items(), key=lambda kv: -kv[1]
    )[:5]:
        print(f"    {key}: {rate:.3e} pairs per launched particle")
    print(
        f"  same-row share: {stats.same_row_rate() / stats.total_pair_rate:.1%}; "
        f"max column extent: {stats.max_column_extent()} cells"
    )

    print("\nStep 3: uncorrectable rate per architecture "
          "(normalized to unprotected):")
    base = word_failure_rates(fit, stats, NO_ECC, 1).uncorrectable_rate
    print(f"  {'scheme':>8s} {'D':>3s} {'uncorrectable':>14s} {'gain':>9s}")
    for scheme in (NO_ECC, SEC_DED, DEC_TED):
        for distance in (1, 2, 4, 8):
            analysis = word_failure_rates(fit, stats, scheme, distance)
            rate = analysis.uncorrectable_rate / base if base > 0 else 0.0
            gain = analysis.correction_gain
            gain_text = f"{gain:9.1f}" if np.isfinite(gain) else "      inf"
            print(
                f"  {scheme.name:>8s} {distance:3d} {rate:14.3e} {gain_text}"
            )

    print(
        "\nTakeaway: the measured MBU clusters are physically compact\n"
        "(adjacent columns dominate), so even a 2-column interleave\n"
        "recovers nearly the full SEC-DED protection the MBUs defeat\n"
        "at interleave distance 1."
    )


if __name__ == "__main__":
    main()
