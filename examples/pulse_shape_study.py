#!/usr/bin/env python
"""Pulse-shape invariance experiment (paper Section 4).

The paper reports that the cell's probability of failure depends only
on the *charge* of the parasitic current pulse -- not its width, and
only negligibly on its shape (rectangular vs triangular).  This example
re-runs that experiment with the full MNA circuit engine: for a grid of
charges around Qcrit, it applies rectangular, triangular, and
double-exponential pulses of several widths and compares the flip
outcomes.
"""

import numpy as np

from repro import SramCellDesign
from repro.circuit import (
    make_strike_time_grid,
    pulse_from_charge,
    run_transient,
)
from repro.sram.qcrit import nominal_critical_charge_c


def cell_flips(design, vdd, waveform, pulse_width_s):
    circuit = design.build_circuit(vdd, strike_waveforms={0: waveform})
    times = make_strike_time_grid(1e-12, pulse_width_s, 6e-11)
    result = run_transient(
        circuit, times, initial_conditions=design.hold_state_guess(vdd)
    )
    return result.final_voltage("q") < result.final_voltage("qb")


def main():
    design = SramCellDesign()
    vdd = 0.8
    qcrit = nominal_critical_charge_c(design, vdd)
    tau = design.tech.transit_time_s(vdd)
    print(
        f"6T cell at Vdd={vdd} V: Qcrit = {qcrit * 1e15:.3f} fC, "
        f"transit time tau = {tau * 1e15:.1f} fs (paper eq. 2)"
    )

    charges = np.array([0.7, 0.85, 0.95, 1.05, 1.2, 1.5]) * qcrit
    widths = [tau, 10 * tau, 100 * tau]  # 17 fs ... 1.7 ps
    shapes = ["rect", "triangle", "dexp"]

    print("\nflip outcome per (charge, shape, width):")
    header = "charge/Qcrit  " + "  ".join(
        f"{shape}@{width * 1e15:>6.0f}fs"
        for shape in shapes
        for width in widths
    )
    print(header)
    disagreements = 0
    total = 0
    for charge in charges:
        row = [f"{charge / qcrit:12.2f}"]
        outcomes = []
        for shape in shapes:
            for width in widths:
                wave = pulse_from_charge(shape, charge, width, delay_s=1e-12)
                flip = cell_flips(design, vdd, wave, width)
                outcomes.append(flip)
                row.append(f"{'FLIP' if flip else 'hold':>14s}")
        reference = outcomes[0]
        disagreements += sum(1 for o in outcomes if o != reference)
        total += len(outcomes)
        print("  ".join(row))

    print(
        f"\n{disagreements}/{total} outcomes disagree with the "
        "rectangular-pulse reference."
    )
    print(
        "Conclusion (matches the paper): POF is set by the deposited "
        "charge; pulse width and shape matter only marginally at the "
        "flip boundary."
    )


if __name__ == "__main__":
    main()
