#!/usr/bin/env python
"""Process-variation study (paper Section 6, Fig. 11).

Compares SER estimated two ways:

* *nominal* -- SPICE characterization at the nominal corner; every
  (charge, combination) case is a deterministic flip / no-flip;
* *with PV* -- 1000-sample threshold-voltage Monte Carlo per case, so
  POFs become probabilities in [0, 1].

It also reports the underlying cell statistics: the critical-charge
distribution under variation, which is what smears the binary POF into
a probability.
"""

import dataclasses

import numpy as np

from repro import FlowConfig, SerFlow, SramCellDesign
from repro.core import comparison_report
from repro.sram import CharacterizationConfig
from repro.sram.qcrit import (
    critical_charge_samples_c,
    nominal_critical_charge_c,
)


def main():
    design = SramCellDesign()
    rng = np.random.default_rng(7)

    print("Critical charge of the 6T cell (strike on the '1'-node pull-down):")
    for vdd in (0.7, 0.8, 0.9, 1.0, 1.1):
        nominal = nominal_critical_charge_c(design, vdd)
        samples = critical_charge_samples_c(design, vdd, 200, rng)
        print(
            f"  Vdd={vdd:.1f}V: nominal {nominal * 1e15:.3f} fC, "
            f"under variation {np.mean(samples) * 1e15:.3f} "
            f"+/- {np.std(samples) * 1e15:.3f} fC"
        )

    base = FlowConfig(
        particles=("alpha",),
        vdd_list=(0.7, 0.8, 0.9, 1.0, 1.1),
        yield_trials_per_energy=10000,
        characterization=CharacterizationConfig(
            n_samples=300, n_charge_points=41
        ),
        mc_particles_per_bin=30000,
        n_energy_bins=5,
    )

    print("\nRunning the flow with and without process variation ...")
    sweep_pv = SerFlow(base, cache_dir=".repro-cache").sweep()
    sweep_nom = SerFlow(
        dataclasses.replace(base, process_variation=False),
        cache_dir=".repro-cache",
    ).sweep()

    print()
    print("Alpha-induced SER, considering vs neglecting PV (cf. Fig. 11):")
    print(comparison_report("with-PV", sweep_pv, "nominal", sweep_nom, "alpha"))

    ratios = [
        sweep_pv.get("alpha", v).fit_total / sweep_nom.get("alpha", v).fit_total
        for v in base.vdd_list
    ]
    worst = max(ratios)
    print(
        f"\nLargest PV-induced change: {100 * (worst - 1):+.1f}% "
        "(the paper reports up to +45% for its TCAD-calibrated stack)."
    )


if __name__ == "__main__":
    main()
