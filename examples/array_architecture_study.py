#!/usr/bin/env python
"""Array-architecture study: MBU geometry and data-pattern effects.

Beyond the paper's 9x9 uniform-pattern array, this example explores
design levers an SRAM architect controls:

* array aspect ratio at constant capacity (MBU clustering follows the
  physical adjacency of sensitive fins),
* stored data pattern (uniform vs checkerboard changes which fins are
  sensitive and therefore the multi-cell strike geometry),
* the particle species mix (isotropic package alphas vs cosine-law
  atmospheric protons).

Useful for reasoning about bit interleaving: MBUs that land in the same
logical word defeat single-error-correcting ECC.
"""

import numpy as np

from repro import FlowConfig, SerFlow, get_particle
from repro.layout import CellLayout, SramArrayLayout
from repro.ser import ArrayMcConfig, ArraySerSimulator
from repro.sram import CharacterizationConfig


def build_flow():
    config = FlowConfig(
        yield_trials_per_energy=10000,
        characterization=CharacterizationConfig(n_samples=150),
        mc_particles_per_bin=30000,
    )
    return SerFlow(config, cache_dir=".repro-cache")


def run_case(flow, layout, particle_name, energy_mev, vdd, n=60000, seed=3):
    simulator = ArraySerSimulator(
        layout,
        flow.pof_table(),
        yield_luts=flow.yield_luts(),
        config=ArrayMcConfig(),
    )
    rng = np.random.default_rng(seed)
    return simulator.run(get_particle(particle_name), energy_mev, vdd, n, rng)


def main():
    flow = build_flow()
    cell = CellLayout(
        fin=flow.design.tech.fin,
        collection_length_nm=flow.design.tech.collection_length_nm,
    )
    vdd, energy = 0.7, 2.0

    print("=== Array aspect ratio at ~81 cells (alpha, 2 MeV, 0.7 V) ===")
    for rows, cols in ((9, 9), (3, 27), (27, 3), (1, 81)):
        layout = SramArrayLayout(rows, cols, cell)
        result = run_case(flow, layout, "alpha", energy, vdd)
        print(
            f"  {rows:>2d}x{cols:<2d}: POF|hit={result.pof_total_given_hit:.4f}  "
            f"MBU/SEU={100 * result.mbu_to_seu_ratio:.2f}%"
        )

    print("\n=== Data pattern (alpha, 2 MeV, 0.7 V, 9x9) ===")
    for pattern in ("uniform", "checkerboard"):
        layout = SramArrayLayout(9, 9, cell, data_pattern=pattern)
        result = run_case(flow, layout, "alpha", energy, vdd)
        print(
            f"  {pattern:>12s}: POF|hit={result.pof_total_given_hit:.4f}  "
            f"MBU/SEU={100 * result.mbu_to_seu_ratio:.2f}%"
        )

    print("\n=== Species comparison at 1 MeV, 0.7 V (9x9, uniform) ===")
    layout = SramArrayLayout(9, 9, cell)
    for particle in ("alpha", "proton"):
        result = run_case(flow, layout, particle, 1.0, vdd)
        print(
            f"  {particle:>7s}: POF|hit={result.pof_total_given_hit:.5f}  "
            f"MBU/SEU={100 * result.mbu_to_seu_ratio:.3f}%  "
            f"(strikes per 1000 tracks: "
            f"{1000 * result.n_fin_strikes / result.n_particles:.1f})"
        )

    print(
        "\nTakeaway: MBU exposure tracks the physical adjacency of"
        " sensitive fins -- worth checking against the ECC interleave"
        " distance."
    )


if __name__ == "__main__":
    main()
