#!/usr/bin/env python
"""Cell sizing study: the 1-1-1 dense cell vs the 1-2-1 read-stable cell.

The classic SRAM sizing trade: doubling the pull-down fins improves
read stability (beta ratio) at the cost of area -- and, this study
shows, of soft-error exposure, because every extra fin is an extra
charge-collection volume feeding the same strike current.

Compares, per design:
  * read/hold static noise margins,
  * read-disturb bump and write delay,
  * impulse critical charge (spoiler: identical -- it is set by the
    storage-node capacitance, not the drive ratio),
  * sensitive area and the resulting array POF.
"""

import numpy as np

from repro import FlowConfig, SerFlow, SramCellDesign, get_particle
from repro.sram import CharacterizationConfig
from repro.sram.access import read_disturb_analysis, write_analysis
from repro.sram.qcrit import nominal_critical_charge_c
from repro.sram.snm import static_noise_margin_v


def analyze(design, label, vdd=0.7):
    flow = SerFlow(
        FlowConfig(
            particles=("alpha",),
            vdd_list=(vdd,),
            yield_trials_per_energy=8000,
            characterization=CharacterizationConfig(
                vdd_list=(vdd,), n_samples=120
            ),
            mc_particles_per_bin=30000,
            n_energy_bins=4,
        ),
        design=design,
    )
    result = flow.pof_vs_energy("alpha", vdd, [2.0], 40000)[0]
    return {
        "label": label,
        "hold_snm": static_noise_margin_v(design, vdd, "hold"),
        "read_snm": static_noise_margin_v(design, vdd, "read"),
        "qcrit": nominal_critical_charge_c(design, vdd),
        "read_bump": read_disturb_analysis(design, vdd)["max_qb_bump_v"],
        "write_delay": write_analysis(design, vdd)["write_delay_s"],
        "sensitive_fins": flow.layout().sensitive_fin_count(),
        "pof_hit": result.pof_total_given_hit,
        "mbu_seu": result.mbu_to_seu_ratio,
    }


def main():
    dense = analyze(SramCellDesign(), "1-1-1 dense")
    stable = analyze(SramCellDesign(nfin_pd=2), "1-2-1 read-stable")

    print(f"{'metric':<28s} {'1-1-1 dense':>14s} {'1-2-1 stable':>14s}")
    rows = [
        ("hold SNM [mV]", "hold_snm", 1e3),
        ("read SNM [mV]", "read_snm", 1e3),
        ("read qb bump [mV]", "read_bump", 1e3),
        ("write delay [ps]", "write_delay", 1e12),
        ("impulse Qcrit [fC]", "qcrit", 1e15),
        ("sensitive fins (9x9)", "sensitive_fins", 1),
        ("alpha POF|hit @2MeV", "pof_hit", 1),
        ("MBU/SEU", "mbu_seu", 1),
    ]
    for label, key, scale in rows:
        print(
            f"{label:<28s} {dense[key] * scale:>14.4g} "
            f"{stable[key] * scale:>14.4g}"
        )

    print(
        "\nTakeaway: the read-stability upsizing buys noise margin but\n"
        "not strike immunity -- Qcrit is capacitance-limited while the\n"
        "sensitive cross-section grows with every added fin."
    )


if __name__ == "__main__":
    main()
