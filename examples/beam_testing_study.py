#!/usr/bin/env python
"""Accelerated-beam-testing emulation: POF vs tilt angle.

Radiation qualification measures SER under a mono-energetic beam at a
series of tilt angles (tilt-and-rotate geometry).  The library's
``beam:<cos_theta>`` direction law reproduces that setup: fixed zenith
angle, uniform azimuth.  This study shows how measured cross sections
depend on tilt -- grazing beams see longer chords through the fins
(higher per-strike deposit, more multi-cell events) but present a
smaller projected sensitive area.
"""

import numpy as np

from repro import FlowConfig, SerFlow, get_particle
from repro.ser import ArrayMcConfig, ArraySerSimulator
from repro.sram import CharacterizationConfig


def main():
    flow = SerFlow(
        FlowConfig(
            yield_trials_per_energy=10000,
            characterization=CharacterizationConfig(n_samples=150),
            mc_particles_per_bin=30000,
        ),
        cache_dir=".repro-cache",
    )
    alpha = get_particle("alpha")
    vdd, energy = 0.7, 2.0

    print("Alpha beam @2 MeV, 9x9 array, Vdd = 0.7 V")
    print(f"{'tilt':>6s} {'cos':>5s} {'POF|hit':>9s} {'MBU/SEU':>8s} "
          f"{'mean cluster':>13s}")
    for tilt_deg in (0.0, 30.0, 60.0, 75.0, 85.0):
        cos_theta = float(np.cos(np.radians(tilt_deg)))
        law = f"beam:{max(cos_theta, 0.01):.4f}"
        simulator = ArraySerSimulator(
            flow.layout(),
            flow.pof_table(),
            yield_luts=flow.yield_luts(),
            config=ArrayMcConfig(
                deposition_mode="direct",  # chord-consistent for beams
                direction_laws={"alpha": law},
            ),
        )
        result = simulator.run(
            alpha, energy, vdd, 40000, np.random.default_rng(int(tilt_deg))
        )
        print(
            f"{tilt_deg:5.0f}deg {cos_theta:5.2f} "
            f"{result.pof_total_given_hit:9.4f} "
            f"{100 * result.mbu_to_seu_ratio:7.2f}% "
            f"{result.mean_cluster_size():13.3f}"
        )

    print(
        "\nExpected physics: steep beams maximize per-area strike count;"
        "\ngrazing beams trade hit probability for chord length, pushing"
        "\nthe MBU share and the mean upset cluster size up."
    )

    print("\n=== sigma(LET) characterization with Weibull fit ===")
    from repro.ser import HeavyIonCampaign, fit_weibull

    campaign = HeavyIonCampaign(flow.layout(), flow.pof_table())
    lets = [0.03, 0.06, 0.1, 0.15, 0.25, 0.4, 0.8, 2.0]
    points = campaign.sweep_let(
        lets, vdd, 20000, np.random.default_rng(99)
    )
    for point in points:
        print(
            f"  LET={point.let_kev_per_nm:5.2f} keV/nm  "
            f"sigma={point.cross_section_cm2_per_bit:.3e} cm^2/bit"
        )
    fit = fit_weibull(points)
    print(
        f"  Weibull: sigma_sat={fit.sigma_sat_cm2:.3e} cm^2/bit, "
        f"L0={fit.let_threshold:.3f} keV/nm, "
        f"W={fit.width:.3f}, s={fit.shape:.2f}"
    )
    print(
        "  The onset LET corresponds to Qcrit / fin-height: the beam\n"
        "  view and the spectrum view of the same cell agree."
    )


if __name__ == "__main__":
    main()
