#!/usr/bin/env python
"""Quickstart: estimate the SER of a 9x9 SOI FinFET SRAM array.

Runs the full cross-layer flow of Kiamehr et al. (DAC 2014) at a
laptop-friendly scale:

1. build the device-level electron-yield LUTs (Geant4-substitute MC),
2. characterize the 6T cell into POF LUTs (SPICE-substitute MC with
   threshold-voltage process variation),
3. run the 3-D array Monte Carlo per spectrum energy bin and fold with
   the ground-level alpha / proton fluxes into FIT rates.

Expected runtime: ~2 minutes.  Artifacts are cached in ``.repro-cache``
so a second run is much faster.
"""

from repro import FlowConfig, SerFlow
from repro.core import fit_report
from repro.sram import CharacterizationConfig


def main():
    config = FlowConfig(
        vdd_list=(0.7, 0.8, 0.9, 1.0, 1.1),
        yield_trials_per_energy=10000,
        characterization=CharacterizationConfig(n_samples=150),
        mc_particles_per_bin=30000,
        n_energy_bins=5,
    )
    flow = SerFlow(config, cache_dir=".repro-cache")

    print("Building LUTs and running the array Monte Carlo ...")
    sweep = flow.sweep()

    print()
    print("Normalized SER of the 9x9 SRAM array (cf. paper Figs. 9-10):")
    print(fit_report(sweep))
    print()

    alpha_07 = sweep.get("alpha", 0.7)
    proton_07 = sweep.get("proton", 0.7)
    print(
        f"At Vdd = 0.7 V the proton SER is "
        f"{proton_07.fit_total / alpha_07.fit_total:.2f}x the alpha SER "
        "(the paper's 'comparable at low supply voltages')."
    )
    print(
        f"Alpha MBU/SEU = {100 * alpha_07.mbu_to_seu_ratio:.1f}% vs "
        f"proton MBU/SEU = {100 * proton_07.mbu_to_seu_ratio:.2f}% "
        "(the paper's 'much higher for alpha')."
    )


if __name__ == "__main__":
    main()
