#!/usr/bin/env python
"""Cross-layer flow vs the circuit-level baseline (related work [14, 17]).

The paper motivates its device-to-circuit flow against circuit-only
studies, which extract one critical charge and fold it into an
empirical exponential SER formula.  This example runs both on the same
technology card and shows concretely what the baseline misses:

* the proton/alpha composition shift toward low Vdd (the baseline's
  species ratio is a Vdd-independent flux ratio),
* the SEU/MBU decomposition (the baseline has no layout),
* the energy-resolved POF structure (the baseline has no spectrum
  folding).
"""

import numpy as np

from repro import FlowConfig, SerFlow
from repro.baselines import CircuitLevelSerModel
from repro.sram import CharacterizationConfig


def main():
    vdd_list = (0.7, 0.9, 1.1)
    flow = SerFlow(
        FlowConfig(
            vdd_list=vdd_list,
            yield_trials_per_energy=10000,
            characterization=CharacterizationConfig(n_samples=150),
            mc_particles_per_bin=30000,
            n_energy_bins=5,
        ),
        cache_dir=".repro-cache",
    )
    baseline = CircuitLevelSerModel(flow.design)

    print("Running the cross-layer flow ...")
    sweep = flow.sweep()

    print("\n=== proton/alpha SER ratio vs Vdd ===")
    print("  Vdd    cross-layer    baseline")
    for vdd in vdd_list:
        cross = (
            sweep.get("proton", vdd).fit_total
            / sweep.get("alpha", vdd).fit_total
        )
        base = baseline.fit_rate("proton", vdd) / baseline.fit_rate(
            "alpha", vdd
        )
        print(f"  {vdd:.1f}    {cross:10.4f}    {base:9.4f}")
    print(
        "  -> the baseline's ratio is constant by construction; the\n"
        "     cross-layer flow resolves the paper's low-Vdd proton rise."
    )

    print("\n=== normalized alpha SER vs Vdd (shape comparison) ===")
    cross_fits = np.array(
        [sweep.get("alpha", v).fit_total for v in vdd_list]
    )
    base_fits = baseline.fit_series("alpha", vdd_list)
    cross_norm = cross_fits / cross_fits[0]
    base_norm = base_fits / base_fits[0]
    print("  Vdd    cross-layer    baseline")
    for vdd, c, b in zip(vdd_list, cross_norm, base_norm):
        print(f"  {vdd:.1f}    {c:10.4f}    {b:9.4f}")

    print("\n=== what only the cross-layer flow reports ===")
    for vdd in vdd_list:
        result = sweep.get("alpha", vdd)
        print(
            f"  Vdd={vdd:.1f}V: alpha MBU/SEU = "
            f"{100 * result.mbu_to_seu_ratio:.2f}% "
            "(baseline: undefined -- no layout)"
        )


if __name__ == "__main__":
    main()
