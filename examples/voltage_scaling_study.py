#!/usr/bin/env python
"""Low-power design study: how voltage scaling trades SER for power.

The paper's headline motivation: dropping Vdd for low-power operation
raises the soft-error rate, and shifts its composition -- the proton
contribution grows until it rivals the alpha contribution at 0.7 V.
This example sweeps Vdd, decomposes SER into SEU and MBU components per
particle, and prints an ASCII chart a memory designer could act on
(e.g. how much ECC / interleaving margin a DVFS mode needs).
"""

import numpy as np

from repro import FlowConfig, SerFlow
from repro.sram import CharacterizationConfig


def bar(value, scale, width=46):
    n = int(round(width * min(value / scale, 1.0)))
    return "#" * n


def main():
    vdd_list = (0.7, 0.8, 0.9, 1.0, 1.1)
    config = FlowConfig(
        vdd_list=vdd_list,
        yield_trials_per_energy=10000,
        characterization=CharacterizationConfig(n_samples=150),
        mc_particles_per_bin=30000,
        n_energy_bins=5,
    )
    flow = SerFlow(config, cache_dir=".repro-cache")
    sweep = flow.sweep()

    totals = {
        (p, v): sweep.get(p, v).fit_total
        for p in ("alpha", "proton")
        for v in vdd_list
    }
    peak = max(totals.values())

    print("SER vs supply voltage (normalized to the worst case)")
    print("=" * 72)
    for vdd in vdd_list:
        for particle in ("alpha", "proton"):
            result = sweep.get(particle, vdd)
            norm = result.fit_total / peak
            print(
                f"Vdd={vdd:.1f}V {particle:>7s} |{bar(norm, 1.0):<46s}| "
                f"{norm:8.4f}"
            )
        combined = (totals[("alpha", vdd)] + totals[("proton", vdd)]) / peak
        print(f"Vdd={vdd:.1f}V   total   -> {combined:.4f}")
        print("-" * 72)

    # dynamic power scales ~ Vdd^2: quantify the SER cost of saving power
    print("\nDVFS trade-off (vs nominal 0.8 V):")
    ref = totals[("alpha", 0.8)] + totals[("proton", 0.8)]
    for vdd in vdd_list:
        total = totals[("alpha", vdd)] + totals[("proton", vdd)]
        power = (vdd / 0.8) ** 2
        print(
            f"  Vdd={vdd:.1f}V: dynamic power x{power:4.2f}, "
            f"SER x{total / ref:5.2f}"
        )

    print("\nProton share of total SER (the paper's low-power warning):")
    for vdd in vdd_list:
        total = totals[("alpha", vdd)] + totals[("proton", vdd)]
        share = totals[("proton", vdd)] / total
        print(f"  Vdd={vdd:.1f}V: {100 * share:5.1f}%")


if __name__ == "__main__":
    main()
