#!/usr/bin/env python
"""Junction-temperature study of the cell's robustness metrics.

Extends the paper's room-temperature analysis across the industrial
temperature range.  Two regimes fall out of the model:

* **impulse-limit Qcrit is temperature-blind** -- for a symmetric
  latch hit by a femtosecond pulse, the flip condition is crossing the
  diagonal separatrix, i.e. Qcrit = C*Vdd exactly, no matter how weak
  the hot devices are;
* **everything rate-limited degrades when hot** -- read SNM, leakage,
  and the finite-width (ps-scale collection) critical charge all move
  against the designer as the junction heats.
"""

import numpy as np

from repro.baselines import CircuitLevelSerModel
from repro.devices import default_tech, technology_at_temperature
from repro.sram import SramCellDesign
from repro.sram.access import read_disturb_analysis
from repro.sram.qcrit import nominal_critical_charge_c
from repro.sram.snm import static_noise_margin_v


def main():
    vdd = 0.8
    print(f"6T cell at Vdd = {vdd} V across junction temperature")
    print(
        f"{'T [K]':>6s} {'Ion uA':>7s} {'Ioff nA':>8s} {'SS mV/dec':>10s} "
        f"{'hold SNM':>9s} {'read SNM':>9s} {'Qcrit(imp)':>11s} "
        f"{'Qcrit(5ps)':>11s} {'qb bump':>8s}"
    )
    for temp_k in (233.0, 300.0, 358.0, 398.0):
        tech = technology_at_temperature(default_tech(), temp_k)
        design = SramCellDesign(tech=tech)
        impulse_qcrit = nominal_critical_charge_c(design, vdd)
        pulse_qcrit = CircuitLevelSerModel(
            design, pulse_width_s=5e-12
        ).critical_charge_c(vdd)
        hold = static_noise_margin_v(design, vdd, "hold")
        read = static_noise_margin_v(design, vdd, "read")
        disturb = read_disturb_analysis(design, vdd)
        print(
            f"{temp_k:6.0f} {tech.nmos.on_current(vdd) * 1e6:7.1f} "
            f"{tech.nmos.off_current(vdd) * 1e9:8.2f} "
            f"{tech.nmos.subthreshold_swing_mv_dec():10.1f} "
            f"{hold * 1e3:8.1f}m {read * 1e3:8.1f}m "
            f"{impulse_qcrit * 1e15:10.4f}f "
            f"{pulse_qcrit * 1e15:10.4f}f "
            f"{disturb['max_qb_bump_v'] * 1e3:7.1f}m"
        )

    print(
        "\nReading the table:\n"
        "  * the impulse-limit Qcrit column is flat: the fs strike of\n"
        "    the paper's eq. 3 flips the cell on pure charge balance\n"
        "    (Qcrit = C*Vdd), so the paper's room-temperature SER\n"
        "    tables transfer directly across temperature;\n"
        "  * the 5 ps-collection Qcrit and both noise margins degrade\n"
        "    when hot -- technologies with slower charge collection\n"
        "    (longer tau) do pick up a real temperature dependence."
    )


if __name__ == "__main__":
    main()
