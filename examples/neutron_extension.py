#!/usr/bin/env python
"""The paper's future work: neutron-induced (indirect ionization) SER.

"The study of neutron radiation SER, which causes indirect ionization
of materials, is our future work." -- this example runs that study with
the library's neutron extension and compares all three species on one
array.

The interesting physics: sea-level neutron flux is ~10,000x the package
alpha emission rate, but a neutron only matters if it reacts inside the
tiny SOI fin (probability ~1e-7 per crossing).  The net effect for SOI
FinFET SRAM: neutron SER lands far below alpha SER -- consistent with
the published TCAD comparisons of FinFET vs planar neutron
susceptibility (the paper's reference [12]).
"""

import numpy as np

from repro import FlowConfig, SerFlow
from repro.physics.neutron import (
    NeutronInteractionModel,
    SeaLevelNeutronSpectrum,
)
from repro.ser.neutron_mc import neutron_fit
from repro.sram import CharacterizationConfig


def main():
    vdd_list = (0.7, 0.9, 1.1)
    flow = SerFlow(
        FlowConfig(
            vdd_list=vdd_list,
            yield_trials_per_energy=10000,
            characterization=CharacterizationConfig(n_samples=150),
            mc_particles_per_bin=30000,
            n_energy_bins=5,
        ),
        cache_dir=".repro-cache",
    )

    spectrum = SeaLevelNeutronSpectrum()
    print("Sea-level neutron flux above 1 MeV: "
          f"{3600 * spectrum.integral_flux(1, 1000):.1f} n/(cm^2 h)")
    model = NeutronInteractionModel()
    print(
        "Reaction probability per 30 nm fin crossing at 10 MeV: "
        f"{model.reaction_probability(10.0, 30.0)[0]:.2e}"
    )

    print("\nRunning charged-particle flow (alpha, proton) ...")
    sweep = flow.sweep()

    print("Running neutron Monte Carlo ...")
    rng = np.random.default_rng(11)
    neutron_fits = {
        vdd: neutron_fit(
            flow.layout(), flow.pof_table(), vdd, 30000, rng, n_bins=5
        )
        for vdd in vdd_list
    }

    print("\n=== FIT by species (normalized to alpha at 0.7 V) ===")
    reference = sweep.get("alpha", 0.7).fit_total
    print("  Vdd     alpha    proton   neutron")
    for vdd in vdd_list:
        alpha = sweep.get("alpha", vdd).fit_total / reference
        proton = sweep.get("proton", vdd).fit_total / reference
        neutron = neutron_fits[vdd].fit_total / reference
        print(f"  {vdd:.1f}  {alpha:9.4f} {proton:9.4f} {neutron:9.5f}")

    print(
        "\nTakeaways:\n"
        "  * neutron SER is orders of magnitude below alpha for this\n"
        "    SOI FinFET array (tiny sensitive volume -- cf. paper [12]);\n"
        "  * unlike the charged species, the neutron rate barely moves\n"
        "    with Vdd: every nuclear reaction deposits far more than\n"
        "    Qcrit, so the rate is reaction-limited, not threshold-\n"
        "    limited."
    )


if __name__ == "__main__":
    main()
