"""Energy-loss straggling and electron-hole pair statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PhysicsError
from repro.physics import (
    ALPHA,
    PROTON,
    bohr_variance_mev2,
    charge_to_pairs,
    mean_chord_deposit_kev,
    mean_pairs,
    pairs_to_charge_coulomb,
    sample_deposits_kev,
    sample_pairs,
)


class TestBohrVariance:
    def test_scales_linearly_with_chord(self):
        v1 = bohr_variance_mev2(PROTON, 1.0, 10.0)
        v2 = bohr_variance_mev2(PROTON, 1.0, 20.0)
        assert v2 == pytest.approx(2.0 * v1)

    def test_alpha_larger_than_proton(self):
        # z_eff^2 makes alpha straggling bigger at the same velocity
        assert bohr_variance_mev2(ALPHA, 4.0, 10.0) > bohr_variance_mev2(
            PROTON, 1.0, 10.0
        )

    def test_magnitude_reasonable(self):
        # ~10 nm silicon chord, 1 MeV proton: sigma of order 0.1-1 keV
        sigma_kev = np.sqrt(bohr_variance_mev2(PROTON, 1.0, 10.0)) * 1e3
        assert 0.05 < sigma_kev < 2.0

    def test_negative_chord_rejected(self):
        with pytest.raises(PhysicsError):
            bohr_variance_mev2(PROTON, 1.0, -5.0)


class TestSampleDeposits:
    def test_zero_chord_gives_zero(self):
        rng = np.random.default_rng(0)
        deposits = sample_deposits_kev(
            PROTON, np.full(100, 1.0), np.zeros(100), rng
        )
        assert np.all(deposits == 0.0)

    def test_mean_matches_thin_layer(self):
        rng = np.random.default_rng(1)
        n = 40000
        deposits = sample_deposits_kev(
            ALPHA, np.full(n, 2.0), np.full(n, 20.0), rng
        )
        expected = float(mean_chord_deposit_kev(ALPHA, 2.0, 20.0))
        assert np.mean(deposits) == pytest.approx(expected, rel=0.05)

    def test_never_negative_never_above_kinetic(self):
        rng = np.random.default_rng(2)
        energy = 0.3
        deposits = sample_deposits_kev(
            PROTON, np.full(5000, energy), np.full(5000, 30.0), rng
        )
        assert np.all(deposits >= 0.0)
        assert np.all(deposits <= energy * 1e3 + 1e-9)

    def test_broadcasting(self):
        rng = np.random.default_rng(3)
        deposits = sample_deposits_kev(
            PROTON, 1.0, np.array([5.0, 10.0, 15.0]), rng
        )
        assert deposits.shape == (3,)


class TestPairs:
    def test_paper_rule_3_6_ev(self):
        # 3.6 keV deposit -> exactly 1000 mean pairs
        assert mean_pairs(3.6) == pytest.approx(1000.0)

    def test_non_collecting_material_rejected(self):
        from repro.materials import BEOL_DIELECTRIC

        with pytest.raises(PhysicsError):
            mean_pairs(1.0, BEOL_DIELECTRIC)

    def test_negative_deposit_rejected(self):
        with pytest.raises(PhysicsError):
            mean_pairs(-1.0)

    def test_sampled_mean_and_fano_variance(self):
        rng = np.random.default_rng(4)
        n = 60000
        counts = sample_pairs(np.full(n, 3.6), rng)
        assert np.mean(counts) == pytest.approx(1000.0, rel=0.01)
        # Fano: var = 0.115 * mean (plus rounding noise ~1/12)
        assert np.var(counts) == pytest.approx(115.0, rel=0.15)

    def test_counts_are_integral_and_nonnegative(self):
        rng = np.random.default_rng(5)
        counts = sample_pairs(np.full(1000, 0.01), rng)
        assert np.all(counts >= 0)
        assert np.all(counts == np.rint(counts))

    @given(st.floats(1, 1e6))
    @settings(max_examples=30, deadline=None)
    def test_charge_round_trip(self, pairs):
        charge = pairs_to_charge_coulomb(pairs)
        assert charge_to_pairs(charge) == pytest.approx(pairs)

    def test_single_pair_charge(self):
        assert pairs_to_charge_coulomb(1.0) == pytest.approx(1.602e-19, rel=1e-3)


class TestMoyalStraggling:
    def test_mean_preserved(self):
        from repro.physics import mean_chord_deposit_kev

        rng = np.random.default_rng(20)
        n = 100000
        deposits = sample_deposits_kev(
            ALPHA, np.full(n, 5.0), np.full(n, 30.0), rng, model="moyal"
        )
        expected = float(mean_chord_deposit_kev(ALPHA, 5.0, 30.0))
        assert np.mean(deposits) == pytest.approx(expected, rel=0.05)

    def test_right_skewed(self):
        """Landau-like fluctuations carry the long tail upward."""
        rng = np.random.default_rng(21)
        n = 100000
        deposits = sample_deposits_kev(
            ALPHA, np.full(n, 5.0), np.full(n, 30.0), rng, model="moyal"
        )
        mean = np.mean(deposits)
        std = np.std(deposits)
        skew = np.mean(((deposits - mean) / std) ** 3)
        assert skew > 0.5

    def test_most_probable_below_mean(self):
        rng = np.random.default_rng(22)
        n = 100000
        deposits = sample_deposits_kev(
            ALPHA, np.full(n, 5.0), np.full(n, 30.0), rng, model="moyal"
        )
        assert np.median(deposits) < np.mean(deposits)

    def test_physical_bounds(self):
        rng = np.random.default_rng(23)
        energy = 0.5
        deposits = sample_deposits_kev(
            PROTON, np.full(5000, energy), np.full(5000, 30.0), rng,
            model="moyal",
        )
        assert np.all(deposits >= 0.0)
        assert np.all(deposits <= energy * 1e3 + 1e-9)

    def test_unknown_model_rejected(self):
        with pytest.raises(PhysicsError):
            sample_deposits_kev(
                ALPHA, 1.0, 10.0, np.random.default_rng(0), model="vavilov"
            )

    def test_transport_engine_accepts_model(self):
        from repro.transport import TransportConfig, TransportEngine

        engine = TransportEngine(
            config=TransportConfig(straggling_model="moyal")
        )
        result = engine.launch(ALPHA, 1.0, 5000, np.random.default_rng(24))
        assert result.mean_pairs_given_hit > 0
