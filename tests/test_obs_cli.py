"""The ``repro-ser obs`` inspection CLI: tail, summarize, diff, bench-check."""

import json

import pytest

from repro.cli import main as cli_main
from repro.obs import build_manifest, disable_metrics, enable_metrics
from repro.obs.convergence import record_bin, reset_convergence
from repro.obs.events import configure_events, disable_events, emit_event
from repro.obs.inspect import bench_check, diff_manifests, follow_events
from repro.obs.trace import configure_tracing, reset_tracing, span


@pytest.fixture(autouse=True)
def _clean_obs_state():
    disable_events()
    disable_metrics()
    reset_tracing()
    reset_convergence()
    yield
    disable_events()
    disable_metrics()
    reset_tracing()
    reset_convergence()


def make_events_file(path):
    """A small but complete stream: round, progress, heartbeat, convergence."""
    configure_events(path)
    emit_event("round", label="fit.alpha", phase="start", path="pool-warm", tasks=2, workers=2)
    emit_event("progress", label="fit.alpha", index=0, state="started", pid=111)
    emit_event("progress", label="fit.alpha", index=0, state="finished", pid=111, busy_s=0.25)
    emit_event("heartbeat", label="fit.alpha", done=1, total=2, elapsed_s=0.3, eta_s=0.3, final=False)
    emit_event("progress", label="fit.alpha", index=1, state="finished", pid=112, busy_s=0.35)
    record_bin("fit", trials=800, pof=0.1, particle="alpha", vdd_v=0.8, energy_mev=2.0)
    emit_event("round", label="fit.alpha", phase="end", path="pool-warm", tasks=2, lost=0, wall_s=0.7)
    disable_events()
    return path


def make_manifest_file(path, *, jobs=2, extra_stage=None):
    registry = enable_metrics(fresh=True)
    registry.timer("stage.fit").observe(0.5)
    registry.timer("stage.fit").observe(0.7)
    if extra_stage:
        registry.timer(f"stage.{extra_stage}").observe(0.1)
    manifest = build_manifest(
        command="fit",
        argv=["fit"],
        config={"jobs": jobs},
        seed=1,
        started_at="2026-01-01T00:00:00Z",
        duration_s=1.5,
        exit_code=0,
        version="test",
    )
    disable_metrics()
    manifest.write(path)
    return path


def make_trace_file(path):
    configure_tracing(path)
    with span("fit"):
        with span("pof-table"):
            pass
    reset_tracing()
    return path


class TestObsTail:
    def test_tail_renders_and_counts(self, tmp_path, capsys):
        path = make_events_file(tmp_path / "events.jsonl")
        assert cli_main(["obs", "tail", str(path)]) == 0
        out = capsys.readouterr().out
        assert "fit.alpha" in out
        assert "heartbeat" in out
        assert "convergence" in out
        assert "7 events" in out

    def test_tail_last_limits_lines(self, tmp_path, capsys):
        path = make_events_file(tmp_path / "events.jsonl")
        assert cli_main(["obs", "tail", str(path), "--last", "2"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert len([l for l in out if not l.startswith("--")]) == 2

    def test_tail_follow_exits_on_idle_timeout(self, tmp_path, capsys):
        path = make_events_file(tmp_path / "events.jsonl")
        code = cli_main(
            [
                "obs", "tail", str(path), "--follow",
                "--idle-timeout", "0.3", "--stall-after", "60",
            ]
        )
        assert code == 0
        assert "progress" in capsys.readouterr().out

    def test_follow_flags_a_stalled_stream(self, tmp_path):
        path = make_events_file(tmp_path / "events.jsonl")
        lines = list(
            follow_events(
                path, poll_s=0.02, idle_timeout_s=0.3, stall_after_s=0.1
            )
        )
        assert any(line.startswith("!! stalled") for line in lines)
        # events first, stall warning after the silence
        assert not lines[0].startswith("!!")


class TestObsSummarize:
    def test_events_summary_table(self, tmp_path, capsys):
        path = make_events_file(tmp_path / "events.jsonl")
        assert cli_main(["obs", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "fit.alpha" in out
        assert "busy_p50" in out
        assert "convergence: 1 bins" in out

    def test_manifest_autodetected_by_suffix(self, tmp_path, capsys):
        path = make_manifest_file(tmp_path / "run.json")
        assert cli_main(["obs", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "manifest: command=fit" in out
        assert "fit" in out and "p50" in out

    def test_trace_autodetected_by_name(self, tmp_path, capsys):
        path = make_trace_file(tmp_path / "trace.jsonl")
        assert cli_main(["obs", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "pof-table" in out

    def test_json_dump_is_parseable(self, tmp_path, capsys):
        path = make_events_file(tmp_path / "events.jsonl")
        assert cli_main(["obs", "summarize", str(path), "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["labels"]["fit.alpha"]["finished"] == 2


class TestObsDiff:
    def test_identical_runs_diff_clean(self, tmp_path, capsys):
        a = make_manifest_file(tmp_path / "a.json")
        b = make_manifest_file(tmp_path / "b.json")
        assert cli_main(["obs", "diff", str(a), str(b)]) == 0
        assert "no differences" in capsys.readouterr().out

    def test_config_change_is_reported(self, tmp_path, capsys):
        a = make_manifest_file(tmp_path / "a.json", jobs=2)
        b = make_manifest_file(tmp_path / "b.json", jobs=8)
        assert cli_main(["obs", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "config.jobs" in out

    def test_fail_on_diff_exit_code(self, tmp_path):
        a = make_manifest_file(tmp_path / "a.json", jobs=2)
        b = make_manifest_file(tmp_path / "b.json", jobs=8)
        assert (
            cli_main(["obs", "diff", str(a), str(b), "--fail-on-diff"]) == 1
        )

    def test_new_stage_shows_as_absent(self, tmp_path):
        a = make_manifest_file(tmp_path / "a.json")
        b = make_manifest_file(tmp_path / "b.json", extra_stage="lut")
        diffs, meta = diff_manifests(a, b)
        keys = {key for key, _, _ in diffs}
        assert any(key.startswith("stage_timings_s.lut") for key in keys)
        assert meta["a"]["command"] == "fit"
        # the raw sample buffers never appear as diffs
        assert not any(key.endswith(".samples") for key in keys)


class TestBenchCheck:
    @staticmethod
    def _write(path, speedups, metric="speedup"):
        path.write_text(
            json.dumps([{metric: value} for value in speedups])
        )
        return path

    def test_single_entry_passes(self, tmp_path):
        path = self._write(tmp_path / "BENCH_x.json", [2.0])
        ok, report = bench_check(path)
        assert ok and "single entry" in report

    def test_within_floor_passes(self, tmp_path):
        path = self._write(tmp_path / "BENCH_x.json", [2.0, 1.95])
        ok, report = bench_check(path, max_regress=0.10)
        assert ok and "ok" in report

    def test_regression_fails(self, tmp_path):
        path = self._write(tmp_path / "BENCH_x.json", [2.0, 1.0])
        ok, report = bench_check(path, max_regress=0.10)
        assert not ok and "REGRESSION" in report

    def test_characterize_metric_recognized(self, tmp_path):
        path = self._write(
            tmp_path / "BENCH_char.json",
            [3.0, 3.1],
            metric="speedup_default_vs_seed",
        )
        ok, report = bench_check(path)
        assert ok and "speedup_default_vs_seed" in report

    def test_cli_gates_multiple_paths(self, tmp_path, capsys):
        good = self._write(tmp_path / "BENCH_good.json", [2.0, 2.1])
        bad = self._write(tmp_path / "BENCH_bad.json", [2.0, 1.0])
        assert (
            cli_main(
                ["obs", "bench-check", str(good), str(bad), "--max-regress", "0.1"]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "ok" in out and "REGRESSION" in out

    def test_garbage_file_fails_cleanly(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{}")
        ok, report = bench_check(path)
        assert not ok and "trajectory" in report

    def test_committed_trajectories_are_valid(self):
        """The repo's own BENCH files parse and carry a speedup figure."""
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        for name in ("BENCH_flow.json", "BENCH_characterize.json"):
            ok, report = bench_check(root / name, max_regress=1.0)
            assert ok, report


def _event_line(seq, label):
    return json.dumps(
        {
            "type": "event",
            "kind": "progress",
            "seq": seq,
            "t": 1000.0 + seq,
            "label": label,
            "index": seq,
            "state": "finished",
        }
    ) + "\n"


class TestRotatedStreams:
    """Readers must see the whole stream across a JSONL rotation."""

    def _write_rotated_stream(self, path):
        """A stream the writer rotated exactly once mid-campaign.

        Emits until the size cap triggers the (real) rotation, then a
        few more events into the fresh file; returns the total count.
        Only one rotated generation is retained, so the test must not
        rotate twice.
        """
        rotated = path.with_name(path.name + ".1")
        configure_events(path, max_bytes=2048)
        count = 0
        while not rotated.exists():
            emit_event("progress", label="rot", index=count, state="finished")
            count += 1
            assert count < 500, "size cap never triggered a rotation"
        for _ in range(5):
            emit_event("progress", label="rot", index=count, state="finished")
            count += 1
        disable_events()
        return count

    def test_tail_stitches_the_rotation_chain(self, tmp_path):
        from repro.obs.inspect import tail_events

        path = tmp_path / "events.jsonl"
        count = self._write_rotated_stream(path)
        lines, stats = tail_events(path)
        # every emitted event is rendered, not just the live file
        assert stats["events"] == count
        assert stats["invalid"] == 0
        assert len(lines) == count

    def test_summarize_counts_across_the_chain(self, tmp_path):
        from repro.obs.inspect import summarize_events

        path = tmp_path / "events.jsonl"
        count = self._write_rotated_stream(path)
        summary = summarize_events(path)
        assert summary["labels"]["rot"]["finished"] == count

    def test_chain_reader_dedups_on_seq(self, tmp_path):
        from repro.obs.inspect import read_event_chain

        path = tmp_path / "events.jsonl"
        # a reader racing the rotation can see one event in both
        # generations; the chain must keep exactly one copy
        (tmp_path / "events.jsonl.1").write_text(
            _event_line(1, "old") + _event_line(2, "both")
        )
        path.write_text(_event_line(2, "both") + _event_line(3, "new"))
        records, invalid = read_event_chain(path)
        assert invalid == 0
        assert [r["seq"] for r in records] == [1, 2, 3]

    def test_follow_survives_rotation_without_skipping(self, tmp_path):
        import os as _os

        path = tmp_path / "events.jsonl"
        path.write_text(_event_line(1, "pre") + _event_line(2, "pre"))
        rotated = {"done": False}

        def sleep_hook(_):
            if not rotated["done"]:
                rotated["done"] = True
                # the writer rotates: live file moves aside (carrying a
                # final event the reader has not consumed yet) and a
                # fresh file starts at the same path with a new inode
                _os.rename(path, str(path) + ".1")
                with open(str(path) + ".1", "a") as handle:
                    handle.write(_event_line(3, "tail"))
                path.write_text(_event_line(4, "post"))

        lines = list(
            follow_events(
                path,
                poll_s=0.01,
                idle_timeout_s=0.2,
                stall_after_s=99,
                _sleep=sleep_hook,
            )
        )
        body = "\n".join(lines)
        # nothing skipped: the rotated file's tail AND the fresh file
        assert "tail" in body
        assert "post" in body
        # ...and in order: the rotated generation drains first
        tail_at = next(i for i, l in enumerate(lines) if "tail" in l)
        post_at = next(i for i, l in enumerate(lines) if "post" in l)
        assert tail_at < post_at
