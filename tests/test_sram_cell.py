"""6T cell construction, strike scenarios, and hold-state behaviour."""

import numpy as np
import pytest

from repro.circuit import RectPulse, make_strike_time_grid, run_transient, solve_dc
from repro.errors import ConfigError
from repro.sram import (
    ALL_COMBOS,
    ROLES,
    SENSITIVE_ROLES,
    SramCellDesign,
    StrikeScenario,
    combo_label,
    combo_of_charges,
)


@pytest.fixture(scope="module")
def design():
    return SramCellDesign()


class TestCellDesign:
    def test_roles_order_fixed(self):
        assert ROLES == ("pu_l", "pd_l", "pg_l", "pu_r", "pd_r", "pg_r")

    def test_three_sensitive_devices(self):
        # the paper's Fig. 5(a): exactly three red-bold transistors
        assert len(SENSITIVE_ROLES) == 3

    def test_sensitive_identities(self):
        # I1: off pull-down at the '1' node; I2: off pull-up at the '0'
        # node; I3: off pass-gate at the '0' node
        assert SENSITIVE_ROLES == ("pd_l", "pu_r", "pg_r")

    def test_nfins(self, design):
        assert design.nfins() == [1] * 6

    def test_model_assignment(self, design):
        assert design.model_of("pu_l").polarity == -1
        assert design.model_of("pd_r").polarity == 1
        assert design.model_of("pg_l").polarity == 1

    def test_unknown_role(self, design):
        with pytest.raises(ConfigError):
            design.nfin_of("px_q")

    def test_invalid_fin_count(self):
        with pytest.raises(ConfigError):
            SramCellDesign(nfin_pd=0)


class TestCellNetlist:
    def test_node_set(self, design):
        circuit = design.build_circuit(0.8)
        assert {"vdd", "q", "qb", "bl", "blb", "wl", "0"} <= set(
            circuit.node_names
        )

    def test_six_transistors_two_caps(self, design):
        circuit = design.build_circuit(0.8)
        from repro.circuit import Capacitor, FinFET

        fets = [e for e in circuit.elements if isinstance(e, FinFET)]
        caps = [e for e in circuit.elements if isinstance(e, Capacitor)]
        assert len(fets) == 6
        assert len(caps) == 2

    def test_vth_shift_vector_applied(self, design):
        shifts = [0.01, -0.02, 0.0, 0.03, 0.0, 0.0]
        circuit = design.build_circuit(0.8, vth_shifts_v=shifts)
        assert circuit.element("pu_l").vth_shift_v == pytest.approx(0.01)
        assert circuit.element("pd_l").vth_shift_v == pytest.approx(-0.02)
        assert circuit.element("pu_r").vth_shift_v == pytest.approx(0.03)

    def test_bad_shift_length(self, design):
        with pytest.raises(ConfigError):
            design.build_circuit(0.8, vth_shifts_v=[0.0, 0.0])

    def test_strike_sources_wired(self, design):
        wave = RectPulse.from_charge(1e-16, 1e-14, delay_s=1e-12)
        circuit = design.build_circuit(0.8, strike_waveforms={0: wave, 2: wave})
        names = [e.name for e in circuit.elements]
        assert "istrike1" in names
        assert "istrike3" in names

    def test_hold_state_dc(self, design):
        circuit = design.build_circuit(0.8)
        sol = solve_dc(circuit, initial_guess=design.hold_state_guess(0.8))
        assert sol.voltage("q") > 0.75
        assert sol.voltage("qb") < 0.05


class TestStrikeFlipsCellInSpice:
    """Full MNA-engine strike: the ground truth the fast model mirrors."""

    @pytest.mark.parametrize("strike_index", [0, 1, 2])
    def test_large_charge_flips(self, design, strike_index):
        vdd = 0.8
        charge = 1.0e-15  # 1 fC: far beyond Qcrit
        tau = design.tech.transit_time_s(vdd)
        wave = RectPulse.from_charge(charge, tau, delay_s=1e-12)
        circuit = design.build_circuit(vdd, strike_waveforms={strike_index: wave})
        times = make_strike_time_grid(1e-12, tau, 5e-11)
        result = run_transient(
            circuit, times, initial_conditions=design.hold_state_guess(vdd)
        )
        assert result.final_voltage("q") < result.final_voltage("qb")

    def test_small_charge_does_not_flip(self, design):
        vdd = 0.8
        charge = 5.0e-18  # 31 electrons: far below Qcrit
        tau = design.tech.transit_time_s(vdd)
        wave = RectPulse.from_charge(charge, tau, delay_s=1e-12)
        circuit = design.build_circuit(vdd, strike_waveforms={0: wave})
        times = make_strike_time_grid(1e-12, tau, 5e-11)
        result = run_transient(
            circuit, times, initial_conditions=design.hold_state_guess(vdd)
        )
        assert result.final_voltage("q") > result.final_voltage("qb")


class TestStrikeScenario:
    def test_combo_enumeration(self):
        assert len(ALL_COMBOS) == 7
        assert (0,) in ALL_COMBOS and (0, 1, 2) in ALL_COMBOS

    def test_combo_of_charges(self):
        assert combo_of_charges([1e-15, 0.0, 2e-15]) == (0, 2)
        assert combo_of_charges([0.0, 0.0, 0.0]) == ()

    def test_combo_label(self):
        assert combo_label((0, 2)) == "I1+I3"
        assert combo_label(()) == "none"

    def test_scenario_accessors(self):
        scenario = StrikeScenario(1e-15, 0.0, 2e-15)
        assert scenario.combo == (0, 2)
        assert scenario.total_charge_c == pytest.approx(3e-15)
        assert not scenario.is_empty()

    def test_from_charges_round_trip(self):
        scenario = StrikeScenario.from_charges([1e-15, 2e-15, 0.0])
        assert np.allclose(scenario.charges, [1e-15, 2e-15, 0.0])

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            StrikeScenario(-1e-15, 0.0, 0.0)
