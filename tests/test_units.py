"""Unit-conversion round trips and anchor values."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.constants import (
    ALPHA_REST_ENERGY_MEV,
    ALPHA_TO_PROTON_MASS_RATIO,
    ELEMENTARY_CHARGE_C,
    PROTON_REST_ENERGY_MEV,
    SILICON_PAIR_ENERGY_EV,
)

positive_floats = st.floats(
    min_value=1e-12, max_value=1e12, allow_nan=False, allow_infinity=False
)


class TestEnergyConversions:
    def test_mev_to_ev_anchor(self):
        assert units.mev_to_ev(1.0) == 1.0e6

    def test_kev_anchor(self):
        assert units.mev_to_kev(2.5) == 2500.0

    @given(positive_floats)
    def test_ev_round_trip(self, value):
        assert units.ev_to_mev(units.mev_to_ev(value)) == pytest.approx(value)

    @given(positive_floats)
    def test_kev_round_trip(self, value):
        assert units.kev_to_mev(units.mev_to_kev(value)) == pytest.approx(value)


class TestLengthConversions:
    def test_nm_to_cm_anchor(self):
        assert units.nm_to_cm(1.0e7) == pytest.approx(1.0)

    def test_um_anchor(self):
        assert units.um_to_nm(1.0) == 1000.0

    @given(positive_floats)
    def test_nm_cm_round_trip(self, value):
        assert units.cm_to_nm(units.nm_to_cm(value)) == pytest.approx(value)

    @given(positive_floats)
    def test_area_round_trip(self, value):
        assert units.cm2_to_m2(units.m2_to_cm2(value)) == pytest.approx(value)


class TestStoppingConversions:
    def test_mass_to_linear(self):
        # 100 MeV cm^2/g in silicon (2.329 g/cm^3) = 232.9 MeV/cm
        assert units.mass_to_linear_stopping(100.0, 2.329) == pytest.approx(232.9)

    def test_linear_to_kev_per_nm(self):
        # 1 MeV/cm = 1e3 keV / 1e7 nm = 1e-4 keV/nm
        assert units.linear_stopping_to_kev_per_nm(1.0) == pytest.approx(1.0e-4)

    @given(positive_floats)
    def test_kev_per_nm_round_trip(self, value):
        forward = units.linear_stopping_to_kev_per_nm(value)
        assert units.kev_per_nm_to_mev_per_cm(forward) == pytest.approx(value)


class TestChargeAndTime:
    def test_fc_anchor(self):
        assert units.coulomb_to_fc(1.0e-15) == pytest.approx(1.0)

    @given(positive_floats)
    def test_fc_round_trip(self, value):
        assert units.fc_to_coulomb(units.coulomb_to_fc(value)) == pytest.approx(value)

    def test_time_helpers(self):
        assert units.ns_to_s(1.0) == 1e-9
        assert units.ps_to_s(1.0) == 1e-12
        assert units.fs_to_s(1.0) == 1e-15
        assert units.s_to_ns(1e-9) == pytest.approx(1.0)


class TestRates:
    def test_fit_anchor(self):
        # 1 failure/hour = 1e9 FIT
        per_second = units.per_hour_to_per_second(1.0)
        assert units.per_second_to_fit(per_second) == pytest.approx(1.0e9)

    @given(positive_floats)
    def test_fit_round_trip(self, value):
        assert units.fit_to_per_second(
            units.per_second_to_fit(value)
        ) == pytest.approx(value)


class TestConstants:
    def test_mass_ratio(self):
        assert ALPHA_TO_PROTON_MASS_RATIO == pytest.approx(
            ALPHA_REST_ENERGY_MEV / PROTON_REST_ENERGY_MEV
        )
        assert ALPHA_TO_PROTON_MASS_RATIO == pytest.approx(3.972, rel=1e-3)

    def test_elementary_charge(self):
        assert ELEMENTARY_CHARGE_C == pytest.approx(1.602e-19, rel=1e-3)

    def test_paper_pair_energy(self):
        # the paper's "3.6 eV per electron-hole pair"
        assert SILICON_PAIR_ENERGY_EV == 3.6
