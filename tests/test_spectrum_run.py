"""Continuous-spectrum array campaigns vs the binned eq. 8 flow."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.geometry import FinGeometry, SoiFinWorld
from repro.layout import SramArrayLayout
from repro.physics import ALPHA, AlphaEmissionSpectrum
from repro.ser import (
    ArraySerSimulator,
    fit_from_spectrum_run,
    integrate_fit,
)
from repro.sram import (
    CharacterizationConfig,
    SramCellDesign,
    characterize_cell,
)
from repro.transport import ElectronYieldLUT, TransportEngine


@pytest.fixture(scope="module")
def setup():
    design = SramCellDesign()
    table = characterize_cell(
        design,
        CharacterizationConfig(
            vdd_list=(0.7,),
            n_charge_points=17,
            n_samples=50,
            max_pair_points=4,
            max_triple_points=3,
        ),
    )
    fin = FinGeometry(
        design.tech.collection_length_nm,
        design.tech.fin.width_nm,
        design.tech.fin.height_nm,
    )
    lut = ElectronYieldLUT.build(
        ALPHA,
        np.logspace(np.log10(0.5), 1, 6),
        5000,
        np.random.default_rng(0),
        engine=TransportEngine(SoiFinWorld(fin=fin)),
    )
    simulator = ArraySerSimulator(
        SramArrayLayout(), table, yield_luts={"alpha": lut}
    )
    return simulator


class TestSampleEnergiesBand:
    def test_band_restriction(self):
        spectrum = AlphaEmissionSpectrum()
        rng = np.random.default_rng(1)
        energies = spectrum.sample_energies(
            2000, rng, e_min_mev=2.0, e_max_mev=6.0
        )
        assert np.all(energies >= 2.0)
        assert np.all(energies <= 6.0)


class TestLutVectorizedSampling:
    def test_matches_scalar_sampler_statistics(self, setup):
        lut = setup.yield_luts["alpha"]
        rng1 = np.random.default_rng(2)
        rng2 = np.random.default_rng(3)
        energy = 2.0
        scalar = lut.sample_pairs(energy, 20000, rng1)
        vector = lut.sample_pairs_many(np.full(20000, energy), rng2)
        assert np.mean(vector) == pytest.approx(np.mean(scalar), rel=0.05)
        assert np.std(vector) == pytest.approx(np.std(scalar), rel=0.1)

    def test_mixed_energies(self, setup):
        lut = setup.yield_luts["alpha"]
        rng = np.random.default_rng(4)
        energies = np.array([0.6, 2.0, 9.0] * 5000)
        samples = lut.sample_pairs_many(energies, rng)
        assert samples.shape == energies.shape
        # per-energy means follow the LUT means
        for e in (0.6, 2.0, 9.0):
            group = samples[energies == e]
            assert np.mean(group) == pytest.approx(lut.mean_at(e), rel=0.1)

    def test_nonpositive_energy_rejected(self, setup):
        lut = setup.yield_luts["alpha"]
        from repro.errors import LookupError_

        with pytest.raises(LookupError_):
            lut.sample_pairs_many(np.array([1.0, -1.0]), np.random.default_rng(0))


class TestSpectrumRun:
    def test_agrees_with_binned_integration(self, setup):
        """Continuous sampling and eq. 8 binning give the same FIT."""
        spectrum = AlphaEmissionSpectrum()
        vdd = 0.7
        n = 60000

        run = setup.run_spectrum(
            ALPHA, spectrum, vdd, n, np.random.default_rng(5),
            e_min_mev=0.5, e_max_mev=10.0,
        )
        continuous = fit_from_spectrum_run(
            spectrum, run, e_min_mev=0.5, e_max_mev=10.0
        )

        bins = spectrum.make_bins(6, 0.5, 10.0)
        binned_results = [
            setup.run(ALPHA, float(e), vdd, n // 6, np.random.default_rng(60 + i))
            for i, e in enumerate(bins.representative_mev)
        ]
        binned = integrate_fit("alpha", vdd, bins, binned_results)

        assert continuous.fit_total == pytest.approx(
            binned.fit_total, rel=0.35
        )
        assert continuous.fit_total > 0

    def test_result_bookkeeping(self, setup):
        spectrum = AlphaEmissionSpectrum()
        run = setup.run_spectrum(
            ALPHA, spectrum, 0.7, 5000, np.random.default_rng(6)
        )
        assert run.n_particles == 5000
        assert run.multiplicity_pmf is not None
        assert 0.0 <= run.pof_total <= 1.0

    def test_validation(self, setup):
        spectrum = AlphaEmissionSpectrum()
        with pytest.raises(ConfigError):
            setup.run_spectrum(ALPHA, spectrum, 0.7, 0, np.random.default_rng(0))
