"""End-to-end validation against an exactly solvable configuration.

A vertical (``beam:1.0``) mono-LET beam makes the whole chain
analytic: every launched ray is vertical, so it strikes a sensitive
fin iff its (x, y) falls inside the fin's footprint, the chord is
exactly the fin height, and the deposit is exactly ``LET x height``.
Hence

    POF_per_launch = (total sensitive footprint / launch area)
                     x POF_cell(LET x height x e/3.6eV)

with no Monte Carlo ingredient left except the uniform (x, y) sampling.
This pins down the geometry kernel, the charge conversion, the POF
lookup and the normalization in one shot.
"""

import numpy as np
import pytest

from repro.constants import ELEMENTARY_CHARGE_C, SILICON_PAIR_ENERGY_EV
from repro.layout import SramArrayLayout
from repro.ser import HeavyIonCampaign
from repro.sram import (
    CharacterizationConfig,
    SramCellDesign,
    characterize_cell,
)


@pytest.fixture(scope="module")
def design():
    return SramCellDesign()


@pytest.fixture(scope="module")
def table(design):
    return characterize_cell(
        design,
        CharacterizationConfig(
            vdd_list=(0.7,),
            n_charge_points=17,
            n_samples=60,
            max_pair_points=4,
            max_triple_points=3,
        ),
    )


@pytest.fixture(scope="module")
def layout():
    return SramArrayLayout()


def analytic_pof(layout, table, let_kev_per_nm, vdd, margin_nm):
    """The closed-form per-launch POF for a vertical beam."""
    x_range, y_range, _, launch_area_cm2 = layout.launch_window(margin_nm)
    window_nm2 = (x_range[1] - x_range[0]) * (y_range[1] - y_range[0])

    sensitive = layout.packed_boxes[layout.fin_strike >= 0]
    strikes = layout.fin_strike[layout.fin_strike >= 0]
    footprints = (sensitive[:, 3] - sensitive[:, 0]) * (
        sensitive[:, 4] - sensitive[:, 1]
    )

    height = layout.cell.fin.height_nm
    deposit_kev = let_kev_per_nm * height
    charge = deposit_kev * 1e3 / SILICON_PAIR_ENERGY_EV * ELEMENTARY_CHARGE_C

    pof = 0.0
    for footprint, strike in zip(footprints, strikes):
        charges = np.zeros((1, 3))
        charges[0, strike] = charge
        cell_pof = float(table.query(vdd, charges)[0])
        pof += (footprint / window_nm2) * cell_pof
    return pof


class TestVerticalBeamAnalytic:
    @pytest.mark.parametrize("let", [0.08, 0.2, 1.0])
    def test_mc_matches_closed_form(self, layout, table, let):
        campaign = HeavyIonCampaign(layout, table, margin_nm=100.0)
        rng = np.random.default_rng(42)
        point = campaign.run_let(let, 0.7, 120000, rng, "beam:1.0")
        expected = analytic_pof(layout, table, let, 0.7, 100.0)
        if expected == 0.0:
            assert point.pof_per_particle == 0.0
        else:
            assert point.pof_per_particle == pytest.approx(
                expected, rel=0.08
            )

    def test_saturated_cross_section_equals_footprint(self, layout, table):
        """Far above threshold, sigma_bit = sensitive footprint per bit."""
        campaign = HeavyIonCampaign(layout, table, margin_nm=100.0)
        rng = np.random.default_rng(43)
        point = campaign.run_let(5.0, 0.7, 120000, rng, "beam:1.0")

        sensitive = layout.packed_boxes[layout.fin_strike >= 0]
        footprint_nm2 = float(
            np.sum(
                (sensitive[:, 3] - sensitive[:, 0])
                * (sensitive[:, 4] - sensitive[:, 1])
            )
        )
        expected_cm2_per_bit = footprint_nm2 * 1e-14 / layout.n_cells
        assert point.cross_section_cm2_per_bit == pytest.approx(
            expected_cm2_per_bit, rel=0.06
        )

    def test_sub_threshold_is_exactly_zero(self, layout, table):
        """LET x height far below Qcrit: not a single upset."""
        campaign = HeavyIonCampaign(layout, table, margin_nm=100.0)
        rng = np.random.default_rng(44)
        point = campaign.run_let(0.01, 0.7, 50000, rng, "beam:1.0")
        assert point.pof_per_particle == 0.0
