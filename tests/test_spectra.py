"""Flux spectra (paper Fig. 2): normalization, binning, sampling."""

import numpy as np
import pytest

from repro.errors import ConfigError, PhysicsError
from repro.physics import (
    ALPHA_EMISSION_RATE_PER_CM2_H,
    AlphaEmissionSpectrum,
    SeaLevelProtonSpectrum,
    spectrum_for,
)


class TestProtonSpectrum:
    def test_intensity_at_anchor(self):
        spectrum = SeaLevelProtonSpectrum()
        assert spectrum.intensity(1.0) == pytest.approx(1.0e-2)
        assert spectrum.intensity(1.0e7) == pytest.approx(1.0e-14, rel=1e-6)

    def test_monotone_decreasing(self):
        spectrum = SeaLevelProtonSpectrum()
        energies = np.logspace(-1, 7, 200)
        intensity = spectrum.intensity(energies)
        assert np.all(np.diff(intensity) <= 0)

    def test_out_of_range_zero(self):
        spectrum = SeaLevelProtonSpectrum()
        assert spectrum.intensity(1.0e8) == 0.0

    def test_flux_includes_hemisphere_factor(self):
        spectrum = SeaLevelProtonSpectrum()
        # flux = pi * intensity * 1e-4 (per-sr -> per-surface, m^2 -> cm^2)
        assert spectrum.differential_flux(10.0) == pytest.approx(
            np.pi * 1e-4 * spectrum.intensity(10.0)
        )

    def test_integral_flux_positive_and_ordered(self):
        spectrum = SeaLevelProtonSpectrum()
        low = spectrum.integral_flux(1.0, 10.0)
        high = spectrum.integral_flux(1.0e4, 1.0e5)
        assert low > high > 0.0

    def test_scale_parameter(self):
        doubled = SeaLevelProtonSpectrum(scale=2.0)
        base = SeaLevelProtonSpectrum()
        assert doubled.integral_flux(1, 100) == pytest.approx(
            2.0 * base.integral_flux(1, 100)
        )

    def test_negative_energy_rejected(self):
        with pytest.raises(PhysicsError):
            SeaLevelProtonSpectrum().intensity(-1.0)


class TestAlphaSpectrum:
    def test_total_rate_matches_paper(self):
        # paper: 0.001 alpha / (cm^2 h) -> 2.78e-7 / (cm^2 s)
        spectrum = AlphaEmissionSpectrum()
        total = spectrum.integral_flux(0.1, 10.0)
        expected = ALPHA_EMISSION_RATE_PER_CM2_H / 3600.0
        assert total == pytest.approx(expected, rel=0.01)

    def test_support_below_10mev(self):
        # paper: U/Th alphas carry < 10 MeV
        spectrum = AlphaEmissionSpectrum()
        assert np.all(spectrum.differential_flux(np.array([11.0, 20.0])) == 0.0)

    def test_lines_visible(self):
        # the 5.49 MeV line region should exceed the 3 MeV valley
        spectrum = AlphaEmissionSpectrum()
        assert spectrum.differential_flux(5.49) > spectrum.differential_flux(3.0)

    def test_custom_rate(self):
        spectrum = AlphaEmissionSpectrum(rate_per_cm2_h=0.002)
        total = spectrum.integral_flux(0.1, 10.0)
        assert total == pytest.approx(0.002 / 3600.0, rel=0.01)

    def test_invalid_continuum_fraction(self):
        with pytest.raises(ConfigError):
            AlphaEmissionSpectrum(continuum_fraction=1.5)


class TestBinning:
    @pytest.mark.parametrize("spectrum_name", ["proton", "alpha"])
    def test_bins_partition_flux(self, spectrum_name):
        spectrum = spectrum_for(spectrum_name)
        bins = spectrum.make_bins(12)
        total = spectrum.integral_flux(spectrum.e_min_mev, spectrum.e_max_mev)
        assert bins.total_flux_per_cm2_s == pytest.approx(total, rel=0.02)

    def test_representative_inside_bins(self):
        spectrum = SeaLevelProtonSpectrum()
        bins = spectrum.make_bins(8, 1.0, 100.0)
        for i in range(len(bins)):
            assert bins.edges_mev[i] <= bins.representative_mev[i] <= bins.edges_mev[i + 1]

    def test_invalid_bin_count(self):
        with pytest.raises(ConfigError):
            SeaLevelProtonSpectrum().make_bins(0)


class TestSampling:
    def test_samples_within_range(self):
        spectrum = AlphaEmissionSpectrum()
        rng = np.random.default_rng(0)
        energies = spectrum.sample_energies(5000, rng)
        assert np.all(energies >= spectrum.e_min_mev)
        assert np.all(energies <= spectrum.e_max_mev)

    def test_alpha_samples_cluster_in_line_region(self):
        spectrum = AlphaEmissionSpectrum()
        rng = np.random.default_rng(1)
        energies = spectrum.sample_energies(5000, rng)
        assert 3.0 < np.median(energies) < 8.0

    def test_proton_samples_weighted_low(self):
        spectrum = SeaLevelProtonSpectrum()
        rng = np.random.default_rng(2)
        energies = spectrum.sample_energies(5000, rng)
        # flux is dominated by the lowest decades
        assert np.median(energies) < 100.0


class TestFactory:
    def test_factory_types(self):
        assert isinstance(spectrum_for("proton"), SeaLevelProtonSpectrum)
        assert isinstance(spectrum_for("alpha"), AlphaEmissionSpectrum)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            spectrum_for("muon")


class TestNeutronFactory:
    def test_neutron_registered(self):
        from repro.physics.neutron import SeaLevelNeutronSpectrum

        assert isinstance(spectrum_for("neutron"), SeaLevelNeutronSpectrum)
