"""Failure-multiplicity (cluster size) analysis."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.ser.pof import combine, multiplicity_pmf

pof_rows = st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=6)


def brute_pmf(pofs, max_k):
    pmf = np.zeros(max_k + 1)
    n = len(pofs)
    for outcome in itertools.product([0, 1], repeat=n):
        prob = 1.0
        for bit, p in zip(outcome, pofs):
            prob *= p if bit else (1.0 - p)
        k = min(sum(outcome), max_k)
        pmf[k] += prob
    return pmf


class TestMultiplicityPmf:
    @given(pof_rows)
    @settings(max_examples=100, deadline=None)
    def test_matches_enumeration(self, pofs):
        pmf = multiplicity_pmf(np.array([pofs]), max_k=4)[0]
        expected = brute_pmf(pofs, 4)
        assert np.allclose(pmf, expected, atol=1e-9)

    @given(pof_rows)
    @settings(max_examples=80, deadline=None)
    def test_consistent_with_eqs_4_to_6(self, pofs):
        row = np.array([pofs])
        pmf = multiplicity_pmf(row, max_k=len(pofs) + 1)[0]
        total, seu, mbu = combine(row)
        assert np.sum(pmf) == pytest.approx(1.0, abs=1e-9)
        assert 1.0 - pmf[0] == pytest.approx(total[0], abs=1e-9)
        assert pmf[1] == pytest.approx(seu[0], abs=1e-9)
        assert np.sum(pmf[2:]) == pytest.approx(mbu[0], abs=1e-9)

    def test_overflow_bin_absorbs(self):
        row = np.ones((1, 5))  # five certain failures
        pmf = multiplicity_pmf(row, max_k=3)[0]
        assert pmf[3] == pytest.approx(1.0)
        assert np.sum(pmf[:3]) == pytest.approx(0.0, abs=1e-12)

    def test_invalid_max_k(self):
        with pytest.raises(ConfigError):
            multiplicity_pmf(np.array([[0.5]]), max_k=0)


class TestSimulatorMultiplicity:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.layout import SramArrayLayout
        from repro.physics import ALPHA
        from repro.ser import ArraySerSimulator
        from repro.sram import (
            CharacterizationConfig,
            SramCellDesign,
            characterize_cell,
        )
        from repro.transport import ElectronYieldLUT, TransportEngine
        from repro.geometry import FinGeometry, SoiFinWorld

        design = SramCellDesign()
        table = characterize_cell(
            design,
            CharacterizationConfig(
                vdd_list=(0.7,),
                n_charge_points=15,
                n_samples=40,
                max_pair_points=4,
                max_triple_points=3,
            ),
        )
        fin = FinGeometry(
            design.tech.collection_length_nm,
            design.tech.fin.width_nm,
            design.tech.fin.height_nm,
        )
        engine = TransportEngine(SoiFinWorld(fin=fin))
        lut = ElectronYieldLUT.build(
            ALPHA, np.logspace(-1, 2, 5), 4000, np.random.default_rng(0),
            engine=engine,
        )
        sim = ArraySerSimulator(
            SramArrayLayout(), table, yield_luts={"alpha": lut}
        )
        return sim.run(ALPHA, 2.0, 0.7, 50000, np.random.default_rng(1))

    def test_pmf_attached(self, result):
        assert result.multiplicity_pmf is not None
        assert len(result.multiplicity_pmf) == 9

    def test_pmf_consistent_with_pofs(self, result):
        pmf = result.multiplicity_pmf
        assert np.sum(pmf[1:]) == pytest.approx(result.pof_total, rel=1e-9)
        assert pmf[1] == pytest.approx(result.pof_seu, rel=1e-9)
        assert np.sum(pmf[2:]) == pytest.approx(result.pof_mbu, rel=1e-9)

    def test_cluster_sizes_decay(self, result):
        pmf = result.multiplicity_pmf
        # single-cell upsets dominate; probability decays with k
        assert pmf[1] > pmf[2] > pmf[3]

    def test_mean_cluster_size(self, result):
        mean = result.mean_cluster_size()
        # slightly above 1: most upsets are single-cell
        assert 1.0 < mean < 1.5
