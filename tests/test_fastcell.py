"""Fast vectorized cell model, including agreement with the MNA engine."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sram import FastCell, SramCellDesign
from repro.sram.qcrit import (
    critical_charge_samples_c,
    critical_charge_vs_vdd,
    nominal_critical_charge_c,
)


@pytest.fixture(scope="module")
def design():
    return SramCellDesign()


@pytest.fixture(scope="module")
def cell(design):
    return FastCell(design, 0.8)


ZERO_SHIFTS = np.zeros((1, 6))


class TestSettle:
    def test_settles_to_hold_state(self, cell):
        vq, vqb = cell.settle(ZERO_SHIFTS)
        assert vq[0] == pytest.approx(0.8, abs=0.02)
        assert vqb[0] == pytest.approx(0.0, abs=0.02)

    def test_batch_settle(self, cell):
        rng = np.random.default_rng(0)
        shifts = rng.standard_normal((50, 6)) * 0.03
        vq, vqb = cell.settle(shifts)
        assert vq.shape == (50,)
        assert np.all(vq > 0.7)
        assert np.all(vqb < 0.1)


class TestImpulseStrikes:
    def test_zero_charge_never_flips(self, cell):
        flipped = cell.run_impulse(np.zeros((4, 3)), np.zeros((4, 6)))
        assert not np.any(flipped)

    def test_huge_charge_always_flips(self, cell):
        charges = np.zeros((3, 3))
        charges[:, 0] = 5e-15
        flipped = cell.run_impulse(charges, np.zeros((3, 6)))
        assert np.all(flipped)

    @pytest.mark.parametrize("strike_index", [0, 1, 2])
    def test_each_strike_path_can_flip(self, cell, strike_index):
        charges = np.zeros((1, 3))
        charges[0, strike_index] = 5e-15
        assert cell.run_impulse(charges, ZERO_SHIFTS)[0]

    def test_combined_strikes_flip_below_single_threshold(self, cell):
        qcrit = nominal_critical_charge_c(cell.design, 0.8)
        # 60% of Qcrit on each of I1 and I2 together must flip
        charges = np.array([[0.6 * qcrit, 0.6 * qcrit, 0.0]])
        assert cell.run_impulse(charges, ZERO_SHIFTS)[0]
        # but 60% on I1 alone must not
        charges_single = np.array([[0.6 * qcrit, 0.0, 0.0]])
        assert not cell.run_impulse(charges_single, ZERO_SHIFTS)[0]

    def test_monotone_in_charge(self, cell):
        qcrit = nominal_critical_charge_c(cell.design, 0.8)
        grid = np.linspace(0.2, 2.0, 16) * qcrit
        charges = np.zeros((16, 3))
        charges[:, 0] = grid
        flipped = cell.run_impulse(charges, np.zeros((16, 6)))
        # once it flips it stays flipped at larger charges
        first = np.argmax(flipped)
        assert np.all(flipped[first:])

    def test_shift_broadcasting(self, cell):
        charges = np.zeros((5, 3))
        flipped = cell.run_impulse(charges, np.zeros((1, 6)))
        assert flipped.shape == (5,)

    def test_bad_shapes_rejected(self, cell):
        with pytest.raises(ConfigError):
            cell.run_impulse(np.zeros((2, 2)), np.zeros((2, 6)))
        with pytest.raises(ConfigError):
            cell.run_impulse(np.zeros((2, 3)), np.zeros((3, 6)))


class TestPulseMode:
    def test_pulse_matches_impulse_at_fs_width(self, cell):
        """The paper's charge-equivalence: a fs pulse acts as an impulse."""
        qcrit = nominal_critical_charge_c(cell.design, 0.8)
        for factor in (0.8, 1.3):
            charges = np.array([[factor * qcrit, 0.0, 0.0]])
            impulse = cell.run_impulse(charges, ZERO_SHIFTS)[0]
            pulse = cell.run_pulse(
                charges, ZERO_SHIFTS, pulse_width_s=17e-15
            )[0]
            assert impulse == pulse

    def test_invalid_width(self, cell):
        with pytest.raises(ConfigError):
            cell.run_pulse(np.zeros((1, 3)), ZERO_SHIFTS, pulse_width_s=0.0)


class TestCriticalCharge:
    def test_nominal_in_plausible_band(self, design):
        qcrit = nominal_critical_charge_c(design, 0.8)
        # advanced-node SRAM: Qcrit of order 0.05-1 fC
        assert 2e-17 < qcrit < 1e-15

    def test_increases_with_vdd(self, design):
        qcrits = critical_charge_vs_vdd(design, [0.7, 0.9, 1.1])
        assert np.all(np.diff(qcrits) > 0)

    def test_distribution_spread(self, design):
        rng = np.random.default_rng(5)
        samples = critical_charge_samples_c(design, 0.8, 100, rng)
        assert np.std(samples) > 0.0
        nominal = nominal_critical_charge_c(design, 0.8)
        assert np.mean(samples) == pytest.approx(nominal, rel=0.15)

    def test_direction_validation(self, cell):
        with pytest.raises(ConfigError):
            cell.critical_charge_c(np.array([0.0, 0.0, 0.0]), ZERO_SHIFTS)


def _variation_batch(n=24, sigma=0.05, seed=7):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 6)) * sigma


def _boundary_charges(design, vdd, n=24, lo=0.3, hi=2.5, seed=9):
    """Charge batch straddling the flip boundary, one row per sample."""
    qcrit = nominal_critical_charge_c(design, vdd)
    rng = np.random.default_rng(seed)
    charges = np.zeros((n, 3))
    charges[:, 0] = qcrit * np.exp(
        rng.uniform(np.log(lo), np.log(hi), size=n)
    )
    return charges


class TestFusedKernel:
    """The fused two-call kernel must be bit-identical to the exact
    per-role reference -- the model is elementwise, so stacking rows
    can only change the Python-call count."""

    @pytest.fixture(scope="class")
    def pair(self, design):
        return (
            FastCell(design, 0.8, kernel="exact"),
            FastCell(design, 0.8, kernel="fused"),
        )

    def test_settle_bit_identical(self, pair):
        exact, fused = pair
        shifts = _variation_batch()
        vq_e, vqb_e = exact.settle(shifts)
        vq_f, vqb_f = fused.settle(shifts)
        assert np.array_equal(vq_e, vq_f)
        assert np.array_equal(vqb_e, vqb_f)

    def test_impulse_bit_identical(self, pair, design):
        exact, fused = pair
        shifts = _variation_batch()
        charges = _boundary_charges(design, 0.8)
        assert np.array_equal(
            exact.run_impulse(charges, shifts),
            fused.run_impulse(charges, shifts),
        )

    def test_pulse_bit_identical(self, pair, design):
        exact, fused = pair
        shifts = _variation_batch(n=8)
        charges = _boundary_charges(design, 0.8, n=8)
        for width in (17e-15, 2e-12):
            assert np.array_equal(
                exact.run_pulse(charges, shifts, pulse_width_s=width),
                fused.run_pulse(charges, shifts, pulse_width_s=width),
            )

    def test_critical_charge_bit_identical(self, pair):
        exact, fused = pair
        shifts = _variation_batch(n=12)
        direction = np.array([1.0, 0.0, 0.0])
        assert np.array_equal(
            exact.critical_charge_c(direction, shifts),
            fused.critical_charge_c(direction, shifts),
        )


class TestTabulatedKernel:
    """The bilinear I-V backend is approximate; its contract is the
    documented accuracy budget, not bit-identity."""

    def test_critical_charge_within_budget(self, design):
        exact = FastCell(design, 0.8, kernel="exact")
        tab = FastCell(design, 0.8, kernel="tabulated")
        shifts = _variation_batch(n=12)
        direction = np.array([1.0, 0.0, 0.0])
        q_e = exact.critical_charge_c(direction, shifts)
        q_t = tab.critical_charge_c(direction, shifts)
        # measured boundary shift at the default table resolution is
        # ~1.5e-4 in log charge; 5e-3 relative is a comfortable ceiling
        np.testing.assert_allclose(q_t, q_e, rtol=5e-3)

    def test_flips_agree_away_from_boundary(self, design):
        exact = FastCell(design, 0.8, kernel="exact")
        tab = FastCell(design, 0.8, kernel="tabulated")
        shifts = _variation_batch(n=16)
        qcrit = nominal_critical_charge_c(design, 0.8)
        for factor in (0.5, 2.0):
            charges = np.zeros((16, 3))
            charges[:, 0] = factor * qcrit
            assert np.array_equal(
                exact.run_impulse(charges, shifts),
                tab.run_impulse(charges, shifts),
            )

    def test_tables_built_once_and_shared(self, design):
        from repro.sram import IVTables

        tables = IVTables(design, 0.8, shift_pad_v=0.3)
        cell = FastCell(design, 0.8, kernel="tabulated", tables=tables)
        cell.run_impulse(np.zeros((2, 3)), np.zeros((2, 6)))
        assert cell._tables is tables  # covered batch: no rebuild

    def test_tables_rebuilt_when_shifts_exceed_pad(self, design):
        from repro.sram import IVTables

        tables = IVTables(design, 0.8, shift_pad_v=0.01)
        cell = FastCell(design, 0.8, kernel="tabulated", tables=tables)
        big = np.full((2, 6), 0.2)
        cell.run_impulse(np.zeros((2, 3)), big)
        assert cell._tables is not tables
        assert cell._tables.covers(0.2)

    def test_tables_must_match_vdd(self, design):
        from repro.sram import IVTables

        tables = IVTables(design, 0.8)
        with pytest.raises(ConfigError):
            FastCell(design, 0.9, kernel="tabulated", tables=tables)

    def test_tables_require_tabulated_kernel(self, design):
        from repro.sram import IVTables

        tables = IVTables(design, 0.8)
        with pytest.raises(ConfigError):
            FastCell(design, 0.8, kernel="fused", tables=tables)

    def test_unknown_kernel_rejected(self, design):
        with pytest.raises(ConfigError):
            FastCell(design, 0.8, kernel="magic")

    def test_table_validation(self, design):
        from repro.sram import IVTables

        with pytest.raises(ConfigError):
            IVTables(design, -0.8)
        with pytest.raises(ConfigError):
            IVTables(design, 0.8, points=4)
        with pytest.raises(ConfigError):
            IVTables(design, 0.8, shift_pad_v=-0.1)

    def test_pickle_round_trip(self, design):
        import pickle

        from repro.sram import IVTables

        tables = IVTables(design, 0.8, points=65)
        clone = pickle.loads(pickle.dumps(tables))
        u = np.linspace(-0.2, 1.0, 7)
        w = np.stack([u, u * 0.5, u - 0.1])
        assert np.array_equal(
            tables.currents_stacked(u, w), clone.currents_stacked(u, w)
        )


class TestEarlyExit:
    """Freezing latched trajectories must not change any outcome."""

    def test_impulse_matches_full_horizon(self, design):
        full = FastCell(design, 0.8, kernel="fused")
        ee = FastCell(design, 0.8, kernel="fused", early_exit=True)
        shifts = _variation_batch(n=48)
        charges = _boundary_charges(design, 0.8, n=48)
        assert np.array_equal(
            full.run_impulse(charges, shifts),
            ee.run_impulse(charges, shifts),
        )

    def test_pulse_matches_full_horizon(self, design):
        full = FastCell(design, 0.8, kernel="fused")
        ee = FastCell(design, 0.8, kernel="fused", early_exit=True)
        shifts = _variation_batch(n=16)
        charges = _boundary_charges(design, 0.8, n=16)
        assert np.array_equal(
            full.run_pulse(charges, shifts, pulse_width_s=2e-12),
            ee.run_pulse(charges, shifts, pulse_width_s=2e-12),
        )

    def test_critical_charge_matches_full_horizon(self, design):
        full = FastCell(design, 0.8, kernel="fused")
        ee = FastCell(design, 0.8, kernel="fused", early_exit=True)
        shifts = _variation_batch(n=12)
        direction = np.array([0.0, 1.0, 0.0])
        assert np.array_equal(
            full.critical_charge_c(direction, shifts),
            ee.critical_charge_c(direction, shifts),
        )

    def test_explicit_margin_matches_full_horizon(self, design):
        full = FastCell(design, 0.8, kernel="fused")
        ee = FastCell(
            design, 0.8, kernel="fused", early_exit=True,
            early_exit_margin_v=0.55, early_exit_check_every=4,
        )
        shifts = _variation_batch(n=32)
        charges = _boundary_charges(design, 0.8, n=32)
        assert np.array_equal(
            full.run_impulse(charges, shifts),
            ee.run_impulse(charges, shifts),
        )

    def test_validation(self, design):
        with pytest.raises(ConfigError):
            FastCell(design, 0.8, early_exit=True, early_exit_margin_v=0.0)
        with pytest.raises(ConfigError):
            FastCell(design, 0.8, early_exit=True, early_exit_check_every=0)

    def test_actually_freezes(self, design):
        """Decisive charges must be frozen before the full horizon (the
        point of the optimization); verified through the metrics."""
        from repro.obs.registry import disable_metrics, enable_metrics

        registry = enable_metrics(fresh=True)
        try:
            ee = FastCell(design, 0.8, kernel="fused", early_exit=True)
            qcrit = nominal_critical_charge_c(design, 0.8)
            charges = np.zeros((8, 3))
            charges[:, 0] = np.linspace(0.1, 4.0, 8) * qcrit
            ee.run_impulse(charges, np.zeros((8, 6)))
            frozen = registry.counter(
                "characterize.kernel.early_exit.frozen"
            ).value
            saved = registry.counter(
                "characterize.kernel.early_exit.steps_saved"
            ).value
            assert frozen > 0
            assert saved > 0
        finally:
            disable_metrics()


class TestAgreementWithMnaEngine:
    """The fast model and the full SPICE-substitute must agree on the
    flip boundary -- they share the same device equations."""

    def test_qcrit_brackets_mna_flip(self, design):
        from repro.circuit import RectPulse, make_strike_time_grid, run_transient

        vdd = 0.8
        qcrit = nominal_critical_charge_c(design, vdd)
        tau = design.tech.transit_time_s(vdd)

        def mna_flips(charge):
            wave = RectPulse.from_charge(charge, tau, delay_s=1e-12)
            circuit = design.build_circuit(vdd, strike_waveforms={0: wave})
            times = make_strike_time_grid(1e-12, tau, 6e-11)
            result = run_transient(
                circuit, times, initial_conditions=design.hold_state_guess(vdd)
            )
            return result.final_voltage("q") < result.final_voltage("qb")

        # 25% margins around the fast model's Qcrit must agree
        assert not mna_flips(0.75 * qcrit)
        assert mna_flips(1.25 * qcrit)
