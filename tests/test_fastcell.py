"""Fast vectorized cell model, including agreement with the MNA engine."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sram import FastCell, SramCellDesign
from repro.sram.qcrit import (
    critical_charge_samples_c,
    critical_charge_vs_vdd,
    nominal_critical_charge_c,
)


@pytest.fixture(scope="module")
def design():
    return SramCellDesign()


@pytest.fixture(scope="module")
def cell(design):
    return FastCell(design, 0.8)


ZERO_SHIFTS = np.zeros((1, 6))


class TestSettle:
    def test_settles_to_hold_state(self, cell):
        vq, vqb = cell.settle(ZERO_SHIFTS)
        assert vq[0] == pytest.approx(0.8, abs=0.02)
        assert vqb[0] == pytest.approx(0.0, abs=0.02)

    def test_batch_settle(self, cell):
        rng = np.random.default_rng(0)
        shifts = rng.standard_normal((50, 6)) * 0.03
        vq, vqb = cell.settle(shifts)
        assert vq.shape == (50,)
        assert np.all(vq > 0.7)
        assert np.all(vqb < 0.1)


class TestImpulseStrikes:
    def test_zero_charge_never_flips(self, cell):
        flipped = cell.run_impulse(np.zeros((4, 3)), np.zeros((4, 6)))
        assert not np.any(flipped)

    def test_huge_charge_always_flips(self, cell):
        charges = np.zeros((3, 3))
        charges[:, 0] = 5e-15
        flipped = cell.run_impulse(charges, np.zeros((3, 6)))
        assert np.all(flipped)

    @pytest.mark.parametrize("strike_index", [0, 1, 2])
    def test_each_strike_path_can_flip(self, cell, strike_index):
        charges = np.zeros((1, 3))
        charges[0, strike_index] = 5e-15
        assert cell.run_impulse(charges, ZERO_SHIFTS)[0]

    def test_combined_strikes_flip_below_single_threshold(self, cell):
        qcrit = nominal_critical_charge_c(cell.design, 0.8)
        # 60% of Qcrit on each of I1 and I2 together must flip
        charges = np.array([[0.6 * qcrit, 0.6 * qcrit, 0.0]])
        assert cell.run_impulse(charges, ZERO_SHIFTS)[0]
        # but 60% on I1 alone must not
        charges_single = np.array([[0.6 * qcrit, 0.0, 0.0]])
        assert not cell.run_impulse(charges_single, ZERO_SHIFTS)[0]

    def test_monotone_in_charge(self, cell):
        qcrit = nominal_critical_charge_c(cell.design, 0.8)
        grid = np.linspace(0.2, 2.0, 16) * qcrit
        charges = np.zeros((16, 3))
        charges[:, 0] = grid
        flipped = cell.run_impulse(charges, np.zeros((16, 6)))
        # once it flips it stays flipped at larger charges
        first = np.argmax(flipped)
        assert np.all(flipped[first:])

    def test_shift_broadcasting(self, cell):
        charges = np.zeros((5, 3))
        flipped = cell.run_impulse(charges, np.zeros((1, 6)))
        assert flipped.shape == (5,)

    def test_bad_shapes_rejected(self, cell):
        with pytest.raises(ConfigError):
            cell.run_impulse(np.zeros((2, 2)), np.zeros((2, 6)))
        with pytest.raises(ConfigError):
            cell.run_impulse(np.zeros((2, 3)), np.zeros((3, 6)))


class TestPulseMode:
    def test_pulse_matches_impulse_at_fs_width(self, cell):
        """The paper's charge-equivalence: a fs pulse acts as an impulse."""
        qcrit = nominal_critical_charge_c(cell.design, 0.8)
        for factor in (0.8, 1.3):
            charges = np.array([[factor * qcrit, 0.0, 0.0]])
            impulse = cell.run_impulse(charges, ZERO_SHIFTS)[0]
            pulse = cell.run_pulse(
                charges, ZERO_SHIFTS, pulse_width_s=17e-15
            )[0]
            assert impulse == pulse

    def test_invalid_width(self, cell):
        with pytest.raises(ConfigError):
            cell.run_pulse(np.zeros((1, 3)), ZERO_SHIFTS, pulse_width_s=0.0)


class TestCriticalCharge:
    def test_nominal_in_plausible_band(self, design):
        qcrit = nominal_critical_charge_c(design, 0.8)
        # advanced-node SRAM: Qcrit of order 0.05-1 fC
        assert 2e-17 < qcrit < 1e-15

    def test_increases_with_vdd(self, design):
        qcrits = critical_charge_vs_vdd(design, [0.7, 0.9, 1.1])
        assert np.all(np.diff(qcrits) > 0)

    def test_distribution_spread(self, design):
        rng = np.random.default_rng(5)
        samples = critical_charge_samples_c(design, 0.8, 100, rng)
        assert np.std(samples) > 0.0
        nominal = nominal_critical_charge_c(design, 0.8)
        assert np.mean(samples) == pytest.approx(nominal, rel=0.15)

    def test_direction_validation(self, cell):
        with pytest.raises(ConfigError):
            cell.critical_charge_c(np.array([0.0, 0.0, 0.0]), ZERO_SHIFTS)


class TestAgreementWithMnaEngine:
    """The fast model and the full SPICE-substitute must agree on the
    flip boundary -- they share the same device equations."""

    def test_qcrit_brackets_mna_flip(self, design):
        from repro.circuit import RectPulse, make_strike_time_grid, run_transient

        vdd = 0.8
        qcrit = nominal_critical_charge_c(design, vdd)
        tau = design.tech.transit_time_s(vdd)

        def mna_flips(charge):
            wave = RectPulse.from_charge(charge, tau, delay_s=1e-12)
            circuit = design.build_circuit(vdd, strike_waveforms={0: wave})
            times = make_strike_time_grid(1e-12, tau, 6e-11)
            result = run_transient(
                circuit, times, initial_conditions=design.hold_state_guess(vdd)
            )
            return result.final_voltage("q") < result.final_voltage("qb")

        # 25% margins around the fast model's Qcrit must agree
        assert not mna_flips(0.75 * qcrit)
        assert mna_flips(1.25 * qcrit)
