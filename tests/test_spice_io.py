"""SPICE netlist interchange: numbers, round trips, dialect parsing."""

import numpy as np
import pytest

from repro.circuit import Circuit, RectPulse, solve_dc
from repro.circuit.spice_io import (
    circuit_to_spice,
    format_spice_number,
    parse_spice_number,
    read_spice,
    spice_to_circuit,
    write_spice,
)
from repro.devices import default_tech
from repro.errors import CircuitError
from repro.sram import SramCellDesign


class TestSpiceNumbers:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("100", 100.0),
            ("1.5k", 1500.0),
            ("2meg", 2e6),
            ("3u", 3e-6),
            ("0.25p", 0.25e-12),
            ("10f", 10e-15),
            ("1e-15", 1e-15),
            ("-4.7n", -4.7e-9),
            ("2.5M", 2.5e-3),  # SPICE: m/M both milli
        ],
    )
    def test_parse(self, token, expected):
        assert parse_spice_number(token) == pytest.approx(expected)

    def test_malformed_rejected(self):
        with pytest.raises(CircuitError):
            parse_spice_number("ohm")
        with pytest.raises(CircuitError):
            parse_spice_number("1.2.3")

    def test_format_round_trip(self):
        for value in (1.5e-15, 2.0e3, -4.2e-9, 0.8):
            assert parse_spice_number(
                format_spice_number(value)
            ) == pytest.approx(value)


class TestWriter:
    def test_rc_netlist_text(self):
        circuit = Circuit("divider")
        circuit.add_vsource("vin", "a", "0", 1.0)
        circuit.add_resistor("r1", "a", "b", 1000.0)
        circuit.add_capacitor("c1", "b", "0", 1e-15)
        text = circuit_to_spice(circuit)
        assert "Vvin a 0 1" in text
        assert "Rr1 a b 1000" in text
        assert "Cc1 b 0 1e-15" in text
        assert text.rstrip().endswith(".end")

    def test_finfet_model_card_emitted(self):
        tech = default_tech()
        circuit = Circuit("inv")
        circuit.add_vsource("vdd", "vdd", "0", 0.8)
        circuit.add_finfet("mp", "out", "in", "vdd", tech.pmos)
        circuit.add_finfet("mn", "out", "in", "0", tech.nmos, nfin=2)
        text = circuit_to_spice(circuit)
        assert ".model pfet14 finfet polarity=-1" in text
        assert ".model nfet14 finfet polarity=1" in text
        assert "nfin=2" in text


class TestRoundTrip:
    def test_rc_round_trip_behaviour(self):
        original = Circuit("divider")
        original.add_vsource("vin", "a", "0", 2.0)
        original.add_resistor("r1", "a", "b", 1000.0)
        original.add_resistor("r2", "b", "0", 3000.0)
        clone = spice_to_circuit(circuit_to_spice(original))
        assert solve_dc(clone).voltage("b") == pytest.approx(1.5)

    def test_sram_cell_round_trip(self):
        design = SramCellDesign()
        wave = RectPulse.from_charge(2e-16, 1.7e-14, delay_s=1e-12)
        original = design.build_circuit(0.8, strike_waveforms={0: wave})
        clone = spice_to_circuit(circuit_to_spice(original))

        # same element census
        assert len(clone.elements) == len(original.elements)
        # same DC hold state
        sol = solve_dc(clone, initial_guess=design.hold_state_guess(0.8))
        assert sol.voltage("q") > 0.75
        assert sol.voltage("qb") < 0.05
        # strike source waveform survived with its charge
        istrike = clone.element("istrike1")
        assert istrike.waveform.charge() == pytest.approx(2e-16, rel=1e-6)

    def test_vth_shift_round_trip(self):
        design = SramCellDesign()
        shifts = [0.01, -0.02, 0.0, 0.03, 0.0, -0.01]
        original = design.build_circuit(0.8, vth_shifts_v=shifts)
        clone = spice_to_circuit(circuit_to_spice(original))
        assert clone.element("pu_l").vth_shift_v == pytest.approx(0.01)
        assert clone.element("pd_l").vth_shift_v == pytest.approx(-0.02)

    def test_file_round_trip(self, tmp_path):
        circuit = Circuit("rc")
        circuit.add_vsource("v", "a", "0", 1.0)
        circuit.add_resistor("r", "a", "0", 50.0)
        path = tmp_path / "rc.sp"
        write_spice(circuit, path, title="rc test")
        clone = read_spice(path)
        assert clone.name == "rc"
        assert solve_dc(clone).voltage("a") == pytest.approx(1.0)


class TestDialectParsing:
    def test_comments_and_dot_cards_ignored(self):
        text = """* a comment
        Vv a 0 1.0
        Rr a 0 1k  $ trailing comment
        .tran 1p 1n
        .end
        Rghost a 0 1
        """
        circuit = spice_to_circuit(text)
        names = [e.name for e in circuit.elements]
        assert names == ["v", "r"]

    def test_pulse_source(self):
        text = "Ii a 0 PULSE(0 1m 1p 0 0 10p)\nRr a 0 1\n.end\n"
        circuit = spice_to_circuit(text)
        wave = circuit.element("i").waveform
        assert isinstance(wave, RectPulse)
        assert wave.amplitude == pytest.approx(1e-3)
        assert wave.width_s == pytest.approx(10e-12)
        assert wave.delay_s == pytest.approx(1e-12)

    def test_exp_source(self):
        from repro.circuit import DoubleExponential

        text = "Ii a 0 EXP(0 2m 0 1p 0 50p)\nRr a 0 1\n.end\n"
        wave = spice_to_circuit(text).element("i").waveform
        assert isinstance(wave, DoubleExponential)
        assert wave.tau_fall_s == pytest.approx(50e-12)

    def test_pwl_source(self):
        from repro.circuit import Pwl

        text = "Ii a 0 PWL(0 0 1n 1m 2n 0)\nRr a 0 1\n.end\n"
        wave = spice_to_circuit(text).element("i").waveform
        assert isinstance(wave, Pwl)
        assert wave.charge() == pytest.approx(1e-12, rel=1e-6)

    def test_unknown_model_rejected(self):
        with pytest.raises(CircuitError):
            spice_to_circuit("Mx d g s 0 mystery\n.end\n")

    def test_unknown_card_rejected(self):
        with pytest.raises(CircuitError):
            spice_to_circuit("Qq a b c bjt\n.end\n")

    def test_malformed_pulse_rejected(self):
        with pytest.raises(CircuitError):
            spice_to_circuit("Ii a 0 PULSE(0 1)\nRr a 0 1\n.end\n")
