"""Warm pool leasing + shared-memory payload plane (repro.parallel).

Covers the PR's acceptance surface: bit-identity of multi-campaign
sweeps with warm pools vs per-call pools, shm fingerprint dedup across
campaigns, zero leaked segments after normal exit and after a
``REPRO_PARALLEL_KILL`` worker death, the plain-pickle fallback when
shm is disabled, warm-aware auto-inlining, and the vectorized
``ArrayPofResult.merge`` staying bit-identical to the historical
Python loops.
"""

import os
import subprocess
import sys
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.layout import SramArrayLayout
from repro.obs.registry import disable_metrics, enable_metrics
from repro.parallel import (
    RetryPolicy,
    get_lease,
    get_pack,
    pack_payload,
    parallel_map,
    set_shm_default,
    set_warm_pool_default,
    shm_enabled,
    warm_pool_enabled,
)
from repro.parallel import shm as shm_mod
from repro.parallel.engine import FAULT_ENV
from repro.parallel.shm import load_packed
from repro.physics import ALPHA
from repro.ser.mc import ArrayPofResult
from repro.sram import PofTable
from repro.sram.strike import ALL_COMBOS

SRC_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "src")

#: Comfortably above MIN_SHM_BYTES (32 KiB) -- eligible for a segment.
BIG = np.arange(16384, dtype=np.float64)


@pytest.fixture(autouse=True)
def clean_engine_state():
    """Each test starts and ends with no warm pools / no segments."""
    get_lease().shutdown_all()
    get_pack().release_all()
    set_warm_pool_default(True)
    set_shm_default(True)
    yield
    get_lease().shutdown_all()
    get_pack().release_all()
    set_warm_pool_default(True)
    set_shm_default(True)


@pytest.fixture()
def metrics():
    registry = enable_metrics(fresh=True)
    try:
        yield registry
    finally:
        disable_metrics()


@pytest.fixture(scope="module")
def pof_table():
    vdds = (0.7, 0.9)
    n_q = 5
    base = np.linspace(0.0, 1.0, n_q)
    pof = {}
    for combo in ALL_COMBOS:
        grids = []
        for i_vdd in range(len(vdds)):
            grid = base * (1.0 - 0.2 * i_vdd)
            for _ in range(len(combo) - 1):
                grid = np.add.outer(grid, base * (1.0 - 0.2 * i_vdd)) / 2.0
            grids.append(grid)
        pof[combo] = np.stack(grids, axis=0)
    return PofTable(
        vdd_list=vdds,
        charge_axis_c=np.logspace(-16, -14, n_q),
        pof=pof,
        process_variation=False,
        n_samples=1,
    )


@pytest.fixture(scope="module")
def layout():
    return SramArrayLayout(n_rows=4, n_cols=4)


def make_simulator(layout, pof_table, **overrides):
    from repro.ser import ArrayMcConfig, ArraySerSimulator

    config = ArrayMcConfig(deposition_mode="direct", **overrides)
    return ArraySerSimulator(layout, pof_table, config=config)


def assert_results_identical(a, b):
    assert a.pof_total == b.pof_total
    assert a.pof_seu == b.pof_seu
    assert a.pof_mbu == b.pof_mbu
    assert a.n_particles == b.n_particles
    assert a.n_array_hits == b.n_array_hits
    assert a.n_fin_strikes == b.n_fin_strikes
    assert np.array_equal(a.multiplicity_pmf, b.multiplicity_pmf)


# -- module-level worker functions (picklable by reference) --------------------


def _sum_task(payload, task):
    return float(np.sum(payload["big"])) + task


def _echo_task(payload, task):
    return task


def _two_campaign_sweep(layout, pof_table, *, warm, n=60_000):
    """Two (energy) campaigns against one simulator, pooled (jobs=2).

    ``n`` is large enough that the array-MC cost hint (~2 us/particle)
    clears the auto-inline threshold, so the maps really pool.
    """
    simulator = make_simulator(
        layout, pof_table, n_jobs=2, warm_pool=warm, shm=warm
    )
    out = []
    for i, energy in enumerate((5.0, 8.0)):
        rng = np.random.default_rng(1000 + i)
        out.append(simulator.run(ALPHA, energy, 0.7, n, rng))
    return out


# -- warm pool leasing ---------------------------------------------------------


class TestWarmPool:
    def test_two_campaign_sweep_bit_identical_warm_vs_fresh(
        self, layout, pof_table, metrics
    ):
        warm = _two_campaign_sweep(layout, pof_table, warm=True)
        snapshot = metrics.snapshot()["counters"]
        assert snapshot.get("parallel.pool.created", 0) == 1
        assert snapshot.get("parallel.pool.reused", 0) >= 1
        get_lease().shutdown_all()

        fresh = _two_campaign_sweep(layout, pof_table, warm=False)
        for a, b in zip(warm, fresh):
            assert_results_identical(a, b)

    def test_pool_reused_across_plain_maps(self, metrics):
        payload = {"big": BIG}
        r1 = parallel_map(
            _sum_task, [1, 2, 3, 4], payload=payload, n_jobs=2, label="wp"
        )
        r2 = parallel_map(
            _sum_task, [1, 2, 3, 4], payload=payload, n_jobs=2, label="wp"
        )
        assert r1 == r2
        counters = metrics.snapshot()["counters"]
        assert counters.get("parallel.pool.created", 0) == 1
        assert counters.get("parallel.pool.reused", 0) == 1
        assert len(get_lease()) == 1

    def test_kill_invalidates_lease_and_retry_recovers(
        self, metrics, monkeypatch, tmp_path
    ):
        marker = tmp_path / "killed"
        monkeypatch.setenv(FAULT_ENV, f"wpkill:2:{marker}")
        result = parallel_map(
            _sum_task,
            [0, 1, 2, 3],
            payload={"big": BIG},
            n_jobs=2,
            label="wpkill",
            retry=RetryPolicy(retries=2, backoff_s=0.01),
        )
        assert marker.exists()
        assert result == [float(np.sum(BIG)) + t for t in range(4)]
        counters = metrics.snapshot()["counters"]
        assert counters.get("parallel.pool.invalidated", 0) >= 1
        assert counters.get("parallel.retries", 0) >= 1

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_WARM_POOL", "1")
        assert not warm_pool_enabled()
        assert not warm_pool_enabled(True)
        result = parallel_map(
            _sum_task, [1, 2], payload={"big": BIG}, n_jobs=2, label="off"
        )
        assert result == [float(np.sum(BIG)) + t for t in (1, 2)]
        assert len(get_lease()) == 0

    def test_override_beats_default(self):
        set_warm_pool_default(False)
        assert not warm_pool_enabled()
        assert warm_pool_enabled(True)
        assert not warm_pool_enabled(False)


# -- shared-memory payload plane -----------------------------------------------


class TestSharedMemory:
    def test_packed_payload_roundtrip_and_cache(self, metrics):
        packed = pack_payload({"big": BIG, "scalar": 7})
        assert packed.shm_fingerprints  # the big array left the pickle
        assert packed.nbytes < BIG.nbytes  # reference, not a copy
        loaded = load_packed(packed)
        assert loaded["scalar"] == 7
        assert np.array_equal(loaded["big"], BIG)
        assert not loaded["big"].flags.writeable  # zero-copy view
        again = load_packed(packed)
        assert again is loaded  # payload cache hit by fingerprint
        get_pack().release(packed.shm_fingerprints)

    def test_fingerprint_dedup_on_second_campaign(self, metrics):
        packed1 = pack_payload({"big": BIG, "energy": 5.0})
        packed2 = pack_payload({"big": BIG, "energy": 8.0})
        assert packed1.fingerprint != packed2.fingerprint
        assert packed1.shm_fingerprints == packed2.shm_fingerprints
        counters = metrics.snapshot()["counters"]
        assert counters.get("parallel.shm.segments", 0) == 1
        assert counters.get("parallel.shm.hits", 0) == 1
        assert len(get_pack()) == 1  # one segment serves both campaigns

    def test_small_arrays_stay_inline(self):
        small = np.arange(16, dtype=np.float64)
        packed = pack_payload({"small": small})
        assert packed.shm_fingerprints == ()
        assert np.array_equal(load_packed(packed)["small"], small)

    def test_refcounted_release(self):
        packed1 = pack_payload({"big": BIG})
        packed2 = pack_payload({"big": BIG, "extra": 1})
        (name,) = get_pack().segment_names()
        get_pack().release(packed1.shm_fingerprints)
        # still retained by packed2
        shared_memory.SharedMemory(name=name).close()
        get_pack().release(packed2.shm_fingerprints)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        assert len(get_pack()) == 0

    def test_no_leaked_segments_after_campaigns(self, layout, pof_table):
        # force even the small synthetic fixture arrays into segments
        # (parent-side knob only; workers just attach what they get)
        old = shm_mod.MIN_SHM_BYTES
        shm_mod.MIN_SHM_BYTES = 0
        try:
            _two_campaign_sweep(layout, pof_table, warm=True, n=60_000)
            names = get_pack().segment_names()
            assert names  # the plane engaged
        finally:
            shm_mod.MIN_SHM_BYTES = old
        get_pack().release_all()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_no_leaked_segments_after_worker_kill(
        self, metrics, monkeypatch, tmp_path
    ):
        marker = tmp_path / "killed"
        monkeypatch.setenv(FAULT_ENV, f"shmkill:1:{marker}")
        result = parallel_map(
            _sum_task,
            [0, 1, 2, 3],
            payload={"big": BIG},
            n_jobs=2,
            label="shmkill",
            retry=RetryPolicy(retries=2, backoff_s=0.01),
        )
        assert marker.exists()
        assert result == [float(np.sum(BIG)) + t for t in range(4)]
        names = get_pack().segment_names()
        assert names  # the dead worker did not take the segments down
        get_pack().release_all()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_atexit_cleans_segments_on_normal_exit(self, tmp_path):
        """A process that never releases explicitly still leaks nothing."""
        script = tmp_path / "shm_exit.py"
        script.write_text(
            """
import json, sys
import numpy as np
from repro.parallel import parallel_map, get_pack

def work(payload, task):
    return float(payload["big"][task])

big = np.arange(16384, dtype=np.float64)
parallel_map(work, [0, 1, 2, 3], payload={"big": big}, n_jobs=2, label="x")
print(json.dumps(list(get_pack().segment_names())))
"""
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        names = __import__("json").loads(proc.stdout.strip().splitlines()[-1])
        assert names
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_disabled_shm_falls_back_bit_identically(
        self, layout, pof_table, monkeypatch
    ):
        with_shm = _two_campaign_sweep(layout, pof_table, warm=True)
        get_lease().shutdown_all()
        get_pack().release_all()

        monkeypatch.setenv("REPRO_NO_SHM", "1")
        assert not shm_enabled()
        assert not shm_enabled(True)
        without = _two_campaign_sweep(layout, pof_table, warm=True)
        assert len(get_pack()) == 0  # everything stayed inline
        for a, b in zip(with_shm, without):
            assert_results_identical(a, b)


# -- warm-aware auto-inline ----------------------------------------------------


class TestWarmAutoInline:
    HINT = 0.01  # est/worker = 0.02 s: below 0.05, above 0.005

    def test_inlines_without_a_leased_pool(self, metrics):
        parallel_map(
            _echo_task,
            [1, 2, 3, 4],
            n_jobs=2,
            label="ai",
            cost_hint_s=self.HINT,
        )
        counters = metrics.snapshot()["counters"]
        assert counters.get("parallel.auto_inline", 0) == 1
        assert counters.get("parallel.maps", 0) == 0

    def test_stays_pooled_when_pool_is_warm(self, metrics):
        # lease a (fork, 2) pool with an unhinted map...
        parallel_map(_echo_task, [1, 2, 3, 4], n_jobs=2, label="warmup")
        # ...then the hinted map reuses it instead of inlining
        parallel_map(
            _echo_task,
            [1, 2, 3, 4],
            n_jobs=2,
            label="ai",
            cost_hint_s=self.HINT,
        )
        counters = metrics.snapshot()["counters"]
        assert counters.get("parallel.auto_inline", 0) == 0
        assert counters.get("parallel.maps", 0) == 2
        assert counters.get("parallel.pool.reused", 0) == 1


# -- vectorized merge ----------------------------------------------------------


def _reference_merge(shards):
    """The historical per-attribute Python loops (pre-vectorization)."""
    n_total = sum(shard.n_particles for shard in shards)

    def weighted(attr):
        acc = 0.0
        for shard in shards:
            acc += getattr(shard, attr) * shard.n_particles
        return acc / n_total

    pmf = np.zeros_like(shards[0].multiplicity_pmf)
    for shard in shards:
        pmf += shard.multiplicity_pmf * shard.n_particles
    pmf /= n_total
    return weighted("pof_total"), weighted("pof_seu"), weighted("pof_mbu"), pmf


class TestVectorizedMerge:
    def test_bit_identical_to_reference_loops(self):
        rng = np.random.default_rng(7)
        shards = []
        for _ in range(17):
            pmf = rng.random(9)
            shards.append(
                ArrayPofResult(
                    particle_name="alpha",
                    energy_mev=5.0,
                    vdd_v=0.7,
                    n_particles=int(rng.integers(100, 5000)),
                    n_array_hits=int(rng.integers(0, 100)),
                    n_fin_strikes=int(rng.integers(0, 50)),
                    pof_total=float(rng.random()),
                    pof_seu=float(rng.random()),
                    pof_mbu=float(rng.random()),
                    launch_area_cm2=1e-8,
                    multiplicity_pmf=pmf,
                )
            )
        merged = ArrayPofResult.merge(shards)
        total, seu, mbu, pmf = _reference_merge(shards)
        assert merged.pof_total == total
        assert merged.pof_seu == seu
        assert merged.pof_mbu == mbu
        assert np.array_equal(merged.multiplicity_pmf, pmf)

    def test_single_shard(self):
        shard = ArrayPofResult(
            particle_name="alpha",
            energy_mev=5.0,
            vdd_v=0.7,
            n_particles=1000,
            n_array_hits=10,
            n_fin_strikes=5,
            pof_total=0.25,
            pof_seu=0.2,
            pof_mbu=0.05,
            launch_area_cm2=1e-8,
            multiplicity_pmf=np.array([0.0, 0.2, 0.05]),
        )
        merged = ArrayPofResult.merge([shard])
        assert merged.pof_total == shard.pof_total
        assert merged.pof_seu == shard.pof_seu
        assert merged.pof_mbu == shard.pof_mbu
        assert np.array_equal(merged.multiplicity_pmf, shard.multiplicity_pmf)
