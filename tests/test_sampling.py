"""Angular and positional sampling laws."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.physics import (
    DIRECTION_LAWS,
    sample_directions,
    sample_positions_on_plane,
    sample_rays,
)


class TestDirections:
    @pytest.mark.parametrize("law", DIRECTION_LAWS)
    def test_unit_vectors(self, law):
        rng = np.random.default_rng(0)
        d = sample_directions(5000, rng, law)
        assert np.allclose(np.linalg.norm(d, axis=1), 1.0)

    @pytest.mark.parametrize("law", DIRECTION_LAWS)
    def test_all_downward(self, law):
        rng = np.random.default_rng(1)
        d = sample_directions(5000, rng, law)
        assert np.all(d[:, 2] < 0.0)

    def test_cosine_law_mean(self):
        # cosine law: E[cos(theta)] = 2/3
        rng = np.random.default_rng(2)
        d = sample_directions(100000, rng, "cosine")
        assert np.mean(-d[:, 2]) == pytest.approx(2.0 / 3.0, abs=0.01)

    def test_isotropic_law_mean(self):
        # uniform cos(theta): E[cos(theta)] = 1/2
        rng = np.random.default_rng(3)
        d = sample_directions(100000, rng, "isotropic")
        assert np.mean(-d[:, 2]) == pytest.approx(0.5, abs=0.01)

    def test_cosine_steeper_than_isotropic(self):
        # protons (cosine) arrive steeper than package alphas (isotropic)
        rng = np.random.default_rng(4)
        cos_c = -sample_directions(50000, rng, "cosine")[:, 2]
        cos_i = -sample_directions(50000, rng, "isotropic")[:, 2]
        grazing_c = np.mean(cos_c < 0.2)
        grazing_i = np.mean(cos_i < 0.2)
        assert grazing_i > 2.0 * grazing_c

    def test_azimuthal_uniformity(self):
        rng = np.random.default_rng(5)
        d = sample_directions(100000, rng, "isotropic")
        phi = np.arctan2(d[:, 1], d[:, 0])
        assert np.mean(np.cos(phi)) == pytest.approx(0.0, abs=0.02)
        assert np.mean(np.sin(phi)) == pytest.approx(0.0, abs=0.02)

    def test_unknown_law_rejected(self):
        with pytest.raises(ConfigError):
            sample_directions(10, np.random.default_rng(0), "beamline")


class TestPositions:
    def test_within_bounds(self):
        rng = np.random.default_rng(6)
        p = sample_positions_on_plane(10000, rng, (-5, 15), (0, 30), 42.0)
        assert np.all((p[:, 0] >= -5) & (p[:, 0] <= 15))
        assert np.all((p[:, 1] >= 0) & (p[:, 1] <= 30))
        assert np.all(p[:, 2] == 42.0)

    def test_uniform_coverage(self):
        rng = np.random.default_rng(7)
        p = sample_positions_on_plane(100000, rng, (0, 10), (0, 10), 0.0)
        assert np.mean(p[:, 0]) == pytest.approx(5.0, abs=0.05)

    def test_degenerate_rectangle_rejected(self):
        with pytest.raises(ConfigError):
            sample_positions_on_plane(
                10, np.random.default_rng(0), (5, 5), (0, 1), 0.0
            )


class TestRays:
    def test_batch_assembled(self):
        rng = np.random.default_rng(8)
        rays = sample_rays(100, rng, (0, 10), (0, 10), 50.0, "cosine")
        assert len(rays) == 100
        assert np.all(rays.origins[:, 2] == 50.0)
        assert np.all(rays.directions[:, 2] < 0)


class TestBeamLaw:
    def test_fixed_zenith(self):
        rng = np.random.default_rng(10)
        d = sample_directions(2000, rng, "beam:0.5")
        assert np.allclose(-d[:, 2], 0.5)
        assert np.allclose(np.linalg.norm(d, axis=1), 1.0)

    def test_azimuth_uniform(self):
        rng = np.random.default_rng(11)
        d = sample_directions(50000, rng, "beam:0.7")
        phi = np.arctan2(d[:, 1], d[:, 0])
        assert abs(np.mean(np.cos(phi))) < 0.02

    def test_normal_incidence(self):
        rng = np.random.default_rng(12)
        d = sample_directions(100, rng, "beam:1.0")
        assert np.allclose(d[:, 2], -1.0)
        assert np.allclose(d[:, 0], 0.0, atol=1e-9)

    def test_malformed_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            sample_directions(10, rng, "beam:nope")
        with pytest.raises(ConfigError):
            sample_directions(10, rng, "beam:0.0")
        with pytest.raises(ConfigError):
            sample_directions(10, rng, "beam:1.5")
