"""Device-level Monte Carlo transport and the electron-yield LUT."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.geometry import FinGeometry, RayBatch, SoiFinWorld, SoiStack
from repro.physics import ALPHA, PROTON, mean_chord_deposit_kev, mean_pairs
from repro.transport import (
    ElectronYieldLUT,
    TransportConfig,
    TransportEngine,
    default_energy_grid,
)


@pytest.fixture(scope="module")
def engine():
    return TransportEngine()


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(2014)


class TestTransportEngine:
    def test_vertical_ray_through_fin(self):
        # deterministic config: no straggling/fano, vertical hit
        engine = TransportEngine(
            config=TransportConfig(straggling=False, fano=False)
        )
        fin = engine.world.fin
        rays = RayBatch(
            np.array([[0.0, 0.0, 100.0]]), np.array([[0.0, 0.0, -1.0]])
        )
        result = engine.transport(ALPHA, 1.0, rays, np.random.default_rng(0))
        assert result.fin_chord_nm[0] == pytest.approx(fin.height_nm)
        expected_pairs = float(
            mean_pairs(mean_chord_deposit_kev(ALPHA, 1.0, fin.height_nm))
        )
        assert result.fin_pairs[0] == pytest.approx(expected_pairs, rel=1e-6)

    def test_missing_ray_no_pairs(self):
        engine = TransportEngine()
        rays = RayBatch(
            np.array([[1000.0, 1000.0, 100.0]]), np.array([[0.0, 0.0, -1.0]])
        )
        result = engine.transport(PROTON, 1.0, rays, np.random.default_rng(0))
        assert result.fin_chord_nm[0] == 0.0
        assert result.fin_pairs[0] == 0.0
        assert result.hit_fraction == 0.0

    def test_launch_statistics(self, engine, rng):
        result = engine.launch(ALPHA, 1.0, 20000, rng)
        assert 0.001 < result.hit_fraction < 0.5
        assert result.mean_pairs_given_hit > 50

    def test_alpha_generates_more_than_proton(self, engine, rng):
        alpha = engine.launch(ALPHA, 1.0, 30000, rng)
        proton = engine.launch(PROTON, 1.0, 30000, rng)
        assert (
            alpha.mean_pairs_given_hit > 3.0 * proton.mean_pairs_given_hit
        )

    def test_energy_degradation_with_beol(self, rng):
        # a thick BEOL overburden reduces the energy reaching the fin,
        # which *raises* the yield for above-peak alphas (dE/dx grows
        # as the particle slows) -- so just check the result changes.
        fin = FinGeometry()
        bare = TransportEngine(
            SoiFinWorld(fin=fin),
            TransportConfig(straggling=False, fano=False),
        )
        buried = TransportEngine(
            SoiFinWorld(fin=fin, stack=SoiStack(beol_thickness_nm=2000.0)),
            TransportConfig(straggling=False, fano=False),
        )
        rays = RayBatch(
            np.array([[0.0, 0.0, 2500.0]]), np.array([[0.0, 0.0, -1.0]])
        )
        pairs_bare = bare.transport(ALPHA, 2.0, rays, np.random.default_rng(0)).fin_pairs[0]
        pairs_buried = buried.transport(ALPHA, 2.0, rays, np.random.default_rng(0)).fin_pairs[0]
        assert pairs_buried != pytest.approx(pairs_bare, rel=1e-3)

    def test_invalid_launch_args(self, engine, rng):
        with pytest.raises(ConfigError):
            engine.launch(ALPHA, -1.0, 100, rng)
        with pytest.raises(ConfigError):
            engine.launch(ALPHA, 1.0, 0, rng)


class TestElectronYieldLUT:
    @pytest.fixture(scope="class")
    def lut(self):
        rng = np.random.default_rng(7)
        energies = np.logspace(-1, 2, 7)
        return ElectronYieldLUT.build(ALPHA, energies, 4000, rng)

    def test_monotone_energy_grid_required(self):
        with pytest.raises(ConfigError):
            ElectronYieldLUT(
                particle_name="alpha",
                energies_mev=np.array([1.0, 1.0]),
                hit_fraction=np.zeros(2),
                mean_pairs=np.zeros(2),
                quantiles=np.zeros((2, 5)),
            )

    def test_mean_interpolation_brackets(self, lut):
        e_mid = np.sqrt(lut.energies_mev[2] * lut.energies_mev[3])
        mean_mid = lut.mean_at(e_mid)
        lo = min(lut.mean_pairs[2], lut.mean_pairs[3])
        hi = max(lut.mean_pairs[2], lut.mean_pairs[3])
        assert lo <= mean_mid <= hi

    def test_out_of_range_clamps(self, lut):
        assert lut.mean_at(1e-3) == pytest.approx(lut.mean_pairs[0])
        assert lut.mean_at(1e5) == pytest.approx(lut.mean_pairs[-1])

    def test_sample_pairs_statistics(self, lut):
        rng = np.random.default_rng(9)
        energy = float(lut.energies_mev[3])
        samples = lut.sample_pairs(energy, 20000, rng)
        assert np.mean(samples) == pytest.approx(
            lut.mean_pairs[3], rel=0.08
        )
        assert np.all(samples >= 0)

    def test_normalized_series_peaks_at_one(self, lut):
        energies, series = lut.normalized_yield_series()
        assert np.max(series) == pytest.approx(1.0)
        assert len(energies) == len(series)

    def test_round_trip_serialization(self, lut):
        clone = ElectronYieldLUT.from_dict(lut.to_dict())
        assert np.allclose(clone.energies_mev, lut.energies_mev)
        assert np.allclose(clone.quantiles, lut.quantiles)
        assert clone.particle_name == lut.particle_name

    def test_build_rejects_tiny_statistics(self):
        with pytest.raises(ConfigError):
            ElectronYieldLUT.build(
                ALPHA, np.array([1.0, 2.0]), 10, np.random.default_rng(0)
            )

    def test_default_grid(self):
        grid = default_energy_grid("alpha", 13)
        assert grid[0] == pytest.approx(0.1)
        assert grid[-1] == pytest.approx(100.0)
        from repro.errors import PhysicsError

        with pytest.raises(PhysicsError):
            default_energy_grid("neutron")


class TestEmptyRowFallback:
    """Zero-hit energy rows must not bias sampled pair counts low."""

    @pytest.fixture(scope="class")
    def gappy_lut(self):
        # row 1 saw zero hits: all-zero quantile placeholder
        quantiles = np.array(
            [
                np.linspace(0.0, 100.0, 9),
                np.zeros(9),
                np.linspace(0.0, 200.0, 9),
            ]
        )
        return ElectronYieldLUT(
            particle_name="alpha",
            energies_mev=np.array([1.0, 10.0, 100.0]),
            hit_fraction=np.array([0.5, 0.0, 0.5]),
            mean_pairs=np.array([50.0, 0.0, 100.0]),
            quantiles=quantiles,
            trials_per_energy=1000,
        )

    def test_sample_pairs_skips_empty_row(self, gappy_lut, caplog, monkeypatch):
        # between rows 0 and 1 the old code blended toward the zero
        # placeholder; the fallback must sample the populated row 0
        import logging

        # CLI tests may have run configure_logging (propagate=False);
        # restore propagation so caplog sees the records
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        rng = np.random.default_rng(3)
        with caplog.at_level("WARNING", logger="repro"):
            samples = gappy_lut.sample_pairs(3.0, 4000, rng)
        assert np.mean(samples) == pytest.approx(50.0, rel=0.1)
        assert any(
            "empty LUT row" in record.message for record in caplog.records
        )

    def test_sample_pairs_many_skips_empty_row(
        self, gappy_lut, caplog, monkeypatch
    ):
        import logging

        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        rng = np.random.default_rng(4)
        energies = np.full(4000, 30.0)  # bracketed by rows 1 (empty) and 2
        with caplog.at_level("WARNING", logger="repro"):
            samples = gappy_lut.sample_pairs_many(energies, rng)
        assert np.mean(samples) == pytest.approx(100.0, rel=0.1)
        assert any(
            "empty LUT rows" in record.message for record in caplog.records
        )

    def test_populated_bracket_untouched(self, gappy_lut):
        # queries on a fully populated bracket keep exact interpolation
        full = ElectronYieldLUT(
            particle_name="alpha",
            energies_mev=gappy_lut.energies_mev.copy(),
            hit_fraction=np.array([0.5, 0.5, 0.5]),
            mean_pairs=np.array([50.0, 75.0, 100.0]),
            quantiles=np.array(
                [
                    np.linspace(0.0, 100.0, 9),
                    np.linspace(0.0, 150.0, 9),
                    np.linspace(0.0, 200.0, 9),
                ]
            ),
            trials_per_energy=1000,
        )
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        direct = full.sample_pairs(3.0, 100, rng_a)
        via_many = full.sample_pairs_many(np.full(100, 3.0), rng_b)
        assert np.allclose(direct, via_many)

    def test_all_rows_empty_raises(self):
        from repro.errors import LookupError_

        lut = ElectronYieldLUT(
            particle_name="alpha",
            energies_mev=np.array([1.0, 10.0]),
            hit_fraction=np.zeros(2),
            mean_pairs=np.zeros(2),
            quantiles=np.zeros((2, 5)),
            trials_per_energy=100,
        )
        with pytest.raises(LookupError_):
            lut.sample_pairs(3.0, 10, np.random.default_rng(0))
        with pytest.raises(LookupError_):
            lut.sample_pairs_many(np.array([3.0]), np.random.default_rng(0))

    def test_both_brackets_empty_snaps_to_nearest(self):
        # rows 0 and 1 empty, row 2 populated: queries low in the grid
        # must reach the only populated row
        lut = ElectronYieldLUT(
            particle_name="alpha",
            energies_mev=np.array([1.0, 10.0, 100.0]),
            hit_fraction=np.array([0.0, 0.0, 0.5]),
            mean_pairs=np.array([0.0, 0.0, 100.0]),
            quantiles=np.array(
                [np.zeros(9), np.zeros(9), np.linspace(0.0, 200.0, 9)]
            ),
            trials_per_energy=1000,
        )
        rng = np.random.default_rng(6)
        samples = lut.sample_pairs(2.0, 4000, rng)
        assert np.mean(samples) == pytest.approx(100.0, rel=0.1)
        many = lut.sample_pairs_many(
            np.full(4000, 2.0), np.random.default_rng(7)
        )
        assert np.mean(many) == pytest.approx(100.0, rel=0.1)


class TestYieldShape:
    def test_fig4_shape_decreasing_above_peak(self):
        """Paper Fig. 4: yield falls with energy above the Bragg peak."""
        rng = np.random.default_rng(11)
        energies = np.array([1.0, 3.0, 10.0, 30.0, 100.0])
        lut = ElectronYieldLUT.build(ALPHA, energies, 6000, rng)
        # above the ~0.8 MeV alpha peak the mean yield must fall
        assert np.all(np.diff(lut.mean_pairs) < 0)
