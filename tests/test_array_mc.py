"""Array-level Monte Carlo (paper Section 5.1)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.layout import SramArrayLayout
from repro.physics import ALPHA, PROTON
from repro.sram import CharacterizationConfig, SramCellDesign, characterize_cell
from repro.ser import ArrayMcConfig, ArraySerSimulator
from repro.transport import ElectronYieldLUT, TransportEngine
from repro.geometry import FinGeometry, SoiFinWorld


@pytest.fixture(scope="module")
def design():
    return SramCellDesign()


@pytest.fixture(scope="module")
def pof_table(design):
    config = CharacterizationConfig(
        vdd_list=(0.7, 0.9),
        n_charge_points=17,
        n_samples=50,
        max_pair_points=5,
        max_triple_points=4,
        seed=5,
    )
    return characterize_cell(design, config)


@pytest.fixture(scope="module")
def yield_luts(design):
    rng = np.random.default_rng(6)
    fin = FinGeometry(
        design.tech.collection_length_nm,
        design.tech.fin.width_nm,
        design.tech.fin.height_nm,
    )
    engine = TransportEngine(SoiFinWorld(fin=fin))
    energies = np.logspace(-1, 2, 5)
    return {
        "alpha": ElectronYieldLUT.build(ALPHA, energies, 4000, rng, engine=engine),
        "proton": ElectronYieldLUT.build(PROTON, energies, 4000, rng, engine=engine),
    }


@pytest.fixture(scope="module")
def simulator(pof_table, yield_luts):
    return ArraySerSimulator(
        SramArrayLayout(), pof_table, yield_luts=yield_luts
    )


class TestConfig:
    def test_lut_mode_requires_luts(self, pof_table):
        with pytest.raises(ConfigError):
            ArraySerSimulator(SramArrayLayout(), pof_table, yield_luts=None)

    def test_direct_mode_needs_no_luts(self, pof_table):
        sim = ArraySerSimulator(
            SramArrayLayout(),
            pof_table,
            config=ArrayMcConfig(deposition_mode="direct"),
        )
        assert sim.config.deposition_mode == "direct"

    def test_invalid_mode(self):
        with pytest.raises(ConfigError):
            ArrayMcConfig(deposition_mode="teleport")

    def test_direction_law_defaults(self):
        config = ArrayMcConfig()
        assert config.law_for("alpha") == "isotropic"
        assert config.law_for("proton") == "cosine"


class TestRun:
    def test_result_bookkeeping(self, simulator):
        rng = np.random.default_rng(7)
        result = simulator.run(ALPHA, 2.0, 0.7, 20000, rng)
        assert result.n_particles == 20000
        assert 0 < result.n_array_hits <= 20000
        assert result.n_fin_strikes > 0
        assert 0.0 <= result.pof_total <= 1.0
        assert result.pof_seu <= result.pof_total + 1e-12
        assert result.pof_mbu >= 0.0

    def test_alpha_pof_exceeds_proton(self, simulator):
        """Paper Fig. 8: alpha POF >> proton POF at equal energy."""
        rng = np.random.default_rng(8)
        alpha = simulator.run(ALPHA, 1.0, 0.7, 40000, rng)
        proton = simulator.run(PROTON, 1.0, 0.7, 40000, rng)
        assert alpha.pof_total > 3.0 * proton.pof_total

    def test_lower_vdd_higher_pof(self, simulator):
        """Paper Fig. 8: POF increases as Vdd drops."""
        rng1 = np.random.default_rng(9)
        rng2 = np.random.default_rng(9)
        low = simulator.run(ALPHA, 2.0, 0.7, 40000, rng1)
        high = simulator.run(ALPHA, 2.0, 0.9, 40000, rng2)
        assert low.pof_total >= high.pof_total

    def test_conditional_pof_scaling(self, simulator):
        rng = np.random.default_rng(10)
        result = simulator.run(ALPHA, 2.0, 0.7, 20000, rng)
        if result.n_array_hits:
            expected = result.pof_total * result.n_particles / result.n_array_hits
            assert result.pof_total_given_hit == pytest.approx(expected)

    def test_chunking_equivalence(self, pof_table, yield_luts):
        """Chunked and single-batch runs agree statistically."""
        layout = SramArrayLayout(n_rows=3, n_cols=3)
        small_chunks = ArraySerSimulator(
            layout, pof_table, yield_luts, ArrayMcConfig(chunk_size=500)
        )
        one_chunk = ArraySerSimulator(
            layout, pof_table, yield_luts, ArrayMcConfig(chunk_size=100000)
        )
        r1 = small_chunks.run(ALPHA, 1.0, 0.7, 30000, np.random.default_rng(11))
        r2 = one_chunk.run(ALPHA, 1.0, 0.7, 30000, np.random.default_rng(11))
        assert r1.pof_total == pytest.approx(r2.pof_total, rel=0.25)

    def test_invalid_args(self, simulator):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            simulator.run(ALPHA, -1.0, 0.7, 100, rng)
        with pytest.raises(ConfigError):
            simulator.run(ALPHA, 1.0, 0.7, 0, rng)


class TestDepositionModes:
    def test_modes_agree_in_order_of_magnitude(self, pof_table, yield_luts):
        layout = SramArrayLayout()
        rng1 = np.random.default_rng(12)
        rng2 = np.random.default_rng(12)
        lut_sim = ArraySerSimulator(
            layout, pof_table, yield_luts, ArrayMcConfig(deposition_mode="lut")
        )
        direct_sim = ArraySerSimulator(
            layout, pof_table, config=ArrayMcConfig(deposition_mode="direct")
        )
        r_lut = lut_sim.run(ALPHA, 2.0, 0.7, 50000, rng1)
        r_direct = direct_sim.run(ALPHA, 2.0, 0.7, 50000, rng2)
        assert r_lut.pof_total > 0
        assert r_direct.pof_total > 0
        ratio = r_lut.pof_total / r_direct.pof_total
        assert 0.2 < ratio < 5.0

    def test_lut_mode_missing_particle(self, pof_table, yield_luts):
        sim = ArraySerSimulator(
            SramArrayLayout(),
            pof_table,
            yield_luts={"alpha": yield_luts["alpha"]},
        )
        with pytest.raises(ConfigError):
            sim.run(PROTON, 1.0, 0.7, 5000, np.random.default_rng(0))


class TestMbuGeometry:
    def test_mbu_needs_multiple_cells(self, pof_table, yield_luts):
        """A 1x1 array can never produce an MBU."""
        sim = ArraySerSimulator(
            SramArrayLayout(n_rows=1, n_cols=1), pof_table, yield_luts
        )
        result = sim.run(ALPHA, 1.0, 0.7, 30000, np.random.default_rng(13))
        assert result.pof_mbu == pytest.approx(0.0, abs=1e-12)

    def test_larger_array_catches_more_mbu(self, simulator, pof_table, yield_luts):
        rng = np.random.default_rng(14)
        result = simulator.run(ALPHA, 1.0, 0.7, 60000, rng)
        # the 9x9 array with isotropic alphas must see some MBU
        assert result.pof_mbu > 0.0
