"""SVG layout rendering."""

import xml.dom.minidom

import pytest

from repro.errors import ConfigError
from repro.layout import SramArrayLayout, array_layout_svg, write_layout_svg


@pytest.fixture(scope="module")
def layout():
    return SramArrayLayout(2, 3)


class TestSvgRendering:
    def test_well_formed_xml(self, layout):
        svg = array_layout_svg(layout)
        xml.dom.minidom.parseString(svg)

    def test_one_rect_per_fin(self, layout):
        svg = array_layout_svg(layout, show_labels=False)
        dom = xml.dom.minidom.parseString(svg)
        rects = dom.getElementsByTagName("rect")
        # background + one per fin
        assert len(rects) == 1 + layout.n_fins

    def test_sensitive_fins_colored(self, layout):
        svg = array_layout_svg(layout, show_labels=False)
        # the I1 color appears exactly once per cell
        assert svg.count("#d62728") == layout.n_cells

    def test_labels_present(self, layout):
        svg = array_layout_svg(layout, show_labels=True)
        for role in ("pu_l", "pd_r", "pg_r"):
            assert role in svg
        assert "100 nm" in svg

    def test_write_to_file(self, layout, tmp_path):
        path = write_layout_svg(layout, tmp_path / "array.svg")
        assert path.exists()
        xml.dom.minidom.parse(str(path))

    def test_scale_validation(self, layout):
        with pytest.raises(ConfigError):
            array_layout_svg(layout, scale=0.0)

    def test_checkerboard_renders(self):
        layout = SramArrayLayout(2, 2, data_pattern="checkerboard")
        svg = array_layout_svg(layout, show_labels=False)
        xml.dom.minidom.parseString(svg)
        # sensitivity still 3 per cell
        assert svg.count("#d62728") == 4
