"""Normalization helpers and figure-series generators."""

import numpy as np
import pytest

from repro.analysis import (
    Series,
    decades_of_decrease,
    dominance_factor,
    fig2a_proton_spectrum,
    fig2b_alpha_spectrum,
    is_monotone_decreasing,
    is_monotone_increasing,
    normalized,
)
from repro.errors import ConfigError


class TestNormalize:
    def test_max_normalization(self):
        out = normalized([1.0, 4.0, 2.0])
        assert np.allclose(out, [0.25, 1.0, 0.5])

    def test_first_normalization(self):
        out = normalized([2.0, 4.0], reference="first")
        assert np.allclose(out, [1.0, 2.0])

    def test_last_normalization(self):
        out = normalized([2.0, 4.0], reference="last")
        assert np.allclose(out, [0.5, 1.0])

    def test_invalid_reference(self):
        with pytest.raises(ConfigError):
            normalized([1.0], reference="median")

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            normalized([0.0, 0.0])


class TestShapeChecks:
    def test_monotone_decreasing(self):
        assert is_monotone_decreasing([3, 2, 1])
        assert not is_monotone_decreasing([1, 2])
        assert is_monotone_decreasing([3, 3.005, 1], tolerance=0.01)

    def test_monotone_increasing(self):
        assert is_monotone_increasing([1, 2, 3])
        assert not is_monotone_increasing([2, 1])

    def test_dominance_factor(self):
        out = dominance_factor([4.0, 0.0, 1.0], [2.0, 0.0, 0.0])
        assert out[0] == pytest.approx(2.0)
        assert out[1] == pytest.approx(1.0)  # 0/0 -> neutral
        assert np.isinf(out[2])

    def test_decades(self):
        assert decades_of_decrease([100.0, 1.0]) == pytest.approx(2.0)
        with pytest.raises(ConfigError):
            decades_of_decrease([0.0, 1.0])


class TestSpectrumFigures:
    def test_fig2a_shape(self):
        series = fig2a_proton_spectrum(40)
        assert isinstance(series, Series)
        assert len(series.x) == 40
        assert is_monotone_decreasing(series.y)

    def test_fig2b_normalization(self):
        series = fig2b_alpha_spectrum(500)
        total = np.trapezoid(series.y, series.x)
        assert total == pytest.approx(0.001 / 3600.0, rel=0.02)


class TestFig4:
    def test_joint_normalization(self):
        from repro.analysis import fig4_electron_yield
        from repro.physics import ALPHA, PROTON
        from repro.transport import ElectronYieldLUT

        rng = np.random.default_rng(0)
        energies = np.logspace(0, 2, 4)
        luts = {
            "alpha": ElectronYieldLUT.build(ALPHA, energies, 3000, rng),
            "proton": ElectronYieldLUT.build(PROTON, energies, 3000, rng),
        }
        alpha_series, proton_series = fig4_electron_yield(luts)
        peak = max(alpha_series.y.max(), proton_series.y.max())
        assert peak == pytest.approx(1.0)
        # paper: alpha curve sits above proton at every common energy
        assert np.all(alpha_series.y > proton_series.y)
