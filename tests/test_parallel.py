"""Parallel execution engine: determinism, merging, sparse kernel."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.layout import SramArrayLayout
from repro.obs.registry import MetricsRegistry
from repro.parallel import parallel_map, resolve_jobs, spawn_seeds
from repro.physics import ALPHA, AlphaEmissionSpectrum, sample_rays
from repro.sram import (
    CharacterizationConfig,
    PofTable,
    SramCellDesign,
    characterize_cell,
)
from repro.sram.strike import ALL_COMBOS
from repro.ser import ArrayMcConfig, ArrayPofResult, ArraySerSimulator
from repro.transport import ElectronYieldLUT


# -- cheap synthetic fixtures (no SPICE characterization needed) ---------------


@pytest.fixture(scope="module")
def pof_table():
    """Tiny hand-built POF table, monotone along every charge axis."""
    vdds = (0.7, 0.9)
    n_q = 5
    base = np.linspace(0.0, 1.0, n_q)
    pof = {}
    for combo in ALL_COMBOS:
        grids = []
        for i_vdd in range(len(vdds)):
            grid = base * (1.0 - 0.2 * i_vdd)
            for _ in range(len(combo) - 1):
                grid = np.add.outer(grid, base * (1.0 - 0.2 * i_vdd)) / 2.0
            grids.append(grid)
        pof[combo] = np.stack(grids, axis=0)
    return PofTable(
        vdd_list=vdds,
        charge_axis_c=np.logspace(-16, -14, n_q),
        pof=pof,
        process_variation=False,
        n_samples=1,
    )


@pytest.fixture(scope="module")
def layout():
    return SramArrayLayout(n_rows=4, n_cols=4)


def make_simulator(layout, pof_table, **overrides):
    config = ArrayMcConfig(deposition_mode="direct", **overrides)
    return ArraySerSimulator(layout, pof_table, config=config)


def run_campaign(layout, pof_table, *, seed=42, n=6000, **overrides):
    simulator = make_simulator(layout, pof_table, **overrides)
    rng = np.random.default_rng(seed)
    return simulator.run(ALPHA, 5.0, 0.7, n, rng)


def assert_results_identical(a, b):
    assert a.pof_total == b.pof_total
    assert a.pof_seu == b.pof_seu
    assert a.pof_mbu == b.pof_mbu
    assert a.n_particles == b.n_particles
    assert a.n_array_hits == b.n_array_hits
    assert a.n_fin_strikes == b.n_fin_strikes
    assert np.array_equal(a.multiplicity_pmf, b.multiplicity_pmf)


# -- engine primitives ---------------------------------------------------------


class TestEngine:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        with pytest.raises(ConfigError):
            resolve_jobs(-1)

    def test_spawn_seeds_deterministic(self):
        seeds_a = spawn_seeds(np.random.default_rng(3), 4)
        seeds_b = spawn_seeds(np.random.default_rng(3), 4)
        for a, b in zip(seeds_a, seeds_b):
            assert np.array_equal(
                np.random.default_rng(a).integers(0, 1 << 30, 8),
                np.random.default_rng(b).integers(0, 1 << 30, 8),
            )

    def test_spawn_seeds_independent_streams(self):
        seeds = spawn_seeds(np.random.default_rng(3), 2)
        draws = [
            np.random.default_rng(s).integers(0, 1 << 30, 8) for s in seeds
        ]
        assert not np.array_equal(draws[0], draws[1])

    def test_parallel_map_preserves_order(self):
        results = parallel_map(_square_task, list(range(20)), n_jobs=4)
        assert results == [i * i for i in range(20)]

    def test_parallel_map_serial_matches_pool(self):
        tasks = list(range(7))
        assert parallel_map(_square_task, tasks, n_jobs=1) == parallel_map(
            _square_task, tasks, n_jobs=2
        )

    def test_payload_reaches_workers(self):
        results = parallel_map(
            _offset_task, [1, 2, 3], payload={"offset": 10}, n_jobs=2
        )
        assert results == [11, 12, 13]


def _square_task(payload, task):
    return task * task


def _offset_task(payload, task):
    return payload["offset"] + task


# -- campaign invariance (the determinism contract) ----------------------------


class TestCampaignInvariance:
    def test_chunk_size_invariance(self, layout, pof_table):
        small = run_campaign(layout, pof_table, chunk_size=100)
        large = run_campaign(layout, pof_table, chunk_size=8192)
        assert small.pof_total > 0
        assert_results_identical(small, large)

    def test_n_jobs_invariance(self, layout, pof_table):
        serial = run_campaign(layout, pof_table, n_jobs=1)
        two = run_campaign(layout, pof_table, n_jobs=2)
        four = run_campaign(layout, pof_table, n_jobs=4)
        assert serial.pof_total > 0
        assert_results_identical(serial, two)
        assert_results_identical(serial, four)

    def test_jobs_and_chunks_together(self, layout, pof_table):
        baseline = run_campaign(layout, pof_table, n_jobs=1, chunk_size=8192)
        mixed = run_campaign(layout, pof_table, n_jobs=4, chunk_size=100)
        assert_results_identical(baseline, mixed)

    def test_spectrum_invariance(self, layout, pof_table):
        spectrum = AlphaEmissionSpectrum()

        def run(n_jobs, chunk_size):
            simulator = make_simulator(
                layout, pof_table, n_jobs=n_jobs, chunk_size=chunk_size
            )
            return simulator.run_spectrum(
                ALPHA, spectrum, 0.7, 6000, np.random.default_rng(21)
            )

        baseline = run(1, 8192)
        assert_results_identical(baseline, run(2, 100))


# -- sparse kernel vs the dense reference --------------------------------------


class TestSparseKernel:
    def _kernel_pair(self, layout, pof_table, seed=17, n=5000):
        simulator = make_simulator(layout, pof_table)
        x_range, y_range, z, _ = layout.launch_window(
            simulator.config.margin_nm
        )
        outputs = []
        for kernel in (
            simulator._process_batch,
            simulator._process_batch_dense,
        ):
            rng = np.random.default_rng(seed)
            rays = sample_rays(n, rng, x_range, y_range, z, "isotropic")
            outputs.append(kernel(ALPHA, 5.0, 0.7, rays, rng))
        return outputs

    def test_sparse_matches_dense(self, layout, pof_table):
        sparse, dense = self._kernel_pair(layout, pof_table)
        assert sparse[3] == dense[3]  # hits
        assert sparse[4] == dense[4]  # strikes
        for i in range(3):  # POF sums
            assert sparse[i] == pytest.approx(dense[i], rel=1e-12)
        assert dense[0] > 0
        np.testing.assert_allclose(sparse[5], dense[5], rtol=1e-12)

    def test_sparse_never_builds_dense_tensor(
        self, layout, pof_table, monkeypatch
    ):
        simulator = make_simulator(layout, pof_table)
        x_range, y_range, z, _ = layout.launch_window(
            simulator.config.margin_nm
        )
        rng = np.random.default_rng(17)
        rays = sample_rays(5000, rng, x_range, y_range, z, "isotropic")

        shapes = []
        real_zeros = np.zeros

        def recording_zeros(shape, *args, **kwargs):
            shapes.append(np.shape(np.empty(shape, dtype=bool)))
            return real_zeros(shape, *args, **kwargs)

        monkeypatch.setattr(np, "zeros", recording_zeros)
        result = simulator._process_batch(ALPHA, 5.0, 0.7, rays, rng)
        assert result[3] > 0
        n_cells = layout.n_cells
        assert not any(
            len(shape) == 3 and shape[1] == n_cells for shape in shapes
        )


# -- shard-result merging ------------------------------------------------------


class TestResultMerge:
    def _result(self, **overrides):
        base = dict(
            particle_name="alpha",
            energy_mev=5.0,
            vdd_v=0.7,
            n_particles=1000,
            n_array_hits=100,
            n_fin_strikes=50,
            pof_total=0.01,
            pof_seu=0.009,
            pof_mbu=0.001,
            launch_area_cm2=1e-8,
            multiplicity_pmf=np.array([0.0, 0.009, 0.001]),
        )
        base.update(overrides)
        return ArrayPofResult(**base)

    def test_weighted_merge(self):
        merged = ArrayPofResult.merge(
            [self._result(), self._result(n_particles=3000, pof_total=0.02)]
        )
        assert merged.n_particles == 4000
        assert merged.n_array_hits == 200
        assert merged.pof_total == pytest.approx(
            (0.01 * 1000 + 0.02 * 3000) / 4000
        )

    def test_merge_rejects_empty(self):
        with pytest.raises(ConfigError):
            ArrayPofResult.merge([])

    def test_merge_rejects_mismatched_max_multiplicity(self):
        with pytest.raises(ConfigError, match="max_multiplicity"):
            ArrayPofResult.merge(
                [
                    self._result(),
                    self._result(multiplicity_pmf=np.zeros(9)),
                ]
            )

    def test_merge_rejects_mixed_campaign_points(self):
        with pytest.raises(ConfigError):
            ArrayPofResult.merge(
                [self._result(), self._result(particle_name="proton")]
            )
        with pytest.raises(ConfigError):
            ArrayPofResult.merge(
                [self._result(), self._result(energy_mev=6.0)]
            )
        with pytest.raises(ConfigError):
            ArrayPofResult.merge([self._result(), self._result(vdd_v=0.9)])

    def test_merge_of_copies_is_identity(self, layout, pof_table):
        result = run_campaign(layout, pof_table, n=4096)
        merged = ArrayPofResult.merge([result])
        assert_results_identical(result, merged)


# -- the other two parallelized levels -----------------------------------------


class TestLutBuildInvariance:
    def test_n_jobs_invariance(self, monkeypatch):
        import repro.transport.lut as lut_module

        # small shards so a tiny build still exercises multi-shard merging
        monkeypatch.setattr(lut_module, "TRIALS_PER_SHARD", 1000)
        energies = np.logspace(-1, 1, 3)

        def build(n_jobs):
            return ElectronYieldLUT.build(
                ALPHA, energies, 2500, np.random.default_rng(11), n_jobs=n_jobs
            )

        serial, pooled = build(1), build(2)
        assert np.array_equal(serial.hit_fraction, pooled.hit_fraction)
        assert np.array_equal(serial.mean_pairs, pooled.mean_pairs)
        assert np.array_equal(serial.quantiles, pooled.quantiles)
        assert serial.hit_fraction.max() > 0


class TestCharacterizeInvariance:
    def test_n_jobs_invariance(self):
        config = CharacterizationConfig(
            vdd_list=(0.7, 0.9),
            n_charge_points=9,
            n_samples=8,
            max_pair_points=4,
            max_triple_points=3,
            seed=5,
        )
        design = SramCellDesign()
        serial = characterize_cell(design, config, n_jobs=1)
        pooled = characterize_cell(design, config, n_jobs=2)
        for combo in ALL_COMBOS:
            assert np.array_equal(serial.pof[combo], pooled.pof[combo])


# -- worker metrics merging ----------------------------------------------------


class TestMetricsMerge:
    def test_merge_snapshot_folds_instruments(self):
        worker = MetricsRegistry()
        worker.counter("mc.trials").inc(500)
        worker.gauge("mc.rate").set(2.5)
        with worker.timer("mc.chunk").time():
            pass
        worker.histogram("mc.err", edges=(0.1, 1.0)).observe(0.5)

        parent = MetricsRegistry()
        parent.counter("mc.trials").inc(100)
        parent.merge_snapshot(worker.snapshot())

        assert parent.counter("mc.trials").value == 600
        assert parent.gauge("mc.rate").value == 2.5
        assert parent.timer("mc.chunk").count == 1
        assert parent.histogram("mc.err", edges=(0.1, 1.0)).count == 1

    def test_merge_snapshot_rejects_edge_mismatch(self):
        worker = MetricsRegistry()
        worker.histogram("h", edges=(0.1, 1.0)).observe(0.5)
        parent = MetricsRegistry()
        parent.histogram("h", edges=(0.2, 2.0))
        with pytest.raises(ValueError):
            parent.merge_snapshot(worker.snapshot())

    def test_parallel_map_merges_worker_metrics(self):
        from repro.obs.registry import disable_metrics, enable_metrics

        registry = enable_metrics(fresh=True)
        try:
            parallel_map(_counting_task, [1, 2, 3, 4], n_jobs=2)
            assert registry.counter("test.work_items").value == 4
            assert registry.counter("parallel.tasks").value == 4
            assert registry.gauge("parallel.workers").value == 2
        finally:
            disable_metrics()


def _counting_task(payload, task):
    from repro.obs import get_registry

    get_registry().counter("test.work_items").inc()
    return task


# -- auto-inline heuristic -----------------------------------------------------


class TestAutoInline:
    """parallel_map skips pool spin-up when an explicit cost hint says
    the whole map is cheaper than forking workers; results are
    identical either way (the determinism contract is orthogonal to
    where tasks run)."""

    def test_tiny_hint_runs_inline(self):
        from repro.obs.registry import disable_metrics, enable_metrics

        registry = enable_metrics(fresh=True)
        try:
            results = parallel_map(
                _square_task, list(range(6)), n_jobs=2, cost_hint_s=1e-6
            )
            assert results == [i * i for i in range(6)]
            assert registry.counter("parallel.auto_inline").value == 1
            assert registry.counter("parallel.serial_maps").value == 1
            assert registry.gauge("parallel.workers").value == 0.0
        finally:
            disable_metrics()

    def test_large_hint_stays_pooled(self):
        from repro.obs.registry import disable_metrics, enable_metrics

        registry = enable_metrics(fresh=True)
        try:
            parallel_map(
                _square_task, list(range(6)), n_jobs=2, cost_hint_s=10.0
            )
            assert registry.counter("parallel.auto_inline").value == 0
            assert registry.gauge("parallel.workers").value == 2
        finally:
            disable_metrics()

    def test_no_hint_stays_pooled(self):
        from repro.obs.registry import disable_metrics, enable_metrics

        registry = enable_metrics(fresh=True)
        try:
            parallel_map(_square_task, list(range(6)), n_jobs=2)
            assert registry.counter("parallel.auto_inline").value == 0
            assert registry.gauge("parallel.workers").value == 2
        finally:
            disable_metrics()

    def test_disabled_under_fault_injection(self, monkeypatch, tmp_path):
        """The kill-hook environment must force real workers, so fault
        drills exercise the pool they intend to (a non-matching spec
        injects nothing but still disables the shortcut)."""
        from repro.obs.registry import disable_metrics, enable_metrics
        from repro.parallel.engine import FAULT_ENV

        monkeypatch.setenv(
            FAULT_ENV, f"some-other-label:0:{tmp_path}/marker"
        )
        registry = enable_metrics(fresh=True)
        try:
            results = parallel_map(
                _square_task, list(range(6)), n_jobs=2, cost_hint_s=1e-6
            )
            assert results == [i * i for i in range(6)]
            assert registry.counter("parallel.auto_inline").value == 0
            assert registry.gauge("parallel.workers").value == 2
        finally:
            disable_metrics()

    def test_threshold_exported(self):
        from repro.parallel import AUTO_INLINE_THRESHOLD_S

        assert AUTO_INLINE_THRESHOLD_S > 0
