"""Geometry: vectors, rays, slab intersections, fin worlds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    Aabb,
    FinGeometry,
    Ray,
    RayBatch,
    SoiFinWorld,
    SoiStack,
    chord_lengths,
    normalize,
    stack_boxes,
)


class TestVec:
    def test_normalize_unit(self):
        v = normalize(np.array([3.0, 4.0, 0.0]))
        assert np.allclose(v, [0.6, 0.8, 0.0])

    def test_normalize_zero_raises(self):
        with pytest.raises(GeometryError):
            normalize(np.zeros(3))

    def test_normalize_batch(self):
        batch = normalize(np.array([[2.0, 0, 0], [0, 0, -5.0]]))
        assert np.allclose(batch, [[1, 0, 0], [0, 0, -1]])


class TestRay:
    def test_direction_normalized(self):
        ray = Ray((0, 0, 0), (0, 0, -2.0))
        assert np.allclose(ray.direction, [0, 0, -1])

    def test_point_at(self):
        ray = Ray((1.0, 2.0, 3.0), (1.0, 0, 0))
        assert np.allclose(ray.point_at(np.array(5.0)), [6.0, 2.0, 3.0])

    def test_batch_shape_mismatch(self):
        with pytest.raises(GeometryError):
            RayBatch(np.zeros((2, 3)), np.ones((3, 3)))

    def test_batch_indexing(self):
        batch = RayBatch(np.zeros((2, 3)), np.array([[1, 0, 0], [0, 1, 0.0]]))
        assert len(batch) == 2
        assert np.allclose(batch[1].direction, [0, 1, 0])


class TestAabb:
    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            Aabb((0, 0, 0), (1, 0, 1))

    def test_size_and_volume(self):
        box = Aabb((0, 0, 0), (2, 3, 4))
        assert np.allclose(box.size, [2, 3, 4])
        assert box.volume_nm3 == 24.0

    def test_contains(self):
        box = Aabb((0, 0, 0), (1, 1, 1))
        assert box.contains((0.5, 0.5, 0.5))
        assert not box.contains((1.5, 0.5, 0.5))

    def test_axis_aligned_chord(self):
        box = Aabb((0, 0, 0), (10, 10, 10))
        ray = Ray((5, 5, 20), (0, 0, -1))
        assert box.chord(ray) == pytest.approx(10.0)

    def test_oblique_chord(self):
        # 45-degree diagonal through a unit cube face pair
        box = Aabb((0, 0, 0), (1, 1, 1))
        d = np.array([1.0, 0.0, -1.0])
        ray = Ray((-0.5, 0.5, 1.5), d)
        # enters at (0, .5, 1), exits at (1, .5, 0): length sqrt(2)
        assert box.chord(ray) == pytest.approx(np.sqrt(2.0))

    def test_miss_returns_zero(self):
        box = Aabb((0, 0, 0), (1, 1, 1))
        ray = Ray((5, 5, 5), (0, 0, -1))
        assert box.chord(ray) == 0.0

    def test_forward_only_clipping(self):
        # origin inside the box: only the forward part counts
        box = Aabb((0, 0, 0), (10, 10, 10))
        ray = Ray((5, 5, 4), (0, 0, -1))
        assert box.chord(ray) == pytest.approx(4.0)

    def test_parallel_ray_inside_slab(self):
        box = Aabb((0, 0, 0), (10, 10, 10))
        ray = Ray((5, 5, 5), (1, 0, 0))  # parallel to z-slabs, inside
        assert box.chord(ray) == pytest.approx(5.0)

    def test_parallel_ray_outside_slab(self):
        box = Aabb((0, 0, 0), (10, 10, 10))
        ray = Ray((5, 5, 20), (1, 0, 0))  # parallel, above the box
        assert box.chord(ray) == 0.0

    def test_translated(self):
        box = Aabb((0, 0, 0), (1, 1, 1)).translated((10, 0, 0))
        assert np.allclose(box.lo, [10, 0, 0])


class TestChordLengthsVectorized:
    def test_matches_scalar_path(self):
        rng = np.random.default_rng(3)
        boxes = [
            Aabb((0, 0, 0), (10, 20, 30)),
            Aabb((15, 0, 0), (25, 20, 30)),
            Aabb((0, 30, 0), (10, 50, 30)),
        ]
        origins = rng.uniform(-5, 30, size=(50, 3))
        origins[:, 2] = 40.0
        directions = rng.normal(size=(50, 3))
        directions[:, 2] = -np.abs(directions[:, 2]) - 0.1
        batch = RayBatch(origins, directions)
        matrix = chord_lengths(batch, boxes)
        for i in range(len(batch)):
            for j, box in enumerate(boxes):
                assert matrix[i, j] == pytest.approx(
                    box.chord(batch[i]), abs=1e-9
                )

    @settings(max_examples=50, deadline=None)
    @given(
        ox=st.floats(-50, 50),
        oy=st.floats(-50, 50),
        dx=st.floats(-1, 1),
        dy=st.floats(-1, 1),
        dz=st.floats(-1, -0.01),
    )
    def test_chord_bounded_by_diagonal(self, ox, oy, dx, dy, dz):
        box = Aabb((0, 0, 0), (10, 20, 30))
        batch = RayBatch(
            np.array([[ox, oy, 40.0]]), np.array([[dx, dy, dz]])
        )
        chord = chord_lengths(batch, [box])[0, 0]
        assert 0.0 <= chord <= box.diagonal_nm + 1e-9

    def test_empty_boxes_rejected(self):
        with pytest.raises(GeometryError):
            stack_boxes([])


class TestFinGeometry:
    def test_default_dimensions(self):
        fin = FinGeometry()
        assert fin.length_nm == 20.0
        assert fin.width_nm == 10.0

    def test_volume(self):
        fin = FinGeometry(20, 10, 30)
        assert fin.volume_nm3 == 6000.0

    def test_box_at(self):
        fin = FinGeometry(20, 10, 30)
        box = fin.box_at(100.0, 50.0)
        assert np.allclose(box.lo, [90, 45, 0])
        assert np.allclose(box.hi, [110, 55, 30])

    def test_invalid_dimension(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            FinGeometry(length_nm=-1)


class TestSoiFinWorld:
    def test_volumes_present(self):
        world = SoiFinWorld()
        names = [v.name for v in world.volumes]
        assert names == ["fin", "box", "substrate"]

    def test_only_fin_collects(self):
        world = SoiFinWorld()
        collecting = [v for v in world.volumes if v.material.collects_charge]
        assert len(collecting) == 1
        assert collecting[0].name == "fin"

    def test_stack_is_contiguous(self):
        world = SoiFinWorld()
        fin = world.volumes[0].box
        box = world.volumes[1].box
        substrate = world.volumes[2].box
        assert fin.lo[2] == pytest.approx(box.hi[2])
        assert box.lo[2] == pytest.approx(substrate.hi[2])

    def test_beol_layer_optional(self):
        world = SoiFinWorld(stack=SoiStack(beol_thickness_nm=50.0))
        names = [v.name for v in world.volumes]
        assert "beol" in names

    def test_launch_plane_above_everything(self):
        world = SoiFinWorld()
        z = world.launch_plane_z()
        for volume in world.volumes:
            assert z > volume.box.hi[2]
