"""FinFET compact model: figures of merit, symmetry, monotonicity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import NMOS, PMOS, FinFETModel, default_tech
from repro.errors import ConfigError

voltages = st.floats(0.0, 1.2, allow_nan=False)


@pytest.fixture(scope="module")
def nmos():
    return default_tech().nmos


@pytest.fixture(scope="module")
def pmos():
    return default_tech().pmos


class TestFiguresOfMerit:
    def test_on_current_scale(self, nmos):
        # 14 nm-class FinFET: tens of uA per fin at 0.8 V
        ion = nmos.on_current(0.8)
        assert 2.0e-5 < ion < 1.2e-4

    def test_off_current_scale(self, nmos):
        # sub-nA leakage per fin
        assert nmos.off_current(0.8) < 2e-9

    def test_on_off_ratio(self, nmos):
        assert nmos.on_current(0.8) / nmos.off_current(0.8) > 1e4

    def test_subthreshold_swing(self, nmos):
        # FinFETs: near-ideal swing, 60-80 mV/dec
        assert 60.0 < nmos.subthreshold_swing_mv_dec() < 85.0

    def test_swing_matches_numeric(self, nmos):
        # measured slope of log10(Id) vs Vgs deep in subthreshold
        v1, v2 = 0.05, 0.15
        i1 = abs(nmos.ids(0.8, v1, 0.0))
        i2 = abs(nmos.ids(0.8, v2, 0.0))
        swing = (v2 - v1) / np.log10(i2 / i1) * 1e3
        assert swing == pytest.approx(nmos.subthreshold_swing_mv_dec(), rel=0.1)

    def test_pmos_mirrors_nmos(self, pmos):
        assert pmos.on_current(0.8) > 2.0e-5
        assert pmos.off_current(0.8) < 2e-9


class TestModelShape:
    @given(vgs=voltages, vds=st.floats(0.01, 1.2))
    @settings(max_examples=100, deadline=None)
    def test_nmos_current_nonnegative_forward(self, nmos, vgs, vds):
        assert nmos.ids(vds, vgs, 0.0) >= 0.0

    @given(vgs=voltages)
    @settings(max_examples=50, deadline=None)
    def test_zero_vds_zero_current(self, nmos, vgs):
        assert nmos.ids(0.0, vgs, 0.0) == pytest.approx(0.0, abs=1e-15)

    @given(vds=st.floats(0.01, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_vgs(self, nmos, vds):
        gates = np.linspace(0.0, 1.0, 21)
        currents = [nmos.ids(vds, vg, 0.0) for vg in gates]
        assert np.all(np.diff(currents) > -1e-18)

    @given(vgs=st.floats(0.3, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_vds(self, nmos, vgs):
        drains = np.linspace(0.0, 1.2, 25)
        currents = [nmos.ids(vd, vgs, 0.0) for vd in drains]
        assert np.all(np.diff(currents) > -1e-18)

    def test_source_drain_symmetry(self, nmos):
        # swapping drain and source flips the current sign
        forward = nmos.ids(0.5, 0.8, 0.1)
        backward = nmos.ids(0.1, 0.8, 0.5)
        assert backward == pytest.approx(-forward, rel=1e-9)

    def test_continuity_through_vds_zero(self, nmos):
        eps = 1e-7
        i_plus = nmos.ids(eps, 0.8, 0.0)
        i_minus = nmos.ids(-eps, 0.8, 0.0)
        assert abs(i_plus - i_minus) < 1e-10

    def test_vectorized_evaluation(self, nmos):
        vd = np.linspace(0, 1, 11)
        out = nmos.ids(vd, 0.8, 0.0)
        assert out.shape == (11,)

    def test_vth_shift_reduces_current(self, nmos):
        base = nmos.ids(0.8, 0.5, 0.0)
        shifted = nmos.ids(0.8, 0.5, 0.0, vth_shift=0.05)
        assert shifted < base


class TestPmosPolarity:
    def test_on_pmos_pulls_up(self, pmos):
        # PMOS with source at vdd, gate low, drain low: current must
        # flow INTO the drain node (negative drain->source current)
        current = pmos.ids(0.0, 0.0, 0.8)
        assert current < 0.0

    def test_off_pmos_leaks_little(self, pmos):
        assert abs(pmos.ids(0.0, 0.8, 0.8)) < 2e-9

    def test_symmetry(self, pmos):
        forward = pmos.ids(0.2, 0.0, 0.8)
        backward = pmos.ids(0.8, 0.0, 0.2)
        assert backward == pytest.approx(-forward, rel=1e-9)


class TestValidation:
    def test_polarity_checked(self):
        with pytest.raises(ConfigError):
            FinFETModel("bad", 0, 0.3, 1e-4, 1.3, 1.5)

    def test_alpha_range_checked(self):
        with pytest.raises(ConfigError):
            FinFETModel("bad", NMOS, 0.3, 1e-4, 2.5, 1.5)

    def test_with_shift(self):
        model = default_tech().nmos
        shifted = model.with_shift(0.05)
        assert shifted.vth0_v == pytest.approx(model.vth0_v + 0.05)


class TestTechnologyCard:
    def test_transit_time_matches_eq2(self):
        # tau = L^2 / (mu Vds), paper eq. 2: L=20nm, mu=300, Vds=1V
        tech = default_tech()
        expected = (20e-7) ** 2 / (300.0 * 1.0)
        assert tech.transit_time_s(1.0) == pytest.approx(expected)

    def test_transit_time_exceeds_10fs(self):
        # paper: "more than 10 fs" at Vdd = 1 V
        assert default_tech().transit_time_s(1.0) > 1.0e-14

    def test_invalid_vds(self):
        with pytest.raises(ConfigError):
            default_tech().transit_time_s(0.0)

    def test_collection_length_at_least_channel(self):
        from repro.devices import TechnologyCard

        with pytest.raises(ConfigError):
            TechnologyCard(collection_length_nm=5.0)


class TestTemperature:
    def test_reference_temperature_is_identity(self):
        model = default_tech().nmos
        same = model.at_temperature(300.0)
        assert same.vth0_v == pytest.approx(model.vth0_v)
        assert same.beta_a_per_valpha == pytest.approx(model.beta_a_per_valpha)

    def test_hotter_is_leakier(self):
        model = default_tech().nmos
        hot = model.at_temperature(398.0)
        assert hot.off_current(0.8) > 5.0 * model.off_current(0.8)

    def test_hotter_is_weaker(self):
        model = default_tech().nmos
        hot = model.at_temperature(398.0)
        assert hot.on_current(0.8) < model.on_current(0.8)

    def test_swing_widens_with_temperature(self):
        model = default_tech().nmos
        hot = model.at_temperature(398.0)
        assert (
            hot.subthreshold_swing_mv_dec()
            > 1.2 * model.subthreshold_swing_mv_dec()
        )

    def test_vth_temperature_coefficient(self):
        model = default_tech().nmos
        hot = model.at_temperature(400.0)
        expected = model.vth0_v - 100.0 * model.VTH_TEMP_COEFF_V_PER_K
        assert hot.vth0_v == pytest.approx(expected)

    def test_invalid_temperature(self):
        with pytest.raises(ConfigError):
            default_tech().nmos.at_temperature(-10.0)

    def test_technology_card_helper(self):
        from repro.devices import technology_at_temperature

        hot = technology_at_temperature(default_tech(), 398.0)
        assert hot.nmos.temperature_k == 398.0
        assert hot.pmos.temperature_k == 398.0
        # geometry untouched
        assert hot.fin.height_nm == default_tech().fin.height_nm

    def test_read_snm_degrades_when_hot(self):
        from repro.devices import technology_at_temperature
        from repro.sram import SramCellDesign
        from repro.sram.snm import static_noise_margin_v

        cold = SramCellDesign()
        hot = SramCellDesign(
            tech=technology_at_temperature(default_tech(), 398.0)
        )
        assert static_noise_margin_v(hot, 0.8, "read") < static_noise_margin_v(
            cold, 0.8, "read"
        )

    def test_finite_pulse_qcrit_shrinks_when_hot(self):
        """With ps-scale collection the restoring current matters:
        hotter (weaker) devices flip at lower charge."""
        from repro.baselines import CircuitLevelSerModel
        from repro.devices import technology_at_temperature
        from repro.sram import SramCellDesign

        cold = CircuitLevelSerModel(SramCellDesign(), pulse_width_s=5e-12)
        hot = CircuitLevelSerModel(
            SramCellDesign(
                tech=technology_at_temperature(default_tech(), 398.0)
            ),
            pulse_width_s=5e-12,
        )
        assert hot.critical_charge_c(0.8) < cold.critical_charge_c(0.8)

    def test_impulse_qcrit_is_separatrix_limited(self):
        """In the impulse limit the symmetric latch flips exactly when
        the node crosses the diagonal separatrix: Qcrit = C * Vdd,
        independent of temperature (documented model property)."""
        from repro.devices import technology_at_temperature
        from repro.sram import SramCellDesign
        from repro.sram.qcrit import nominal_critical_charge_c

        design = SramCellDesign()
        qcrit = nominal_critical_charge_c(design, 0.8)
        expected = design.tech.node_cap_f * 0.8
        assert qcrit == pytest.approx(expected, rel=0.02)

        hot = SramCellDesign(
            tech=technology_at_temperature(default_tech(), 398.0)
        )
        assert nominal_critical_charge_c(hot, 0.8) == pytest.approx(
            qcrit, rel=0.02
        )
