"""Fault tolerance: retry, shard journals, kill-and-resume, degradation.

The worker-death tests use the engine's test-only fault hook
(``REPRO_PARALLEL_KILL="label:index:marker"``): the worker assigned
that shard creates the marker file and dies via ``os._exit``, and the
existing marker disarms the hook afterwards -- one abrupt kill, then
normal execution, which is exactly the crash-then-retry / crash-then-
resume scenario the engine must survive.
"""

import json
import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.errors import ConfigError, TaskError, WorkerCrashError
from repro.layout import SramArrayLayout
from repro.obs.registry import disable_metrics, enable_metrics, get_registry
from repro.parallel import RetryPolicy, ShardJournal, parallel_map
from repro.parallel.engine import FAULT_ENV
from repro.physics import ALPHA
from repro.sram import PofTable
from repro.sram.strike import ALL_COMBOS
from repro.ser import ArrayMcConfig, ArraySerSimulator
from repro.ser.mc import array_shard_decode, array_shard_encode
from repro.transport import ElectronYieldLUT
from repro.transport.lut import lut_shard_decode, lut_shard_encode

SRC_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "src")


# -- shared fixtures (mirroring test_parallel's cheap synthetic setup) ---------


@pytest.fixture(scope="module")
def pof_table():
    vdds = (0.7, 0.9)
    n_q = 5
    base = np.linspace(0.0, 1.0, n_q)
    pof = {}
    for combo in ALL_COMBOS:
        grids = []
        for i_vdd in range(len(vdds)):
            grid = base * (1.0 - 0.2 * i_vdd)
            for _ in range(len(combo) - 1):
                grid = np.add.outer(grid, base * (1.0 - 0.2 * i_vdd)) / 2.0
            grids.append(grid)
        pof[combo] = np.stack(grids, axis=0)
    return PofTable(
        vdd_list=vdds,
        charge_axis_c=np.logspace(-16, -14, n_q),
        pof=pof,
        process_variation=False,
        n_samples=1,
    )


@pytest.fixture(scope="module")
def layout():
    return SramArrayLayout(n_rows=4, n_cols=4)


def make_simulator(layout, pof_table, **overrides):
    config = ArrayMcConfig(deposition_mode="direct", **overrides)
    return ArraySerSimulator(layout, pof_table, config=config)


def run_campaign(
    layout, pof_table, *, seed=42, n=6000, retry=None, journal=None, **overrides
):
    simulator = make_simulator(layout, pof_table, **overrides)
    rng = np.random.default_rng(seed)
    return simulator.run(ALPHA, 5.0, 0.7, n, rng, retry=retry, journal=journal)


def assert_results_identical(a, b):
    assert a.pof_total == b.pof_total
    assert a.pof_seu == b.pof_seu
    assert a.pof_mbu == b.pof_mbu
    assert a.n_particles == b.n_particles
    assert a.n_array_hits == b.n_array_hits
    assert a.n_fin_strikes == b.n_fin_strikes
    assert np.array_equal(a.multiplicity_pmf, b.multiplicity_pmf)


def assert_luts_identical(a, b):
    assert np.array_equal(a.energies_mev, b.energies_mev)
    assert np.array_equal(a.hit_fraction, b.hit_fraction)
    assert np.array_equal(a.mean_pairs, b.mean_pairs)
    assert np.array_equal(a.quantiles, b.quantiles)
    assert a.trials_per_energy == b.trials_per_energy


@pytest.fixture()
def metrics():
    registry = enable_metrics(fresh=True)
    try:
        yield registry
    finally:
        disable_metrics()


# -- module-level task functions (picklable by reference) ----------------------


def _square_task(payload, task):
    return task * task


def _offset_task(payload, task):
    return payload + task


def _failing_task(payload, task):
    if task == payload:
        raise ValueError(f"task {task} is configured to fail")
    return task


def _slow_task(payload, task):
    if task == payload:
        time.sleep(30.0)
    return task


# -- RetryPolicy ---------------------------------------------------------------


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.retries == 2
        assert policy.allow_partial is True
        assert policy.task_timeout_s is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(retries=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_s=-0.1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(task_timeout_s=0.0)

    def test_backoff_progression_and_cap(self):
        policy = RetryPolicy(
            backoff_s=1.0, backoff_multiplier=2.0, backoff_max_s=3.0
        )
        assert policy.backoff_for(1) == 1.0
        assert policy.backoff_for(2) == 2.0
        assert policy.backoff_for(3) == 3.0  # capped, not 4.0
        assert policy.backoff_for(10) == 3.0

    def test_strict(self):
        policy = RetryPolicy(retries=5, allow_partial=True)
        strict = policy.strict()
        assert strict.allow_partial is False
        assert strict.retries == 5
        # already-strict policies come back unchanged (same object)
        assert strict.strict() is strict


# -- ShardJournal --------------------------------------------------------------


class TestShardJournal:
    def test_round_trip(self, tmp_path):
        journal = ShardJournal(tmp_path / "j.jsonl", "key-1")
        journal.record(0, {"x": 1.5})
        journal.record(3, [1, 2, 3])
        replayed = ShardJournal(tmp_path / "j.jsonl", "key-1").load()
        assert replayed == {0: {"x": 1.5}, 3: [1, 2, 3]}

    def test_encode_decode_hooks(self, tmp_path):
        journal = ShardJournal(
            tmp_path / "j.jsonl",
            "key-1",
            encode=lambda arr: arr.tolist(),
            decode=lambda payload: np.asarray(payload, dtype=np.float64),
        )
        values = np.array([0.1, 0.2, np.pi])
        journal.record(0, values)
        replayed = journal.load()
        assert np.array_equal(replayed[0], values)  # bit-identical

    def test_missing_file_is_empty(self, tmp_path):
        assert ShardJournal(tmp_path / "absent.jsonl", "k").load() == {}

    def test_key_mismatch_discarded(self, tmp_path):
        ShardJournal(tmp_path / "j.jsonl", "old-config").record(0, 42)
        assert ShardJournal(tmp_path / "j.jsonl", "new-config").load() == {}

    def test_corrupt_lines_discarded_and_counted(self, tmp_path, metrics):
        path = tmp_path / "j.jsonl"
        journal = ShardJournal(path, "k")
        journal.record(0, "good")
        journal.record(1, "also good")
        with open(path, "a") as handle:
            handle.write("this is not json\n")
            handle.write(json.dumps({"key": "k", "shard": 9}) + "\n")
            # valid shape but tampered payload: digest must catch it
            entry = {
                "v": 1,
                "key": "k",
                "shard": 2,
                "result": "tampered",
                "sha": "0" * 16,
            }
            handle.write(json.dumps(entry) + "\n")
            handle.write('{"torn": ')  # crash mid-append
        replayed = journal.load()
        assert replayed == {0: "good", 1: "also good"}
        assert get_registry().counter("journal.invalid").value == 4

    def test_clear(self, tmp_path):
        journal = ShardJournal(tmp_path / "j.jsonl", "k")
        journal.record(0, 1)
        journal.clear()
        assert not (tmp_path / "j.jsonl").exists()
        journal.clear()  # idempotent


# -- parallel_map + journal (inline path) --------------------------------------


class TestJournalResume:
    def test_journaled_shards_are_skipped(self, tmp_path, metrics):
        journal = ShardJournal(tmp_path / "j.jsonl", "k")
        # pre-record shard 1 with a sentinel value the task fn would
        # never produce: proof the journal result was used verbatim
        journal.record(1, -999)
        results = parallel_map(
            _square_task, [2, 3, 4], journal=journal, label="resume_test"
        )
        assert results == [4, -999, 16]
        assert get_registry().counter("journal.resumed").value == 1

    def test_all_results_journaled(self, tmp_path):
        journal = ShardJournal(tmp_path / "j.jsonl", "k")
        parallel_map(_square_task, [2, 3], journal=journal)
        assert journal.load() == {0: 4, 1: 9}

    def test_exception_interrupt_keeps_partial_credit(self, tmp_path):
        """Inline interruption after >= 1 shard resumes bit-identically."""
        journal = ShardJournal(tmp_path / "j.jsonl", "k")
        with pytest.raises(ValueError):
            parallel_map(_failing_task, [0, 1, 2, 3], payload=2, journal=journal)
        assert set(journal.load()) == {0, 1}  # shards before the crash
        resumed = parallel_map(
            _failing_task, [0, 1, 2, 3], payload=None, journal=journal
        )
        clean = parallel_map(_failing_task, [0, 1, 2, 3], payload=None)
        assert resumed == clean

    def test_full_journal_short_circuits(self, tmp_path):
        journal = ShardJournal(tmp_path / "j.jsonl", "k")
        parallel_map(_square_task, [2, 3], journal=journal)
        # second run executes nothing: a failing fn would raise if run
        results = parallel_map(
            _failing_task, [2, 3], payload=2, journal=journal
        )
        assert results == [4, 9]


# -- pooled-path failure taxonomy ----------------------------------------------


class TestPooledFailures:
    def test_deterministic_exception_wrapped(self):
        with pytest.raises(TaskError) as excinfo:
            parallel_map(
                _failing_task,
                [0, 1, 2, 3],
                payload=2,
                n_jobs=2,
                label="fatal_test",
            )
        assert excinfo.value.shard == 2
        assert excinfo.value.label == "fatal_test"
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_worker_kill_retried_and_recovered(self, tmp_path, monkeypatch, metrics):
        marker = tmp_path / "killed"
        monkeypatch.setenv(FAULT_ENV, f"kill_retry:1:{marker}")
        results = parallel_map(
            _square_task,
            [2, 3, 4, 5],
            n_jobs=2,
            label="kill_retry",
            retry=RetryPolicy(retries=2, backoff_s=0.01),
        )
        assert marker.exists()  # the kill really happened
        assert results == [4, 9, 16, 25]
        assert get_registry().counter("parallel.retries").value >= 1

    def test_worker_kill_past_budget_strict_raises(self, tmp_path, monkeypatch):
        marker = tmp_path / "killed"
        monkeypatch.setenv(FAULT_ENV, f"kill_strict:0:{marker}")
        with pytest.raises(WorkerCrashError):
            parallel_map(
                _square_task,
                [2, 3, 4, 5],
                n_jobs=2,
                label="kill_strict",
                retry=RetryPolicy(retries=0, allow_partial=False),
            )
        assert marker.exists()

    def test_worker_kill_past_budget_degrades(self, tmp_path, monkeypatch, metrics):
        marker = tmp_path / "killed"
        monkeypatch.setenv(FAULT_ENV, f"kill_degrade:0:{marker}")
        tasks = [2, 3, 4, 5]
        results = parallel_map(
            _square_task,
            tasks,
            n_jobs=2,
            label="kill_degrade",
            retry=RetryPolicy(retries=0, allow_partial=True),
        )
        # the killed shard is lost; a broken pool may sweep other
        # in-flight shards with it, so only shard 0 is pinned down
        assert results[0] is None
        for task, result in zip(tasks, results):
            assert result is None or result == task * task
        lost = sum(1 for r in results if r is None)
        assert get_registry().counter("parallel.degraded").value == lost
        assert get_registry().counter("parallel.degraded_maps").value == 1

    def test_watchdog_timeout_degrades_stuck_shard(self, metrics):
        t0 = time.perf_counter()
        results = parallel_map(
            _slow_task,
            [0, 1, 2, 3],
            payload=1,  # shard 1 sleeps 30 s
            n_jobs=2,
            label="watchdog_test",
            retry=RetryPolicy(
                retries=0, allow_partial=True, task_timeout_s=1.0
            ),
        )
        assert time.perf_counter() - t0 < 20.0  # did not wait the 30 s out
        assert results[1] is None
        assert [r for r in results if r is not None] == [0, 2, 3]


# -- kill-and-resume on real campaigns -----------------------------------------


class TestCampaignKillResume:
    def test_array_campaign_resumes_bit_identical(
        self, layout, pof_table, tmp_path, monkeypatch, metrics
    ):
        """n_jobs>1: kill mid-campaign, resume, compare to clean run."""
        clean = run_campaign(layout, pof_table, n=9000, chunk_size=4096)

        journal = ShardJournal(
            tmp_path / "campaign.jsonl",
            "campaign-key",
            encode=array_shard_encode,
            decode=array_shard_decode,
        )
        marker = tmp_path / "killed"
        monkeypatch.setenv(FAULT_ENV, f"array_mc:2:{marker}")
        with pytest.raises(WorkerCrashError):
            run_campaign(
                layout,
                pof_table,
                n=9000,
                chunk_size=4096,
                n_jobs=2,
                retry=RetryPolicy(retries=0, allow_partial=False),
                journal=journal,
            )
        assert marker.exists()
        assert len(journal.load()) >= 1  # partial credit on disk

        resumed = run_campaign(
            layout,
            pof_table,
            n=9000,
            chunk_size=4096,
            n_jobs=2,
            journal=journal,
        )
        assert get_registry().counter("journal.resumed").value >= 1
        assert_results_identical(resumed, clean)
        assert not resumed.degraded
        # the finished campaign cleared its checkpoint
        assert journal.load() == {}

    def test_array_campaign_resumes_serial(
        self, layout, pof_table, tmp_path, monkeypatch
    ):
        """The same journal resumes under n_jobs=1, still bit-identical."""
        clean = run_campaign(layout, pof_table, n=9000, chunk_size=4096)
        journal = ShardJournal(
            tmp_path / "campaign.jsonl",
            "campaign-key",
            encode=array_shard_encode,
            decode=array_shard_decode,
        )
        marker = tmp_path / "killed"
        monkeypatch.setenv(FAULT_ENV, f"array_mc:2:{marker}")
        with pytest.raises(WorkerCrashError):
            run_campaign(
                layout,
                pof_table,
                n=9000,
                chunk_size=4096,
                n_jobs=2,
                retry=RetryPolicy(retries=0, allow_partial=False),
                journal=journal,
            )
        assert len(journal.load()) >= 1
        resumed = run_campaign(
            layout, pof_table, n=9000, chunk_size=4096, n_jobs=1, journal=journal
        )
        assert_results_identical(resumed, clean)

    def test_corrupt_journal_entries_do_not_poison_resume(
        self, layout, pof_table, tmp_path, monkeypatch, metrics
    ):
        """Garbage in the checkpoint degrades to a smaller head start."""
        clean = run_campaign(layout, pof_table, n=9000, chunk_size=4096)
        journal = ShardJournal(
            tmp_path / "campaign.jsonl",
            "campaign-key",
            encode=array_shard_encode,
            decode=array_shard_decode,
        )
        marker = tmp_path / "killed"
        monkeypatch.setenv(FAULT_ENV, f"array_mc:2:{marker}")
        with pytest.raises(WorkerCrashError):
            run_campaign(
                layout,
                pof_table,
                n=9000,
                chunk_size=4096,
                n_jobs=2,
                retry=RetryPolicy(retries=0, allow_partial=False),
                journal=journal,
            )
        assert len(journal.load()) >= 1
        # corrupt the checkpoint tail: garbage + a torn crash write
        with open(tmp_path / "campaign.jsonl", "a") as handle:
            handle.write("garbage line\n")
            handle.write('{"torn": ')
        resumed = run_campaign(
            layout, pof_table, n=9000, chunk_size=4096, journal=journal
        )
        assert get_registry().counter("journal.invalid").value >= 2
        assert_results_identical(resumed, clean)

    def test_lut_build_interrupted_serial_resumes_bit_identical(self, tmp_path):
        """n_jobs=1: a real os._exit kill (subprocess), then resume."""
        energies = np.logspace(-1, 2, 4)
        clean = ElectronYieldLUT.build(
            ALPHA, energies, 400, np.random.default_rng(5)
        )

        journal_path = tmp_path / "lut.jsonl"
        marker = tmp_path / "killed"
        script = (
            "import numpy as np\n"
            "from repro.parallel import ShardJournal\n"
            "from repro.physics import ALPHA\n"
            "from repro.transport import ElectronYieldLUT\n"
            "from repro.transport.lut import lut_shard_decode, "
            "lut_shard_encode\n"
            f"journal = ShardJournal({str(journal_path)!r}, 'lut-key',\n"
            "    encode=lut_shard_encode, decode=lut_shard_decode)\n"
            "energies = np.logspace(-1, 2, 4)\n"
            "ElectronYieldLUT.build(ALPHA, energies, 400,\n"
            "    np.random.default_rng(5), journal=journal)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        env[FAULT_ENV] = f"yield_lut:2:{marker}"
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True
        )
        assert proc.returncode == 17, proc.stderr.decode()  # really killed
        assert marker.exists()

        journal = ShardJournal(
            journal_path,
            "lut-key",
            encode=lut_shard_encode,
            decode=lut_shard_decode,
        )
        replayed = journal.load()
        assert len(replayed) >= 1  # shards 0-1 completed before the kill

        resumed = ElectronYieldLUT.build(
            ALPHA, energies, 400, np.random.default_rng(5), journal=journal
        )
        assert_luts_identical(resumed, clean)
        assert not resumed.degraded
        assert not journal_path.exists()  # cleared after completion


# -- graceful degradation of real campaigns ------------------------------------


class TestDegradedCampaigns:
    def test_degraded_campaign_flagged_and_partial(
        self, layout, pof_table, tmp_path, monkeypatch
    ):
        marker = tmp_path / "killed"
        monkeypatch.setenv(FAULT_ENV, f"array_mc:2:{marker}")
        degraded = run_campaign(
            layout,
            pof_table,
            n=9000,
            chunk_size=4096,
            n_jobs=2,
            retry=RetryPolicy(retries=0, allow_partial=True),
        )
        assert degraded.degraded
        assert degraded.n_particles < 9000  # lost block -> fewer particles
        # the degraded flag survives the journal encoding round-trip
        clone = array_shard_decode(array_shard_encode([degraded]))[0]
        assert clone.degraded

    def test_degraded_standard_error_is_nan(
        self, layout, pof_table, tmp_path, monkeypatch
    ):
        import math

        from repro.analysis.convergence import pof_standard_error

        clean = run_campaign(layout, pof_table, n=9000, chunk_size=4096)
        marker = tmp_path / "killed"
        monkeypatch.setenv(FAULT_ENV, f"array_mc:2:{marker}")
        degraded = run_campaign(
            layout,
            pof_table,
            n=9000,
            chunk_size=4096,
            n_jobs=2,
            retry=RetryPolicy(retries=0, allow_partial=True),
        )
        # a lost draw block means the binomial bound over the surviving
        # particles would *understate* the campaign's uncertainty -- the
        # SE of a degraded result is unknown, not merely wider
        assert math.isnan(pof_standard_error(degraded))
        assert math.isfinite(pof_standard_error(clean))

    def test_degraded_lut_not_cached(self, tmp_path, monkeypatch, metrics):
        from repro.io import ArtifactCache

        cache = ArtifactCache(tmp_path / "cache")
        marker = tmp_path / "killed"
        # TRIALS_PER_SHARD is 100k, so every energy is one shard; kill
        # shard 0 with no retries and allow_partial -> degraded table
        monkeypatch.setenv(FAULT_ENV, f"yield_lut:0:{marker}")
        energies = np.logspace(-1, 2, 3)

        def build():
            return ElectronYieldLUT.build(
                ALPHA,
                energies,
                400,
                np.random.default_rng(5),
                n_jobs=2,
                retry=RetryPolicy(retries=0, allow_partial=True),
            )

        lut = cache.get_or_build("yield-alpha", build, {"seed": 5})
        assert lut.degraded
        assert get_registry().counter("lut_cache.degraded_skips").value == 1
        # nothing cached: a rerun misses and rebuilds
        assert not cache.path_for("yield-alpha", {"seed": 5}).exists()
