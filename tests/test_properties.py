"""Cross-cutting property-based tests on core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry import Aabb, RayBatch, chord_lengths
from repro.physics import ALPHA, PROTON, mass_stopping_power
from repro.ser.pof import combine_seu, combine_total


class TestGeometryProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        data=st.data(),
        n_boxes=st.integers(1, 4),
    )
    def test_chords_additive_under_box_splitting(self, data, n_boxes):
        """Splitting one box into slabs preserves the total chord."""
        # one big box [0,30]^3 split into n z-slabs
        edges = np.linspace(0.0, 30.0, n_boxes + 1)
        slabs = [
            Aabb((0.0, 0.0, edges[i]), (30.0, 30.0, edges[i + 1]))
            for i in range(n_boxes)
        ]
        whole = Aabb((0, 0, 0), (30, 30, 30))
        ox = data.draw(st.floats(-10, 40))
        oy = data.draw(st.floats(-10, 40))
        dx = data.draw(st.floats(-1, 1))
        dy = data.draw(st.floats(-1, 1))
        dz = data.draw(st.floats(-1, -0.05))
        rays = RayBatch(np.array([[ox, oy, 50.0]]), np.array([[dx, dy, dz]]))
        total = chord_lengths(rays, [whole])[0, 0]
        parts = chord_lengths(rays, slabs)[0, :].sum()
        assert parts == pytest.approx(total, abs=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(
        shift=st.floats(-100, 100),
    )
    def test_chords_translation_invariant(self, shift):
        box = Aabb((0, 0, 0), (20, 10, 30))
        moved = box.translated((shift, 0.0, 0.0))
        rays_a = RayBatch(
            np.array([[5.0, 5.0, 50.0]]), np.array([[0.2, 0.1, -1.0]])
        )
        rays_b = RayBatch(
            np.array([[5.0 + shift, 5.0, 50.0]]),
            np.array([[0.2, 0.1, -1.0]]),
        )
        a = chord_lengths(rays_a, [box])[0, 0]
        b = chord_lengths(rays_b, [moved])[0, 0]
        assert a == pytest.approx(b, abs=1e-6)


class TestPhysicsProperties:
    @settings(max_examples=60, deadline=None)
    @given(energy=st.floats(0.01, 500.0))
    def test_stopping_power_positive(self, energy):
        assert mass_stopping_power(PROTON, energy) > 0
        assert mass_stopping_power(ALPHA, energy) > 0

    @settings(max_examples=40, deadline=None)
    @given(energy=st.floats(1.0, 100.0))
    def test_alpha_dominates_above_mev(self, energy):
        assert mass_stopping_power(ALPHA, energy) > mass_stopping_power(
            PROTON, energy
        )


class TestPofProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        pofs=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=6),
        extra=st.floats(0.0, 1.0),
    )
    def test_total_monotone_in_cells(self, pofs, extra):
        """Adding a cell can only increase the total failure probability."""
        base = combine_total(np.array([pofs]))[0]
        augmented = combine_total(np.array([pofs + [extra]]))[0]
        assert augmented >= base - 1e-12

    @settings(max_examples=80, deadline=None)
    @given(
        pofs=st.lists(st.floats(0.0, 0.999), min_size=1, max_size=6),
        scale=st.floats(0.0, 1.0),
    )
    def test_total_monotone_in_pof(self, pofs, scale):
        """Scaling every cell POF down cannot raise the total."""
        row = np.array([pofs])
        scaled = combine_total(row * scale)[0]
        full = combine_total(row)[0]
        assert scaled <= full + 1e-12


class TestLutProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_yield_lut_samples_within_support(self, seed):
        from repro.transport import ElectronYieldLUT

        rng = np.random.default_rng(123)
        lut = ElectronYieldLUT.build(
            ALPHA, np.array([1.0, 10.0]), 1500, rng
        )
        sample_rng = np.random.default_rng(seed)
        samples = lut.sample_pairs(3.0, 100, sample_rng)
        hi = max(lut.quantiles[0, -1], lut.quantiles[1, -1])
        assert np.all(samples >= 0.0)
        assert np.all(samples <= hi + 1e-9)
