"""SER-as-a-service: query canonicalization, engine scheduling, daemon.

The engine tests drive :class:`~repro.service.CampaignEngine` with
injected (gated) runners so coalescing, admission, fairness, and
memoization are asserted deterministically — no sleeps standing in
for synchronization.  The daemon tests run the real asyncio server on
a unix socket in a background thread and talk to it through
:class:`~repro.service.ServiceClient` (the same path ``repro-ser
query`` uses).  One end-to-end test runs a real (tiny) campaign
through :func:`~repro.service.run_query` and checks bit-identity with
a directly built :class:`~repro.core.SerFlow`.
"""

import asyncio
import contextlib
import json
import socket as socketlib
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.obs import disable_events, disable_metrics, enable_metrics
from repro.obs.convergence import reset_convergence
from repro.obs.trace import reset_tracing
from repro.service import (
    AdmissionError,
    CampaignEngine,
    ExecutionOptions,
    QueryError,
    QuerySpec,
    ServiceClient,
    ServiceDaemon,
    ServiceError,
    build_flow,
    get_service_ledger,
    reset_service_ledger,
    run_query,
)


@pytest.fixture(autouse=True)
def _clean_state():
    disable_events()
    disable_metrics()
    reset_tracing()
    reset_convergence()
    reset_service_ledger()
    yield
    disable_events()
    disable_metrics()
    reset_tracing()
    reset_convergence()
    reset_service_ledger()


@contextlib.contextmanager
def engine_ctx(**kwargs):
    engine = CampaignEngine(**kwargs)
    try:
        yield engine
    finally:
        engine.shutdown(wait=True, timeout_s=10.0)


def _tiny_spec(**overrides):
    """A spec distinct from every default (cheap canonicalization)."""
    fields = dict(
        particles=("alpha",),
        vdd_list=(0.8,),
        mc_particles=300,
        samples=8,
        yield_trials=120,
        yield_points=3,
    )
    fields.update(overrides)
    return QuerySpec(**fields)


def _fake_result(degraded=False):
    return {
        "kind": "ser_result",
        "key": "k" * 16,
        "cases": [
            {
                "particle": "alpha",
                "vdd": 0.8,
                "fit_total": 1.0,
                "fit_seu": 0.9,
                "fit_mbu": 0.1,
                "mbu_to_seu_ratio": 0.111,
                "degraded": degraded,
            }
        ],
        "degraded": degraded,
    }


def _wait_until(predicate, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class _GatedRunner:
    """Counts calls; campaigns whose seed is gated block until released."""

    def __init__(self, gate_seeds=()):
        self.calls = []
        self.order = []
        self.started = threading.Event()
        self.release = threading.Event()
        self.gate_seeds = set(gate_seeds)

    def __call__(self, spec):
        self.calls.append(spec)
        self.order.append(spec.seed)
        self.started.set()
        if spec.seed in self.gate_seeds:
            assert self.release.wait(timeout=10.0)
        return _fake_result()


class TestQuerySpec:
    def test_canonical_key_field_order_independent(self):
        a = _tiny_spec()
        b = QuerySpec.from_dict(
            json.loads(json.dumps(a.to_dict(), sort_keys=True))
        )
        assert a.canonical_key() == b.canonical_key()

    def test_canonical_key_tolerates_list_vs_tuple(self):
        a = QuerySpec(particles=["alpha"], vdd_list=[0.8])
        b = QuerySpec(particles=("alpha",), vdd_list=(0.8,))
        assert a == b
        assert a.canonical_key() == b.canonical_key()

    def test_canonical_key_sensitive_to_physics_fields(self):
        base = _tiny_spec()
        assert base.canonical_key() != _tiny_spec(seed=7).canonical_key()
        assert (
            base.canonical_key()
            != _tiny_spec(ecc="SEC-DED").canonical_key()
        )

    def test_interleave_outside_key_without_ecc(self):
        # analysis knobs only count when the analysis is requested
        assert (
            _tiny_spec(interleave=2).canonical_key()
            == _tiny_spec(interleave=8).canonical_key()
        )

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(QueryError, match="unknown spec field"):
            QuerySpec.from_dict({"particless": ["alpha"]})

    def test_rejects_bad_values(self):
        with pytest.raises(QueryError):
            QuerySpec(particles=())
        with pytest.raises(QueryError):
            QuerySpec(vdd_list=())
        with pytest.raises(QueryError):
            QuerySpec(ecc="hamming")
        with pytest.raises(QueryError):
            QuerySpec(interleave=0)

    def test_defaults_match_cli_defaults(self):
        """An empty query asks what a bare ``repro-ser sweep`` computes."""
        spec = QuerySpec()
        assert spec.particles == ("alpha", "proton")
        assert spec.vdd_list == (0.7, 0.8, 0.9, 1.0, 1.1)
        assert spec.mc_particles == 50000
        assert spec.samples == 200
        assert spec.yield_trials == 20000
        assert spec.seed == 2014
        assert spec.variation is True

    def test_to_flow_config_matches_direct_construction(self):
        from repro.core import FlowConfig
        from repro.io import config_hash
        from repro.sram import CharacterizationConfig

        spec = _tiny_spec()
        direct = FlowConfig(
            particles=("alpha",),
            vdd_list=(0.8,),
            yield_trials_per_energy=120,
            yield_energy_points=3,
            characterization=CharacterizationConfig(
                vdd_list=(0.8,), n_samples=8
            ),
            process_variation=True,
            mc_particles_per_bin=300,
            seed=2014,
        )
        assert config_hash(spec.to_flow_config()) == config_hash(direct)


class TestCampaignEngine:
    def test_identical_inflight_requests_coalesce(self):
        registry = enable_metrics(fresh=True)
        runner = _GatedRunner(gate_seeds={2014})
        with engine_ctx(runner=runner) as engine:
            spec = _tiny_spec()
            futures = [engine.submit(spec) for _ in range(3)]
            assert runner.started.wait(5.0)
            # all three landed on one campaign before it finished
            runner.release.set()
            results = [f.result(timeout=10.0) for f in futures]
        assert len(runner.calls) == 1
        assert {r["source"] for r in results} == {"campaign"}
        snapshot = registry.snapshot()["counters"]
        assert snapshot["service.requests"] == 3
        assert snapshot["service.coalesced"] == 2
        assert snapshot["service.campaigns"] == 1

    def test_completed_results_memoized(self):
        registry = enable_metrics(fresh=True)
        runner = _GatedRunner()
        with engine_ctx(runner=runner) as engine:
            spec = _tiny_spec()
            engine.submit(spec).result(timeout=10.0)
            repeat = engine.submit(spec).result(timeout=10.0)
        assert len(runner.calls) == 1
        assert repeat["source"] == "memo"
        assert registry.snapshot()["counters"]["service.memo_hits"] == 1

    def test_degraded_results_not_memoized(self):
        calls = []

        def runner(spec):
            calls.append(spec)
            return _fake_result(degraded=len(calls) == 1)

        with engine_ctx(runner=runner) as engine:
            spec = _tiny_spec()
            first = engine.submit(spec).result(timeout=10.0)
            second = engine.submit(spec).result(timeout=10.0)
        assert first["degraded"] and not second["degraded"]
        assert len(calls) == 2  # the degraded answer was recomputed

    def test_admission_control_rejects_past_bound(self):
        enable_metrics(fresh=True)
        runner = _GatedRunner(gate_seeds={0})
        with engine_ctx(
            runner=runner, max_concurrent=1, max_pending=1
        ) as engine:
            blocker = engine.submit(_tiny_spec(seed=0))
            assert runner.started.wait(5.0)  # occupies the running slot
            assert _wait_until(lambda: engine.stats()["running"] == 1)
            queued = engine.submit(_tiny_spec(seed=1))  # fills the queue
            with pytest.raises(AdmissionError):
                engine.submit(_tiny_spec(seed=2))
            assert engine.stats()["rejected"] == 1
            # a coalescing request is free: it is NOT a new campaign
            engine.submit(_tiny_spec(seed=1))
            runner.release.set()
            blocker.result(timeout=10.0)
            queued.result(timeout=10.0)

    def test_per_tenant_round_robin_fairness(self):
        runner = _GatedRunner(gate_seeds={0})
        with engine_ctx(runner=runner, max_concurrent=1) as engine:
            blocker = engine.submit(_tiny_spec(seed=0), tenant="z")
            assert runner.started.wait(5.0)
            assert _wait_until(lambda: engine.stats()["running"] == 1)
            hog = [
                engine.submit(_tiny_spec(seed=s), tenant="hog")
                for s in (10, 11, 12)
            ]
            polite = engine.submit(_tiny_spec(seed=20), tenant="polite")
            runner.release.set()
            for future in [blocker, polite] + hog:
                future.result(timeout=10.0)
        order = runner.order
        # round-robin: the single 'polite' campaign is not starved
        # behind the hog's backlog — it runs before the hog's last one
        assert order.index(20) < order.index(12)

    def test_campaign_failure_propagates_to_every_waiter(self):
        registry = enable_metrics(fresh=True)
        boom = RuntimeError("campaign exploded")
        gate = threading.Event()

        def runner(spec):
            assert gate.wait(timeout=10.0)
            raise boom

        with engine_ctx(runner=runner) as engine:
            spec = _tiny_spec()
            futures = [engine.submit(spec) for _ in range(2)]
            gate.set()
            for future in futures:
                with pytest.raises(RuntimeError, match="exploded"):
                    future.result(timeout=10.0)
            # a failure is not memoized: the next request retries
            gate.clear()
            retry = engine.submit(spec)
            gate.set()
            with pytest.raises(RuntimeError):
                retry.result(timeout=10.0)
        assert registry.snapshot()["counters"]["service.failures"] == 2

    def test_shutdown_fails_pending_campaigns(self):
        runner = _GatedRunner(gate_seeds={0})
        engine = CampaignEngine(runner=runner, max_concurrent=1)
        blocker = engine.submit(_tiny_spec(seed=0))
        assert runner.started.wait(5.0)
        assert _wait_until(lambda: engine.stats()["running"] == 1)
        pending = engine.submit(_tiny_spec(seed=1))
        runner.release.set()
        engine.shutdown(wait=True, timeout_s=10.0)
        blocker.result(timeout=10.0)  # in-flight campaign completed
        with pytest.raises(ServiceError):
            pending.result(timeout=10.0)
        with pytest.raises(ServiceError):
            engine.submit(_tiny_spec(seed=2))

    def test_ledger_records_served_campaigns(self):
        runner = _GatedRunner(gate_seeds={2014})
        with engine_ctx(runner=runner) as engine:
            spec = _tiny_spec()
            futures = [engine.submit(spec, tenant="t") for _ in range(2)]
            assert runner.started.wait(5.0)
            runner.release.set()
            for future in futures:
                future.result(timeout=10.0)
        entries = get_service_ledger().summary()
        assert len(entries) == 1
        assert entries[0]["tenant"] == "t"
        assert entries[0]["requests"] == 2
        assert entries[0]["ok"] is True

    def test_request_latency_percentiles_exposed(self):
        enable_metrics(fresh=True)
        with engine_ctx(runner=_GatedRunner()) as engine:
            engine.submit(_tiny_spec()).result(timeout=10.0)
            stats = engine.stats()
        assert stats["request_p50_s"] > 0.0
        assert stats["request_p99_s"] >= stats["request_p50_s"]


class _DaemonHarness:
    """Run the asyncio daemon in a background thread for blocking tests."""

    def __init__(self, engine, socket_path):
        self.socket_path = str(socket_path)
        self.daemon = ServiceDaemon(engine, socket_path=self.socket_path)
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        await self.daemon.start()
        self._ready.set()
        await self.daemon.serve_until_shutdown()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(5.0), "daemon did not start"
        return self

    def __exit__(self, *exc_info):
        try:
            with ServiceClient(
                socket_path=self.socket_path, timeout_s=5.0
            ) as client:
                client.shutdown()
        except (ServiceError, OSError):
            pass  # already stopped by the test body
        self._thread.join(5.0)

    def client(self, timeout_s=10.0):
        return ServiceClient(socket_path=self.socket_path, timeout_s=timeout_s)


class TestServiceDaemon:
    def test_query_round_trip_and_stats(self, tmp_path):
        enable_metrics(fresh=True)
        runner = _GatedRunner()
        engine = CampaignEngine(runner=runner)
        try:
            with _DaemonHarness(engine, tmp_path / "ser.sock") as harness:
                with harness.client() as client:
                    assert client.ping()
                    reply = client.query(_tiny_spec())
                    assert reply["ok"] and reply["source"] == "campaign"
                    assert reply["result"]["cases"][0]["fit_total"] == 1.0
                    repeat = client.query(_tiny_spec())
                    assert repeat["source"] == "memo"
                    stats = client.stats()
                    assert stats["requests"] == 2
                    assert stats["memo_hits"] == 1
                    assert stats["campaigns"] == 1
        finally:
            engine.shutdown(wait=True, timeout_s=10.0)

    def test_concurrent_clients_coalesce(self, tmp_path):
        enable_metrics(fresh=True)
        runner = _GatedRunner(gate_seeds={2014})
        engine = CampaignEngine(runner=runner)
        replies = [None, None]
        try:
            with _DaemonHarness(engine, tmp_path / "ser.sock") as harness:

                def ask(i):
                    with harness.client() as client:
                        replies[i] = client.query(_tiny_spec(), tenant=f"t{i}")

                threads = [
                    threading.Thread(target=ask, args=(i,)) for i in (0, 1)
                ]
                for thread in threads:
                    thread.start()
                assert runner.started.wait(5.0)
                # both requests are in flight on one campaign
                assert _wait_until(
                    lambda: engine.stats()["coalesced"] == 1
                )
                runner.release.set()
                for thread in threads:
                    thread.join(10.0)
        finally:
            engine.shutdown(wait=True, timeout_s=10.0)
        assert len(runner.calls) == 1
        assert all(r is not None and r["ok"] for r in replies)

    def test_malformed_spec_rejected_as_bad_request(self, tmp_path):
        engine = CampaignEngine(runner=_GatedRunner())
        try:
            with _DaemonHarness(engine, tmp_path / "ser.sock") as harness:
                with harness.client() as client:
                    with pytest.raises(ServiceError, match="bad-request"):
                        client.query({"no_such_field": 1})
                    # the connection survives a bad request
                    assert client.ping()
        finally:
            engine.shutdown(wait=True, timeout_s=10.0)

    def test_admission_rejection_reported_with_code(self, tmp_path):
        runner = _GatedRunner(gate_seeds={0})
        engine = CampaignEngine(
            runner=runner, max_concurrent=1, max_pending=0
        )
        try:
            with _DaemonHarness(engine, tmp_path / "ser.sock") as harness:
                blocker_reply = [None]

                def ask_blocker():
                    with harness.client() as client:
                        blocker_reply[0] = client.query(_tiny_spec(seed=0))

                blocker = threading.Thread(target=ask_blocker)
                blocker.start()
                assert runner.started.wait(5.0)
                assert _wait_until(lambda: engine.stats()["running"] == 1)
                with harness.client() as client:
                    with pytest.raises(ServiceError, match="rejected"):
                        client.query(_tiny_spec(seed=1))
                runner.release.set()
                blocker.join(10.0)
                assert blocker_reply[0]["ok"]
        finally:
            engine.shutdown(wait=True, timeout_s=10.0)

    def test_client_disconnect_mid_campaign_leaves_engine_serving(
        self, tmp_path
    ):
        """A flaky client must not kill the shared single-flight."""
        runner = _GatedRunner(gate_seeds={2014})
        engine = CampaignEngine(runner=runner)
        try:
            with _DaemonHarness(engine, tmp_path / "ser.sock") as harness:
                # fire a query and hang up before the answer
                raw = socketlib.socket(
                    socketlib.AF_UNIX, socketlib.SOCK_STREAM
                )
                raw.connect(harness.socket_path)
                raw.sendall(
                    json.dumps(
                        {
                            "op": "query",
                            "id": 1,
                            "spec": _tiny_spec().to_dict(),
                        }
                    ).encode("utf-8")
                    + b"\n"
                )
                assert runner.started.wait(5.0)
                raw.close()  # the client dies mid-campaign
                runner.release.set()
                assert _wait_until(
                    lambda: engine.stats()["campaigns"] == 1
                ) or engine.stats()["served"] == 1
                # the daemon still serves; the orphaned result is memoized
                with harness.client() as client:
                    reply = client.query(_tiny_spec())
                    assert reply["source"] == "memo"
        finally:
            engine.shutdown(wait=True, timeout_s=10.0)

    def test_watch_streams_progress_events(self, tmp_path):
        from repro.obs import configure_events, emit_event

        configure_events(path=None)  # ring-only bus for the fan-out
        release = threading.Event()

        def runner(spec):
            emit_event("progress", label="svc", index=0, state="started")
            emit_event("progress", label="svc", index=0, state="finished")
            assert release.wait(timeout=10.0)
            return _fake_result()

        engine = CampaignEngine(runner=runner)
        seen = []
        try:
            with _DaemonHarness(engine, tmp_path / "ser.sock") as harness:
                with harness.client() as client:

                    def on_event(event):
                        seen.append(event)
                        release.set()  # got a live event: let it finish

                    reply = client.query(
                        _tiny_spec(), watch=True, on_event=on_event
                    )
                    assert reply["ok"]
        finally:
            engine.shutdown(wait=True, timeout_s=10.0)
        assert any(e.get("label") == "svc" for e in seen)


class TestCliFrontEnd:
    def test_cli_query_against_daemon(self, tmp_path, capsys):
        engine = CampaignEngine(runner=_GatedRunner())
        sock = tmp_path / "ser.sock"
        try:
            with _DaemonHarness(engine, sock):
                code = cli_main(
                    [
                        "query",
                        "--socket", str(sock),
                        "--particles", "alpha",
                        "--vdd-list", "0.8",
                        "--mc-particles", "300",
                        "--samples", "8",
                        "--yield-trials", "120",
                        "--yield-points", "3",
                    ]
                )
        finally:
            engine.shutdown(wait=True, timeout_s=10.0)
        assert code == 0
        out = capsys.readouterr().out
        assert "source=campaign" in out
        assert "alpha" in out

    def test_cli_query_without_daemon_fails_cleanly(self, tmp_path, capsys):
        code = cli_main(
            ["query", "--socket", str(tmp_path / "nope.sock")]
        )
        assert code == 1
        assert "query failed" in capsys.readouterr().out


class TestRealCampaign:
    def test_run_query_bit_identical_to_direct_flow(self, tmp_path):
        import numpy as np

        from repro.core import SerFlow

        spec = _tiny_spec()
        options = ExecutionOptions(cache_dir=str(tmp_path / "svc-cache"))
        result = run_query(spec, options=options)
        assert result["kind"] == "ser_result"
        case = result["cases"][0]

        direct_flow = SerFlow(
            spec.to_flow_config(), cache_dir=str(tmp_path / "direct-cache")
        )
        direct = direct_flow.sweep().get("alpha", 0.8)
        assert np.isclose(case["fit_total"], direct.fit_total, rtol=0, atol=0)
        assert np.isclose(case["fit_seu"], direct.fit_seu, rtol=0, atol=0)
        assert np.isclose(case["fit_mbu"], direct.fit_mbu, rtol=0, atol=0)

    def test_run_query_with_ecc_analysis(self, tmp_path):
        spec = _tiny_spec(ecc="SEC-DED", interleave=4, ecc_pair_particles=500)
        options = ExecutionOptions(cache_dir=str(tmp_path / "cache"))
        result = run_query(spec, options=options)
        assert len(result["ecc"]) == 1
        analysis = result["ecc"][0]
        assert analysis["scheme"] == "SEC-DED"
        assert analysis["interleave_distance"] == 4
        assert analysis["uncorrectable_rate"] <= analysis["raw_seu_rate"]

    def test_engine_default_runner_end_to_end(self, tmp_path):
        options = ExecutionOptions(cache_dir=str(tmp_path / "cache"))
        with engine_ctx(options=options) as engine:
            spec = _tiny_spec()
            first = engine.submit(spec).result(timeout=120.0)
            repeat = engine.submit(spec).result(timeout=10.0)
        assert first["source"] == "campaign"
        assert repeat["source"] == "memo"
        assert repeat["cases"] == first["cases"]

    def test_build_flow_shares_cache_keys_with_cli_flow(self, tmp_path):
        flow = build_flow(
            _tiny_spec(), ExecutionOptions(cache_dir=str(tmp_path))
        )
        # the flow compiles from the same FlowConfig the CLI produces,
        # so its sweep cache key is a pure function of the spec
        assert flow.config.seed == 2014
        assert flow.config.particles == ("alpha",)
