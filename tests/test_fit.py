"""FIT-rate integration (paper eqs. 7-8)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.physics.spectra import EnergyBins
from repro.ser import ArrayPofResult, integrate_fit
from repro.units import per_second_to_fit


def make_result(pof_total, pof_seu, pof_mbu, energy=1.0, area=1e-7):
    return ArrayPofResult(
        particle_name="alpha",
        energy_mev=energy,
        vdd_v=0.8,
        n_particles=1000,
        n_array_hits=500,
        n_fin_strikes=100,
        pof_total=pof_total,
        pof_seu=pof_seu,
        pof_mbu=pof_mbu,
        launch_area_cm2=area,
    )


def make_bins(fluxes):
    n = len(fluxes)
    edges = np.logspace(0, 1, n + 1)
    centers = np.sqrt(edges[:-1] * edges[1:])
    return EnergyBins(edges, centers, np.asarray(fluxes, dtype=float))


class TestIntegrateFit:
    def test_single_bin_arithmetic(self):
        bins = make_bins([2.0e-6])
        result = make_result(0.5, 0.4, 0.1)
        fit = integrate_fit("alpha", 0.8, bins, [result])
        # rate = POF * flux * area [1/s]
        expected = per_second_to_fit(0.5 * 2.0e-6 * 1e-7)
        assert fit.fit_total == pytest.approx(expected)
        assert fit.fit_seu == pytest.approx(expected * 0.4 / 0.5)
        assert fit.fit_mbu == pytest.approx(expected * 0.1 / 0.5)

    def test_linear_in_flux(self):
        result = make_result(0.5, 0.5, 0.0)
        fit1 = integrate_fit("alpha", 0.8, make_bins([1e-6]), [result])
        fit2 = integrate_fit("alpha", 0.8, make_bins([2e-6]), [result])
        assert fit2.fit_total == pytest.approx(2.0 * fit1.fit_total)

    def test_additive_over_bins(self):
        r1 = make_result(0.2, 0.2, 0.0, energy=1.0)
        r2 = make_result(0.4, 0.4, 0.0, energy=5.0)
        fit = integrate_fit("alpha", 0.8, make_bins([1e-6, 1e-6]), [r1, r2])
        expected = per_second_to_fit((0.2 + 0.4) * 1e-6 * 1e-7)
        assert fit.fit_total == pytest.approx(expected)

    def test_mbu_seu_ratio(self):
        bins = make_bins([1e-6])
        fit = integrate_fit("alpha", 0.8, bins, [make_result(0.5, 0.4, 0.1)])
        assert fit.mbu_to_seu_ratio == pytest.approx(0.25)

    def test_no_events_ratio_is_nan(self):
        # 0/0: no events of either kind -- the ratio is undefined, not 0
        bins = make_bins([1e-6])
        fit = integrate_fit("alpha", 0.8, bins, [make_result(0.0, 0.0, 0.0)])
        assert math.isnan(fit.mbu_to_seu_ratio)

    def test_mbu_only_ratio_is_inf(self):
        # MBU rate with no SEU rate must not read as "no MBUs"
        bins = make_bins([1e-6])
        fit = integrate_fit("alpha", 0.8, bins, [make_result(0.1, 0.0, 0.1)])
        assert fit.fit_mbu > 0
        assert fit.mbu_to_seu_ratio == math.inf

    def test_bin_count_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            integrate_fit(
                "alpha", 0.8, make_bins([1e-6, 1e-6]), [make_result(0.1, 0.1, 0)]
            )

    def test_mismatched_areas_rejected(self):
        bins = make_bins([1e-6, 1e-6])
        results = [
            make_result(0.1, 0.1, 0.0, area=1e-7),
            make_result(0.1, 0.1, 0.0, area=2e-7),
        ]
        with pytest.raises(ConfigError):
            integrate_fit("alpha", 0.8, bins, results)

    def test_ulp_different_areas_accepted(self):
        # independently built results can disagree in the last ulp; a
        # relative-tolerance check must accept them (the old
        # round(area, 18) set membership did not)
        area = 1.234e-7
        area_ulp = np.nextafter(area, 1.0)
        assert area != area_ulp
        bins = make_bins([1e-6, 1e-6])
        results = [
            make_result(0.1, 0.1, 0.0, area=area),
            make_result(0.1, 0.1, 0.0, area=area_ulp),
        ]
        fit = integrate_fit("alpha", 0.8, bins, results)
        assert fit.fit_total > 0

    def test_tiny_real_area_mismatch_rejected(self):
        # a genuine 1-ppm mismatch on a small area is far beyond ulp
        # noise and must still be rejected
        bins = make_bins([1e-6, 1e-6])
        results = [
            make_result(0.1, 0.1, 0.0, area=1e-10),
            make_result(0.1, 0.1, 0.0, area=1e-10 * (1 + 1e-6)),
        ]
        with pytest.raises(ConfigError):
            integrate_fit("alpha", 0.8, bins, results)


class TestArrayPofResult:
    def test_conditional_pof(self):
        result = make_result(0.05, 0.04, 0.01)
        # 1000 launched, 500 through the array: conditional doubles
        assert result.pof_total_given_hit == pytest.approx(0.1)
        assert result.hit_fraction == pytest.approx(0.5)

    def test_no_hits_degenerate(self):
        result = ArrayPofResult(
            "alpha", 1.0, 0.8, 1000, 0, 0, 0.0, 0.0, 0.0, 1e-7
        )
        assert result.pof_total_given_hit == 0.0
        assert math.isnan(result.mbu_to_seu_ratio)

    def test_mbu_only_ratio_is_inf(self):
        result = make_result(0.01, 0.0, 0.01)
        assert result.mbu_to_seu_ratio == math.inf

    def test_ratio_regular_branch(self):
        result = make_result(0.05, 0.04, 0.01)
        assert result.mbu_to_seu_ratio == pytest.approx(0.25)


class TestSerSweep:
    def test_series_accessors(self):
        from repro.ser import SerSweep

        sweep = SerSweep()
        bins = make_bins([1e-6])
        for vdd, pof in ((0.7, 0.5), (0.9, 0.25)):
            sweep.add(
                integrate_fit(
                    "alpha", vdd, bins, [make_result(pof, pof * 0.9, pof * 0.1)]
                )
            )
        vdds, fits = sweep.fit_series("alpha")
        assert list(vdds) == [0.7, 0.9]
        assert fits[0] > fits[1]
        vdds2, ratios = sweep.mbu_seu_series("alpha")
        assert ratios[0] == pytest.approx(1.0 / 9.0)
        assert sweep.particles() == ["alpha"]

    def test_missing_result_raises(self):
        from repro.ser import SerSweep

        with pytest.raises(ConfigError):
            SerSweep().get("alpha", 0.8)

    def test_to_dict(self):
        from repro.ser import SerSweep

        sweep = SerSweep()
        sweep.add(
            integrate_fit(
                "alpha", 0.8, make_bins([1e-6]), [make_result(0.1, 0.1, 0.0)]
            )
        )
        payload = sweep.to_dict()
        assert payload["kind"] == "ser_sweep"
        assert len(payload["results"]) == 1
