"""End-to-end flow orchestration (scaled-down integration tests)."""

import dataclasses

import numpy as np
import pytest

from repro import FlowConfig, SerFlow
from repro.errors import ConfigError
from repro.sram import CharacterizationConfig


def small_config(**overrides):
    base = dict(
        particles=("alpha",),
        vdd_list=(0.7, 0.9),
        yield_energy_points=4,
        yield_trials_per_energy=2000,
        characterization=CharacterizationConfig(
            vdd_list=(0.7, 0.9),
            n_charge_points=13,
            n_samples=30,
            max_pair_points=4,
            max_triple_points=3,
        ),
        array_rows=4,
        array_cols=4,
        n_energy_bins=3,
        mc_particles_per_bin=8000,
        seed=99,
    )
    base.update(overrides)
    return FlowConfig(**base)


@pytest.fixture(scope="module")
def flow():
    return SerFlow(small_config())


class TestFlowStages:
    def test_yield_luts_built_per_particle(self, flow):
        luts = flow.yield_luts()
        assert set(luts) == {"alpha"}
        assert luts["alpha"].trials_per_energy == 2000

    def test_pof_table_respects_flow_settings(self, flow):
        table = flow.pof_table()
        assert np.allclose(table.vdd_list, [0.7, 0.9])
        assert table.process_variation

    def test_layout_dimensions(self, flow):
        layout = flow.layout()
        assert layout.n_cells == 16

    def test_stages_are_cached_in_memory(self, flow):
        assert flow.yield_luts() is flow.yield_luts()
        assert flow.pof_table() is flow.pof_table()
        assert flow.simulator() is flow.simulator()


class TestFitAndSweep:
    def test_fit_result_fields(self, flow):
        result = flow.fit("alpha", 0.7)
        assert result.particle_name == "alpha"
        assert result.fit_total >= result.fit_seu >= 0.0
        assert result.fit_total > 0.0
        assert len(result.bins) == 3

    def test_sweep_covers_grid(self, flow):
        sweep = flow.sweep()
        assert sweep.particles() == ["alpha"]
        assert list(sweep.vdd_values("alpha")) == [0.7, 0.9]

    def test_ser_rises_at_low_vdd(self, flow):
        sweep = flow.sweep()
        low = sweep.get("alpha", 0.7).fit_total
        high = sweep.get("alpha", 0.9).fit_total
        assert low > high

    def test_pof_vs_energy(self, flow):
        results = flow.pof_vs_energy("alpha", 0.7, [1.0, 10.0], 5000)
        assert len(results) == 2
        assert results[0].energy_mev == 1.0

    def test_unknown_particle_rejected(self, flow):
        from repro.errors import PhysicsError

        with pytest.raises(PhysicsError):
            flow.fit("neutron", 0.7)


class TestDiskCache:
    def test_luts_cached_across_flows(self, tmp_path):
        config = small_config()
        flow1 = SerFlow(config, cache_dir=str(tmp_path))
        flow1.yield_luts()
        flow1.pof_table()
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 2  # one yield LUT + one POF table

        flow2 = SerFlow(config, cache_dir=str(tmp_path))
        luts = flow2.yield_luts()
        assert np.allclose(
            luts["alpha"].mean_pairs, flow1.yield_luts()["alpha"].mean_pairs
        )

    def test_config_change_invalidates(self, tmp_path):
        flow1 = SerFlow(small_config(), cache_dir=str(tmp_path))
        flow1.pof_table()
        changed = small_config(
            characterization=CharacterizationConfig(
                vdd_list=(0.7, 0.9),
                n_charge_points=13,
                n_samples=31,  # different
                max_pair_points=4,
                max_triple_points=3,
            )
        )
        flow2 = SerFlow(changed, cache_dir=str(tmp_path))
        flow2.pof_table()
        assert len(list(tmp_path.glob("pof-*.json"))) == 2


class TestConfigValidation:
    def test_empty_particles(self):
        with pytest.raises(ConfigError):
            FlowConfig(particles=())

    def test_bad_particle_name(self):
        from repro.errors import PhysicsError

        with pytest.raises(PhysicsError):
            FlowConfig(particles=("neutron",))

    def test_energy_range_override(self):
        config = FlowConfig(energy_ranges={"proton": (2.0, 50.0), "alpha": (1.0, 9.0)})
        assert config.energy_range_for("proton") == (2.0, 50.0)

    def test_energy_range_missing_particle(self):
        config = FlowConfig(energy_ranges={"alpha": (1.0, 9.0)})
        with pytest.raises(ConfigError):
            config.energy_range_for("proton")

    def test_process_variation_override_propagates(self):
        config = FlowConfig(process_variation=False)
        assert not config.effective_characterization().process_variation


class TestSweepCache:
    def test_sweep_cached_on_disk(self, tmp_path):
        config = small_config()
        flow1 = SerFlow(config, cache_dir=str(tmp_path))
        sweep1 = flow1.sweep()
        assert any(tmp_path.glob("sweep-*.json"))

        flow2 = SerFlow(config, cache_dir=str(tmp_path))
        sweep2 = flow2.sweep()
        assert sweep2.get("alpha", 0.7).fit_total == pytest.approx(
            sweep1.get("alpha", 0.7).fit_total
        )
