"""Figure-series generators on synthetic sweeps (fast unit coverage)."""

import numpy as np
import pytest

from repro.analysis import fig9_fit_vs_vdd, fig10_mbu_seu, fig11_process_variation
from repro.physics.spectra import EnergyBins
from repro.ser import ArrayPofResult, SerSweep, integrate_fit


def synthetic_sweep(spec):
    """spec: {(particle, vdd): (pof_total, pof_seu)}."""
    sweep = SerSweep()
    edges = np.array([1.0, 10.0])
    bins = EnergyBins(edges, np.array([3.0]), np.array([1e-6]))
    for (particle, vdd), (total, seu) in spec.items():
        result = ArrayPofResult(
            particle, 3.0, vdd, 1000, 500, 50, total, seu, total - seu, 1e-7
        )
        sweep.add(integrate_fit(particle, vdd, bins, [result]))
    return sweep


@pytest.fixture(scope="module")
def sweep():
    return synthetic_sweep(
        {
            ("alpha", 0.7): (0.50, 0.46),
            ("alpha", 1.1): (0.20, 0.19),
            ("proton", 0.7): (0.30, 0.299),
            ("proton", 1.1): (0.003, 0.003),
        }
    )


class TestFig9:
    def test_joint_normalization(self, sweep):
        series = fig9_fit_vs_vdd(sweep)
        peak = max(series["alpha"].y.max(), series["proton"].y.max())
        assert peak == pytest.approx(1.0)

    def test_ratios_preserved(self, sweep):
        series = fig9_fit_vs_vdd(sweep)
        assert series["proton"].y[0] / series["alpha"].y[0] == pytest.approx(
            0.3 / 0.5
        )

    def test_x_axis_is_vdd(self, sweep):
        series = fig9_fit_vs_vdd(sweep)
        assert list(series["alpha"].x) == [0.7, 1.1]


class TestFig10:
    def test_percentage_units(self, sweep):
        series = fig10_mbu_seu(sweep)
        # alpha at 0.7: mbu/seu = 0.04/0.46
        assert series["alpha"].y[0] == pytest.approx(100 * 0.04 / 0.46)

    def test_species_present(self, sweep):
        series = fig10_mbu_seu(sweep)
        assert set(series) == {"alpha", "proton"}


class TestFig11:
    def test_normalized_by_pv_peak(self):
        with_pv = synthetic_sweep(
            {("alpha", 0.7): (0.5, 0.5), ("alpha", 1.1): (0.25, 0.25)}
        )
        without_pv = synthetic_sweep(
            {("alpha", 0.7): (0.4, 0.4), ("alpha", 1.1): (0.25, 0.25)}
        )
        pv_series, nom_series = fig11_process_variation(with_pv, without_pv)
        assert pv_series.y[0] == pytest.approx(1.0)
        assert nom_series.y[0] == pytest.approx(0.8)
        assert pv_series.label == "considering PV"
