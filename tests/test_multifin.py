"""Multi-fin device support: layout, cell model, end-to-end."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.layout import CellLayout, SramArrayLayout
from repro.sram import SramCellDesign
from repro.sram.qcrit import nominal_critical_charge_c
from repro.sram.snm import static_noise_margin_v


class TestLayoutMultiFin:
    def test_fin_counts(self):
        layout = SramArrayLayout(1, 1, nfins={"pd_l": 2, "pd_r": 2})
        assert layout.n_fins == 8
        # pd_l is sensitive in the uniform pattern: 2 sensitive fins +
        # pu_r + pg_r
        assert layout.sensitive_fin_count() == 4

    def test_multifin_boxes_disjoint(self):
        cell = CellLayout()
        boxes = cell.fin_boxes("pd_l", 2)
        assert len(boxes) == 2
        a, b = boxes
        overlap = np.all((a.lo < b.hi) & (b.lo < a.hi))
        assert not overlap

    def test_fins_share_strike_index(self):
        layout = SramArrayLayout(1, 1, nfins={"pd_l": 2})
        pd_l_fins = layout.fin_strike[
            layout.fin_role == 1  # pd_l is ROLES[1]
        ]
        assert len(pd_l_fins) == 2
        assert np.all(pd_l_fins == 0)  # both feed I1

    def test_centroid_preserved(self):
        cell = CellLayout()
        single = cell.fin_box("pd_l")
        double = cell.fin_boxes("pd_l", 2)
        centroid_x = 0.5 * sum(0.5 * (b.lo[0] + b.hi[0]) for b in double)
        assert centroid_x == pytest.approx(
            0.5 * (single.lo[0] + single.hi[0]), abs=cell.device_fin_pitch_nm
        )

    def test_unknown_role_rejected(self):
        with pytest.raises(ConfigError):
            SramArrayLayout(1, 1, nfins={"px": 2})

    def test_invalid_nfin(self):
        with pytest.raises(ConfigError):
            CellLayout().fin_boxes("pd_l", 0)


class TestReadStableCell:
    """The classic 1-2-1 (PU-PD-PG) read-stability upsizing."""

    @pytest.fixture(scope="class")
    def dense(self):
        return SramCellDesign()

    @pytest.fixture(scope="class")
    def stable(self):
        return SramCellDesign(nfin_pd=2)

    def test_read_snm_improves(self, dense, stable):
        assert static_noise_margin_v(
            stable, 0.8, "read"
        ) > static_noise_margin_v(dense, 0.8, "read")

    def test_qcrit_impulse_unchanged(self, dense, stable):
        """The separatrix (and thus impulse Qcrit) is set by the node
        capacitance, not the drive ratio."""
        assert nominal_critical_charge_c(
            stable, 0.8
        ) == pytest.approx(nominal_critical_charge_c(dense, 0.8), rel=0.05)

    def test_sensitive_area_grows(self, dense, stable):
        """The stability upsizing costs SER exposure: two pull-down
        fins collect charge for the same I1."""
        dense_layout = SramArrayLayout(3, 3)
        stable_layout = SramArrayLayout(
            3, 3, nfins={"pd_l": 2, "pd_r": 2}
        )
        assert (
            stable_layout.sensitive_fin_count()
            > dense_layout.sensitive_fin_count()
        )

    def test_variation_tighter_on_wide_device(self, stable):
        from repro.devices import VariationModel

        model = VariationModel(sigma_vth_v=0.05)
        shifts = model.sample_shifts(
            20000, stable.nfins(), np.random.default_rng(0)
        )
        # role order: pu_l pd_l pg_l ... -> pd_l (index 1) has 2 fins
        assert np.std(shifts[:, 1]) < np.std(shifts[:, 0])
