"""Pluggable array-compute backend: selection, bit-identity, fusion.

Covers the four contracts of the backend plane:

* selection precedence -- ``REPRO_BACKEND`` beats an explicit override
  beats ``set_backend_default``, the same layering as the warm-pool
  and shm switches (one parameterized test across all three);
* graceful degradation -- requesting an unavailable accelerated
  backend falls back to numpy with a counted warning, never an error;
* bit-identity -- the numpy backend reproduces the historical inline
  kernels exactly (primitive goldens + campaign invariance), the
  vectorized cluster/POF-grouping satellites match their preserved
  loop references element-for-element, fused sweeps match per-campaign
  sweeps, and kill-and-resume stays deterministic under
  ``backend="numpy"``;
* tolerance -- numba/cupy campaigns agree with numpy within 1e-3
  (auto-skipped on hosts without the dependency).
"""

import numpy as np
import pytest

from repro.backend import (
    BACKENDS,
    ENV_BACKEND,
    CupyBackend,
    NumbaBackend,
    NumpyBackend,
    backend_name,
    get_backend,
    get_backend_instance,
    resolve_backend,
    set_backend_default,
)
from repro.errors import ConfigError, WorkerCrashError
from repro.layout import SramArrayLayout
from repro.obs.manifest import build_manifest
from repro.obs.registry import disable_metrics, enable_metrics, get_registry
from repro.parallel import RetryPolicy, ShardJournal
from repro.parallel.engine import FAULT_ENV
from repro.parallel.pool import set_warm_pool_default, warm_pool_enabled
from repro.parallel.shm import set_shm_default, shm_enabled
from repro.physics import ALPHA
from repro.ser import ArrayMcConfig, ArraySerSimulator, BatchPlan, CampaignPoint
from repro.ser.clusters import _accumulate_pairs_loop, _pair_streams
from repro.ser.mc import array_shard_decode, array_shard_encode
from repro.sram import PofTable
from repro.sram.pof_lut import _group_codes, _group_codes_loop
from repro.sram.strike import ALL_COMBOS

needs_numba = pytest.mark.skipif(
    not NumbaBackend.available(), reason="numba not installed"
)
needs_cupy = pytest.mark.skipif(
    not CupyBackend.available(), reason="cupy/GPU not available"
)


# -- shared fixtures (the cheap synthetic setup of test_faults) ----------------


@pytest.fixture(scope="module")
def pof_table():
    vdds = (0.7, 0.9)
    n_q = 5
    base = np.linspace(0.0, 1.0, n_q)
    pof = {}
    for combo in ALL_COMBOS:
        grids = []
        for i_vdd in range(len(vdds)):
            grid = base * (1.0 - 0.2 * i_vdd)
            for _ in range(len(combo) - 1):
                grid = np.add.outer(grid, base * (1.0 - 0.2 * i_vdd)) / 2.0
            grids.append(grid)
        pof[combo] = np.stack(grids, axis=0)
    return PofTable(
        vdd_list=vdds,
        charge_axis_c=np.logspace(-16, -14, n_q),
        pof=pof,
        process_variation=False,
        n_samples=1,
    )


@pytest.fixture(scope="module")
def layout():
    return SramArrayLayout(n_rows=4, n_cols=4)


def make_simulator(layout, pof_table, **overrides):
    config = ArrayMcConfig(deposition_mode="direct", **overrides)
    return ArraySerSimulator(layout, pof_table, config=config)


def run_campaign(
    layout, pof_table, *, seed=42, n=6000, retry=None, journal=None, **overrides
):
    simulator = make_simulator(layout, pof_table, **overrides)
    rng = np.random.default_rng(seed)
    return simulator.run(ALPHA, 5.0, 0.7, n, rng, retry=retry, journal=journal)


def assert_results_identical(a, b):
    assert a.pof_total == b.pof_total
    assert a.pof_seu == b.pof_seu
    assert a.pof_mbu == b.pof_mbu
    assert a.n_particles == b.n_particles
    assert a.n_array_hits == b.n_array_hits
    assert a.n_fin_strikes == b.n_fin_strikes
    assert np.array_equal(a.multiplicity_pmf, b.multiplicity_pmf)


@pytest.fixture()
def metrics():
    registry = enable_metrics(fresh=True)
    try:
        yield registry
    finally:
        disable_metrics()


# -- selection precedence ------------------------------------------------------

# One row per execution-plane switch: the env var must beat the
# explicit override, which must beat the module set_*_default.
PRECEDENCE = {
    "warm_pool": dict(
        query=warm_pool_enabled,
        set_default=set_warm_pool_default,
        factory_default=True,
        non_default=False,
        override=True,
        env=("REPRO_NO_WARM_POOL", "1"),
        env_wins=False,
    ),
    "shm": dict(
        query=shm_enabled,
        set_default=set_shm_default,
        factory_default=True,
        non_default=False,
        override=True,
        env=("REPRO_NO_SHM", "1"),
        env_wins=False,
    ),
    "backend": dict(
        query=backend_name,
        set_default=set_backend_default,
        factory_default="numpy",
        non_default="numba",
        override="cupy",
        env=(ENV_BACKEND, "numpy"),
        env_wins="numpy",
    ),
}


class TestPrecedence:
    @pytest.mark.parametrize("switch", sorted(PRECEDENCE))
    def test_env_beats_override_beats_default(self, switch, monkeypatch):
        knob = PRECEDENCE[switch]
        monkeypatch.delenv(knob["env"][0], raising=False)
        try:
            # layer 3: the module default applies when nothing else is set
            knob["set_default"](knob["non_default"])
            assert knob["query"]() == knob["non_default"]
            # layer 2: an explicit override beats the default
            assert knob["query"](knob["override"]) == knob["override"]
            # layer 1: the environment beats both
            monkeypatch.setenv(*knob["env"])
            assert knob["query"](knob["override"]) == knob["env_wins"]
            assert knob["query"]() == knob["env_wins"]
        finally:
            knob["set_default"](knob["factory_default"])


# -- resolution and graceful fallback ------------------------------------------


class TestResolution:
    def test_registered_names(self):
        assert BACKENDS == ("numpy", "numba", "cupy")

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            backend_name("fortran")
        with pytest.raises(ConfigError):
            get_backend_instance("fortran")
        with pytest.raises(ConfigError):
            ArrayMcConfig(backend="fortran")

    def test_env_unknown_name_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "fortran")
        with pytest.raises(ConfigError):
            backend_name()

    def test_numpy_always_resolves_to_itself(self):
        assert resolve_backend("numpy") == "numpy"
        assert isinstance(get_backend("numpy"), NumpyBackend)

    def test_instances_are_cached(self):
        assert get_backend_instance("numpy") is get_backend_instance("numpy")

    def test_unavailable_request_falls_back_counted(
        self, monkeypatch, metrics
    ):
        if CupyBackend.available():
            pytest.skip("cupy present: fallback path not reachable")
        monkeypatch.setenv(ENV_BACKEND, "cupy")
        assert backend_name() == "cupy"  # requested name survives
        assert resolve_backend() == "numpy"  # effective name degrades
        assert get_registry().counter("backend.fallbacks").value >= 1
        # the degraded instance is plain numpy, fully functional
        assert isinstance(get_backend(), NumpyBackend)

    def test_simulator_adopts_resolved_backend(self, layout, pof_table):
        simulator = make_simulator(layout, pof_table, backend="numpy")
        assert simulator._backend_name == "numpy"

    def test_campaign_runs_counted_per_backend(
        self, layout, pof_table, metrics
    ):
        run_campaign(layout, pof_table, n=4096, backend="numpy")
        assert get_registry().counter("backend.runs.numpy").value >= 1


# -- numpy bit-identity golden -------------------------------------------------


class TestNumpyPrimitiveGoldens:
    """NumpyBackend primitives vs. the historical inline code, verbatim."""

    def _segments(self, rng, n_groups=40, max_size=6):
        sizes = rng.integers(1, max_size + 1, size=n_groups)
        pof = rng.random(int(sizes.sum()))
        starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        return pof, starts

    def test_segment_combine_matches_inline_eqs(self):
        xp = NumpyBackend()
        rng = np.random.default_rng(21)
        one_minus_eps = 1.0 - 1e-12
        for _ in range(50):
            pof, starts = self._segments(rng)
            total, seu, mbu = xp.segment_combine(pof, starts, one_minus_eps)
            # the exact expressions the sparse kernel used to inline
            ref_total = 1.0 - np.multiply.reduceat(1.0 - pof, starts)
            clipped = np.minimum(pof, one_minus_eps)
            survive = 1.0 - clipped
            ref_seu = np.multiply.reduceat(survive, starts) * np.add.reduceat(
                clipped / survive, starts
            )
            ref_mbu = np.maximum(ref_total - ref_seu, 0.0)
            assert np.array_equal(total, ref_total)
            assert np.array_equal(seu, ref_seu)
            assert np.array_equal(mbu, ref_mbu)

    def test_segment_multiplicity_matches_sequential_dp(self):
        """The rank-vectorized DP equals a per-segment python DP, bitwise."""
        xp = NumpyBackend()
        rng = np.random.default_rng(22)
        max_k = 4
        for _ in range(25):
            pof, starts = self._segments(rng, n_groups=20)
            got = xp.segment_multiplicity(pof, starts, max_k)
            ends = np.append(starts[1:], len(pof))
            pmfs = np.zeros((len(starts), max_k + 1), dtype=np.float64)
            for g, (lo, hi) in enumerate(zip(starts, ends)):
                pmf = np.zeros(max_k + 1)
                pmf[0] = 1.0
                for p in pof[lo:hi]:
                    shifted = np.zeros_like(pmf)
                    shifted[1:] = pmf[:-1]
                    shifted[-1] += pmf[-1]  # overflow bin absorbs k >= max_k
                    pmf = pmf * (1.0 - p) + shifted * p
                pmfs[g] = pmf
            assert np.array_equal(got, pmfs.sum(axis=0))

    def test_bilinear_gather_matches_inline_blend(self):
        xp = NumpyBackend()
        rng = np.random.default_rng(23)
        stride = 9
        flat = rng.standard_normal(stride * 7)
        base = rng.integers(0, stride * 5, size=64)
        fw = rng.random(64)
        fu = rng.random(64)
        got = xp.bilinear_gather(flat, base, stride, fw, fu)
        v00, v01 = flat[base], flat[base + 1]
        v10, v11 = flat[base + stride], flat[base + stride + 1]
        z0 = v00 + (v01 - v00) * fw
        z1 = v10 + (v11 - v10) * fw
        assert np.array_equal(got, z0 + (z1 - z0) * fu)


class TestNumpyCampaignIdentity:
    def test_default_resolution_is_numpy_and_identical(
        self, layout, pof_table
    ):
        """``backend=None`` resolves to numpy and changes no bit."""
        implicit = run_campaign(layout, pof_table)
        explicit = run_campaign(layout, pof_table, backend="numpy")
        assert_results_identical(implicit, explicit)

    def test_identical_across_chunking_and_jobs(self, layout, pof_table):
        baseline = run_campaign(
            layout, pof_table, n=9000, chunk_size=4096, backend="numpy"
        )
        rechunked = run_campaign(
            layout, pof_table, n=9000, chunk_size=16384, backend="numpy"
        )
        fanned = run_campaign(
            layout,
            pof_table,
            n=9000,
            chunk_size=4096,
            n_jobs=2,
            backend="numpy",
        )
        assert_results_identical(baseline, rechunked)
        assert_results_identical(baseline, fanned)


# -- accelerated backends: tolerance contract ----------------------------------


class TestAcceleratedTolerance:
    """max |delta| <= 1e-3 vs numpy; auto-skipped when unavailable."""

    def _compare(self, layout, pof_table, name):
        base = run_campaign(layout, pof_table, n=9000, backend="numpy")
        accel = run_campaign(layout, pof_table, n=9000, backend=name)
        assert accel.n_particles == base.n_particles
        assert accel.n_array_hits == base.n_array_hits
        assert accel.n_fin_strikes == base.n_fin_strikes
        assert abs(accel.pof_total - base.pof_total) <= 1e-3
        assert abs(accel.pof_seu - base.pof_seu) <= 1e-3
        assert abs(accel.pof_mbu - base.pof_mbu) <= 1e-3
        assert (
            np.max(np.abs(accel.multiplicity_pmf - base.multiplicity_pmf))
            <= 1e-3
        )

    @needs_numba
    def test_numba_campaign_within_tolerance(self, layout, pof_table):
        self._compare(layout, pof_table, "numba")

    @needs_cupy
    def test_cupy_campaign_within_tolerance(self, layout, pof_table):
        self._compare(layout, pof_table, "cupy")


# -- cross-campaign batch fusion -----------------------------------------------


class TestBatchPlan:
    def test_fused_points_match_individual_runs(self, layout, pof_table):
        """Two campaigns fused into one plan == two separate runs."""
        simulator = make_simulator(layout, pof_table, backend="numpy")
        specs = [(5.0, 0.7, 9000, 101), (2.0, 0.9, 6000, 202)]
        individual = [
            simulator.run(
                ALPHA,
                energy,
                vdd,
                n,
                np.random.default_rng(np.random.SeedSequence(seed)),
            )
            for energy, vdd, n, seed in specs
        ]
        points = [
            CampaignPoint(
                index=i,
                particle_name="alpha",
                energy_mev=energy,
                vdd_v=vdd,
                n_particles=n,
                seed=np.random.SeedSequence(seed),
            )
            for i, (energy, vdd, n, seed) in enumerate(specs)
        ]
        fused = BatchPlan(simulator, points).execute()
        assert len(fused) == 2
        for merged, single in zip(fused, individual):
            assert_results_identical(merged, single)

    def test_fused_plan_metrics(self, layout, pof_table, metrics):
        simulator = make_simulator(layout, pof_table, backend="numpy")
        points = [
            CampaignPoint(0, "alpha", 5.0, 0.7, 5000, np.random.SeedSequence(1))
        ]
        BatchPlan(simulator, points).execute()
        counters = get_registry().snapshot()["counters"]
        assert counters["backend.fused_plans"] == 1
        assert counters["backend.fused_campaigns"] == 1
        assert counters["backend.fused_blocks"] >= 1

    def test_lost_task_raises(self, layout, pof_table, tmp_path, monkeypatch):
        """A fused plan cannot degrade: a lost block is fatal."""
        simulator = make_simulator(layout, pof_table, backend="numpy")
        points = [
            CampaignPoint(0, "alpha", 5.0, 0.7, 9000, np.random.SeedSequence(1))
        ]
        marker = tmp_path / "killed"
        monkeypatch.setenv(FAULT_ENV, f"fused_campaigns:0:{marker}")
        with pytest.raises(WorkerCrashError):
            BatchPlan(
                simulator,
                points,
                n_jobs=2,
                retry=RetryPolicy(retries=0, allow_partial=True),
            ).execute()
        assert marker.exists()


class TestFusedSweep:
    @pytest.fixture(scope="class")
    def flow_config(self):
        from repro import FlowConfig
        from repro.sram import CharacterizationConfig

        return FlowConfig(
            particles=("alpha",),
            vdd_list=(0.7, 0.9),
            yield_energy_points=3,
            yield_trials_per_energy=1500,
            characterization=CharacterizationConfig(
                vdd_list=(0.7, 0.9),
                n_charge_points=11,
                n_samples=25,
                max_pair_points=3,
                max_triple_points=3,
            ),
            array_rows=3,
            array_cols=3,
            n_energy_bins=2,
            mc_particles_per_bin=4000,
            seed=7,
        )

    def test_fused_sweep_bit_identical_same_cache_key(
        self, flow_config, tmp_path
    ):
        """fuse=True changes no bit of the sweep and no cache key."""
        from repro import SerFlow

        plain_flow = SerFlow(flow_config, cache_dir=str(tmp_path))
        plain = plain_flow.sweep()
        cached = sorted(p.name for p in tmp_path.glob("sweep-*.json"))
        assert len(cached) == 1
        for stale in tmp_path.glob("sweep-*.json"):
            stale.unlink()

        # same cache dir: LUT + POF artifacts are reused, only the
        # sweep itself reruns -- this time through the fused plan
        fused_flow = SerFlow(flow_config, cache_dir=str(tmp_path), fuse=True)
        fused = fused_flow.sweep()
        assert sorted(p.name for p in tmp_path.glob("sweep-*.json")) == cached

        assert fused.particles() == plain.particles()
        for vdd in (0.7, 0.9):
            a = plain.get("alpha", vdd)
            b = fused.get("alpha", vdd)
            assert b.fit_total == a.fit_total
            assert b.fit_seu == a.fit_seu
            assert b.fit_mbu == a.fit_mbu


# -- kill-and-resume determinism under --backend numpy -------------------------


class TestKillResumeWithBackend:
    def test_resume_bit_identical_under_numpy_backend(
        self, layout, pof_table, tmp_path, monkeypatch, metrics
    ):
        clean = run_campaign(
            layout, pof_table, n=9000, chunk_size=4096, backend="numpy"
        )
        journal = ShardJournal(
            tmp_path / "campaign.jsonl",
            "campaign-key",
            encode=array_shard_encode,
            decode=array_shard_decode,
        )
        marker = tmp_path / "killed"
        monkeypatch.setenv(FAULT_ENV, f"array_mc:2:{marker}")
        with pytest.raises(WorkerCrashError):
            run_campaign(
                layout,
                pof_table,
                n=9000,
                chunk_size=4096,
                n_jobs=2,
                backend="numpy",
                retry=RetryPolicy(retries=0, allow_partial=False),
                journal=journal,
            )
        assert marker.exists()
        assert len(journal.load()) >= 1

        resumed = run_campaign(
            layout,
            pof_table,
            n=9000,
            chunk_size=4096,
            n_jobs=2,
            backend="numpy",
            journal=journal,
        )
        assert get_registry().counter("journal.resumed").value >= 1
        assert_results_identical(resumed, clean)
        assert journal.load() == {}


# -- vectorized satellites vs. their preserved loop references -----------------


class TestClusterPairVectorization:
    def _random_batch(self, rng):
        n_events = int(rng.integers(1, 12))
        n_cells = 9  # 3x3
        pof = rng.random((n_events, n_cells))
        pof[rng.random((n_events, n_cells)) < 0.6] = 0.0
        return pof

    def test_pair_streams_match_loop_bitwise_and_in_order(self):
        n_cols = 3
        rng = np.random.default_rng(31)
        for _ in range(200):
            pof_cells = self._random_batch(rng)
            loop_acc = {}
            _accumulate_pairs_loop(pof_cells, n_cols, loop_acc)
            stream = _pair_streams(pof_cells, n_cols)
            if stream is None:
                assert loop_acc == {}
                continue
            codes, values = stream
            unique_codes, first_pos, inverse = np.unique(
                codes, return_index=True, return_inverse=True
            )
            acc = np.zeros(len(unique_codes), dtype=np.float64)
            np.add.at(acc, inverse, values)
            vec_acc = {
                (
                    int(unique_codes[i] // n_cols),
                    int(unique_codes[i] % n_cols),
                ): float(acc[i])
                for i in np.argsort(first_pos, kind="stable")
            }
            # bit-identical values AND identical dict insertion order
            assert list(vec_acc) == list(loop_acc)
            for key in loop_acc:
                assert vec_acc[key] == loop_acc[key]

    def test_empty_and_single_cell_batches(self):
        assert _pair_streams(np.zeros((4, 9)), 3) is None
        single = np.zeros((2, 9))
        single[0, 4] = 0.5  # one failing cell: no pairs
        assert _pair_streams(single, 3) is None


class TestPofGroupingVectorization:
    def test_group_codes_match_loop(self):
        rng = np.random.default_rng(32)
        for _ in range(500):
            codes = rng.integers(0, 8, size=int(rng.integers(0, 40)))
            got = _group_codes(codes)
            ref = _group_codes_loop(codes)
            assert len(got) == len(ref)
            for (code_a, rows_a), (code_b, rows_b) in zip(got, ref):
                assert code_a == code_b
                assert np.array_equal(rows_a, rows_b)

    def test_empty(self):
        assert _group_codes(np.array([], dtype=np.int64)) == []


# -- observability -------------------------------------------------------------


class TestBackendObservability:
    def test_manifest_backend_section(self, metrics):
        registry = get_registry()
        registry.counter("backend.runs.numpy").inc(3)
        registry.counter("backend.fallbacks").inc()
        registry.counter("backend.fused_plans").inc()
        registry.counter("backend.fused_campaigns").inc(4)
        registry.counter("backend.fused_blocks").inc(12)
        manifest = build_manifest(
            command="sweep",
            argv=["sweep", "--backend", "numpy", "--fuse"],
            config={"backend": "numpy"},
            seed=7,
            started_at="2026-08-08T00:00:00+00:00",
            duration_s=1.0,
            exit_code=0,
            version="1.0.0",
        )
        assert manifest.backend["runs"] == {"numpy": 3}
        assert manifest.backend["fallbacks"] == 1
        assert manifest.backend["fused_plans"] == 1
        assert manifest.backend["fused_campaigns"] == 4
        assert manifest.backend["fused_blocks"] == 12
        assert manifest.environment["backend"] == "numpy"
        # the section survives the serialization round trip
        from repro.obs.manifest import RunManifest

        clone = RunManifest.from_dict(manifest.to_dict())
        assert clone.backend == manifest.backend
