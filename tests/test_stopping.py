"""Stopping power model: anchors, Bragg peaks, scaling laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PhysicsError
from repro.materials import SILICON, SILICON_DIOXIDE
from repro.physics import (
    ALPHA,
    PROTON,
    bragg_peak_energy_mev,
    effective_charge,
    let_kev_per_nm,
    mass_stopping_power,
    mean_chord_deposit_kev,
    proton_bethe_mev_cm2_g,
)


class TestProtonStopping:
    def test_bethe_anchor_1mev(self):
        # PSTAR-order value: ~180 MeV cm^2/g for 1 MeV protons in Si
        assert proton_bethe_mev_cm2_g(1.0) == pytest.approx(183.0, rel=0.05)

    def test_bethe_anchor_10mev(self):
        # PSTAR-order value ~ 34 MeV cm^2/g
        assert proton_bethe_mev_cm2_g(10.0) == pytest.approx(34.0, rel=0.10)

    def test_full_curve_continuous(self):
        energies = np.logspace(-3, 2, 400)
        stopping = mass_stopping_power(PROTON, energies)
        ratios = stopping[1:] / stopping[:-1]
        # no jumps bigger than 6% between adjacent log-grid points
        assert np.all(ratios < 1.06)
        assert np.all(ratios > 0.94)

    def test_bragg_peak_location(self):
        # proton Bragg peak in silicon sits near 80-100 keV
        peak = bragg_peak_energy_mev(PROTON)
        assert 0.05 < peak < 0.15

    def test_peak_magnitude(self):
        peak_e = bragg_peak_energy_mev(PROTON)
        assert mass_stopping_power(PROTON, peak_e) == pytest.approx(515.0, rel=0.1)

    def test_high_energy_falloff(self):
        # stopping falls monotonically above the peak
        energies = np.logspace(0, 2, 50)
        stopping = mass_stopping_power(PROTON, energies)
        assert np.all(np.diff(stopping) < 0)

    def test_nonpositive_energy_rejected(self):
        with pytest.raises(PhysicsError):
            mass_stopping_power(PROTON, 0.0)


class TestAlphaStopping:
    def test_bragg_peak_location(self):
        # alpha Bragg peak in silicon sits near 0.6-1 MeV
        peak = bragg_peak_energy_mev(ALPHA)
        assert 0.4 < peak < 1.2

    def test_alpha_exceeds_proton_above_peak(self):
        # paper Fig. 4: alpha generates far more charge at equal energy
        for energy in (1.0, 3.0, 10.0, 30.0, 100.0):
            ratio = mass_stopping_power(ALPHA, energy) / mass_stopping_power(
                PROTON, energy
            )
            assert ratio > 3.0

    def test_velocity_scaling_at_high_energy(self):
        # fully stripped alpha at equal velocity: S_alpha = 4 S_p
        from repro.constants import ALPHA_TO_PROTON_MASS_RATIO

        e_alpha = 400.0
        e_proton = e_alpha / ALPHA_TO_PROTON_MASS_RATIO
        ratio = mass_stopping_power(ALPHA, e_alpha) / mass_stopping_power(
            PROTON, e_proton
        )
        assert ratio == pytest.approx(4.0, rel=0.02)

    def test_let_at_1mev(self):
        # ASTAR-order: ~0.2-0.35 keV/nm for 1 MeV alpha in silicon
        let = let_kev_per_nm(ALPHA, 1.0)
        assert 0.15 < let < 0.40


class TestEffectiveCharge:
    def test_proton_always_unity(self):
        assert np.all(effective_charge(PROTON, np.array([0.01, 1.0, 100.0])) == 1.0)

    def test_alpha_approaches_two(self):
        assert effective_charge(ALPHA, 1000.0) == pytest.approx(2.0, abs=1e-3)

    def test_alpha_screened_at_low_energy(self):
        assert effective_charge(ALPHA, 0.05) < 1.5

    @given(st.floats(0.01, 1000))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_energy(self, energy):
        z1 = effective_charge(ALPHA, energy)
        z2 = effective_charge(ALPHA, energy * 1.1)
        assert z2 >= z1 - 1e-12


class TestMaterialScaling:
    def test_sio2_close_to_silicon(self):
        # Z/A nearly equal; I differs -> within ~20%
        s_si = mass_stopping_power(PROTON, 1.0, SILICON)
        s_ox = mass_stopping_power(PROTON, 1.0, SILICON_DIOXIDE)
        assert s_ox == pytest.approx(s_si, rel=0.25)


class TestChordDeposit:
    def test_linear_in_chord(self):
        d1 = mean_chord_deposit_kev(ALPHA, 5.0, 10.0)
        d2 = mean_chord_deposit_kev(ALPHA, 5.0, 20.0)
        assert d2 == pytest.approx(2.0 * d1)

    def test_clamped_to_kinetic_energy(self):
        # a 1 keV alpha cannot deposit more than 1 keV
        deposit = mean_chord_deposit_kev(ALPHA, 0.001, 1.0e6)
        assert deposit <= 1.0 + 1e-9

    def test_zero_chord_zero_deposit(self):
        assert mean_chord_deposit_kev(PROTON, 1.0, 0.0) == 0.0

    def test_paper_scale_alpha_through_fin(self):
        # ~MeV alpha through a ~30 nm fin deposits a few keV ->
        # a few hundred to ~2000 electron-hole pairs (paper Fig. 4 scale)
        deposit = mean_chord_deposit_kev(ALPHA, 1.0, 30.0)
        pairs = deposit * 1e3 / 3.6
        assert 500 < pairs < 5000
