"""Cell characterization into POF LUTs (paper Section 4)."""

import numpy as np
import pytest

from repro.errors import ConfigError, LookupError_
from repro.sram import (
    ALL_COMBOS,
    CharacterizationConfig,
    PofTable,
    SramCellDesign,
    characterize_cell,
)
from repro.sram.qcrit import nominal_critical_charge_c


@pytest.fixture(scope="module")
def design():
    return SramCellDesign()


@pytest.fixture(scope="module")
def table(design):
    config = CharacterizationConfig(
        vdd_list=(0.7, 0.9),
        n_charge_points=17,
        n_samples=60,
        max_pair_points=6,
        max_triple_points=4,
        seed=3,
    )
    return characterize_cell(design, config)


@pytest.fixture(scope="module")
def nominal_table(design):
    config = CharacterizationConfig(
        vdd_list=(0.7, 0.9),
        n_charge_points=17,
        process_variation=False,
        max_pair_points=6,
        max_triple_points=4,
    )
    return characterize_cell(design, config)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CharacterizationConfig(vdd_list=())
        with pytest.raises(ConfigError):
            CharacterizationConfig(vdd_list=(0.9, 0.7))
        with pytest.raises(ConfigError):
            CharacterizationConfig(charge_min_fc=1.0, charge_max_fc=0.5)
        with pytest.raises(ConfigError):
            CharacterizationConfig(n_samples=0)

    def test_charge_axis_log_spaced(self):
        axis = CharacterizationConfig(n_charge_points=11).charge_axis_c()
        ratios = axis[1:] / axis[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_combo_axis_decimation(self):
        config = CharacterizationConfig(n_charge_points=21, max_pair_points=7)
        assert len(config.axis_for_combo((0,))) == 21
        assert len(config.axis_for_combo((0, 1))) == 7


class TestKernelEquivalence:
    """End-to-end contracts of the cell-kernel rework: fused stacking,
    settle hoisting, batch chunking and early exit reproduce the seed
    exact pipeline bit-identically; the tabulated backend stays within
    its POF accuracy budget."""

    BASE = dict(
        vdd_list=(0.7,),
        n_charge_points=7,
        n_samples=6,
        max_pair_points=3,
        max_triple_points=3,
        seed=11,
    )

    @classmethod
    def _run(cls, design, **overrides):
        return characterize_cell(
            design, CharacterizationConfig(**cls.BASE, **overrides)
        )

    @pytest.fixture(scope="class")
    def seed_table(self, design):
        return self._run(
            design, kernel="exact", early_exit=False, hoist_settle=False
        )

    @staticmethod
    def _assert_identical(a, b):
        for combo in a.pof:
            assert np.array_equal(a.pof[combo], b.pof[combo])

    def test_fused_bit_identical(self, design, seed_table):
        fused = self._run(
            design, kernel="fused", early_exit=False, hoist_settle=False
        )
        self._assert_identical(fused, seed_table)

    def test_hoisted_settle_bit_identical(self, design, seed_table):
        hoisted = self._run(
            design, kernel="exact", early_exit=False, hoist_settle=True
        )
        self._assert_identical(hoisted, seed_table)

    def test_chunked_bit_identical(self, design, seed_table):
        chunked = self._run(
            design,
            kernel="exact",
            early_exit=False,
            hoist_settle=False,
            max_batch=10,  # forces one grid point per chunk (6 samples)
        )
        self._assert_identical(chunked, seed_table)

    def test_early_exit_bit_identical(self, design, seed_table):
        early = self._run(
            design, kernel="fused", early_exit=True, hoist_settle=False
        )
        self._assert_identical(early, seed_table)

    def test_tabulated_within_budget(self, design, seed_table):
        tabulated = self._run(design)  # the defaults: tabulated + all opts
        for combo in seed_table.pof:
            dev = np.max(
                np.abs(tabulated.pof[combo] - seed_table.pof[combo])
            )
            assert dev <= 0.01, f"combo {combo}: |dPOF| {dev:.4f}"

    def test_kernel_config_validation(self):
        with pytest.raises(ConfigError):
            CharacterizationConfig(kernel="magic")
        with pytest.raises(ConfigError):
            CharacterizationConfig(early_exit_margin_v=0.0)
        with pytest.raises(ConfigError):
            CharacterizationConfig(table_points=4)
        with pytest.raises(ConfigError):
            CharacterizationConfig(max_batch=0)

    def test_kernel_metrics_recorded(self, design):
        from repro.obs.registry import disable_metrics, enable_metrics

        registry = enable_metrics(fresh=True)
        try:
            self._run(design)
            runs = registry.counter("characterize.kernel.runs.tabulated")
            builds = registry.counter("characterize.kernel.table_builds")
            frozen = registry.counter(
                "characterize.kernel.early_exit.frozen"
            )
            assert runs.value > 0
            assert builds.value >= 1
            assert frozen.value > 0
        finally:
            disable_metrics()


class TestPofTableStructure:
    def test_all_combos_present(self, table):
        assert set(table.pof) == set(ALL_COMBOS)

    def test_grid_shapes(self, table):
        n_q = len(table.charge_axis_c)
        assert table.pof[(0,)].shape == (2, n_q)
        assert table.pof[(0, 1)].shape == (2, n_q, n_q)
        assert table.pof[(0, 1, 2)].shape == (2, n_q, n_q, n_q)

    def test_pof_in_unit_interval(self, table):
        for grid in table.pof.values():
            assert np.all(grid >= 0.0)
            assert np.all(grid <= 1.0)

    def test_monotone_along_each_axis(self, table):
        for combo, grid in table.pof.items():
            for axis in range(1, grid.ndim):
                assert np.all(np.diff(grid, axis=axis) >= -1e-12)

    def test_edges_are_decisive(self, table):
        # smallest charge never flips, largest always flips
        for vdd_index in range(2):
            single = table.pof[(0,)][vdd_index]
            assert single[0] == 0.0
            assert single[-1] == 1.0


class TestPofQueries:
    def test_zero_charge_zero_pof(self, table):
        assert table.query(0.8, np.zeros((3, 3))) == pytest.approx([0, 0, 0])

    def test_threshold_behaviour(self, table, design):
        qcrit = nominal_critical_charge_c(design, 0.7)
        low = table.query(0.7, np.array([[0.3 * qcrit, 0, 0]]))[0]
        high = table.query(0.7, np.array([[3.0 * qcrit, 0, 0]]))[0]
        assert low < 0.05
        assert high > 0.95

    def test_lower_vdd_weaker_cell(self, table):
        # at a charge near threshold, POF(0.7V) >= POF(0.9V)
        axis = table.charge_axis_c
        mid = np.array([[axis[len(axis) // 2], 0.0, 0.0]])
        assert table.query(0.7, mid)[0] >= table.query(0.9, mid)[0] - 1e-9

    def test_vdd_interpolation_brackets(self, table):
        charges = np.array([[1.2e-16, 0.0, 0.0]])
        p_lo = table.query(0.7, charges)[0]
        p_hi = table.query(0.9, charges)[0]
        p_mid = table.query(0.8, charges)[0]
        assert min(p_lo, p_hi) - 1e-12 <= p_mid <= max(p_lo, p_hi) + 1e-12

    def test_vdd_clamp_outside_range(self, table):
        charges = np.array([[1.2e-16, 0.0, 0.0]])
        assert table.query(0.5, charges)[0] == pytest.approx(
            table.query(0.7, charges)[0]
        )

    def test_charge_clamp_above_grid(self, table):
        charges = np.array([[1e-12, 0.0, 0.0]])  # 1 pC, way off grid
        assert table.query(0.7, charges)[0] == pytest.approx(1.0)

    def test_multi_strike_exceeds_single(self, table, design):
        qcrit = nominal_critical_charge_c(design, 0.7)
        q = 0.7 * qcrit
        single = table.query(0.7, np.array([[q, 0, 0]]))[0]
        double = table.query(0.7, np.array([[q, q, 0]]))[0]
        assert double >= single - 1e-9

    def test_scenario_query(self, table):
        from repro.sram import StrikeScenario

        pof = table.query_scenario(0.7, StrikeScenario(5e-16, 0, 0))
        assert pof == pytest.approx(1.0)

    def test_negative_charge_rejected(self, table):
        with pytest.raises(ConfigError):
            table.query(0.7, np.array([[-1e-16, 0, 0]]))

    def test_critical_charge_extraction(self, table, design):
        qcrit_table = table.critical_charge_c(0.7)
        qcrit_direct = nominal_critical_charge_c(design, 0.7)
        assert qcrit_table == pytest.approx(qcrit_direct, rel=0.25)


class TestNominalMode:
    def test_binary_pofs(self, nominal_table):
        # "deterministic binary value" (paper Section 4).  Multi-strike
        # grids are re-interpolated onto the shared axis, which smears
        # the step; the natively-gridded single-strike tables stay
        # exactly binary.
        for combo in ((0,), (1,), (2,)):
            grid = nominal_table.pof[combo]
            assert np.all((grid == 0.0) | (grid == 1.0))

    def test_n_samples_is_one(self, nominal_table):
        assert nominal_table.n_samples == 1
        assert not nominal_table.process_variation

    def test_pv_smooths_the_step(self, table, nominal_table):
        """With PV the POF transition must be wider than the binary step."""
        axis = table.charge_axis_c
        pv = table.pof[(0,)][0]
        intermediate = np.sum((pv > 0.02) & (pv < 0.98))
        assert intermediate >= 1


class TestSerialization:
    def test_round_trip(self, table):
        clone = PofTable.from_dict(table.to_dict())
        assert np.allclose(clone.vdd_list, table.vdd_list)
        assert np.allclose(clone.charge_axis_c, table.charge_axis_c)
        for combo in ALL_COMBOS:
            assert np.allclose(clone.pof[combo], table.pof[combo])
        charges = np.array([[1.3e-16, 0.0, 2.0e-16]])
        assert clone.query(0.8, charges)[0] == pytest.approx(
            table.query(0.8, charges)[0]
        )

    def test_wrong_kind_rejected(self):
        with pytest.raises(ConfigError):
            PofTable.from_dict({"kind": "something-else"})


class TestGridPointConsistency:
    def test_query_reproduces_stored_grid(self, table):
        """Interpolation is exact at the tabulated grid points."""
        axis = table.charge_axis_c
        stored = table.pof[(0,)][0]  # vdd index 0 = 0.7 V
        for i in (0, len(axis) // 2, len(axis) - 1):
            charges = np.zeros((1, 3))
            charges[0, 0] = axis[i]
            assert table.query(0.7, charges)[0] == pytest.approx(
                stored[i], abs=1e-9
            )

    def test_pair_grid_point_consistency(self, table):
        axis = table.charge_axis_c
        mid = len(axis) // 2
        charges = np.zeros((1, 3))
        charges[0, 0] = axis[mid]
        charges[0, 1] = axis[mid]
        stored = table.pof[(0, 1)][0][mid, mid]
        assert table.query(0.7, charges)[0] == pytest.approx(
            stored, abs=1e-9
        )
