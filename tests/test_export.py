"""CSV figure export."""

import csv

import numpy as np
import pytest

from repro import FlowConfig, SerFlow
from repro.analysis import export_figures
from repro.sram import CharacterizationConfig


@pytest.fixture(scope="module")
def tiny_flow():
    return SerFlow(
        FlowConfig(
            particles=("alpha", "proton"),
            vdd_list=(0.7, 0.9),
            yield_energy_points=4,
            yield_trials_per_energy=2000,
            characterization=CharacterizationConfig(
                vdd_list=(0.7, 0.9),
                n_charge_points=13,
                n_samples=25,
                max_pair_points=4,
                max_triple_points=3,
            ),
            array_rows=3,
            array_cols=3,
            n_energy_bins=3,
            mc_particles_per_bin=4000,
            seed=5,
        )
    )


class TestExportFigures:
    @pytest.fixture(scope="class")
    def written(self, tiny_flow, tmp_path_factory):
        out = tmp_path_factory.mktemp("figures")
        return export_figures(tiny_flow, out, pof_energy_particles=3000), out

    def test_all_figures_written(self, written):
        files, _ = written
        expected = {
            "fig2a",
            "fig2b",
            "fig4_alpha",
            "fig4_proton",
            "fig9_alpha",
            "fig9_proton",
            "fig10_alpha",
            "fig10_proton",
        }
        assert expected <= set(files)
        # fig8 keys per (particle, vdd)
        assert any(k.startswith("fig8_alpha") for k in files)

    def test_csv_structure(self, written):
        files, _ = written
        with open(files["fig2a"]) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "energy_mev"
        assert len(rows) > 10
        values = np.array([float(r[1]) for r in rows[1:]])
        assert np.all(np.diff(values) <= 0)  # monotone proton spectrum

    def test_fig9_values_normalized(self, written):
        files, _ = written
        with open(files["fig9_alpha"]) as handle:
            rows = list(csv.reader(handle))
        values = [float(r[1]) for r in rows[1:]]
        assert max(values) <= 1.0 + 1e-9


class TestCliFigures(object):
    def test_cli_figures_smoke(self, tmp_path):
        from repro.cli import main

        code = main(
            [
                "figures",
                "--out-dir",
                str(tmp_path / "figs"),
                "--particles",
                "alpha",
                "--mc-particles",
                "2000",
                "--samples",
                "15",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        assert (tmp_path / "figs" / "fig2a_proton_spectrum.csv").exists()
