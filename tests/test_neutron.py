"""Neutron indirect-ionization extension (the paper's future work)."""

import numpy as np
import pytest

from repro.errors import ConfigError, PhysicsError
from repro.physics.neutron import (
    ELASTIC_MAX_TRANSFER,
    NeutronInteractionModel,
    SeaLevelNeutronSpectrum,
    SECONDARY_ALPHA,
    SECONDARY_FRAGMENT,
    SECONDARY_PROTON,
    SECONDARY_SI_RECOIL,
    si_recoil_let_kev_per_nm,
)


class TestNeutronSpectrum:
    def test_total_flux_matches_jedec_scale(self):
        # JESD89A: ~13 n/(cm^2 h) = 3.6e-3 n/(cm^2 s) above 1 MeV
        spectrum = SeaLevelNeutronSpectrum()
        total = spectrum.integral_flux(1.0, 1000.0)
        assert total == pytest.approx(3.6e-3, rel=0.15)

    def test_monotone_decreasing(self):
        spectrum = SeaLevelNeutronSpectrum()
        energies = np.logspace(-1, 3, 100)
        flux = spectrum.differential_flux(energies)
        assert np.all(np.diff(flux) <= 0)

    def test_out_of_range_zero(self):
        spectrum = SeaLevelNeutronSpectrum()
        assert spectrum.differential_flux(5000.0) == 0.0

    def test_neutron_flux_exceeds_alpha_emission(self):
        # the reason neutron SER matters at all despite tiny reaction
        # probabilities: ~1e4 more neutrons than package alphas
        from repro.physics import AlphaEmissionSpectrum

        neutron = SeaLevelNeutronSpectrum().integral_flux(1.0, 1000.0)
        alpha = AlphaEmissionSpectrum().integral_flux(0.1, 10.0)
        assert neutron > 1.0e3 * alpha


class TestInteractionModel:
    @pytest.fixture(scope="class")
    def model(self):
        return NeutronInteractionModel()

    def test_reaction_probability_scale(self, model):
        # ~1e-7 per 30 nm fin crossing: the SOI FinFET suppression
        p = model.reaction_probability(10.0, 30.0)[0]
        assert 1e-8 < p < 1e-5

    def test_probability_linear_in_chord(self, model):
        p1 = model.reaction_probability(10.0, 10.0)[0]
        p2 = model.reaction_probability(10.0, 20.0)[0]
        assert p2 == pytest.approx(2.0 * p1)

    def test_channels_gated_by_threshold(self, model):
        low = model.channel_cross_sections_cm2(1.0)[0]
        high = model.channel_cross_sections_cm2(50.0)[0]
        assert low[SECONDARY_ALPHA] == 0.0
        assert low[SECONDARY_FRAGMENT] == 0.0
        assert high[SECONDARY_ALPHA] > 0.0
        assert high[SECONDARY_PROTON] > 0.0
        assert high[SECONDARY_FRAGMENT] > 0.0

    def test_elastic_recoil_energy_bounded(self, model):
        rng = np.random.default_rng(0)
        species, energy = model.sample_secondaries(10.0, 5000, rng)
        recoils = energy[species == SECONDARY_SI_RECOIL]
        assert len(recoils) > 0
        assert np.all(recoils <= ELASTIC_MAX_TRANSFER * 10.0 + 1e-9)

    def test_secondary_energies_positive(self, model):
        rng = np.random.default_rng(1)
        _, energy = model.sample_secondaries(100.0, 5000, rng)
        assert np.all(energy > 0)

    def test_no_channel_at_zero_raises(self):
        model = NeutronInteractionModel(sigma_elastic_barn=0.0)
        with pytest.raises(PhysicsError):
            model.sample_secondaries(1.0, 10, np.random.default_rng(0))

    def test_secondary_let_by_species(self, model):
        species = np.array(
            [SECONDARY_SI_RECOIL, SECONDARY_ALPHA, SECONDARY_PROTON]
        )
        energy = np.array([1.0, 1.0, 1.0])
        let = model.secondary_let_kev_per_nm(species, energy)
        # recoil LET >> alpha LET >> proton LET at 1 MeV
        assert let[0] > let[1] > let[2]

    def test_recoil_let_table(self):
        # peaks in the MeV region at ~3 keV/nm
        assert 2.0 < si_recoil_let_kev_per_nm(3.0) < 4.0
        with pytest.raises(PhysicsError):
            si_recoil_let_kev_per_nm(0.0)


class TestNeutronSer:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.layout import SramArrayLayout
        from repro.sram import (
            CharacterizationConfig,
            SramCellDesign,
            characterize_cell,
        )

        design = SramCellDesign()
        table = characterize_cell(
            design,
            CharacterizationConfig(
                vdd_list=(0.7, 1.1),
                n_charge_points=15,
                n_samples=40,
                max_pair_points=4,
                max_triple_points=3,
            ),
        )
        return SramArrayLayout(), table

    def test_pof_scale_is_reaction_limited(self, setup):
        from repro.ser.neutron_mc import NeutronSerSimulator

        layout, table = setup
        sim = NeutronSerSimulator(layout, table)
        result = sim.run(10.0, 0.7, 30000, np.random.default_rng(2))
        # per-launched-neutron POF ~ crossing fraction x 1e-7
        assert 0.0 < result.pof_total < 1e-5

    def test_fit_below_alpha(self, setup):
        """SOI FinFET: neutron SER far below alpha SER (cf. [12])."""
        from repro.ser.neutron_mc import neutron_fit

        layout, table = setup
        fit = neutron_fit(
            layout, table, 0.7, 20000, np.random.default_rng(3), n_bins=4
        )
        assert fit.fit_total > 0.0
        # alpha FIT at the same table/layout scale is ~1e-3..1e-4; the
        # neutron rate must come out orders of magnitude below
        assert fit.fit_total < 1.0e-4

    def test_weak_vdd_dependence(self, setup):
        """Secondary deposits are far above Qcrit: the neutron SER is
        reaction-rate limited, so Vdd barely matters."""
        from repro.ser.neutron_mc import neutron_fit

        layout, table = setup
        rng1 = np.random.default_rng(4)
        rng2 = np.random.default_rng(4)
        low = neutron_fit(layout, table, 0.7, 20000, rng1, n_bins=3)
        high = neutron_fit(layout, table, 1.1, 20000, rng2, n_bins=3)
        assert low.fit_total == pytest.approx(high.fit_total, rel=0.25)

    def test_validation(self, setup):
        from repro.ser.neutron_mc import NeutronSerSimulator

        layout, table = setup
        sim = NeutronSerSimulator(layout, table)
        with pytest.raises(ConfigError):
            sim.run(-1.0, 0.7, 100, np.random.default_rng(0))
        with pytest.raises(ConfigError):
            sim.run(1.0, 0.7, 0, np.random.default_rng(0))
