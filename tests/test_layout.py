"""Cell layout and array tiling."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.layout import CellLayout, SramArrayLayout
from repro.sram.cell import ROLES


class TestCellLayout:
    def test_all_roles_placed(self):
        layout = CellLayout()
        for role in ROLES:
            box = layout.fin_box(role)
            assert box.volume_nm3 > 0

    def test_boxes_inside_cell(self):
        layout = CellLayout()
        for role in ROLES:
            box = layout.fin_box(role)
            assert box.lo[0] >= 0 and box.hi[0] <= layout.width_nm
            assert box.lo[1] >= 0 and box.hi[1] <= layout.height_nm

    def test_mirror_x(self):
        layout = CellLayout()
        box = layout.fin_box("pg_l")
        mirrored = layout.fin_box("pg_l", mirror_x=True)
        assert mirrored.center[0] == pytest.approx(
            layout.width_nm - box.center[0]
        )
        assert mirrored.center[1] == pytest.approx(box.center[1])

    def test_mirror_y(self):
        layout = CellLayout()
        box = layout.fin_box("pd_l")
        mirrored = layout.fin_box("pd_l", mirror_y=True)
        assert mirrored.center[1] == pytest.approx(
            layout.height_nm - box.center[1]
        )

    def test_sensitive_volumes_do_not_overlap(self):
        """pd/pg pairs legitimately share one continuous fin (their
        collection volumes overlap on the shared diffusion), but no two
        *sensitive* volumes of a cell may overlap -- that would double
        count deposited charge."""
        from repro.layout import SramArrayLayout

        for pattern in ("uniform", "checkerboard"):
            layout = SramArrayLayout(n_rows=1, n_cols=1, data_pattern=pattern)
            sens = layout.packed_boxes[layout.fin_strike >= 0]
            for i in range(len(sens)):
                for j in range(i + 1, len(sens)):
                    overlap = np.all(
                        (sens[i, :3] < sens[j, 3:]) & (sens[j, :3] < sens[i, 3:])
                    )
                    assert not overlap

    def test_collection_length_used(self):
        layout = CellLayout(collection_length_nm=60.0)
        box = layout.fin_box("pu_l")
        assert box.size[1] == pytest.approx(60.0)

    def test_collection_shorter_than_channel_rejected(self):
        with pytest.raises(ConfigError):
            CellLayout(collection_length_nm=10.0)

    def test_unknown_role(self):
        with pytest.raises(ConfigError):
            CellLayout().fin_box("nonsense")

    def test_missing_role_rejected(self):
        with pytest.raises(ConfigError):
            CellLayout(fin_positions={"pg_l": (8.0, 30.0)})


class TestArrayLayout:
    def test_fin_count(self):
        layout = SramArrayLayout(n_rows=3, n_cols=4)
        assert layout.n_cells == 12
        assert layout.n_fins == 72

    def test_paper_default_9x9(self):
        layout = SramArrayLayout()
        assert layout.n_rows == 9 and layout.n_cols == 9
        assert layout.n_fins == 486

    def test_sensitive_fraction_uniform_pattern(self):
        # 3 of 6 devices sensitive in every cell
        layout = SramArrayLayout(n_rows=2, n_cols=2)
        assert layout.sensitive_fin_count() == 2 * 2 * 3

    def test_index_arrays_consistent(self):
        layout = SramArrayLayout(n_rows=2, n_cols=3)
        assert layout.fin_cell.shape == (36,)
        assert set(layout.fin_cell) == set(range(6))
        assert set(layout.fin_role) == set(range(6))
        assert set(layout.fin_strike) <= {-1, 0, 1, 2}

    def test_each_cell_has_i1_i2_i3(self):
        layout = SramArrayLayout(n_rows=2, n_cols=2)
        for cell in range(4):
            strikes = layout.fin_strike[layout.fin_cell == cell]
            assert sorted(s for s in strikes if s >= 0) == [0, 1, 2]

    def test_boxes_within_bounding_box(self):
        layout = SramArrayLayout(n_rows=3, n_cols=3)
        bbox = layout.bounding_box()
        packed = layout.packed_boxes
        assert np.all(packed[:, 0] >= bbox.lo[0] - 1e-9)
        assert np.all(packed[:, 3] <= bbox.hi[0] + 1e-9)
        assert np.all(packed[:, 1] >= bbox.lo[1] - 1e-9)
        assert np.all(packed[:, 4] <= bbox.hi[1] + 1e-9)

    def test_mirrored_tiling_sensitive_no_overlap(self):
        layout = SramArrayLayout(n_rows=2, n_cols=2)
        boxes = layout.packed_boxes[layout.fin_strike >= 0]
        n = len(boxes)
        for i in range(n):
            for j in range(i + 1, n):
                overlap = np.all(
                    (boxes[i, :3] < boxes[j, 3:] - 1e-9)
                    & (boxes[j, :3] < boxes[i, 3:] - 1e-9)
                )
                assert not overlap

    def test_checkerboard_pattern(self):
        layout = SramArrayLayout(n_rows=2, n_cols=2, data_pattern="checkerboard")
        assert layout.stored_bit(0, 0) == 1
        assert layout.stored_bit(0, 1) == 0
        assert layout.stored_bit(1, 1) == 1
        # sensitivity switches sides for q=0 cells
        cell_01 = 1  # row 0, col 1 stores 0
        roles = layout.fin_role[
            (layout.fin_cell == cell_01) & (layout.fin_strike >= 0)
        ]
        role_names = {ROLES[r] for r in roles}
        assert role_names == {"pd_r", "pu_l", "pg_l"}

    def test_launch_window_includes_margin(self):
        layout = SramArrayLayout(n_rows=2, n_cols=2)
        x_range, y_range, z, area = layout.launch_window(margin_nm=50.0)
        assert x_range[0] == -50.0
        assert x_range[1] == layout.width_nm + 50.0
        assert z > layout.cell.fin.height_nm
        assert area > layout.area_cm2()

    def test_area_cm2(self):
        layout = SramArrayLayout(n_rows=9, n_cols=9)
        expected = (9 * layout.cell.width_nm * 1e-7) * (
            9 * layout.cell.height_nm * 1e-7
        )
        assert layout.area_cm2() == pytest.approx(expected)

    def test_invalid_pattern(self):
        with pytest.raises(ConfigError):
            SramArrayLayout(data_pattern="stripes")

    def test_invalid_size(self):
        with pytest.raises(ConfigError):
            SramArrayLayout(n_rows=0)

    def test_adjacent_sensitive_fins_near_boundary(self):
        """Mirrored tiling pulls outer sensitive fins of neighbouring
        cells within ~2 * edge offset -- the MBU-enabling adjacency."""
        layout = SramArrayLayout(n_rows=1, n_cols=2)
        sens = layout.packed_boxes[layout.fin_strike >= 0]
        centers_x = 0.5 * (sens[:, 0] + sens[:, 3])
        cell_of = layout.fin_cell[layout.fin_strike >= 0]
        c0 = centers_x[cell_of == 0]
        c1 = centers_x[cell_of == 1]
        min_gap = min(abs(a - b) for a in c0 for b in c1)
        assert min_gap < 0.25 * layout.cell.width_nm
