"""POF combination identities (paper eqs. 4-6)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.ser import combine, combine_mbu, combine_seu, combine_total

pof_rows = st.lists(
    st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=8
)


def brute_force(pofs):
    """Exact enumeration over all fail/survive outcomes."""
    pofs = list(pofs)
    n = len(pofs)
    p_total = p_seu = 0.0
    for outcome in itertools.product([0, 1], repeat=n):
        prob = 1.0
        for bit, p in zip(outcome, pofs):
            prob *= p if bit else (1.0 - p)
        fails = sum(outcome)
        if fails >= 1:
            p_total += prob
        if fails == 1:
            p_seu += prob
    return p_total, p_seu


class TestCombineIdentities:
    @given(pof_rows)
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, pofs):
        total, seu = brute_force(pofs)
        row = np.array([pofs])
        assert combine_total(row)[0] == pytest.approx(total, abs=1e-9)
        assert combine_seu(row)[0] == pytest.approx(seu, abs=1e-9)
        assert combine_mbu(row)[0] == pytest.approx(
            total - seu, abs=1e-9
        )

    @given(pof_rows)
    @settings(max_examples=100, deadline=None)
    def test_ordering(self, pofs):
        row = np.array([pofs])
        total = combine_total(row)[0]
        seu = combine_seu(row)[0]
        mbu = combine_mbu(row)[0]
        assert 0.0 <= seu <= total + 1e-12
        assert total <= 1.0
        assert mbu >= 0.0

    def test_single_cell_has_no_mbu(self):
        row = np.array([[0.7]])
        assert combine_mbu(row)[0] == pytest.approx(0.0, abs=1e-12)
        assert combine_seu(row)[0] == pytest.approx(0.7)

    def test_all_certain_failures(self):
        row = np.array([[1.0, 1.0]])
        total, seu, mbu = combine(row)
        assert total[0] == pytest.approx(1.0)
        assert seu[0] == pytest.approx(0.0, abs=1e-9)
        assert mbu[0] == pytest.approx(1.0, abs=1e-9)

    def test_one_certain_failure_among_zeros(self):
        row = np.array([[1.0, 0.0, 0.0]])
        total, seu, mbu = combine(row)
        assert total[0] == pytest.approx(1.0)
        assert seu[0] == pytest.approx(1.0, abs=1e-9)
        assert mbu[0] == pytest.approx(0.0, abs=1e-9)

    def test_batch_axis(self):
        rows = np.array([[0.5, 0.5], [0.0, 0.0], [1.0, 0.5]])
        total = combine_total(rows)
        assert total.shape == (3,)
        assert total[1] == 0.0
        assert total[2] == pytest.approx(1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            combine_total(np.array([[1.5]]))
        with pytest.raises(ConfigError):
            combine_seu(np.array([[-0.1]]))
