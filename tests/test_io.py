"""Artifact persistence and the build cache."""

import json

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.io import ArtifactCache, config_hash, load_artifact, save_artifact
from repro.physics import ALPHA
from repro.transport import ElectronYieldLUT, TransportEngine


@pytest.fixture(scope="module")
def lut():
    rng = np.random.default_rng(0)
    return ElectronYieldLUT.build(
        ALPHA, np.array([1.0, 10.0]), 2000, rng
    )


class TestSaveLoad:
    def test_round_trip(self, lut, tmp_path):
        path = tmp_path / "lut.json"
        save_artifact(lut, path)
        clone = load_artifact(path)
        assert isinstance(clone, ElectronYieldLUT)
        assert np.allclose(clone.mean_pairs, lut.mean_pairs)

    def test_pof_table_round_trip(self, tmp_path):
        from repro.sram import PofTable

        table = PofTable(
            vdd_list=np.array([0.7, 0.9]),
            charge_axis_c=np.array([1e-17, 1e-16, 1e-15]),
            pof={(0,): np.array([[0.0, 0.5, 1.0], [0.0, 0.2, 1.0]])},
            process_variation=True,
            n_samples=10,
        )
        path = tmp_path / "pof.json"
        save_artifact(table, path)
        clone = load_artifact(path)
        assert isinstance(clone, PofTable)
        assert clone.query(0.7, np.array([[1e-16, 0, 0]]))[0] == pytest.approx(0.5)

    def test_unserializable_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            save_artifact(object(), tmp_path / "x.json")

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"kind": "martian"}))
        with pytest.raises(SerializationError):
            load_artifact(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            load_artifact(tmp_path / "absent.json")


class TestAtomicWrites:
    def test_no_temp_litter_after_save(self, lut, tmp_path):
        save_artifact(lut, tmp_path / "lut.json")
        save_artifact(lut, tmp_path / "lut.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "lut.json",
            "lut.npz",
        ]

    def test_failed_write_leaves_no_trace(self, tmp_path):
        class Broken:
            """to_dict succeeds; JSON encoding fails mid-write."""

            def to_dict(self):
                return {"kind": "electron_yield_lut", "bad": object()}

        path = tmp_path / "broken.json"
        with pytest.raises(TypeError):
            save_artifact(Broken(), path)
        # neither the target nor any temp file may exist
        assert list(tmp_path.iterdir()) == []

    def test_failed_write_preserves_existing_artifact(self, lut, tmp_path):
        path = tmp_path / "lut.json"
        save_artifact(lut, path)
        good = path.read_text()

        class Broken:
            def to_dict(self):
                return {"kind": "electron_yield_lut", "bad": object()}

        with pytest.raises(TypeError):
            save_artifact(Broken(), path)
        assert path.read_text() == good
        assert [p.name for p in tmp_path.iterdir()] == ["lut.json"]


class TestConfigHash:
    def test_deterministic(self):
        assert config_hash({"a": 1}) == config_hash({"a": 1})

    def test_sensitive_to_values(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_dataclass_support(self):
        from repro.sram import CharacterizationConfig

        c1 = CharacterizationConfig(n_samples=10)
        c2 = CharacterizationConfig(n_samples=20)
        assert config_hash(c1) != config_hash(c2)
        assert config_hash(c1) == config_hash(CharacterizationConfig(n_samples=10))

    def test_numpy_values_handled(self):
        h = config_hash({"x": np.float64(1.5), "y": np.array([1, 2])})
        assert isinstance(h, str) and len(h) == 16


class TestArtifactCache:
    def test_build_once(self, lut, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        calls = []

        def builder():
            calls.append(1)
            return lut

        first = cache.get_or_build("yield", builder, {"v": 1})
        second = cache.get_or_build("yield", builder, {"v": 1})
        assert len(calls) == 1
        assert np.allclose(first.mean_pairs, second.mean_pairs)

    def test_config_change_rebuilds(self, lut, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        calls = []

        def builder():
            calls.append(1)
            return lut

        cache.get_or_build("yield", builder, {"v": 1})
        cache.get_or_build("yield", builder, {"v": 2})
        assert len(calls) == 2

    def test_corrupt_cache_recovers(self, lut, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        path = cache.path_for("yield", {"v": 1})
        path.write_text("{ not json")
        result = cache.get_or_build("yield", lambda: lut, {"v": 1})
        assert isinstance(result, ElectronYieldLUT)


class TestBuildSingleFlight:
    """Concurrent misses on one key must run the builder exactly once."""

    def test_concurrent_get_or_build_coalesces(self, lut, tmp_path):
        import threading
        import time as _time

        cache = ArtifactCache(tmp_path / "cache", lock_poll_s=0.01)
        calls = []
        gate = threading.Event()

        def slow_builder():
            calls.append(1)
            assert gate.wait(timeout=10.0)
            return lut

        results = [None] * 4

        def worker(i):
            results[i] = cache.get_or_build("yield", slow_builder, {"v": 1})

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        # let every loser reach the wait loop before the winner finishes
        deadline = _time.monotonic() + 5.0
        while not calls and _time.monotonic() < deadline:
            _time.sleep(0.01)
        _time.sleep(0.05)
        gate.set()
        for thread in threads:
            thread.join(10.0)

        assert len(calls) == 1  # single-flight: one build, three waiters
        for result in results:
            assert isinstance(result, ElectronYieldLUT)
            assert np.allclose(result.mean_pairs, lut.mean_pairs)
        # the lock is gone once the flight lands
        assert not cache.lock_path_for("yield", {"v": 1}).exists()

    def test_stale_lock_taken_over(self, lut, tmp_path):
        import os
        import time as _time

        cache = ArtifactCache(
            tmp_path / "cache", lock_poll_s=0.01, lock_stale_s=0.2
        )
        lock_path = cache.lock_path_for("yield", {"v": 1})
        # a crashed builder left its lock behind, long untouched
        lock_path.write_text("99999 0\n")
        old = _time.time() - 60.0
        os.utime(lock_path, (old, old))

        calls = []

        def builder():
            calls.append(1)
            return lut

        result = cache.get_or_build("yield", builder, {"v": 1})
        assert len(calls) == 1  # took the lock over and built
        assert isinstance(result, ElectronYieldLUT)
        assert not lock_path.exists()

    def test_fresh_foreign_lock_is_waited_on(self, lut, tmp_path):
        """A *live* holder's lock is honored: the waiter picks up the
        artifact the holder publishes instead of rebuilding."""
        import threading
        import time as _time

        cache = ArtifactCache(
            tmp_path / "cache", lock_poll_s=0.01, lock_stale_s=600.0
        )
        lock_path = cache.lock_path_for("yield", {"v": 1})
        lock_path.write_text(f"1 {_time.time()}\n")  # someone is building

        def publisher():
            _time.sleep(0.1)
            save_artifact(lut, cache.path_for("yield", {"v": 1}))
            lock_path.unlink()

        thread = threading.Thread(target=publisher)
        thread.start()
        calls = []
        result = cache.get_or_build(
            "yield", lambda: calls.append(1) or lut, {"v": 1}
        )
        thread.join(5.0)
        assert calls == []  # never built: the waiter re-checked the cache
        assert isinstance(result, ElectronYieldLUT)

    def test_degraded_artifacts_release_the_lock_uncached(self, tmp_path):
        class Degraded:
            degraded = True

            def to_dict(self):
                return {"kind": "electron_yield_lut"}

        cache = ArtifactCache(tmp_path / "cache")
        result = cache.get_or_build("yield", Degraded, {"v": 1})
        assert result.degraded
        assert not cache.path_for("yield", {"v": 1}).exists()
        assert not cache.lock_path_for("yield", {"v": 1}).exists()
