"""Material records: parameters, validation, registry."""

import pytest

from repro.errors import ConfigError
from repro.materials import (
    BEOL_DIELECTRIC,
    MATERIALS,
    SILICON,
    SILICON_DIOXIDE,
    SUBSTRATE_SILICON,
    Material,
    get_material,
)


class TestSilicon:
    def test_z_over_a(self):
        assert SILICON.z_over_a == pytest.approx(14.0 / 28.0855)

    def test_density(self):
        assert SILICON.density_g_cm3 == pytest.approx(2.329)

    def test_pair_energy_is_papers(self):
        assert SILICON.pair_energy_ev == 3.6

    def test_collects_charge(self):
        assert SILICON.collects_charge

    def test_electron_density(self):
        # ~7e23 electrons / cm^3 in silicon
        assert SILICON.electrons_per_cm3() == pytest.approx(7.0e23, rel=0.02)


class TestOtherMaterials:
    def test_substrate_does_not_collect(self):
        # the BOX blocks diffusion charge from the substrate (paper 3.3)
        assert not SUBSTRATE_SILICON.collects_charge

    def test_box_does_not_collect(self):
        assert not SILICON_DIOXIDE.collects_charge

    def test_sio2_z_over_a(self):
        assert SILICON_DIOXIDE.z_over_a == pytest.approx(30.0 / 60.0843)

    def test_beol_lighter_than_oxide(self):
        assert BEOL_DIELECTRIC.density_g_cm3 < SILICON_DIOXIDE.density_g_cm3


class TestRegistry:
    def test_lookup(self):
        assert get_material("Si") is SILICON

    def test_all_registered(self):
        assert set(MATERIALS) == {"Si", "SiO2", "Si-substrate", "BEOL"}

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_material("unobtainium")


class TestValidation:
    def test_negative_density_rejected(self):
        with pytest.raises(ConfigError):
            Material("bad", 14, 28, -1.0, 173.0)

    def test_zero_z_rejected(self):
        with pytest.raises(ConfigError):
            Material("bad", 0, 28, 2.3, 173.0)

    def test_zero_excitation_rejected(self):
        with pytest.raises(ConfigError):
            Material("bad", 14, 28, 2.3, 0.0)

    def test_collecting_material_needs_pair_energy(self):
        with pytest.raises(ConfigError):
            Material("bad", 14, 28, 2.3, 173.0, pair_energy_ev=None, collects_charge=True)
