"""Property-based tests of the MNA engine on linear circuits.

Linear-circuit theorems (superposition, scaling, passivity, charge
conservation) give exact oracles that hold for every randomly drawn
network -- a much stronger check of the stamps and solvers than any
hand-picked example.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit, Pwl, RectPulse, make_time_grid, run_transient, solve_dc

resistances = st.floats(10.0, 1e5, allow_nan=False)
currents = st.floats(-1e-3, 1e-3, allow_nan=False)


def build_ladder(resistor_values):
    """A ladder network: node_k -- R -- node_{k+1}, all with R to ground.

    Always connected to ground, never singular.
    """
    circuit = Circuit("ladder")
    n = len(resistor_values)
    for k, r in enumerate(resistor_values):
        a = f"n{k}"
        b = f"n{k + 1}" if k + 1 < n else "0"
        circuit.add_resistor(f"rs{k}", a, b, r)
        circuit.add_resistor(f"rg{k}", a, "0", r * 3.0)
    return circuit


class TestSuperposition:
    @settings(max_examples=60, deadline=None)
    @given(
        rs=st.lists(resistances, min_size=2, max_size=5),
        i1=currents,
        i2=currents,
    )
    def test_two_sources_superpose(self, rs, i1, i2):
        n = len(rs)

        def solve_with(ia, ib):
            circuit = build_ladder(rs)
            circuit.add_isource("ia", "0", "n0", ia)
            circuit.add_isource("ib", "0", f"n{n - 1}", ib)
            sol = solve_dc(circuit)
            return np.array([sol.voltage(f"n{k}") for k in range(n)])

        both = solve_with(i1, i2)
        only_a = solve_with(i1, 0.0)
        only_b = solve_with(0.0, i2)
        assert np.allclose(both, only_a + only_b, atol=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(
        rs=st.lists(resistances, min_size=2, max_size=5),
        i1=currents,
        scale=st.floats(0.1, 10.0),
    )
    def test_linearity_in_source(self, rs, i1, scale):
        def solve_with(value):
            circuit = build_ladder(rs)
            circuit.add_isource("ia", "0", "n0", value)
            return solve_dc(circuit).voltage("n0")

        v1 = solve_with(i1)
        v2 = solve_with(i1 * scale)
        assert v2 == pytest.approx(v1 * scale, abs=1e-12)


class TestPassivity:
    @settings(max_examples=60, deadline=None)
    @given(
        rs=st.lists(resistances, min_size=2, max_size=5),
        i1=st.floats(1e-6, 1e-3),
    )
    def test_injected_power_is_positive(self, rs, i1):
        """A current source driving a passive network delivers P >= 0."""
        circuit = build_ladder(rs)
        circuit.add_isource("ia", "0", "n0", i1)
        sol = solve_dc(circuit)
        power = i1 * sol.voltage("n0")
        assert power > 0.0


class TestReciprocity:
    @settings(max_examples=40, deadline=None)
    @given(rs=st.lists(resistances, min_size=3, max_size=5))
    def test_transfer_resistance_symmetric(self, rs):
        """R_ij = R_ji for a reciprocal (R-only) network."""
        n = len(rs)
        probe = 1.0e-4

        def transfer(inject_at, measure_at):
            circuit = build_ladder(rs)
            circuit.add_isource("ip", "0", inject_at, probe)
            return solve_dc(circuit).voltage(measure_at) / probe

        r_ab = transfer("n0", f"n{n - 1}")
        r_ba = transfer(f"n{n - 1}", "n0")
        assert r_ab == pytest.approx(r_ba, rel=1e-9)


class TestChargeConservation:
    @settings(max_examples=30, deadline=None)
    @given(
        charge_fc=st.floats(0.1, 10.0),
        cap_ff=st.floats(0.05, 5.0),
        width_ps=st.floats(0.1, 20.0),
    )
    def test_pulse_charge_lands_on_capacitor(self, charge_fc, cap_ff, width_ps):
        """Pure I->C: dV = Q/C exactly, any pulse width vs grid."""
        charge = charge_fc * 1e-15
        cap = cap_ff * 1e-15
        width = width_ps * 1e-12
        circuit = Circuit("ic")
        circuit.add_isource(
            "ip", "0", "a", RectPulse.from_charge(charge, width)
        )
        circuit.add_capacitor("c", "a", "0", cap)
        circuit.add_resistor("rleak", "a", "0", 1e15)  # DC solvability
        t_stop = max(5e-12, 3.0 * width)
        times = make_time_grid(t_stop, t_stop / 400)
        # backward Euler + step-average sources deliver the waveform
        # charge *exactly* however the grid aligns with the pulse edges
        # (trapezoidal carries an O(1/steps-per-pulse) edge artifact,
        # which is an integrator property, not a bookkeeping one)
        result = run_transient(circuit, times, from_dc=False, method="be")
        assert result.final_voltage("a") == pytest.approx(
            charge / cap, rel=1e-6
        )

    def test_pwl_ramp_charge(self):
        """Triangular PWL current into a capacitor integrates exactly."""
        cap = 1e-15
        wave = Pwl([0.0, 1e-12, 2e-12], [0.0, 1e-3, 0.0])  # 1 fC total
        circuit = Circuit("pwl-ic")
        circuit.add_isource("ip", "0", "a", wave)
        circuit.add_capacitor("c", "a", "0", cap)
        circuit.add_resistor("rleak", "a", "0", 1e15)
        times = make_time_grid(4e-12, 1e-14)
        result = run_transient(circuit, times, from_dc=False)
        assert result.final_voltage("a") == pytest.approx(1.0, rel=1e-2)
