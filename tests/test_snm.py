"""Static noise margin extraction."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sram import SramCellDesign
from repro.sram.snm import (
    inverter_transfer_curve,
    snm_vs_vdd,
    static_noise_margin_v,
)


@pytest.fixture(scope="module")
def design():
    return SramCellDesign()


class TestTransferCurve:
    def test_monotone_decreasing(self, design):
        vin, vout = inverter_transfer_curve(design, 0.8, 31)
        assert vout[0] > 0.75
        assert vout[-1] < 0.05
        assert np.all(np.diff(vout) <= 1e-6)

    def test_read_mode_degrades_low_level(self, design):
        _, hold = inverter_transfer_curve(design, 0.8, 31, "hold")
        _, read = inverter_transfer_curve(design, 0.8, 31, "read")
        # with the access device fighting the pull-down, the low output
        # is lifted above the hold-mode low output
        assert read[-1] > hold[-1]

    def test_invalid_mode(self, design):
        with pytest.raises(ConfigError):
            inverter_transfer_curve(design, 0.8, 31, "write")


class TestSnm:
    def test_hold_snm_plausible(self, design):
        snm = static_noise_margin_v(design, 0.8, "hold")
        # a healthy 6T cell holds ~0.25-0.45 V of margin at 0.8 V
        assert 0.15 < snm < 0.5

    def test_read_snm_below_hold(self, design):
        hold = static_noise_margin_v(design, 0.8, "hold")
        read = static_noise_margin_v(design, 0.8, "read")
        assert read < hold

    def test_snm_grows_with_vdd(self, design):
        snms = snm_vs_vdd(design, [0.7, 0.9, 1.1], "hold")
        assert np.all(np.diff(snms) > 0)

    def test_variation_weakens_margin(self, design):
        nominal = static_noise_margin_v(design, 0.8, "hold")
        skewed = static_noise_margin_v(
            design,
            0.8,
            "hold",
            vth_shifts_v=[0.08, -0.08, 0.0, -0.08, 0.08, 0.0],
        )
        assert skewed < nominal

    def test_bad_shift_shape(self, design):
        with pytest.raises(ConfigError):
            static_noise_margin_v(design, 0.8, vth_shifts_v=[0.1])


class TestConsistencyWithSer:
    def test_snm_and_qcrit_trend_together(self, design):
        """Both robustness metrics must grow with Vdd."""
        from repro.sram.qcrit import critical_charge_vs_vdd

        vdds = [0.7, 1.1]
        snms = snm_vs_vdd(design, vdds, "hold")
        qcrits = critical_charge_vs_vdd(design, vdds)
        assert snms[1] > snms[0]
        assert qcrits[1] > qcrits[0]
