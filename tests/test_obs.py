"""Tests of the observability substrate (repro.obs)."""

import json
import math

import pytest

from repro import obs
from repro.errors import SerializationError
from repro.obs import (
    Histogram,
    MetricsRegistry,
    NullRegistry,
    RunManifest,
    build_manifest,
    configure_tracing,
    disable_metrics,
    enable_metrics,
    get_registry,
    kv,
    metrics_enabled,
    reset_tracing,
    span,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with obs fully disabled."""
    disable_metrics()
    reset_tracing()
    yield
    disable_metrics()
    reset_tracing()


class TestRegistryInstruments:
    def test_counter_semantics(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        # same name -> same instrument
        assert registry.counter("x") is counter

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(1.0)
        gauge.set(42.5)
        assert gauge.value == 42.5

    def test_timer_statistics(self):
        registry = MetricsRegistry()
        timer = registry.timer("t")
        timer.observe(1.0)
        timer.observe(3.0)
        assert timer.count == 2
        assert timer.total_s == pytest.approx(4.0)
        assert timer.mean_s == pytest.approx(2.0)
        assert timer.min_s == pytest.approx(1.0)
        assert timer.max_s == pytest.approx(3.0)

    def test_timer_context_manager(self):
        registry = MetricsRegistry()
        with registry.time("body"):
            pass
        assert registry.timer("body").count == 1
        assert registry.timer("body").total_s >= 0.0

    def test_histogram_binning(self):
        histogram = Histogram("h", edges=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(138.875)

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=(2.0, 1.0))

    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.timer("t").observe(0.25)
        registry.histogram("h", edges=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["timers"]["t"]["count"] == 1
        assert snap["histograms"]["h"]["counts"] == [1, 0]
        # snapshot must be JSON-serializable as-is
        json.dumps(snap)

    def test_reset_clears_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestEnableDisable:
    def test_disabled_by_default(self):
        assert not metrics_enabled()
        assert isinstance(get_registry(), NullRegistry)

    def test_null_registry_is_noop(self):
        registry = get_registry()
        registry.counter("c").inc(10)
        registry.gauge("g").set(5.0)
        registry.timer("t").observe(1.0)
        with registry.time("t"):
            pass
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "timers": {},
            "histograms": {},
        }

    def test_enable_installs_live_registry(self):
        registry = enable_metrics()
        assert metrics_enabled()
        registry.counter("c").inc()
        # enable again without fresh keeps state
        assert enable_metrics().counter("c").value == 1
        # fresh=True resets
        assert enable_metrics(fresh=True).counter("c").value == 0

    def test_disabled_span_is_shared_noop(self):
        first = span("a")
        second = span("b", attr=1)
        assert first is second  # the shared null span


class TestSpans:
    def test_span_records_stage_timer(self):
        registry = enable_metrics(fresh=True)
        with span("unit-stage"):
            pass
        timer = registry.timer("stage.unit-stage")
        assert timer.count == 1

    def test_span_nesting_and_jsonl_output(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        configure_tracing(trace_path)
        assert tracing_enabled()
        with span("outer", level="top") as outer:
            with span("inner") as inner:
                assert inner.depth == outer.depth + 1
                assert inner.parent_id == outer.span_id
        reset_tracing()

        lines = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert lines[0]["type"] == "trace"
        spans = [rec for rec in lines if rec["type"] == "span"]
        # completion order: inner closes first
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner_rec, outer_rec = spans
        assert inner_rec["parent"] == outer_rec["id"]
        assert inner_rec["depth"] == outer_rec["depth"] + 1
        assert inner_rec["dur_s"] <= outer_rec["dur_s"]
        assert outer_rec["attrs"] == {"level": "top"}
        assert all(s["status"] == "ok" for s in spans)

    def test_span_error_status(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        configure_tracing(trace_path)
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("x")
        reset_tracing()
        spans = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if json.loads(line)["type"] == "span"
        ]
        assert spans[0]["status"] == "error"

    def test_tracing_without_metrics_still_traces(self, tmp_path):
        assert not metrics_enabled()
        trace_path = tmp_path / "trace.jsonl"
        configure_tracing(trace_path)
        with span("lone"):
            pass
        reset_tracing()
        assert "lone" in trace_path.read_text()


class TestManifest:
    def _populated_registry(self):
        registry = enable_metrics(fresh=True)
        registry.counter("array_mc.particles").inc(1000)
        registry.counter("array_mc.hits").inc(500)
        registry.counter("lut_cache.hits").inc(2)
        registry.counter("lut_cache.misses").inc(1)
        registry.counter("lut_cache.writes").inc(1)
        registry.gauge("array_mc.rays_per_sec").set(12345.0)
        registry.gauge("fit.pof_se.alpha.vdd=0.8").set(1e-3)
        registry.timer("stage.fit").observe(2.5)
        return registry

    def _manifest(self):
        return build_manifest(
            command="fit",
            argv=["fit", "--vdd", "0.8"],
            config={"vdd": 0.8, "seed": 2014},
            seed=2014,
            started_at="2026-08-06T00:00:00+00:00",
            duration_s=2.5,
            exit_code=0,
            version="1.0.0",
        )

    def test_build_manifest_lifts_summary_sections(self):
        self._populated_registry()
        manifest = self._manifest()
        assert manifest.mc["array_particles"] == 1000
        assert manifest.mc["rays_per_sec"] == 12345.0
        assert manifest.lut_cache == {
            "hits": 2,
            "misses": 1,
            "writes": 1,
            "invalid": 0,
        }
        assert manifest.convergence == {"alpha.vdd=0.8": 1e-3}
        assert manifest.stage_timings_s["fit"]["total_s"] == pytest.approx(2.5)
        assert manifest.metrics["counters"]["array_mc.hits"] == 500

    def test_round_trip(self):
        self._populated_registry()
        manifest = self._manifest()
        payload = manifest.to_dict()
        clone = RunManifest.from_dict(payload)
        assert clone.to_dict() == payload

    def test_write_and_load(self, tmp_path):
        self._populated_registry()
        manifest = self._manifest()
        path = manifest.write(tmp_path / "run.json")
        loaded = RunManifest.load(path)
        assert loaded.to_dict() == manifest.to_dict()
        # atomic write leaves no temp litter
        assert list(tmp_path.glob("*.tmp")) == []

    def test_from_dict_rejects_bad_payloads(self):
        with pytest.raises(SerializationError):
            RunManifest.from_dict({"kind": "something-else"})
        with pytest.raises(SerializationError):
            RunManifest.from_dict(
                {"kind": "run_manifest", "schema_version": 99}
            )
        with pytest.raises(SerializationError):
            RunManifest.from_dict(
                {"kind": "run_manifest", "schema_version": 1}
            )


class TestKv:
    def test_formats_floats_compactly(self):
        assert kv(a=1, b=0.123456789, c="x") == "a=1 b=0.123457 c=x"


class TestCacheCounters:
    """Cache hit/miss counters across two build-luts CLI runs."""

    ARGS = [
        "build-luts",
        "--particles",
        "alpha",
        "--yield-trials",
        "300",
        "--yield-points",
        "4",
        "--samples",
        "8",
        "--quiet",
    ]

    def test_counters_across_two_runs(self, tmp_path):
        from repro.cli import main

        args = self.ARGS + ["--cache-dir", str(tmp_path)]

        assert main(args) == 0
        first = get_registry().snapshot()["counters"]
        assert first.get("lut_cache.misses", 0) >= 2  # yield LUT + POF table
        assert first.get("lut_cache.hits", 0) == 0
        assert first.get("lut_cache.writes", 0) == first["lut_cache.misses"]

        assert main(args) == 0
        second = get_registry().snapshot()["counters"]
        assert second.get("lut_cache.hits", 0) >= 2
        assert second.get("lut_cache.misses", 0) == 0

    def test_corrupt_cache_entry_counts_invalid(self, tmp_path):
        from repro.cli import main

        args = self.ARGS + ["--cache-dir", str(tmp_path)]
        assert main(args) == 0
        for cached in tmp_path.glob("*.json"):
            cached.write_text("{ not json")
        assert main(args) == 0
        counters = get_registry().snapshot()["counters"]
        assert counters.get("lut_cache.invalid", 0) >= 2
        assert counters.get("lut_cache.misses", 0) >= 2


class TestInstrumentedFlow:
    def test_fit_records_metrics_and_manifest_fields(self, tmp_path):
        """`repro-ser fit --metrics-out` emits the full manifest."""
        from repro.cli import main

        out = tmp_path / "run.json"
        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "fit",
                "--vdd",
                "0.8",
                "--particles",
                "alpha",
                "--mc-particles",
                "2000",
                "--samples",
                "8",
                "--yield-trials",
                "300",
                "--yield-points",
                "4",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--metrics-out",
                str(out),
                "--trace",
                str(trace),
                "--quiet",
            ]
        )
        assert code == 0
        manifest = RunManifest.load(out)
        assert manifest.command == "fit"
        assert manifest.exit_code == 0
        assert manifest.seed == 2014
        assert manifest.mc["array_particles"] > 0
        assert manifest.mc["rays_per_sec"] > 0
        assert manifest.mc["transport_trials"] > 0
        assert manifest.lut_cache["misses"] >= 2
        assert "fit" in manifest.stage_timings_s
        assert "pof-table" in manifest.stage_timings_s
        assert manifest.convergence  # per-bin POF standard errors
        for value in manifest.convergence.values():
            assert math.isfinite(value) and value >= 0
        # trace contains the nested stages
        names = {
            json.loads(line)["name"]
            for line in trace.read_text().splitlines()
            if json.loads(line).get("type") == "span"
        }
        assert {"cli.fit", "fit", "pof-table", "yield-luts"} <= names


class TestQuantiles:
    """Timer/histogram quantiles: the p50/p99 surfaced in manifests."""

    def test_timer_exact_quantiles_in_snapshot(self):
        timer = MetricsRegistry().timer("t")
        for value in range(1, 101):  # 0.01 .. 1.00 s
            timer.observe(value / 100.0)
        assert timer.quantile(0.5) == pytest.approx(0.50, abs=0.01)
        snap = timer.snapshot()
        assert snap["p50_s"] == pytest.approx(0.50, abs=0.01)
        assert snap["p99_s"] == pytest.approx(0.99, abs=0.01)
        assert snap["samples"]  # retention buffer travels with snapshots

    def test_timer_decimation_keeps_quantiles_representative(self):
        from repro.obs.registry import TIMER_MAX_SAMPLES

        timer = MetricsRegistry().timer("t")
        n = TIMER_MAX_SAMPLES * 8
        for value in range(n):
            timer.observe(value / n)
        assert timer.count == n
        assert len(timer.samples) <= TIMER_MAX_SAMPLES
        # uniform stride-doubling subsample: quantiles stay close
        assert timer.quantile(0.5) == pytest.approx(0.5, abs=0.05)
        assert timer.quantile(0.99) == pytest.approx(0.99, abs=0.05)

    def test_timer_merge_folds_samples(self):
        a = MetricsRegistry().timer("t")
        b = MetricsRegistry().timer("t")
        for value in (0.1, 0.2, 0.3):
            a.observe(value)
        for value in (0.7, 0.8, 0.9):
            b.observe(value)
        a.merge(b.snapshot())
        assert a.count == 6
        assert a.quantile(0.5) == pytest.approx(0.5, abs=0.21)
        assert a.max_s == pytest.approx(0.9)

    def test_histogram_interpolated_quantiles(self):
        histogram = Histogram("h", edges=(1.0, 2.0, 4.0))
        for _ in range(50):
            histogram.observe(1.5)
        for _ in range(50):
            histogram.observe(3.0)
        # p50 lands at the boundary between the two occupied bins
        assert 1.0 <= histogram.quantile(0.5) <= 2.0
        assert 2.0 <= histogram.quantile(0.99) <= 4.0
        snap = histogram.snapshot()
        assert snap["p50"] == histogram.quantile(0.5)
        assert snap["p99"] == histogram.quantile(0.99)

    def test_histogram_overflow_bin_reports_last_edge(self):
        histogram = Histogram("h", edges=(1.0, 2.0))
        histogram.observe(100.0)
        assert histogram.quantile(0.5) == 2.0

    def test_histogram_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=(1.0,)).quantile(1.5)

    def test_empty_instruments_report_zero(self):
        assert MetricsRegistry().timer("t").quantile(0.5) == 0.0
        assert Histogram("h", edges=(1.0,)).quantile(0.5) == 0.0


class TestJsonlWriter:
    def test_append_and_read(self, tmp_path):
        from repro.obs import JsonlWriter, read_jsonl

        path = tmp_path / "x.jsonl"
        writer = JsonlWriter(path, header={"type": "test", "format": 1})
        writer.write({"type": "rec", "i": 1})
        writer.write({"type": "rec", "i": 2})
        writer.close()
        records, invalid = read_jsonl(path)
        assert invalid == 0
        assert records[0]["type"] == "test"  # header first
        assert [r["i"] for r in records[1:]] == [1, 2]

    def test_torn_line_tolerated(self, tmp_path):
        from repro.obs import JsonlWriter, read_jsonl

        path = tmp_path / "x.jsonl"
        writer = JsonlWriter(path)
        writer.write({"type": "rec", "i": 1})
        writer.close()
        with open(path, "a") as handle:
            handle.write('{"type": "rec", "i":')  # a crash mid-append
        records, invalid = read_jsonl(path)
        assert [r["i"] for r in records] == [1]
        assert invalid == 1

    def test_size_rotation_keeps_one_generation(self, tmp_path):
        from repro.obs import JsonlWriter, read_jsonl

        path = tmp_path / "x.jsonl"
        writer = JsonlWriter(path, max_bytes=1024)
        for i in range(200):
            writer.write({"type": "rec", "i": i, "pad": "y" * 40})
        writer.close()
        rotated = tmp_path / "x.jsonl.1"
        assert rotated.exists()
        assert path.stat().st_size <= 2048  # fresh generation stays small
        for part in (path, rotated):
            _, invalid = read_jsonl(part)
            assert invalid == 0

    def test_writes_survive_after_close_as_noop(self, tmp_path):
        from repro.obs import JsonlWriter

        writer = JsonlWriter(tmp_path / "x.jsonl")
        writer.close()
        writer.write({"type": "rec"})  # must not raise


class TestManifestEnvironment:
    def test_capture_environment_reports_kill_switches(self, monkeypatch):
        from repro.obs import capture_environment

        monkeypatch.setenv("REPRO_NO_WARM_POOL", "1")
        monkeypatch.delenv("REPRO_NO_SHM", raising=False)
        env = capture_environment({"jobs": 4, "backend": "numpy"})
        assert env["env"]["REPRO_NO_WARM_POOL"] == "1"
        assert env["env"]["REPRO_NO_SHM"] is None  # recorded even unset
        assert env["warm_pool_enabled"] is False  # effective, post-env
        assert env["n_jobs"] == 4
        assert env["backend"] == "numpy"
        assert env["cpu_count"] >= 1

    def test_build_manifest_embeds_environment_and_strips_samples(self):
        from repro.obs import capture_environment  # noqa: F401

        registry = enable_metrics(fresh=True)
        registry.timer("stage.fit").observe(0.5)
        manifest = build_manifest(
            command="fit",
            argv=["fit"],
            config={"jobs": 2},
            seed=1,
            started_at="2026-01-01T00:00:00Z",
            duration_s=1.0,
            exit_code=0,
            version="test",
        )
        assert manifest.environment["n_jobs"] == 2
        assert "REPRO_NO_WARM_POOL" in manifest.environment["env"]
        stats = manifest.stage_timings_s["fit"]
        assert "p50_s" in stats and "p99_s" in stats
        # the raw retention buffer stays out of the derived section
        assert "samples" not in stats
        assert manifest.metrics["timers"]["stage.fit"]["samples"]
        # and survives a dict round-trip
        clone = RunManifest.from_dict(manifest.to_dict())
        assert clone.environment == manifest.environment

    def test_manifest_convergence_bins_section(self):
        from repro.obs import record_bin, reset_convergence

        enable_metrics(fresh=True)
        reset_convergence()
        try:
            record_bin(
                "fit", trials=500, pof=0.2, particle="alpha", vdd_v=0.8
            )
            manifest = build_manifest(
                command="fit",
                argv=["fit"],
                config={},
                seed=None,
                started_at="2026-01-01T00:00:00Z",
                duration_s=1.0,
                exit_code=0,
                version="test",
            )
        finally:
            reset_convergence()
        bins = manifest.convergence_bins
        assert bins["bins"] == 1
        assert bins["total_trials"] == 500
        assert bins["worst_bin"] == "fit.alpha.vdd=0.8"
        assert bins["p50_se"] == pytest.approx((0.2 * 0.8 / 500) ** 0.5)
