"""Tests of the observability substrate (repro.obs)."""

import json
import math

import pytest

from repro import obs
from repro.errors import SerializationError
from repro.obs import (
    Histogram,
    MetricsRegistry,
    NullRegistry,
    RunManifest,
    build_manifest,
    configure_tracing,
    disable_metrics,
    enable_metrics,
    get_registry,
    kv,
    metrics_enabled,
    reset_tracing,
    span,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with obs fully disabled."""
    disable_metrics()
    reset_tracing()
    yield
    disable_metrics()
    reset_tracing()


class TestRegistryInstruments:
    def test_counter_semantics(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        # same name -> same instrument
        assert registry.counter("x") is counter

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(1.0)
        gauge.set(42.5)
        assert gauge.value == 42.5

    def test_timer_statistics(self):
        registry = MetricsRegistry()
        timer = registry.timer("t")
        timer.observe(1.0)
        timer.observe(3.0)
        assert timer.count == 2
        assert timer.total_s == pytest.approx(4.0)
        assert timer.mean_s == pytest.approx(2.0)
        assert timer.min_s == pytest.approx(1.0)
        assert timer.max_s == pytest.approx(3.0)

    def test_timer_context_manager(self):
        registry = MetricsRegistry()
        with registry.time("body"):
            pass
        assert registry.timer("body").count == 1
        assert registry.timer("body").total_s >= 0.0

    def test_histogram_binning(self):
        histogram = Histogram("h", edges=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(138.875)

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=(2.0, 1.0))

    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.timer("t").observe(0.25)
        registry.histogram("h", edges=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["timers"]["t"]["count"] == 1
        assert snap["histograms"]["h"]["counts"] == [1, 0]
        # snapshot must be JSON-serializable as-is
        json.dumps(snap)

    def test_reset_clears_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestEnableDisable:
    def test_disabled_by_default(self):
        assert not metrics_enabled()
        assert isinstance(get_registry(), NullRegistry)

    def test_null_registry_is_noop(self):
        registry = get_registry()
        registry.counter("c").inc(10)
        registry.gauge("g").set(5.0)
        registry.timer("t").observe(1.0)
        with registry.time("t"):
            pass
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "timers": {},
            "histograms": {},
        }

    def test_enable_installs_live_registry(self):
        registry = enable_metrics()
        assert metrics_enabled()
        registry.counter("c").inc()
        # enable again without fresh keeps state
        assert enable_metrics().counter("c").value == 1
        # fresh=True resets
        assert enable_metrics(fresh=True).counter("c").value == 0

    def test_disabled_span_is_shared_noop(self):
        first = span("a")
        second = span("b", attr=1)
        assert first is second  # the shared null span


class TestSpans:
    def test_span_records_stage_timer(self):
        registry = enable_metrics(fresh=True)
        with span("unit-stage"):
            pass
        timer = registry.timer("stage.unit-stage")
        assert timer.count == 1

    def test_span_nesting_and_jsonl_output(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        configure_tracing(trace_path)
        assert tracing_enabled()
        with span("outer", level="top") as outer:
            with span("inner") as inner:
                assert inner.depth == outer.depth + 1
                assert inner.parent_id == outer.span_id
        reset_tracing()

        lines = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert lines[0]["type"] == "trace"
        spans = [rec for rec in lines if rec["type"] == "span"]
        # completion order: inner closes first
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner_rec, outer_rec = spans
        assert inner_rec["parent"] == outer_rec["id"]
        assert inner_rec["depth"] == outer_rec["depth"] + 1
        assert inner_rec["dur_s"] <= outer_rec["dur_s"]
        assert outer_rec["attrs"] == {"level": "top"}
        assert all(s["status"] == "ok" for s in spans)

    def test_span_error_status(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        configure_tracing(trace_path)
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("x")
        reset_tracing()
        spans = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if json.loads(line)["type"] == "span"
        ]
        assert spans[0]["status"] == "error"

    def test_tracing_without_metrics_still_traces(self, tmp_path):
        assert not metrics_enabled()
        trace_path = tmp_path / "trace.jsonl"
        configure_tracing(trace_path)
        with span("lone"):
            pass
        reset_tracing()
        assert "lone" in trace_path.read_text()


class TestManifest:
    def _populated_registry(self):
        registry = enable_metrics(fresh=True)
        registry.counter("array_mc.particles").inc(1000)
        registry.counter("array_mc.hits").inc(500)
        registry.counter("lut_cache.hits").inc(2)
        registry.counter("lut_cache.misses").inc(1)
        registry.counter("lut_cache.writes").inc(1)
        registry.gauge("array_mc.rays_per_sec").set(12345.0)
        registry.gauge("fit.pof_se.alpha.vdd=0.8").set(1e-3)
        registry.timer("stage.fit").observe(2.5)
        return registry

    def _manifest(self):
        return build_manifest(
            command="fit",
            argv=["fit", "--vdd", "0.8"],
            config={"vdd": 0.8, "seed": 2014},
            seed=2014,
            started_at="2026-08-06T00:00:00+00:00",
            duration_s=2.5,
            exit_code=0,
            version="1.0.0",
        )

    def test_build_manifest_lifts_summary_sections(self):
        self._populated_registry()
        manifest = self._manifest()
        assert manifest.mc["array_particles"] == 1000
        assert manifest.mc["rays_per_sec"] == 12345.0
        assert manifest.lut_cache == {
            "hits": 2,
            "misses": 1,
            "writes": 1,
            "invalid": 0,
        }
        assert manifest.convergence == {"alpha.vdd=0.8": 1e-3}
        assert manifest.stage_timings_s["fit"]["total_s"] == pytest.approx(2.5)
        assert manifest.metrics["counters"]["array_mc.hits"] == 500

    def test_round_trip(self):
        self._populated_registry()
        manifest = self._manifest()
        payload = manifest.to_dict()
        clone = RunManifest.from_dict(payload)
        assert clone.to_dict() == payload

    def test_write_and_load(self, tmp_path):
        self._populated_registry()
        manifest = self._manifest()
        path = manifest.write(tmp_path / "run.json")
        loaded = RunManifest.load(path)
        assert loaded.to_dict() == manifest.to_dict()
        # atomic write leaves no temp litter
        assert list(tmp_path.glob("*.tmp")) == []

    def test_from_dict_rejects_bad_payloads(self):
        with pytest.raises(SerializationError):
            RunManifest.from_dict({"kind": "something-else"})
        with pytest.raises(SerializationError):
            RunManifest.from_dict(
                {"kind": "run_manifest", "schema_version": 99}
            )
        with pytest.raises(SerializationError):
            RunManifest.from_dict(
                {"kind": "run_manifest", "schema_version": 1}
            )


class TestKv:
    def test_formats_floats_compactly(self):
        assert kv(a=1, b=0.123456789, c="x") == "a=1 b=0.123457 c=x"


class TestCacheCounters:
    """Cache hit/miss counters across two build-luts CLI runs."""

    ARGS = [
        "build-luts",
        "--particles",
        "alpha",
        "--yield-trials",
        "300",
        "--yield-points",
        "4",
        "--samples",
        "8",
        "--quiet",
    ]

    def test_counters_across_two_runs(self, tmp_path):
        from repro.cli import main

        args = self.ARGS + ["--cache-dir", str(tmp_path)]

        assert main(args) == 0
        first = get_registry().snapshot()["counters"]
        assert first.get("lut_cache.misses", 0) >= 2  # yield LUT + POF table
        assert first.get("lut_cache.hits", 0) == 0
        assert first.get("lut_cache.writes", 0) == first["lut_cache.misses"]

        assert main(args) == 0
        second = get_registry().snapshot()["counters"]
        assert second.get("lut_cache.hits", 0) >= 2
        assert second.get("lut_cache.misses", 0) == 0

    def test_corrupt_cache_entry_counts_invalid(self, tmp_path):
        from repro.cli import main

        args = self.ARGS + ["--cache-dir", str(tmp_path)]
        assert main(args) == 0
        for cached in tmp_path.glob("*.json"):
            cached.write_text("{ not json")
        assert main(args) == 0
        counters = get_registry().snapshot()["counters"]
        assert counters.get("lut_cache.invalid", 0) >= 2
        assert counters.get("lut_cache.misses", 0) >= 2


class TestInstrumentedFlow:
    def test_fit_records_metrics_and_manifest_fields(self, tmp_path):
        """`repro-ser fit --metrics-out` emits the full manifest."""
        from repro.cli import main

        out = tmp_path / "run.json"
        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "fit",
                "--vdd",
                "0.8",
                "--particles",
                "alpha",
                "--mc-particles",
                "2000",
                "--samples",
                "8",
                "--yield-trials",
                "300",
                "--yield-points",
                "4",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--metrics-out",
                str(out),
                "--trace",
                str(trace),
                "--quiet",
            ]
        )
        assert code == 0
        manifest = RunManifest.load(out)
        assert manifest.command == "fit"
        assert manifest.exit_code == 0
        assert manifest.seed == 2014
        assert manifest.mc["array_particles"] > 0
        assert manifest.mc["rays_per_sec"] > 0
        assert manifest.mc["transport_trials"] > 0
        assert manifest.lut_cache["misses"] >= 2
        assert "fit" in manifest.stage_timings_s
        assert "pof-table" in manifest.stage_timings_s
        assert manifest.convergence  # per-bin POF standard errors
        for value in manifest.convergence.values():
            assert math.isfinite(value) and value >= 0
        # trace contains the nested stages
        names = {
            json.loads(line)["name"]
            for line in trace.read_text().splitlines()
            if json.loads(line).get("type") == "span"
        }
        assert {"cli.fit", "fit", "pof-table", "yield-luts"} <= names
