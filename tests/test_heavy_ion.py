"""Heavy-ion sigma(LET) campaigns and Weibull fitting."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.layout import SramArrayLayout
from repro.ser import (
    CrossSectionPoint,
    HeavyIonCampaign,
    WeibullFit,
    fit_weibull,
)
from repro.sram import (
    CharacterizationConfig,
    SramCellDesign,
    characterize_cell,
)


@pytest.fixture(scope="module")
def campaign():
    design = SramCellDesign()
    table = characterize_cell(
        design,
        CharacterizationConfig(
            vdd_list=(0.7,),
            n_charge_points=17,
            n_samples=50,
            max_pair_points=4,
            max_triple_points=3,
        ),
    )
    return HeavyIonCampaign(SramArrayLayout(), table)


@pytest.fixture(scope="module")
def curve(campaign):
    rng = np.random.default_rng(3)
    lets = [0.03, 0.08, 0.15, 0.3, 0.8, 2.0]
    return campaign.sweep_let(lets, 0.7, 15000, rng)


class TestCrossSectionCurve:
    def test_threshold_behaviour(self, curve):
        # deep sub-threshold LET: no upsets; far above: saturated
        assert curve[0].cross_section_cm2_per_bit == 0.0
        assert curve[-1].cross_section_cm2_per_bit > 0.0

    def test_monotone_rise(self, curve):
        sigmas = [p.cross_section_cm2_per_bit for p in curve]
        assert all(
            b >= a - 0.15 * max(sigmas)
            for a, b in zip(sigmas, sigmas[1:])
        )

    def test_saturation_plateau(self, curve):
        # the last two points sit on the plateau together
        a, b = curve[-2:], None
        s1 = curve[-2].cross_section_cm2_per_bit
        s2 = curve[-1].cross_section_cm2_per_bit
        assert s1 == pytest.approx(s2, rel=0.3)

    def test_saturation_scale_is_sensitive_area(self, campaign, curve):
        """Saturated sigma per bit ~ the per-cell sensitive-fin area."""
        sat = curve[-1].cross_section_cm2_per_bit
        # 3 sensitive fins x 10 nm x 60 nm = 1800 nm^2 = 1.8e-11 cm^2;
        # oblique entry inflates the effective area somewhat
        assert 0.5e-11 < sat < 8e-11

    def test_tilt_raises_subthreshold_response(self, campaign):
        rng1 = np.random.default_rng(4)
        rng2 = np.random.default_rng(4)
        normal = campaign.run_let(0.1, 0.7, 15000, rng1, "beam:1.0")
        tilted = campaign.run_let(0.1, 0.7, 15000, rng2, "beam:0.5")
        assert (
            tilted.cross_section_cm2_per_bit
            > normal.cross_section_cm2_per_bit
        )

    def test_validation(self, campaign):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            campaign.run_let(-1.0, 0.7, 100, rng)
        with pytest.raises(ConfigError):
            campaign.run_let(1.0, 0.7, 0, rng)


class TestWeibullFit:
    def test_fit_recovers_threshold(self, curve):
        fit = fit_weibull(curve)
        # threshold LET sits between the last zero and first non-zero
        assert 0.02 < fit.let_threshold < 0.3
        assert fit.sigma_sat_cm2 > 0

    def test_fit_evaluates_close_to_data(self, curve):
        fit = fit_weibull(curve)
        for point in curve:
            predicted = float(fit.evaluate(point.let_kev_per_nm))
            assert predicted == pytest.approx(
                point.cross_section_cm2_per_bit,
                abs=0.35 * fit.sigma_sat_cm2,
            )

    def test_evaluate_below_threshold_zero(self):
        fit = WeibullFit(1e-11, 0.1, 0.05, 2.0)
        assert float(fit.evaluate(0.05)) == 0.0

    def test_synthetic_round_trip(self):
        truth = WeibullFit(2e-11, 0.12, 0.08, 1.8)
        lets = np.linspace(0.05, 1.0, 12)
        points = [
            CrossSectionPoint(float(l), float(truth.evaluate(l)), 0.0, 1000)
            for l in lets
        ]
        fit = fit_weibull(points)
        assert fit.sigma_sat_cm2 == pytest.approx(2e-11, rel=0.1)
        assert fit.let_threshold == pytest.approx(0.12, abs=0.05)

    def test_fit_needs_enough_points(self):
        points = [CrossSectionPoint(1.0, 1e-11, 0.0, 100)] * 3
        with pytest.raises(ConfigError):
            fit_weibull(points)

    def test_fit_needs_nonzero_data(self):
        points = [
            CrossSectionPoint(float(l), 0.0, 0.0, 100) for l in range(1, 6)
        ]
        with pytest.raises(ConfigError):
            fit_weibull(points)
