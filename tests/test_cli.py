"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_present(self):
        parser = build_parser()
        args = parser.parse_args(["info"])
        assert args.command == "info"

    def test_fit_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["fit"])
        assert args.vdd == 0.8
        assert args.particles == "alpha,proton"

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_obs_flags_on_every_subcommand(self):
        parser = build_parser()
        for command in ("info", "qcrit", "snm", "fit", "sweep", "build-luts"):
            args = parser.parse_args([command, "--quiet", "--log-level", "debug"])
            assert args.quiet is True
            assert args.log_level == "debug"
            assert args.metrics_out is None
            assert args.trace is None


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "soi-finfet-14nm" in out
        assert "transit time" in out

    def test_qcrit(self, capsys):
        assert main(["qcrit", "--vdd-list", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "Qcrit" in out

    def test_quiet_suppresses_output(self, capsys):
        assert main(["qcrit", "--vdd-list", "0.8", "--quiet"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""

    def test_info_quiet(self, capsys):
        assert main(["info", "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_fit_small(self, capsys, tmp_path):
        code = main(
            [
                "fit",
                "--vdd",
                "0.8",
                "--particles",
                "alpha",
                "--mc-particles",
                "3000",
                "--samples",
                "20",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FIT=" in out
        assert "MBU/SEU" in out


class TestReport:
    def test_report_command(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "report.md"
        code = main(
            [
                "report",
                "--out",
                str(out),
                "--particles",
                "alpha",
                "--mc-particles",
                "2000",
                "--samples",
                "15",
                "--no-variation",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        text = out.read_text()
        assert "# Reproduction report" in text
        assert "Fig. 9" in text
        assert "Fig. 8" in text
