"""Circuit-level baseline SER model (related work [14, 17])."""

import numpy as np
import pytest

from repro.baselines import CircuitLevelSerModel
from repro.errors import ConfigError
from repro.sram import SramCellDesign


@pytest.fixture(scope="module")
def model():
    return CircuitLevelSerModel(SramCellDesign())


class TestQcritExtraction:
    def test_close_to_impulse_qcrit(self, model):
        from repro.sram.qcrit import nominal_critical_charge_c

        baseline = model.critical_charge_c(0.8)
        impulse = nominal_critical_charge_c(model.design, 0.8)
        # ps-scale double-exp collection loses some charge to the
        # restoring current, so the baseline Qcrit sits at or above the
        # impulse value
        assert baseline >= 0.8 * impulse
        assert baseline < 4.0 * impulse

    def test_grows_with_vdd(self, model):
        assert model.critical_charge_c(1.1) > model.critical_charge_c(0.7)


class TestFitRate:
    def test_positive_and_vdd_trend(self, model):
        fits = model.fit_series("alpha", [0.7, 0.9, 1.1])
        assert np.all(fits > 0)
        # lower Vdd -> lower Qcrit -> higher baseline SER
        assert fits[0] > fits[-1]

    def test_species_only_differ_by_flux(self, model):
        # the baseline has no per-species device physics: the ratio of
        # its alpha and proton estimates is exactly the flux ratio
        alpha = model.fit_rate("alpha", 0.8)
        proton = model.fit_rate("proton", 0.8)
        from repro.physics import spectrum_for

        sp_a = spectrum_for("alpha")
        sp_p = spectrum_for("proton")
        flux_ratio = sp_p.integral_flux(
            sp_p.e_min_mev, sp_p.e_max_mev
        ) / sp_a.integral_flux(sp_a.e_min_mev, sp_a.e_max_mev)
        assert proton / alpha == pytest.approx(flux_ratio, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ConfigError):
            CircuitLevelSerModel(SramCellDesign(), collection_slope_c=-1.0)


class TestBaselineVsCrossLayer:
    def test_baseline_misses_species_crossover(self, model):
        """The cross-layer flow's key qualitative result -- proton SER
        becoming relatively more important at low Vdd -- is invisible to
        the baseline: its proton/alpha ratio is Vdd-independent."""
        r_07 = model.fit_rate("proton", 0.7) / model.fit_rate("alpha", 0.7)
        r_11 = model.fit_rate("proton", 1.1) / model.fit_rate("alpha", 1.1)
        assert r_07 == pytest.approx(r_11, rel=1e-6)

    def test_baseline_has_no_mbu_concept(self, model):
        """Structural: the baseline returns one scalar -- SEU/MBU
        decomposition requires the layout-aware flow."""
        assert isinstance(model.fit_rate("alpha", 0.8), float)
