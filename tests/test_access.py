"""Dynamic read/write access analysis of the 6T cell."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sram import SramCellDesign
from repro.sram.access import (
    AccessTimingConfig,
    read_disturb_analysis,
    write_analysis,
)


@pytest.fixture(scope="module")
def design():
    return SramCellDesign()


class TestReadAccess:
    @pytest.fixture(scope="class")
    def result(self, design):
        return read_disturb_analysis(design, 0.8)

    def test_cell_survives_read(self, result):
        assert result["survived"] == 1.0

    def test_zero_node_bumps_but_stays_low(self, result):
        # the access transistor lifts qb, but below the trip point
        assert 0.02 < result["max_qb_bump_v"] < 0.4

    def test_bitline_develops_read_signal(self, result):
        # the cell discharges BLB through pg_r/pd_r
        assert result["bl_droop_v"] > 0.05

    def test_weak_cell_bumps_higher(self, design):
        nominal = read_disturb_analysis(design, 0.8)
        # weaken the right pull-down (higher Vth): worse read stability
        weak = read_disturb_analysis(
            design, 0.8, vth_shifts_v=[0, 0, 0, 0, 0.10, 0]
        )
        assert weak["max_qb_bump_v"] > nominal["max_qb_bump_v"]


class TestWriteAccess:
    def test_write_succeeds(self, design):
        result = write_analysis(design, 0.8)
        assert result["succeeded"] == 1.0
        assert 0.0 < result["write_delay_s"] < 2.0e-10

    def test_write_works_across_vdd(self, design):
        for vdd in (0.7, 1.0):
            assert write_analysis(design, vdd)["succeeded"] == 1.0

    def test_glitch_wordline_cannot_write(self, design):
        """A ~1 ps word-line glitch is far shorter than the measured
        ~20 ps write delay: the cell must hold."""
        config = AccessTimingConfig(
            wl_rise_s=0.5e-12, wl_width_s=0.5e-12, dt_s=0.5e-12
        )
        result = write_analysis(design, 0.8, config=config)
        assert result["succeeded"] == 0.0


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            AccessTimingConfig(dt_s=-1.0)
        with pytest.raises(ConfigError):
            AccessTimingConfig(bitline_cap_f=0.0)

    def test_bad_shifts(self, design):
        with pytest.raises(ConfigError):
            read_disturb_analysis(design, 0.8, vth_shifts_v=[0.1, 0.2])
