"""DC and transient solvers against analytic references."""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    RectPulse,
    make_strike_time_grid,
    make_time_grid,
    run_transient,
    solve_dc,
)
from repro.devices import default_tech
from repro.errors import CircuitError


class TestDcLinear:
    def test_voltage_divider(self):
        circuit = Circuit()
        circuit.add_vsource("v1", "in", "0", 1.0)
        circuit.add_resistor("r1", "in", "mid", 1000.0)
        circuit.add_resistor("r2", "mid", "0", 3000.0)
        sol = solve_dc(circuit)
        assert sol.voltage("mid") == pytest.approx(0.75)

    def test_branch_current(self):
        circuit = Circuit()
        circuit.add_vsource("v1", "in", "0", 2.0)
        circuit.add_resistor("r1", "in", "0", 1000.0)
        sol = solve_dc(circuit)
        # SPICE convention: current into the + terminal is negative
        # when the source delivers power
        assert abs(sol.branch_current("v1")) == pytest.approx(2e-3)

    def test_current_source_direction(self):
        # 1 mA from ground into node a across 1 kOhm -> +1 V
        circuit = Circuit()
        circuit.add_isource("i1", "0", "a", 1e-3)
        circuit.add_resistor("r1", "a", "0", 1000.0)
        sol = solve_dc(circuit)
        assert sol.voltage("a") == pytest.approx(1.0)

    def test_floating_node_is_singular(self):
        circuit = Circuit()
        circuit.add_vsource("v1", "a", "0", 1.0)
        circuit.add_capacitor("c1", "a", "b", 1e-15)  # b floats at DC
        with pytest.raises(CircuitError):
            solve_dc(circuit)


class TestDcNonlinear:
    def test_inverter_transfer(self):
        tech = default_tech()
        for vin, expect_high in ((0.05, False), (0.75, True)):
            circuit = Circuit()
            circuit.add_vsource("vdd", "vdd", "0", 0.8)
            circuit.add_vsource("vin", "in", "0", vin)
            circuit.add_finfet("mp", "out", "in", "vdd", tech.pmos)
            circuit.add_finfet("mn", "out", "in", "0", tech.nmos)
            sol = solve_dc(circuit, initial_guess={"vdd": 0.8})
            if expect_high:
                assert sol.voltage("out") < 0.1
            else:
                assert sol.voltage("out") > 0.7

    def test_sram_bistability(self):
        """Both hold states are reachable via the nodeset."""
        from repro.sram import SramCellDesign

        design = SramCellDesign()
        circuit = design.build_circuit(0.8)
        state1 = solve_dc(circuit, initial_guess=design.hold_state_guess(0.8))
        assert state1.voltage("q") > 0.7
        assert state1.voltage("qb") < 0.1
        state0 = solve_dc(
            circuit, initial_guess={"vdd": 0.8, "q": 0.0, "qb": 0.8}
        )
        assert state0.voltage("q") < 0.1
        assert state0.voltage("qb") > 0.7


class TestTransient:
    def test_rc_charging(self):
        circuit = Circuit()
        circuit.add_vsource("v1", "a", "0", 1.0)
        circuit.add_resistor("r1", "a", "b", 1e3)
        circuit.add_capacitor("c1", "b", "0", 1e-15)
        times = make_time_grid(5e-12, 5e-15)
        result = run_transient(
            circuit, times, initial_conditions={"b": 0.0}, from_dc=False
        )
        expected = 1.0 - np.exp(-times / 1e-12)
        assert np.max(np.abs(result.voltage("b") - expected)) < 2e-3

    def test_be_matches_trap_at_fine_step(self):
        circuit = Circuit()
        circuit.add_vsource("v1", "a", "0", 1.0)
        circuit.add_resistor("r1", "a", "b", 1e3)
        circuit.add_capacitor("c1", "b", "0", 1e-15)
        times = make_time_grid(3e-12, 2e-15)
        trap = run_transient(circuit, times, {"b": 0.0}, from_dc=False, method="trap")
        be = run_transient(circuit, times, {"b": 0.0}, from_dc=False, method="be")
        assert np.max(np.abs(trap.voltage("b") - be.voltage("b"))) < 5e-3

    def test_current_pulse_into_capacitor(self):
        # pure C: dV = Q/C exactly, independent of pulse width
        circuit = Circuit()
        circuit.add_isource(
            "i1", "0", "a", RectPulse.from_charge(1e-15, 1e-12)
        )
        circuit.add_capacitor("c1", "a", "0", 1e-15)
        circuit.add_resistor("rleak", "a", "0", 1e12)  # keep DC solvable
        times = make_time_grid(3e-12, 1e-14)
        result = run_transient(circuit, times, from_dc=False)
        assert result.final_voltage("a") == pytest.approx(1.0, rel=0.01)

    def test_grid_validation(self):
        circuit = Circuit()
        circuit.add_resistor("r1", "a", "0", 1.0)
        with pytest.raises(CircuitError):
            run_transient(circuit, np.array([0.0]))
        with pytest.raises(CircuitError):
            run_transient(circuit, np.array([0.0, 0.0, 1.0]))

    def test_strike_grid_helper(self):
        grid = make_strike_time_grid(1e-12, 2e-14, 5e-11)
        assert grid[0] == 0.0
        assert grid[-1] == pytest.approx(1e-12 + 5e-11)
        assert np.all(np.diff(grid) > 0)

    def test_from_dc_start_holds_equilibrium(self):
        from repro.sram import SramCellDesign

        design = SramCellDesign()
        circuit = design.build_circuit(0.8)
        times = make_time_grid(2e-11, 5e-13)
        result = run_transient(
            circuit, times, initial_conditions=design.hold_state_guess(0.8)
        )
        # no stimulus: the cell must stay put
        assert result.final_voltage("q") > 0.7
        assert result.final_voltage("qb") < 0.1
