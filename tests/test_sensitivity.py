"""Parameter sensitivity analysis."""

import dataclasses

import numpy as np
import pytest

from repro import FlowConfig
from repro.analysis import (
    SENSITIVITY_PARAMETERS,
    perturb_technology,
    ser_sensitivities,
)
from repro.devices import default_tech
from repro.errors import ConfigError
from repro.sram import CharacterizationConfig


class TestPerturbTechnology:
    def test_node_cap(self):
        tech = default_tech()
        perturbed = perturb_technology(tech, "node_cap", 0.1)
        assert perturbed.node_cap_f == pytest.approx(1.1 * tech.node_cap_f)

    def test_vth_moves_both_flavours(self):
        tech = default_tech()
        perturbed = perturb_technology(tech, "vth", -0.1)
        assert perturbed.nmos.vth0_v == pytest.approx(0.9 * tech.nmos.vth0_v)
        assert perturbed.pmos.vth0_v == pytest.approx(0.9 * tech.pmos.vth0_v)

    def test_fin_height(self):
        tech = default_tech()
        perturbed = perturb_technology(tech, "fin_height", 0.2)
        assert perturbed.fin.height_nm == pytest.approx(1.2 * tech.fin.height_nm)
        assert perturbed.fin.length_nm == tech.fin.length_nm

    def test_collection_length(self):
        tech = default_tech()
        perturbed = perturb_technology(tech, "collection", 0.5)
        assert perturbed.collection_length_nm == pytest.approx(
            1.5 * tech.collection_length_nm
        )

    def test_base_untouched(self):
        tech = default_tech()
        perturb_technology(tech, "node_cap", 0.5)
        assert tech.node_cap_f == default_tech().node_cap_f

    def test_unknown_parameter(self):
        with pytest.raises(ConfigError):
            perturb_technology(default_tech(), "magic", 0.1)

    def test_nonpositive_factor(self):
        with pytest.raises(ConfigError):
            perturb_technology(default_tech(), "node_cap", -1.5)


@pytest.fixture(scope="module")
def small_config():
    return FlowConfig(
        particles=("alpha",),
        vdd_list=(0.7,),
        yield_energy_points=4,
        yield_trials_per_energy=2500,
        characterization=CharacterizationConfig(
            vdd_list=(0.7,),
            n_charge_points=15,
            n_samples=35,
            max_pair_points=4,
            max_triple_points=3,
        ),
        array_rows=5,
        array_cols=5,
        n_energy_bins=3,
        mc_particles_per_bin=12000,
        seed=7,
    )


class TestSensitivities:
    @pytest.fixture(scope="class")
    def results(self, small_config):
        return {
            r.parameter: r
            for r in ser_sensitivities(
                small_config,
                parameters=("node_cap", "fin_height", "collection"),
                relative_delta=0.25,
            )
        }

    def test_node_cap_strongly_negative(self, results):
        # bigger storage cap -> bigger Qcrit -> fewer upsets
        assert results["node_cap"].elasticity < -1.0

    def test_fin_height_positive(self, results):
        # taller fins collect more charge and present more area
        assert results["fin_height"].elasticity > 0.0

    def test_collection_positive(self, results):
        assert results["collection"].elasticity > 0.0

    def test_common_base(self, results):
        bases = {r.fit_base for r in results.values()}
        assert len(bases) == 1

    def test_nan_elasticity_on_zero_fit(self):
        from repro.analysis import SensitivityResult

        result = SensitivityResult("x", 0.1, 0.0, 1.0)
        assert np.isnan(result.elasticity)
