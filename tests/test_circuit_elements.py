"""Waveforms, elements, and netlist construction."""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    Dc,
    DoubleExponential,
    Pwl,
    RectPulse,
    TriangularPulse,
    pulse_from_charge,
)
from repro.errors import CircuitError, ConfigError


class TestWaveforms:
    def test_dc(self):
        wave = Dc(0.8)
        assert np.all(wave.value(np.array([0.0, 1e-9])) == 0.8)

    def test_rect_pulse_window(self):
        wave = RectPulse(amplitude=2.0, width_s=1e-12, delay_s=1e-12)
        t = np.array([0.5e-12, 1.5e-12, 2.5e-12])
        assert np.allclose(wave.value(t), [0.0, 2.0, 0.0])

    def test_rect_from_charge_is_papers_eq3(self):
        # I = Q / tau (paper eq. 3)
        q, tau = 1e-15, 17e-15
        wave = RectPulse.from_charge(q, tau)
        assert wave.amplitude == pytest.approx(q / tau)
        assert wave.charge() == pytest.approx(q)

    def test_triangle_charge(self):
        wave = TriangularPulse.from_charge(2e-15, 1e-12)
        assert wave.charge() == pytest.approx(2e-15)
        # peak at the middle of the window
        assert wave.value(np.array([0.5e-12]))[0] == pytest.approx(wave.peak)

    def test_dexp_charge(self):
        wave = DoubleExponential.from_charge(1e-15, 1e-14, 1e-13)
        assert wave.charge() == pytest.approx(1e-15)
        # numeric integral agrees
        t = np.linspace(0, 2e-12, 200001)
        numeric = np.trapezoid(wave.value(t), t)
        assert numeric == pytest.approx(1e-15, rel=1e-3)

    def test_dexp_ordering_enforced(self):
        with pytest.raises(ConfigError):
            DoubleExponential(i0=1.0, tau_rise_s=1e-12, tau_fall_s=1e-13)

    def test_pwl(self):
        wave = Pwl([0.0, 1.0, 2.0], [0.0, 2.0, 0.0])
        assert wave.value(np.array([0.5]))[0] == pytest.approx(1.0)
        assert wave.charge() == pytest.approx(2.0)

    def test_pwl_needs_increasing_times(self):
        with pytest.raises(ConfigError):
            Pwl([0.0, 0.0], [1.0, 2.0])

    @pytest.mark.parametrize("shape", ["rect", "triangle", "dexp"])
    def test_factory_preserves_charge(self, shape):
        wave = pulse_from_charge(shape, 3e-15, 2e-14)
        assert wave.charge() == pytest.approx(3e-15, rel=1e-9)

    def test_factory_unknown_shape(self):
        with pytest.raises(ConfigError):
            pulse_from_charge("sawtooth", 1e-15, 1e-14)


class TestNetlist:
    def test_nodes_created_implicitly(self):
        circuit = Circuit()
        circuit.add_resistor("r1", "a", "b", 100.0)
        assert set(circuit.node_names) == {"0", "a", "b"}

    def test_duplicate_names_rejected(self):
        circuit = Circuit()
        circuit.add_resistor("r1", "a", "0", 100.0)
        with pytest.raises(CircuitError):
            circuit.add_resistor("r1", "b", "0", 100.0)

    def test_invalid_resistance(self):
        with pytest.raises(CircuitError):
            Circuit().add_resistor("r1", "a", "0", -5.0)

    def test_invalid_capacitance(self):
        with pytest.raises(CircuitError):
            Circuit().add_capacitor("c1", "a", "0", 0.0)

    def test_element_lookup(self):
        circuit = Circuit()
        r = circuit.add_resistor("r1", "a", "0", 100.0)
        assert circuit.element("r1") is r
        with pytest.raises(CircuitError):
            circuit.element("nope")

    def test_compile_indices(self):
        circuit = Circuit()
        circuit.add_vsource("v1", "a", "0", 1.0)
        circuit.add_resistor("r1", "a", "b", 100.0)
        compiled = circuit.compile()
        assert compiled.n_nodes == 2
        assert compiled.n_vsources == 1
        assert compiled.voltage_index("0") == -1
        with pytest.raises(CircuitError):
            compiled.voltage_index("zz")

    def test_compile_empty_rejected(self):
        with pytest.raises(CircuitError):
            Circuit().compile()
