"""Particle kinematics: beta/gamma, passage times, inverses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PhysicsError
from repro.physics import ALPHA, PROTON, get_particle

energies = st.floats(1e-3, 1e4, allow_nan=False)


class TestKinematics:
    def test_gamma_at_rest_energy(self):
        # kinetic energy equal to the rest energy doubles gamma
        assert PROTON.gamma(PROTON.rest_energy_mev) == pytest.approx(2.0)

    def test_beta_nonrelativistic_limit(self):
        # E << mc^2: beta^2 ~ 2E/mc^2
        e = 1.0
        expected = 2.0 * e / PROTON.rest_energy_mev
        assert PROTON.beta_squared(e) == pytest.approx(expected, rel=2e-3)

    def test_beta_below_one(self):
        assert PROTON.beta(1e6) < 1.0

    def test_alpha_slower_at_same_energy(self):
        # heavier particle moves slower at equal kinetic energy
        assert ALPHA.beta(5.0) < PROTON.beta(5.0)

    @given(energies)
    @settings(max_examples=60, deadline=None)
    def test_kinetic_from_beta_round_trip(self, energy):
        beta = PROTON.beta(energy)
        assert PROTON.kinetic_from_beta(beta) == pytest.approx(energy, rel=1e-9)

    def test_negative_energy_rejected(self):
        with pytest.raises(PhysicsError):
            PROTON.gamma(-1.0)

    def test_bad_beta_rejected(self):
        with pytest.raises(PhysicsError):
            PROTON.kinetic_from_beta(1.0)


class TestPassageTime:
    def test_paper_claim_alpha_below_1fs(self):
        # paper Section 3.3: tau_p < 1 fs for a typical (U/Th-line
        # energy, ~5 MeV) alpha across a 10 nm fin
        tau = ALPHA.passage_time_s(5.0, 10.0)
        assert tau < 1.0e-15

    def test_paper_claim_proton_faster(self):
        # "for proton, tau_p is approximately 10 times smaller": at the
        # same kinetic energy a proton is ~2x faster (sqrt of the mass
        # ratio); the paper's factor ~10 compares typical energies.
        tau_p = PROTON.passage_time_s(1.0, 10.0)
        tau_a = ALPHA.passage_time_s(1.0, 10.0)
        assert tau_p < tau_a

    def test_scales_with_path(self):
        assert ALPHA.passage_time_s(1.0, 20.0) == pytest.approx(
            2.0 * ALPHA.passage_time_s(1.0, 10.0)
        )


class TestRegistry:
    def test_lookup(self):
        assert get_particle("proton") is PROTON
        assert get_particle("alpha") is ALPHA

    def test_unknown_raises(self):
        with pytest.raises(PhysicsError):
            get_particle("neutron")  # indirect ionization: future work

    def test_charge_numbers(self):
        assert PROTON.charge_number == 1
        assert ALPHA.charge_number == 2
