"""Cluster offsets and ECC/interleaving analysis."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.physics.spectra import EnergyBins
from repro.reliability import EccScheme, word_failure_rates
from repro.reliability.ecc import DEC_TED, NO_ECC, SEC_DED, same_word_pair_fraction
from repro.ser import ArrayPofResult, integrate_fit
from repro.ser.clusters import PairOffsetStatistics


def make_fit(seu, mbu):
    edges = np.array([1.0, 10.0])
    bins = EnergyBins(edges, np.array([3.0]), np.array([1e-6]))
    pof = seu + mbu
    result = ArrayPofResult(
        "alpha", 3.0, 0.7, 1000, 500, 100, pof, seu, mbu, 1e-7
    )
    return integrate_fit("alpha", 0.7, bins, [result])


def make_offsets(pairs):
    return PairOffsetStatistics(dict(pairs), n_particles=1000)


class TestPairOffsetStatistics:
    def test_rates(self):
        stats = make_offsets({(0, 1): 0.6, (1, 0): 0.3, (1, 1): 0.1})
        assert stats.total_pair_rate == pytest.approx(1.0)
        assert stats.same_row_rate() == pytest.approx(0.6)
        assert stats.same_column_rate() == pytest.approx(0.3)

    def test_max_column_extent(self):
        stats = make_offsets({(0, 1): 0.9, (0, 5): 0.1, (0, 9): 0.0001})
        assert stats.max_column_extent() == 5

    def test_empty(self):
        stats = make_offsets({})
        assert stats.total_pair_rate == 0.0
        assert stats.max_column_extent() == 0


class TestSameWordFraction:
    def test_adjacent_columns_separated_by_interleave(self):
        stats = make_offsets({(0, 1): 1.0})
        assert same_word_pair_fraction(stats, 1) == pytest.approx(1.0)
        assert same_word_pair_fraction(stats, 2) == pytest.approx(0.0)

    def test_multiples_of_distance_share_word(self):
        stats = make_offsets({(0, 4): 0.5, (0, 3): 0.5})
        assert same_word_pair_fraction(stats, 4) == pytest.approx(0.5)

    def test_cross_row_pairs_never_share(self):
        stats = make_offsets({(1, 0): 1.0})
        assert same_word_pair_fraction(stats, 1) == pytest.approx(0.0)

    def test_invalid_distance(self):
        with pytest.raises(ConfigError):
            same_word_pair_fraction(make_offsets({}), 0)


class TestWordFailureRates:
    def test_no_ecc_counts_everything(self):
        fit = make_fit(seu=0.9, mbu=0.1)
        offsets = make_offsets({(0, 1): 1.0})
        analysis = word_failure_rates(fit, offsets, NO_ECC, 4)
        assert analysis.uncorrectable_rate == pytest.approx(
            fit.fit_seu + fit.fit_mbu
        )

    def test_secded_leaves_same_word_mbu(self):
        fit = make_fit(seu=0.9, mbu=0.1)
        offsets = make_offsets({(0, 4): 0.5, (1, 1): 0.5})
        analysis = word_failure_rates(fit, offsets, SEC_DED, 4)
        assert analysis.uncorrectable_rate == pytest.approx(0.5 * fit.fit_mbu)
        assert analysis.correction_gain > 1.0

    def test_interleaving_improves_secded(self):
        fit = make_fit(seu=0.9, mbu=0.1)
        offsets = make_offsets({(0, 1): 0.8, (1, 0): 0.2})
        tight = word_failure_rates(fit, offsets, SEC_DED, 1)
        spread = word_failure_rates(fit, offsets, SEC_DED, 4)
        assert spread.uncorrectable_rate < tight.uncorrectable_rate

    def test_dected_second_order(self):
        fit = make_fit(seu=0.9, mbu=0.1)
        offsets = make_offsets({(0, 1): 1.0})
        sec = word_failure_rates(fit, offsets, SEC_DED, 1)
        dec = word_failure_rates(fit, offsets, DEC_TED, 1)
        assert dec.uncorrectable_rate <= sec.uncorrectable_rate

    def test_scheme_validation(self):
        with pytest.raises(ConfigError):
            EccScheme("bad", -1)


class TestCollectedOffsetsIntegration:
    @pytest.fixture(scope="class")
    def stats(self):
        from repro.geometry import FinGeometry, SoiFinWorld
        from repro.layout import SramArrayLayout
        from repro.physics import ALPHA
        from repro.ser import ArraySerSimulator, collect_pair_offsets
        from repro.sram import (
            CharacterizationConfig,
            SramCellDesign,
            characterize_cell,
        )
        from repro.transport import ElectronYieldLUT, TransportEngine

        design = SramCellDesign()
        table = characterize_cell(
            design,
            CharacterizationConfig(
                vdd_list=(0.7,),
                n_charge_points=15,
                n_samples=40,
                max_pair_points=4,
                max_triple_points=3,
            ),
        )
        fin = FinGeometry(
            design.tech.collection_length_nm,
            design.tech.fin.width_nm,
            design.tech.fin.height_nm,
        )
        lut = ElectronYieldLUT.build(
            ALPHA,
            np.logspace(-1, 1, 4),
            3000,
            np.random.default_rng(0),
            engine=TransportEngine(SoiFinWorld(fin=fin)),
        )
        sim = ArraySerSimulator(SramArrayLayout(), table, {"alpha": lut})
        return collect_pair_offsets(
            sim, ALPHA, 2.0, 0.7, 30000, np.random.default_rng(1)
        )

    def test_pairs_found(self, stats):
        assert stats.total_pair_rate > 0.0

    def test_clusters_are_compact(self, stats):
        """Physical MBU pairs are near neighbours (offsets <= 2 cells)."""
        total = stats.total_pair_rate
        compact = sum(
            rate
            for (dr, dc), rate in stats.expected_pairs.items()
            if dr <= 2 and dc <= 2
        )
        assert compact / total > 0.95

    def test_adjacent_column_pairs_dominate(self, stats):
        """The mirrored tiling makes (0, 1) the top offset."""
        top = max(stats.expected_pairs.items(), key=lambda kv: kv[1])
        assert top[0] == (0, 1)

    def test_interleaving_by_two_separates(self, stats):
        assert same_word_pair_fraction(stats, 2) < 0.05
