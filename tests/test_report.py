"""Text reporting helpers."""

import numpy as np
import pytest

from repro.core import comparison_report, fit_report, format_table
from repro.physics.spectra import EnergyBins
from repro.ser import ArrayPofResult, SerSweep, integrate_fit


def make_sweep(values):
    sweep = SerSweep()
    edges = np.array([1.0, 10.0])
    bins = EnergyBins(edges, np.array([3.0]), np.array([1e-6]))
    for (particle, vdd), pof in values.items():
        result = ArrayPofResult(
            particle, 3.0, vdd, 1000, 500, 100, pof, 0.9 * pof, 0.1 * pof, 1e-7
        )
        sweep.add(integrate_fit(particle, vdd, bins, [result]))
    return sweep


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}

    def test_scientific_for_extremes(self):
        text = format_table(["x"], [[1.23e-9]])
        assert "e-09" in text

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestFitReport:
    def test_normalization(self):
        sweep = make_sweep({("alpha", 0.7): 0.5, ("alpha", 0.9): 0.25})
        text = fit_report(sweep)
        # the peak row normalizes to 1
        assert " 1  " in text or " 1\n" in text or "  1" in text
        assert "alpha" in text
        assert "MBU/SEU" in text

    def test_absolute_mode(self):
        sweep = make_sweep({("alpha", 0.7): 0.5})
        text = fit_report(sweep, normalize=False)
        assert "alpha" in text


class TestComparisonReport:
    def test_ratio_column(self):
        a = make_sweep({("alpha", 0.7): 0.5, ("alpha", 0.9): 0.2})
        b = make_sweep({("alpha", 0.7): 0.25, ("alpha", 0.9): 0.2})
        text = comparison_report("pv", a, "nom", b, "alpha")
        assert "pv/nom" in text
        assert "2" in text  # the 0.5/0.25 ratio
