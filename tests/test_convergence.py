"""Monte Carlo convergence diagnostics."""

import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import (
    BinBudgetState,
    ConvergenceEstimate,
    StratumState,
    allocate_blocks,
    build_energy_tilt,
    estimate_pof_error,
    pof_standard_error,
    split_blocks_across_strata,
)
from repro.errors import ConfigError


def _result(**overrides):
    """Duck-typed ArrayPofResult stand-in for the SE estimator."""
    base = dict(
        n_particles=10000,
        n_array_hits=1200,
        pof_total=0.01,
        degraded=False,
        pof_variance=None,
    )
    base.update(overrides)
    return SimpleNamespace(**base)


class TestConvergenceEstimate:
    def test_relative_error(self):
        est = ConvergenceEstimate(0.1, 0.01, 10000, 10)
        assert est.relative_error == pytest.approx(0.1)

    def test_zero_mean_infinite(self):
        est = ConvergenceEstimate(0.0, 0.0, 1000, 10)
        assert est.relative_error == float("inf")

    def test_sizing_scales_inverse_square(self):
        est = ConvergenceEstimate(0.1, 0.01, 10000, 10)
        # halving the relative error costs 4x the particles
        assert est.particles_for_relative_error(0.05) == 40000

    def test_sizing_requires_observations(self):
        est = ConvergenceEstimate(0.0, 0.0, 1000, 10)
        with pytest.raises(ConfigError):
            est.particles_for_relative_error(0.1)

    def test_sizing_validates_target(self):
        est = ConvergenceEstimate(0.1, 0.01, 10000, 10)
        with pytest.raises(ConfigError):
            est.particles_for_relative_error(0.0)


class TestPofStandardError:
    def test_binomial_bound(self):
        result = _result()
        expected = math.sqrt(0.01 * 0.99 / 10000)
        assert pof_standard_error(result) == pytest.approx(expected)

    def test_zero_hits_is_nan(self):
        # no hits means p is only known to be "small" -- claiming SE = 0
        # (perfect convergence) would be exactly backwards
        assert math.isnan(
            pof_standard_error(_result(n_array_hits=0, pof_total=0.0))
        )

    def test_degraded_is_nan(self):
        assert math.isnan(pof_standard_error(_result(degraded=True)))

    def test_degraded_beats_variance(self):
        # a lost shard taints even an exact stratified variance
        assert math.isnan(
            pof_standard_error(_result(degraded=True, pof_variance=1e-8))
        )

    def test_stratified_variance_used_directly(self):
        result = _result(pof_variance=4e-8)
        assert pof_standard_error(result) == pytest.approx(2e-4)

    def test_negative_variance_clamped(self):
        assert pof_standard_error(_result(pof_variance=-1e-20)) == 0.0

    def test_no_particles_raises(self):
        with pytest.raises(ConfigError):
            pof_standard_error(_result(n_particles=0))


class TestBinBudgetState:
    def _state(self, **overrides):
        base = dict(
            key="a",
            trials=10000,
            pof=0.01,
            standard_error=1e-3,
            target_se=1e-4,
            max_trials=100000,
        )
        base.update(overrides)
        return BinBudgetState(**base)

    def test_variance_scale_recovers_per_trial_variance(self):
        state = self._state()
        assert state.variance_scale == pytest.approx(1e-6 * 10000)

    def test_variance_scale_nan_falls_back_to_max(self):
        state = self._state(standard_error=math.nan)
        assert state.variance_scale == 0.25

    def test_predicted_se_shrinks_with_trials(self):
        state = self._state()
        assert state.predicted_standard_error(0) == pytest.approx(1e-3)
        assert state.predicted_standard_error(30000) == pytest.approx(5e-4)

    def test_converged_needs_finite_se(self):
        assert not self._state(standard_error=math.nan).converged
        assert not self._state().converged
        assert self._state(standard_error=5e-5).converged

    def test_validation(self):
        with pytest.raises(ConfigError):
            self._state(trials=-1)
        with pytest.raises(ConfigError):
            self._state(target_se=-1e-4)
        with pytest.raises(ConfigError):
            self._state(max_trials=0)


class TestAllocateBlocks:
    def _state(self, key, se, trials=10000, target=1e-4, ceiling=10**6):
        return BinBudgetState(
            key=key,
            trials=trials,
            pof=0.01,
            standard_error=se,
            target_se=target,
            max_trials=ceiling,
        )

    def test_worst_bin_first(self):
        states = [self._state("low", 1e-3), self._state("high", 4e-3)]
        out = allocate_blocks(states, 4, 4096)
        # 16x the variance: all four blocks chase the worst bin
        assert out == {"high": 4}

    def test_equalizes_predicted_errors(self):
        states = [self._state("a", 2e-3), self._state("b", 2e-3)]
        out = allocate_blocks(states, 6, 4096)
        assert out["a"] + out["b"] == 6
        assert abs(out["a"] - out["b"]) <= 1

    def test_converged_bins_excluded(self):
        states = [
            self._state("done", 5e-5),
            self._state("busy", 1e-3),
        ]
        out = allocate_blocks(states, 3, 4096)
        assert out == {"busy": 3}

    def test_ceiling_respected(self):
        states = [self._state("capped", 1e-2, trials=9000, ceiling=9000)]
        assert allocate_blocks(states, 5, 4096) == {}

    def test_unknown_se_keeps_receiving(self):
        states = [
            self._state("quiet", math.nan),
            self._state("noisy", 1e-3),
        ]
        out = allocate_blocks(states, 4, 4096)
        # nan SE plans with the worst-case variance -> never starved
        assert out.get("quiet", 0) >= 1

    def test_tie_keeps_earliest(self):
        states = [self._state("first", 1e-3), self._state("second", 1e-3)]
        assert allocate_blocks(states, 1, 4096) == {"first": 1}

    def test_duplicate_keys_raise(self):
        states = [self._state("a", 1e-3), self._state("a", 1e-3)]
        with pytest.raises(ConfigError):
            allocate_blocks(states, 1, 4096)

    def test_validation(self):
        with pytest.raises(ConfigError):
            allocate_blocks([], -1, 4096)
        with pytest.raises(ConfigError):
            allocate_blocks([], 1, 0)


class TestSplitBlocksAcrossStrata:
    def test_variance_weighted(self):
        strata = [
            StratumState("core", 0.2, 4096, 0.05, 200),
            StratumState("frame", 0.8, 4096, 0.0, 50),
        ]
        out = split_blocks_across_strata(strata, 8, 4096)
        # frame has hits but zero POF -> zero planning variance
        assert out == {"core": 8}

    def test_rule_of_three_decay(self):
        # an all-miss stratum plans with p <= 3/n, so its priority
        # decays with trials instead of pinning at the 1/4 worst case
        fresh = StratumState("s", 1.0, 100, 0.0, 0)
        seasoned = StratumState("s", 1.0, 100000, 0.0, 0)
        assert fresh.planning_variance == pytest.approx(3.0 / 100)
        assert seasoned.planning_variance == pytest.approx(3.0 / 100000)
        assert StratumState("s", 1.0, 4, 0.0, 0).planning_variance == 0.25

    def test_tilt_reorders(self):
        flat = [
            StratumState("a", 0.5, 4096, 0.01, 40, tilt=1.0),
            StratumState("b", 0.5, 4096, 0.01, 40, tilt=4.0),
        ]
        out = split_blocks_across_strata(flat, 3, 4096)
        assert out["b"] > out.get("a", 0)

    def test_duplicate_names_raise(self):
        strata = [
            StratumState("s", 0.5, 1, 0.0, 0),
            StratumState("s", 0.5, 1, 0.0, 0),
        ]
        with pytest.raises(ConfigError):
            split_blocks_across_strata(strata, 1, 4096)

    def test_validation(self):
        with pytest.raises(ConfigError):
            split_blocks_across_strata([], 1, 4096)
        stratum = StratumState("s", 1.0, 1, 0.0, 0)
        with pytest.raises(ConfigError):
            split_blocks_across_strata([stratum], -1, 4096)
        with pytest.raises(ConfigError):
            split_blocks_across_strata([stratum], 1, 0)


class TestBuildEnergyTilt:
    def test_flat_pof_all_ones(self):
        tilt = build_energy_tilt([0.0, 1.0, 2.0], [0.5, 0.5, 0.5], 8.0)
        assert tilt == [1.0, 1.0, 1.0]

    def test_steep_region_tilts_up(self):
        # POF jumps between the 2nd and 3rd point: gradient peaks there
        tilt = build_energy_tilt(
            [0.0, 1.0, 2.0, 3.0], [0.0, 0.0, 0.5, 0.5], 8.0
        )
        assert max(tilt) == max(tilt[1], tilt[2])
        assert all(1.0 / 8.0 <= t <= 8.0 for t in tilt)

    def test_single_point_is_neutral(self):
        assert build_energy_tilt([0.0], [0.3], 8.0) == [1.0]

    def test_validation(self):
        with pytest.raises(ConfigError):
            build_energy_tilt([0.0, 1.0], [0.1, 0.2], 0.5)
        with pytest.raises(ConfigError):
            build_energy_tilt([0.0, 1.0], [0.1], 8.0)


class TestEstimatePofError:
    @pytest.fixture(scope="class")
    def simulator(self):
        from repro.geometry import FinGeometry, SoiFinWorld
        from repro.layout import SramArrayLayout
        from repro.physics import ALPHA
        from repro.ser import ArraySerSimulator
        from repro.sram import (
            CharacterizationConfig,
            SramCellDesign,
            characterize_cell,
        )
        from repro.transport import ElectronYieldLUT, TransportEngine

        design = SramCellDesign()
        table = characterize_cell(
            design,
            CharacterizationConfig(
                vdd_list=(0.7,),
                n_charge_points=13,
                n_samples=30,
                max_pair_points=4,
                max_triple_points=3,
            ),
        )
        fin = FinGeometry(
            design.tech.collection_length_nm,
            design.tech.fin.width_nm,
            design.tech.fin.height_nm,
        )
        lut = ElectronYieldLUT.build(
            ALPHA,
            np.logspace(-1, 1, 4),
            3000,
            np.random.default_rng(0),
            engine=TransportEngine(SoiFinWorld(fin=fin)),
        )
        return ArraySerSimulator(SramArrayLayout(), table, {"alpha": lut})

    def test_estimate_shape(self, simulator):
        from repro.physics import ALPHA

        est = estimate_pof_error(
            simulator, ALPHA, 2.0, 0.7, 20000, np.random.default_rng(1),
            n_batches=5,
        )
        assert est.mean_pof > 0
        assert est.standard_error > 0
        assert est.relative_error < 0.5
        assert est.n_particles == 20000

    def test_more_particles_tighter(self, simulator):
        from repro.physics import ALPHA

        small = estimate_pof_error(
            simulator, ALPHA, 2.0, 0.7, 5000, np.random.default_rng(2),
            n_batches=5,
        )
        large = estimate_pof_error(
            simulator, ALPHA, 2.0, 0.7, 40000, np.random.default_rng(2),
            n_batches=5,
        )
        assert large.relative_error < small.relative_error

    def test_validation(self, simulator):
        from repro.physics import ALPHA

        with pytest.raises(ConfigError):
            estimate_pof_error(
                simulator, ALPHA, 2.0, 0.7, 1000, np.random.default_rng(0),
                n_batches=1,
            )
        with pytest.raises(ConfigError):
            estimate_pof_error(
                simulator, ALPHA, 2.0, 0.7, 5, np.random.default_rng(0),
                n_batches=10,
            )
