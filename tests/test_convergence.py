"""Monte Carlo convergence diagnostics."""

import numpy as np
import pytest

from repro.analysis import ConvergenceEstimate, estimate_pof_error
from repro.errors import ConfigError


class TestConvergenceEstimate:
    def test_relative_error(self):
        est = ConvergenceEstimate(0.1, 0.01, 10000, 10)
        assert est.relative_error == pytest.approx(0.1)

    def test_zero_mean_infinite(self):
        est = ConvergenceEstimate(0.0, 0.0, 1000, 10)
        assert est.relative_error == float("inf")

    def test_sizing_scales_inverse_square(self):
        est = ConvergenceEstimate(0.1, 0.01, 10000, 10)
        # halving the relative error costs 4x the particles
        assert est.particles_for_relative_error(0.05) == 40000

    def test_sizing_requires_observations(self):
        est = ConvergenceEstimate(0.0, 0.0, 1000, 10)
        with pytest.raises(ConfigError):
            est.particles_for_relative_error(0.1)

    def test_sizing_validates_target(self):
        est = ConvergenceEstimate(0.1, 0.01, 10000, 10)
        with pytest.raises(ConfigError):
            est.particles_for_relative_error(0.0)


class TestEstimatePofError:
    @pytest.fixture(scope="class")
    def simulator(self):
        from repro.geometry import FinGeometry, SoiFinWorld
        from repro.layout import SramArrayLayout
        from repro.physics import ALPHA
        from repro.ser import ArraySerSimulator
        from repro.sram import (
            CharacterizationConfig,
            SramCellDesign,
            characterize_cell,
        )
        from repro.transport import ElectronYieldLUT, TransportEngine

        design = SramCellDesign()
        table = characterize_cell(
            design,
            CharacterizationConfig(
                vdd_list=(0.7,),
                n_charge_points=13,
                n_samples=30,
                max_pair_points=4,
                max_triple_points=3,
            ),
        )
        fin = FinGeometry(
            design.tech.collection_length_nm,
            design.tech.fin.width_nm,
            design.tech.fin.height_nm,
        )
        lut = ElectronYieldLUT.build(
            ALPHA,
            np.logspace(-1, 1, 4),
            3000,
            np.random.default_rng(0),
            engine=TransportEngine(SoiFinWorld(fin=fin)),
        )
        return ArraySerSimulator(SramArrayLayout(), table, {"alpha": lut})

    def test_estimate_shape(self, simulator):
        from repro.physics import ALPHA

        est = estimate_pof_error(
            simulator, ALPHA, 2.0, 0.7, 20000, np.random.default_rng(1),
            n_batches=5,
        )
        assert est.mean_pof > 0
        assert est.standard_error > 0
        assert est.relative_error < 0.5
        assert est.n_particles == 20000

    def test_more_particles_tighter(self, simulator):
        from repro.physics import ALPHA

        small = estimate_pof_error(
            simulator, ALPHA, 2.0, 0.7, 5000, np.random.default_rng(2),
            n_batches=5,
        )
        large = estimate_pof_error(
            simulator, ALPHA, 2.0, 0.7, 40000, np.random.default_rng(2),
            n_batches=5,
        )
        assert large.relative_error < small.relative_error

    def test_validation(self, simulator):
        from repro.physics import ALPHA

        with pytest.raises(ConfigError):
            estimate_pof_error(
                simulator, ALPHA, 2.0, 0.7, 1000, np.random.default_rng(0),
                n_batches=1,
            )
        with pytest.raises(ConfigError):
            estimate_pof_error(
                simulator, ALPHA, 2.0, 0.7, 5, np.random.default_rng(0),
                n_batches=10,
            )
