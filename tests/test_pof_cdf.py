"""Fast Qcrit-CDF POF model vs the paper-faithful grid tables."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sram import (
    CharacterizationConfig,
    SramCellDesign,
    characterize_cell,
)
from repro.sram.pof_cdf import QcritCdfModel


@pytest.fixture(scope="module")
def design():
    return SramCellDesign()


@pytest.fixture(scope="module")
def cdf_model(design):
    return QcritCdfModel.characterize(
        design, (0.7, 0.9), n_samples=120, seed=8
    )


@pytest.fixture(scope="module")
def grid_table(design):
    config = CharacterizationConfig(
        vdd_list=(0.7, 0.9),
        n_charge_points=25,
        n_samples=120,
        max_pair_points=6,
        max_triple_points=4,
        seed=8,
    )
    return characterize_cell(design, config)


class TestStructure:
    def test_weights_normalized_to_i1(self, cdf_model):
        for vdd, weights in cdf_model.weights.items():
            assert weights[0] == pytest.approx(1.0)
            # cross-strike effectiveness is within 3x of I1
            assert np.all(weights > 0.3)
            assert np.all(weights < 3.0)

    def test_samples_sorted(self, cdf_model):
        for samples in cdf_model.qcrit_samples.values():
            assert np.all(np.diff(samples) >= 0)

    def test_qcrit_grows_with_vdd(self, cdf_model):
        med_lo, _ = cdf_model.qcrit_statistics(0.7)
        med_hi, _ = cdf_model.qcrit_statistics(0.9)
        assert med_hi > med_lo

    def test_empty_vdd_rejected(self, design):
        with pytest.raises(ConfigError):
            QcritCdfModel.characterize(design, ())

    def test_statistics_interpolate_between_grid_points(self, cdf_model):
        """Off-grid Vdd interpolates like ``query`` (no nearest snap).

        The old behavior snapped to the nearest grid point, so the
        statistics jumped discontinuously at the bracket midpoint while
        ``query`` interpolated smoothly.
        """
        med_lo, std_lo = cdf_model.qcrit_statistics(0.7)
        med_hi, std_hi = cdf_model.qcrit_statistics(0.9)
        t = 0.25  # 0.75 V sits a quarter of the way up the bracket
        med_mid, std_mid = cdf_model.qcrit_statistics(0.75)
        assert med_mid == pytest.approx((1 - t) * med_lo + t * med_hi)
        assert std_mid == pytest.approx((1 - t) * std_lo + t * std_hi)
        # strictly between the endpoints, not snapped to either
        assert min(med_lo, med_hi) < med_mid < max(med_lo, med_hi)

    def test_statistics_on_grid_unchanged(self, cdf_model):
        """Exactly on a grid point the statistics are that point's."""
        med, std = cdf_model.qcrit_statistics(0.7)
        samples = cdf_model.qcrit_samples[0.7]
        assert med == pytest.approx(float(np.median(samples)))
        assert std == pytest.approx(float(np.std(samples)))

    def test_statistics_clamp_outside_grid(self, cdf_model):
        """Beyond the grid edges the nearest edge's statistics hold."""
        assert cdf_model.qcrit_statistics(0.5) == cdf_model.qcrit_statistics(
            0.7
        )
        assert cdf_model.qcrit_statistics(1.2) == cdf_model.qcrit_statistics(
            0.9
        )


class TestQueries:
    def test_zero_charge_zero_pof(self, cdf_model):
        assert np.all(cdf_model.query(0.8, np.zeros((2, 3))) == 0.0)

    def test_extremes(self, cdf_model):
        tiny = cdf_model.query(0.7, np.array([[1e-18, 0, 0]]))[0]
        huge = cdf_model.query(0.7, np.array([[1e-14, 0, 0]]))[0]
        assert tiny == 0.0
        assert huge == 1.0

    def test_monotone_in_charge(self, cdf_model):
        charges = np.zeros((20, 3))
        charges[:, 0] = np.logspace(-17, -14, 20)
        pofs = cdf_model.query(0.7, charges)
        assert np.all(np.diff(pofs) >= -1e-12)

    def test_vdd_interpolation(self, cdf_model):
        charges = np.array([[2.0e-16, 0, 0]])
        lo = cdf_model.query(0.7, charges)[0]
        hi = cdf_model.query(0.9, charges)[0]
        mid = cdf_model.query(0.8, charges)[0]
        assert min(lo, hi) - 1e-12 <= mid <= max(lo, hi) + 1e-12

    def test_negative_rejected(self, cdf_model):
        with pytest.raises(ConfigError):
            cdf_model.query(0.7, np.array([[-1e-16, 0, 0]]))


class TestAgreementWithGridTable:
    """DESIGN.md section 5: the fast model validates against the grid."""

    @pytest.mark.parametrize("vdd", [0.7, 0.9])
    def test_single_strike_agreement(self, cdf_model, grid_table, vdd):
        charges = np.zeros((15, 3))
        charges[:, 0] = np.logspace(
            np.log10(5e-17), np.log10(1e-15), 15
        )
        grid_pof = grid_table.query(vdd, charges)
        cdf_pof = cdf_model.query(vdd, charges)
        # agreement within 0.15 absolute POF everywhere on the curve
        assert np.max(np.abs(grid_pof - cdf_pof)) < 0.15

    def test_pair_strike_agreement(self, cdf_model, grid_table):
        charges = np.zeros((10, 3))
        half = np.logspace(np.log10(4e-17), np.log10(4e-16), 10)
        charges[:, 0] = half
        charges[:, 1] = half
        grid_pof = grid_table.query(0.7, charges)
        cdf_pof = cdf_model.query(0.7, charges)
        assert np.max(np.abs(grid_pof - cdf_pof)) < 0.25

    def test_crossing_point_agreement(self, cdf_model, grid_table):
        """The POF=0.5 charge agrees within ~20%."""
        q_grid = grid_table.critical_charge_c(0.7)
        med, _ = cdf_model.qcrit_statistics(0.7)
        assert med == pytest.approx(q_grid, rel=0.2)
