"""Process-variation model."""

import numpy as np
import pytest

from repro.devices import VariationModel
from repro.errors import ConfigError


class TestVariationModel:
    def test_disabled_returns_zeros(self):
        model = VariationModel(sigma_vth_v=0.05, enabled=False)
        shifts = model.sample_shifts(10, [1] * 6, np.random.default_rng(0))
        assert shifts.shape == (10, 6)
        assert np.all(shifts == 0.0)

    def test_sample_statistics(self):
        model = VariationModel(sigma_vth_v=0.03)
        shifts = model.sample_shifts(
            50000, [1, 1, 1], np.random.default_rng(1)
        )
        assert np.mean(shifts) == pytest.approx(0.0, abs=5e-4)
        assert np.std(shifts) == pytest.approx(0.03, rel=0.02)

    def test_pelgrom_scaling(self):
        model = VariationModel(sigma_vth_v=0.04)
        assert model.device_sigma(4) == pytest.approx(0.02)

    def test_multifin_device_tighter(self):
        model = VariationModel(sigma_vth_v=0.04)
        rng = np.random.default_rng(2)
        shifts = model.sample_shifts(20000, [1, 4], rng)
        assert np.std(shifts[:, 1]) < np.std(shifts[:, 0])

    def test_independence_across_devices(self):
        model = VariationModel(sigma_vth_v=0.04)
        shifts = model.sample_shifts(20000, [1, 1], np.random.default_rng(3))
        corr = np.corrcoef(shifts[:, 0], shifts[:, 1])[0, 1]
        assert abs(corr) < 0.03

    def test_corner_shifts(self):
        model = VariationModel(sigma_vth_v=0.04)
        corner = model.corner_shifts([1, 4], 3.0)
        assert corner[0] == pytest.approx(0.12)
        assert corner[1] == pytest.approx(0.06)

    def test_validation(self):
        with pytest.raises(ConfigError):
            VariationModel(sigma_vth_v=-0.01)
        with pytest.raises(ConfigError):
            VariationModel().sample_shifts(0, [1], np.random.default_rng(0))
        with pytest.raises(ConfigError):
            VariationModel().sample_shifts(5, [], np.random.default_rng(0))
        with pytest.raises(ConfigError):
            VariationModel().device_sigma(0)
