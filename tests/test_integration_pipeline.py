"""Cross-module integration tests: the full pipeline at small scale,
plus consistency checks between independently-implemented paths."""

import numpy as np
import pytest

from repro import FlowConfig, SerFlow, get_particle
from repro.sram import CharacterizationConfig


@pytest.fixture(scope="module")
def tiny_flow():
    config = FlowConfig(
        particles=("alpha", "proton"),
        vdd_list=(0.7, 1.1),
        yield_energy_points=4,
        yield_trials_per_energy=3000,
        characterization=CharacterizationConfig(
            vdd_list=(0.7, 1.1),
            n_charge_points=15,
            n_samples=40,
            max_pair_points=4,
            max_triple_points=3,
        ),
        array_rows=5,
        array_cols=5,
        n_energy_bins=3,
        mc_particles_per_bin=15000,
        seed=123,
    )
    return SerFlow(config)


class TestHeadlineShapes:
    """The paper's conclusions at integration-test statistics."""

    def test_alpha_ser_rises_at_low_vdd(self, tiny_flow):
        low = tiny_flow.fit("alpha", 0.7)
        high = tiny_flow.fit("alpha", 1.1)
        assert low.fit_total > high.fit_total

    def test_proton_falls_faster_than_alpha(self, tiny_flow):
        alpha_drop = (
            tiny_flow.fit("alpha", 0.7).fit_total
            / max(tiny_flow.fit("alpha", 1.1).fit_total, 1e-12)
        )
        proton_drop = (
            tiny_flow.fit("proton", 0.7).fit_total
            / max(tiny_flow.fit("proton", 1.1).fit_total, 1e-12)
        )
        assert proton_drop > alpha_drop

    def test_alpha_mbu_exceeds_proton(self, tiny_flow):
        alpha = tiny_flow.fit("alpha", 0.7)
        proton = tiny_flow.fit("proton", 0.7)
        assert alpha.mbu_to_seu_ratio > proton.mbu_to_seu_ratio


class TestCrossPathConsistency:
    def test_direct_and_lut_modes_same_order(self, tiny_flow):
        import dataclasses

        direct_flow = SerFlow(
            dataclasses.replace(tiny_flow.config, deposition_mode="direct")
        )
        # reuse the already built cell table for speed
        direct_flow._pof_table = tiny_flow.pof_table()
        a = tiny_flow.fit("alpha", 0.7).fit_total
        b = direct_flow.fit("alpha", 0.7).fit_total
        assert a > 0 and b > 0
        assert 0.1 < a / b < 10.0

    def test_fit_linear_in_mc_repeat(self, tiny_flow):
        """Same config + same seed stream -> identical FIT."""
        import dataclasses

        clone = SerFlow(tiny_flow.config)
        clone._pof_table = tiny_flow.pof_table()
        clone._yield_luts = tiny_flow.yield_luts()
        # campaign streams are derived from the config seed, so
        # repeated fits are bit-identical -- no rng pinning needed
        first = clone.fit("alpha", 0.7).fit_total
        second = clone.fit("alpha", 0.7).fit_total
        assert first == second

    def test_larger_array_higher_fit(self, tiny_flow):
        """FIT scales with the sensitive area (eq. 7's Lx*Ly)."""
        import dataclasses

        big = SerFlow(
            dataclasses.replace(tiny_flow.config, array_rows=10, array_cols=10)
        )
        big._pof_table = tiny_flow.pof_table()
        big._yield_luts = tiny_flow.yield_luts()
        small_fit = tiny_flow.fit("alpha", 0.7).fit_total
        big_fit = big.fit("alpha", 0.7).fit_total
        # 4x the cells -> roughly 2-6x the FIT (margins dilute linearity)
        assert big_fit > 1.5 * small_fit
