"""Streaming telemetry: event bus, worker events, kill ordering, live tail.

The parallel-path tests assert the contract consumers rely on: every
event carries a unique, strictly increasing ``seq`` stamped by the
parent bus; each shard's ``started`` precedes its ``finished``; pooled
rounds are bracketed by ``round`` start/end events and produce
heartbeats; and a worker killed mid-round (``REPRO_PARALLEL_KILL``)
yields ``retrying``/``lost`` progress events in order instead of a
torn stream.  The flow-level test is the acceptance path: a tiny
``SerFlow`` sweep is live-tailed from another thread *while it runs*
(the same reader behind ``repro-ser obs tail -f``).
"""

import json
import threading
import time

import pytest

from repro.core import FlowConfig, SerFlow
from repro.obs.convergence import (
    get_convergence_tracker,
    record_bin,
    reset_convergence,
)
from repro.obs.events import (
    EventBus,
    EventRing,
    configure_events,
    disable_events,
    emit_event,
    events_enabled,
    get_event_bus,
)
from repro.obs.inspect import follow_events, tail_events
from repro.obs.jsonl import read_jsonl
from repro.obs.registry import disable_metrics, enable_metrics, get_registry
from repro.obs.trace import configure_tracing, reset_tracing
from repro.parallel import RetryPolicy, parallel_map
from repro.parallel.engine import FAULT_ENV
from repro.parallel.pool import get_lease, set_warm_pool_default
from repro.sram import CharacterizationConfig


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with the whole obs plane disabled."""
    disable_events()
    disable_metrics()
    reset_tracing()
    reset_convergence()
    yield
    disable_events()
    disable_metrics()
    reset_tracing()
    reset_convergence()


# -- module-level task functions (picklable by reference) ----------------------


def _square_task(payload, task):
    return task * task


def _counting_task(payload, task):
    get_registry().counter("test.task_runs").inc()
    return task * task


def _read_events(path):
    records, invalid = read_jsonl(path)
    assert invalid == 0
    return [r for r in records if r.get("type") == "event"]


def _assert_ordered(events):
    """The bus contract: unique, strictly increasing sequence numbers."""
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs)
    assert len(seqs) == len(set(seqs))


def _progress(events, label, state=None):
    picked = [
        e
        for e in events
        if e["kind"] == "progress" and e.get("label") == label
    ]
    if state is not None:
        picked = [e for e in picked if e.get("state") == state]
    return picked


# -- ring and bus --------------------------------------------------------------


class TestEventRing:
    def test_bounded_with_total(self):
        ring = EventRing(capacity=3)
        for i in range(5):
            ring.append({"kind": "progress", "i": i})
        assert len(ring) == 3
        assert ring.total == 5
        assert [e["i"] for e in ring.snapshot()] == [2, 3, 4]

    def test_kind_filter(self):
        ring = EventRing(capacity=8)
        ring.append({"kind": "round"})
        ring.append({"kind": "progress"})
        assert [e["kind"] for e in ring.snapshot("round")] == ["round"]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            EventRing(capacity=0)


class TestEventBus:
    def test_emit_stamps_seq_and_time(self, tmp_path):
        bus = EventBus(path=tmp_path / "ev.jsonl")
        a = bus.emit("round", label="x", phase="start")
        b = bus.emit("progress", label="x", index=0, state="started")
        bus.close()
        assert (a["seq"], b["seq"]) == (1, 2)
        assert a["t"] <= b["t"]
        events = _read_events(tmp_path / "ev.jsonl")
        assert [e["kind"] for e in events] == ["round", "progress"]

    def test_emit_rejects_unknown_kind(self):
        bus = EventBus(ring=4)
        with pytest.raises(ValueError):
            bus.emit("explosion")

    def test_emit_raw_restamps_worker_event(self):
        bus = EventBus(ring=4)
        bus.emit("round", label="x", phase="start")
        stamped = bus.emit_raw(
            {"kind": "progress", "label": "x", "pid": 1234, "seq": 999}
        )
        assert stamped["seq"] == 2  # parent order wins over worker stamp
        assert stamped["pid"] == 1234

    def test_needs_some_sink(self):
        with pytest.raises(ValueError):
            EventBus(path=None, ring=None)

    def test_configure_and_disable_lifecycle(self, tmp_path):
        assert not events_enabled()
        assert emit_event("round", label="x") is None  # zero-cost no-op
        bus = configure_events(tmp_path / "ev.jsonl")
        assert events_enabled() and get_event_bus() is bus
        emit_event("round", label="x", phase="start")
        disable_events()
        assert not events_enabled()
        assert len(_read_events(tmp_path / "ev.jsonl")) == 1

    def test_event_file_rotates_at_size_cap(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        configure_events(path, max_bytes=1024)
        for i in range(100):
            emit_event("progress", label="rotate", index=i, state="started")
        disable_events()
        assert path.with_name("ev.jsonl.1").exists()
        # both generations stay parseable whole-line JSONL
        for part in (path, path.with_name("ev.jsonl.1")):
            _, invalid = read_jsonl(part)
            assert invalid == 0


# -- parallel execution paths --------------------------------------------------


class TestParallelEvents:
    def _run_and_read(self, tmp_path, n_jobs, tasks=4):
        configure_events(tmp_path / "ev.jsonl")
        try:
            results = parallel_map(
                _square_task,
                list(range(tasks)),
                n_jobs=n_jobs,
                label="evmap",
            )
        finally:
            disable_events()
        assert results == [t * t for t in range(tasks)]
        return _read_events(tmp_path / "ev.jsonl")

    def test_inline_path_emits_bracketed_progress(self, tmp_path):
        events = self._run_and_read(tmp_path, n_jobs=1)
        _assert_ordered(events)
        rounds = [e for e in events if e["kind"] == "round"]
        assert [r["phase"] for r in rounds] == ["start", "end"]
        assert rounds[0]["path"] == "inline"
        assert len(_progress(events, "evmap", "started")) == 4
        assert len(_progress(events, "evmap", "finished")) == 4

    @pytest.mark.parametrize("warm", [False, True])
    def test_pooled_paths_stream_worker_events(
        self, tmp_path, monkeypatch, warm
    ):
        if not warm:
            monkeypatch.setenv("REPRO_NO_WARM_POOL", "1")
        events = self._run_and_read(tmp_path, n_jobs=2)
        _assert_ordered(events)
        rounds = [e for e in events if e["kind"] == "round"]
        assert [r["phase"] for r in rounds] == ["start", "end"]
        assert rounds[1]["lost"] == 0
        started = _progress(events, "evmap", "started")
        finished = _progress(events, "evmap", "finished")
        assert len(started) == 4 and len(finished) == 4
        # worker-originated events carry the worker's identity and
        # clock; each shard's started precedes its finished.
        parent_pids = {e["pid"] for e in started}
        assert all(e.get("t_worker") is not None for e in finished)
        assert len(parent_pids) >= 1
        by_index = {e["index"]: e["seq"] for e in started}
        for event in finished:
            assert by_index[event["index"]] < event["seq"]
        beats = [e for e in events if e["kind"] == "heartbeat"]
        assert len(beats) >= 2  # at least round-start and final
        final = [b for b in beats if b.get("final")]
        assert final and final[-1]["done"] == final[-1]["total"] == 4

    def test_warm_pool_reuse_keeps_streaming(self, tmp_path):
        configure_events(tmp_path / "ev.jsonl")
        try:
            for _ in range(2):  # second map reuses the leased pool
                parallel_map(
                    _square_task, [0, 1, 2], n_jobs=2, label="evreuse"
                )
        finally:
            disable_events()
        events = _read_events(tmp_path / "ev.jsonl")
        _assert_ordered(events)
        rounds = [e for e in events if e["kind"] == "round"]
        assert [r["phase"] for r in rounds] == ["start", "end"] * 2
        assert len(_progress(events, "evreuse", "finished")) == 6

    def test_no_bus_means_no_events_and_no_queue_for_fresh_pools(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NO_WARM_POOL", "1")
        results = parallel_map(
            _square_task, [0, 1, 2, 3], n_jobs=2, label="dark"
        )
        assert results == [0, 1, 4, 9]
        assert get_event_bus() is None


class TestKillEvents:
    """Event ordering and metric merging under REPRO_PARALLEL_KILL."""

    def test_kill_with_retry_emits_retrying_in_order(
        self, tmp_path, monkeypatch
    ):
        marker = tmp_path / "killed"
        monkeypatch.setenv(FAULT_ENV, f"evkill:1:{marker}")
        configure_events(tmp_path / "ev.jsonl")
        configure_tracing(tmp_path / "trace.jsonl")
        try:
            results = parallel_map(
                _square_task,
                [2, 3, 4, 5],
                n_jobs=2,
                label="evkill",
                retry=RetryPolicy(retries=2, backoff_s=0.01),
            )
        finally:
            disable_events()
            reset_tracing()
        assert marker.exists() and results == [4, 9, 16, 25]
        events = _read_events(tmp_path / "ev.jsonl")
        _assert_ordered(events)
        retrying = _progress(events, "evkill", "retrying")
        assert retrying and retrying[0]["attempt"] == 1
        rounds = [e for e in events if e["kind"] == "round"]
        assert [r["phase"] for r in rounds] == ["start", "end"]
        assert rounds[0]["seq"] < retrying[0]["seq"] < rounds[1]["seq"]
        assert rounds[1]["lost"] == 0
        # every shard eventually finishes, and the retried shard's
        # recovery lands after the retrying event
        finished = _progress(events, "evkill", "finished")
        assert sorted(e["index"] for e in finished) == [0, 1, 2, 3]
        recovered = [e for e in finished if e["index"] == 1]
        assert recovered[-1]["seq"] > retrying[0]["seq"]
        # two pump generations (killed round + retry round) both beat
        beats = [e for e in events if e["kind"] == "heartbeat"]
        assert len(beats) >= 4
        # the abrupt os._exit kill never tears the trace file
        _, invalid = read_jsonl(tmp_path / "trace.jsonl")
        assert invalid == 0

    def test_degraded_round_emits_lost_and_merges_partial_metrics(
        self, tmp_path, monkeypatch
    ):
        marker = tmp_path / "killed"
        monkeypatch.setenv(FAULT_ENV, f"evlost:0:{marker}")
        registry = enable_metrics(fresh=True)
        configure_events(tmp_path / "ev.jsonl")
        try:
            results = parallel_map(
                _counting_task,
                [2, 3, 4, 5],
                n_jobs=2,
                label="evlost",
                retry=RetryPolicy(retries=0, allow_partial=True),
            )
        finally:
            disable_events()
        assert results[0] is None
        survivors = [r for r in results if r is not None]
        lost_count = results.count(None)
        # worker metric snapshots merge only from completed shards --
        # the None shards contribute nothing, and the degradation is
        # itself counted.
        assert registry.counter("test.task_runs").value == len(survivors)
        assert registry.counter("parallel.degraded").value == lost_count
        events = _read_events(tmp_path / "ev.jsonl")
        _assert_ordered(events)
        lost_events = _progress(events, "evlost", "lost")
        assert sorted(e["index"] for e in lost_events) == sorted(
            i for i, r in enumerate(results) if r is None
        )
        rounds = [e for e in events if e["kind"] == "round"]
        assert rounds[-1]["phase"] == "end"
        assert rounds[-1]["lost"] == lost_count
        assert all(
            rounds[0]["seq"] < e["seq"] < rounds[-1]["seq"]
            for e in lost_events
        )


# -- convergence events --------------------------------------------------------


class TestConvergenceEvents:
    def test_record_bin_emits_event_and_tracks(self, tmp_path):
        configure_events(tmp_path / "ev.jsonl")
        try:
            record_bin(
                "fit",
                trials=1000,
                pof=0.25,
                particle="alpha",
                vdd_v=0.8,
                energy_mev=2.0,
            )
        finally:
            disable_events()
        events = _read_events(tmp_path / "ev.jsonl")
        assert len(events) == 1
        event = events[0]
        assert event["kind"] == "convergence"
        assert event["bin"] == "fit.alpha.vdd=0.8.e=2"
        assert event["trials"] == 1000
        assert event["pof_standard_error"] == pytest.approx(
            (0.25 * 0.75 / 1000) ** 0.5
        )
        tracker = get_convergence_tracker()
        assert tracker.summary()["bins"] == 1

    def test_record_bin_noop_when_dark(self):
        assert record_bin("fit", trials=10, pof=0.5) is None
        assert get_convergence_tracker().summary()["bins"] == 0


# -- the acceptance path: live-tail a running sweep ----------------------------


def _tiny_flow(n_jobs=2):
    config = FlowConfig(
        particles=("alpha",),
        vdd_list=(0.8,),
        n_energy_bins=2,
        mc_particles_per_bin=1500,
        array_rows=4,
        array_cols=4,
        deposition_mode="direct",
        characterization=CharacterizationConfig(
            vdd_list=(0.8,),
            n_charge_points=9,
            n_samples=16,
            max_pair_points=3,
            max_triple_points=3,
        ),
        seed=7,
    )
    return SerFlow(config, n_jobs=n_jobs)


class TestLiveSweepTelemetry:
    def test_sweep_events_consumable_mid_run(self, tmp_path, capsys):
        """A concurrent reader sees the sweep's events while it runs."""
        events_path = tmp_path / "events.jsonl"
        configure_events(events_path)
        lines = []
        stop = threading.Event()
        reader = threading.Thread(
            target=lambda: lines.extend(
                follow_events(
                    events_path,
                    poll_s=0.02,
                    stall_after_s=60.0,
                    stop=stop.is_set,
                )
            ),
            daemon=True,
        )
        reader.start()
        try:
            result = _tiny_flow(n_jobs=2).sweep()
        finally:
            time.sleep(0.1)  # let the reader drain the tail
            stop.set()
            reader.join(timeout=10.0)
            disable_events()
        assert not reader.is_alive()
        assert result.get("alpha", 0.8).fit_total > 0
        # the live reader consumed the stream, not a post-hoc dump
        text = "\n".join(lines)
        assert " progress " in text
        assert " heartbeat " in text
        assert " convergence " in text
        assert " round " in text

        # the stream on disk is strictly ordered and well formed
        events = _read_events(events_path)
        _assert_ordered(events)
        kinds = {e["kind"] for e in events}
        assert kinds >= {"round", "progress", "heartbeat", "convergence"}

        # and `repro-ser obs tail` renders it (the CLI surface)
        from repro.cli import main as cli_main

        assert cli_main(["obs", "tail", str(events_path), "--last", "5"]) == 0
        out = capsys.readouterr().out
        assert "events (" in out

    def test_tail_events_counts_match_file(self, tmp_path):
        configure_events(tmp_path / "ev.jsonl")
        try:
            parallel_map(_square_task, [0, 1], n_jobs=1, label="tailme")
        finally:
            disable_events()
        lines, stats = tail_events(tmp_path / "ev.jsonl")
        assert stats["invalid"] == 0
        assert stats["events"] == len(lines)
        assert stats["kinds"]["progress"] == 4


class TestDeadSink:
    """A lost JSONL sink is dropped once and never re-touched."""

    class _DeadWriter:
        path = "/gone/events.jsonl"

        def __init__(self):
            self.writes = 0
            self.closed = False

        def write(self, record):
            self.writes += 1
            raise OSError("sink is gone")

        def close(self):
            self.closed = True

    def test_emit_survives_sink_loss_and_counts_drops(self, tmp_path):
        registry = enable_metrics(fresh=True)
        bus = EventBus(path=str(tmp_path / "ev.jsonl"), ring=8)
        dead = self._DeadWriter()
        bus.writer.close()
        bus.writer = dead

        first = bus.emit("progress", label="x", index=0, state="started")
        assert first is not None  # emission never breaks the science
        assert bus.writer is None  # the dead sink was dropped for good
        assert dead.closed
        assert bus.dropped == 1

        # later emits never re-touch the dead writer, but keep counting
        bus.emit("progress", label="x", index=1, state="started")
        assert dead.writes == 1
        assert bus.dropped == 2
        assert bus.path is None  # no sink is advertised anymore

        # the ring keeps working through the loss
        assert len(bus.ring.snapshot()) == 2
        counters = registry.snapshot()["counters"]
        assert counters["events.dropped"] == 2

    def test_healthy_bus_never_counts_drops(self, tmp_path):
        registry = enable_metrics(fresh=True)
        bus = EventBus(path=str(tmp_path / "ev.jsonl"), ring=8)
        bus.emit("progress", label="x", index=0, state="started")
        bus.close()
        assert bus.dropped == 0
        assert "events.dropped" not in registry.snapshot()["counters"]
