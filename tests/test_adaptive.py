"""Adaptive trial allocation: strata, weighted merge, campaign controller."""

import dataclasses
import math

import numpy as np
import pytest

from repro.errors import ConfigError, WorkerCrashError
from repro.layout import SramArrayLayout
from repro.obs.events import configure_events, disable_events, get_event_bus
from repro.obs.registry import disable_metrics, enable_metrics, get_registry
from repro.parallel import RetryPolicy, ShardJournal
from repro.parallel.engine import FAULT_ENV
from repro.physics import ALPHA, AlphaEmissionSpectrum
from repro.ser import (
    AdaptiveBin,
    AdaptiveCampaignController,
    AdaptiveConfig,
    ArrayMcConfig,
    ArrayPofResult,
    ArraySerSimulator,
    energy_strata,
    position_strata,
)
from repro.ser.mc import (
    DRAW_BLOCK_SIZE,
    array_shard_decode,
    array_shard_encode,
)
from repro.sram import PofTable
from repro.sram.strike import ALL_COMBOS


# -- cheap synthetic fixtures (shared idiom with test_parallel) ---------------


@pytest.fixture(scope="module")
def pof_table():
    """Tiny hand-built POF table, monotone along every charge axis."""
    vdds = (0.7, 0.9)
    n_q = 5
    base = np.linspace(0.0, 1.0, n_q)
    pof = {}
    for combo in ALL_COMBOS:
        grids = []
        for i_vdd in range(len(vdds)):
            grid = base * (1.0 - 0.2 * i_vdd)
            for _ in range(len(combo) - 1):
                grid = np.add.outer(grid, base * (1.0 - 0.2 * i_vdd)) / 2.0
            grids.append(grid)
        pof[combo] = np.stack(grids, axis=0)
    return PofTable(
        vdd_list=vdds,
        charge_axis_c=np.logspace(-16, -14, n_q),
        pof=pof,
        process_variation=False,
        n_samples=1,
    )


@pytest.fixture(scope="module")
def layout():
    return SramArrayLayout(n_rows=4, n_cols=4)


def make_simulator(layout, pof_table, **overrides):
    config = ArrayMcConfig(deposition_mode="direct", **overrides)
    return ArraySerSimulator(layout, pof_table, config=config)


def seed_for_fn(bins):
    index = {bin_.key: i for i, bin_ in enumerate(bins)}

    def seed_for(bin_):
        return np.random.SeedSequence([7, index[bin_.key]])

    return seed_for


def small_controller(simulator, bins, **config_overrides):
    base = dict(
        target_se=2e-3,
        pilot_trials=DRAW_BLOCK_SIZE,
        max_trials=4 * DRAW_BLOCK_SIZE,
        round_blocks=2,
        max_rounds=8,
    )
    base.update(config_overrides)
    return AdaptiveCampaignController(
        simulator, AdaptiveConfig(**base), n_jobs=1
    )


# -- configuration objects -----------------------------------------------------


class TestAdaptiveConfig:
    def test_defaults_valid(self):
        config = AdaptiveConfig()
        assert config.target_se > 0
        assert config.stratify

    def test_validation(self):
        with pytest.raises(ConfigError):
            AdaptiveConfig(target_se=0.0)
        with pytest.raises(ConfigError):
            AdaptiveConfig(pilot_trials=0)
        with pytest.raises(ConfigError):
            AdaptiveConfig(max_trials=0)
        with pytest.raises(ConfigError):
            AdaptiveConfig(round_blocks=0)
        with pytest.raises(ConfigError):
            AdaptiveConfig(max_rounds=0)
        with pytest.raises(ConfigError):
            AdaptiveConfig(halo_nm=-1.0)
        with pytest.raises(ConfigError):
            AdaptiveConfig(max_tilt=0.5)

    def test_controller_needs_some_ceiling(self, layout, pof_table):
        simulator = make_simulator(layout, pof_table)
        with pytest.raises(ConfigError, match="ceiling"):
            AdaptiveCampaignController(simulator, AdaptiveConfig())
        controller = AdaptiveCampaignController(
            simulator, AdaptiveConfig(), default_max_trials=8192
        )
        assert controller.max_trials == 8192


class TestAdaptiveBin:
    def test_key_is_stable(self):
        bin_ = AdaptiveBin("alpha", 5.0, 0.7)
        assert bin_.key == "alpha.vdd=0.7.e=5"

    def test_spectrum_needs_range(self):
        with pytest.raises(ConfigError):
            AdaptiveBin("alpha", 5.0, 0.7, spectrum=AlphaEmissionSpectrum())
        with pytest.raises(ConfigError):
            AdaptiveBin("alpha", 5.0, 0.7, e_range=(0.5, 10.0))

    def test_energy_positive(self):
        with pytest.raises(ConfigError):
            AdaptiveBin("alpha", 0.0, 0.7)


# -- sampling strata -----------------------------------------------------------


class TestPositionStrata:
    def test_small_margin_collapses_to_core(self, layout):
        # halo wider than the margin: the core bbox clips to the whole
        # window and there is no frame left to stratify
        strata = position_strata(layout, margin_nm=100.0, halo_nm=200.0)
        assert [s["name"] for s in strata] == ["core"]
        assert strata[0]["weight"] == pytest.approx(1.0)

    def test_wide_margin_splits_core_and_frame(self, layout):
        strata = position_strata(layout, margin_nm=1000.0, halo_nm=200.0)
        assert [s["name"] for s in strata] == ["core", "frame"]
        assert sum(s["weight"] for s in strata) == pytest.approx(1.0)
        assert 0.0 < strata[0]["weight"] < 1.0

    def test_core_contains_sensitive_boxes(self, layout):
        strata = position_strata(layout, margin_nm=1000.0, halo_nm=200.0)
        (x0, x1, y0, y1), = strata[0]["rects"]
        boxes = layout.packed_boxes[layout.fin_strike >= 0]
        assert x0 <= float(np.min(boxes[:, 0]))
        assert y0 <= float(np.min(boxes[:, 1]))
        assert x1 >= float(np.max(boxes[:, 3]))
        assert y1 >= float(np.max(boxes[:, 4]))

    def test_rects_tile_the_window(self, layout):
        margin = 1000.0
        strata = position_strata(layout, margin_nm=margin, halo_nm=200.0)
        x_range, y_range, _z, _area = layout.launch_window(margin)
        window_area = (x_range[1] - x_range[0]) * (y_range[1] - y_range[0])
        covered = sum(
            (x1 - x0) * (y1 - y0)
            for s in strata
            for (x0, x1, y0, y1) in s["rects"]
        )
        assert covered == pytest.approx(window_area)

    def test_negative_halo_rejected(self, layout):
        with pytest.raises(ConfigError):
            position_strata(layout, margin_nm=100.0, halo_nm=-1.0)


class TestEnergyStrata:
    def test_weights_sum_to_one(self):
        strata = energy_strata(AlphaEmissionSpectrum(), 0.5, 10.0, 4)
        assert sum(s["weight"] for s in strata) == pytest.approx(1.0)
        assert all(s["weight"] > 0 for s in strata)

    def test_bands_tile_the_range(self):
        strata = energy_strata(AlphaEmissionSpectrum(), 0.5, 10.0, 4)
        edges = [s["e_range"] for s in strata]
        assert edges[0][0] == pytest.approx(0.5)
        assert edges[-1][1] == pytest.approx(10.0)
        for (_, hi), (lo, _) in zip(edges[:-1], edges[1:]):
            assert hi == pytest.approx(lo)

    def test_validation(self):
        spectrum = AlphaEmissionSpectrum()
        with pytest.raises(ConfigError):
            energy_strata(spectrum, 0.5, 10.0, 1)
        with pytest.raises(ConfigError):
            energy_strata(spectrum, 10.0, 0.5, 4)


# -- weighted merge ------------------------------------------------------------


class TestWeightedMerge:
    def _result(self, **overrides):
        base = dict(
            particle_name="alpha",
            energy_mev=5.0,
            vdd_v=0.7,
            n_particles=1000,
            n_array_hits=100,
            n_fin_strikes=50,
            pof_total=0.01,
            pof_seu=0.009,
            pof_mbu=0.001,
            launch_area_cm2=1e-8,
            multiplicity_pmf=np.array([0.0, 0.009, 0.001]),
        )
        base.update(overrides)
        return ArrayPofResult(**base)

    def test_plain_merge_stays_on_legacy_path(self):
        merged = ArrayPofResult.merge([self._result(), self._result()])
        assert merged.pof_variance is None
        assert merged.hit_fraction_weighted is None
        assert merged.stratum is None
        assert merged.weight == 1.0

    def test_two_strata_exact_reweighting(self):
        core = self._result(
            stratum="core", weight=0.25, pof_total=0.04, n_array_hits=400
        )
        frame = self._result(
            stratum="frame", weight=0.75, pof_total=0.0,
            pof_seu=0.0, pof_mbu=0.0, n_array_hits=40,
            multiplicity_pmf=np.zeros(3),
        )
        merged = ArrayPofResult.merge([core, frame])
        assert merged.pof_total == pytest.approx(0.25 * 0.04)
        assert merged.n_particles == 2000
        # counts stay raw sums; the *fractions* are reweighted
        assert merged.n_array_hits == 440
        assert merged.hit_fraction_weighted == pytest.approx(
            0.25 * 0.4 + 0.75 * 0.04
        )
        expected_var = (
            0.25**2 * 0.04 * 0.96 / 1000 + 0.75**2 * 0.0 / 1000
        )
        assert merged.pof_variance == pytest.approx(expected_var)

    def test_heterogeneous_shards_per_stratum(self):
        # several shards per stratum pool by particle count first, in
        # shard order, exactly like the plain merge of that subset
        core_a = self._result(stratum="core", weight=0.5, pof_total=0.02)
        core_b = self._result(
            stratum="core", weight=0.5, pof_total=0.06, n_particles=3000
        )
        frame = self._result(
            stratum="frame", weight=0.5, pof_total=0.001
        )
        merged = ArrayPofResult.merge([core_a, core_b, frame])
        pooled_core = (0.02 * 1000 + 0.06 * 3000) / 4000
        assert merged.pof_total == pytest.approx(
            0.5 * pooled_core + 0.5 * 0.001
        )

    def test_mixed_uniform_and_stratified(self):
        # plain shards fold in convexly by particle count against the
        # stratified estimate
        uniform = self._result(pof_total=0.012, n_particles=1000)
        core = self._result(stratum="core", weight=0.25, pof_total=0.04)
        frame = self._result(
            stratum="frame", weight=0.75, pof_total=0.002, n_particles=2000
        )
        merged = ArrayPofResult.merge([uniform, core, frame])
        stratified = 0.25 * 0.04 + 0.75 * 0.002
        lam = 1000 / 4000
        assert merged.pof_total == pytest.approx(
            lam * 0.012 + (1 - lam) * stratified
        )
        assert merged.pof_variance is not None

    def test_merged_result_cannot_be_remerged(self):
        core = self._result(stratum="core", weight=0.5)
        frame = self._result(stratum="frame", weight=0.5)
        merged = ArrayPofResult.merge([core, frame])
        with pytest.raises(ConfigError, match="re-merge"):
            ArrayPofResult.merge([merged, self._result()])

    def test_weights_must_sum_to_one(self):
        core = self._result(stratum="core", weight=0.5)
        frame = self._result(stratum="frame", weight=0.4)
        with pytest.raises(ConfigError, match="sum to 1"):
            ArrayPofResult.merge([core, frame])

    def test_within_stratum_weights_must_agree(self):
        a = self._result(stratum="core", weight=0.5)
        b = self._result(stratum="core", weight=0.6)
        with pytest.raises(ConfigError, match="disagree"):
            ArrayPofResult.merge([a, b])

    def test_uniform_shard_weight_must_be_one(self):
        odd = self._result(weight=0.5)
        with pytest.raises(ConfigError, match="weight 1.0"):
            ArrayPofResult.merge([odd, self._result(stratum="s", weight=1.0)])

    def test_weight_outside_unit_interval_rejected(self):
        with pytest.raises(ConfigError, match=r"outside \(0, 1\]"):
            ArrayPofResult.merge(
                [self._result(stratum="s", weight=1.5)]
            )

    def test_given_hit_uses_weighted_fraction(self):
        core = self._result(
            stratum="core", weight=0.25, pof_total=0.04, n_array_hits=400
        )
        frame = self._result(
            stratum="frame", weight=0.75, pof_total=0.0,
            pof_seu=0.0, pof_mbu=0.0, n_array_hits=0,
            multiplicity_pmf=np.zeros(3),
        )
        merged = ArrayPofResult.merge([core, frame])
        assert merged.hit_fraction == merged.hit_fraction_weighted
        assert merged.pof_total_given_hit == pytest.approx(
            merged.pof_total / merged.hit_fraction_weighted
        )

    def test_unweighted_given_hit_formula_unchanged(self):
        result = self._result()
        assert result.pof_total_given_hit == (
            result.pof_total * result.n_particles / result.n_array_hits
        )

    def test_serialization_round_trip(self):
        core = self._result(stratum="core", weight=0.25)
        clone = ArrayPofResult.from_dict(core.to_dict())
        assert clone.stratum == "core"
        assert clone.weight == 0.25
        merged = ArrayPofResult.merge(
            [core, self._result(stratum="frame", weight=0.75)]
        )
        clone = ArrayPofResult.from_dict(merged.to_dict())
        assert clone.pof_variance == merged.pof_variance
        assert clone.hit_fraction_weighted == merged.hit_fraction_weighted

    def test_legacy_payload_defaults(self):
        payload = self._result().to_dict()
        for key in (
            "weight", "stratum", "hit_fraction_weighted", "pof_variance"
        ):
            payload.pop(key)
        clone = ArrayPofResult.from_dict(payload)
        assert clone.weight == 1.0
        assert clone.stratum is None
        assert clone.pof_variance is None


# -- the campaign controller ---------------------------------------------------


class TestController:
    def _bins(self):
        return [
            AdaptiveBin(ALPHA.name, 1.0, 0.7),
            AdaptiveBin(ALPHA.name, 8.0, 0.7),
        ]

    def test_runs_and_reports(self, layout, pof_table):
        simulator = make_simulator(layout, pof_table)
        bins = self._bins()
        controller = small_controller(simulator, bins)
        report = controller.run(bins, seed_for_fn(bins))
        assert len(report.results) == 2
        assert report.total_trials == sum(
            r.n_particles for r in report.results
        )
        assert report.rounds
        for result, bin_ in zip(report.results, bins):
            assert result.energy_mev == bin_.energy_mev
            assert result.n_particles >= DRAW_BLOCK_SIZE
            assert result.n_particles <= 4 * DRAW_BLOCK_SIZE

    def test_deterministic_across_runs(self, layout, pof_table):
        simulator = make_simulator(layout, pof_table)
        bins = self._bins()
        a = small_controller(simulator, bins).run(bins, seed_for_fn(bins))
        b = small_controller(simulator, bins).run(bins, seed_for_fn(bins))
        assert a.allocation_history == b.allocation_history
        assert a.total_trials == b.total_trials
        for ra, rb in zip(a.results, b.results):
            assert ra.pof_total == rb.pof_total
            assert ra.n_particles == rb.n_particles
            assert np.array_equal(ra.multiplicity_pmf, rb.multiplicity_pmf)

    def test_allocation_follows_standard_error(self, layout, pof_table):
        simulator = make_simulator(layout, pof_table)
        bins = self._bins()
        controller = small_controller(simulator, bins, target_se=2e-4)
        report = controller.run(bins, seed_for_fn(bins))
        pilot = report.rounds[0].standard_errors
        keys = [bin_.key for bin_ in bins]
        noisy = max(keys, key=lambda k: pilot[k])
        quiet = min(keys, key=lambda k: pilot[k])
        trials = {
            key: result.n_particles
            for key, result in zip(keys, report.results)
        }
        assert trials[noisy] >= trials[quiet]

    def test_converged_or_at_ceiling(self, layout, pof_table):
        simulator = make_simulator(layout, pof_table)
        bins = self._bins()
        controller = small_controller(simulator, bins, target_se=2e-4)
        report = controller.run(bins, seed_for_fn(bins))
        for bin_ in bins:
            assert (
                report.converged[bin_.key] or report.at_ceiling[bin_.key]
            )

    def test_unique_bins_required(self, layout, pof_table):
        simulator = make_simulator(layout, pof_table)
        bins = [self._bins()[0], self._bins()[0]]
        controller = small_controller(simulator, bins)
        with pytest.raises(ConfigError, match="duplicate"):
            controller.run(bins, seed_for_fn(bins))

    def test_emits_allocation_events(self, layout, pof_table):
        from repro.obs.inspect import format_event

        configure_events(path=None, ring=64)
        try:
            simulator = make_simulator(layout, pof_table)
            bins = self._bins()
            controller = small_controller(simulator, bins)
            controller.run(bins, seed_for_fn(bins))
            events = get_event_bus().ring.snapshot("allocation")
            assert events
            first = events[0]
            assert first["round"] == 0
            assert set(first["bins"]) == {bin_.key for bin_ in bins}
            rendered = format_event(first)
            assert "allocation" in rendered
        finally:
            disable_events()

    def test_counters_feed_manifest_section(self, layout, pof_table):
        from repro.obs.manifest import build_manifest

        enable_metrics()
        try:
            simulator = make_simulator(layout, pof_table)
            bins = self._bins()
            controller = small_controller(simulator, bins)
            report = controller.run(bins, seed_for_fn(bins))
            manifest = build_manifest(
                command="test",
                argv=[],
                config={},
                seed=None,
                started_at="now",
                duration_s=0.0,
                exit_code=0,
                version="test",
            )
            assert manifest.adaptive["bins"] == 2
            assert manifest.adaptive["rounds"] == len(report.rounds)
            assert manifest.adaptive["trials"] == report.total_trials
        finally:
            disable_metrics()

    def test_spectrum_campaign_matches_run_spectrum(
        self, layout, pof_table
    ):
        from repro.analysis import pof_standard_error

        simulator = make_simulator(layout, pof_table)
        spectrum = AlphaEmissionSpectrum()
        n = 8 * DRAW_BLOCK_SIZE
        baseline = simulator.run_spectrum(
            ALPHA,
            spectrum,
            0.7,
            n,
            np.random.default_rng(np.random.SeedSequence([7, 42])),
            e_min_mev=0.5,
            e_max_mev=10.0,
        )
        bins = [
            AdaptiveBin(
                ALPHA.name, 2.0, 0.7, e_range=(0.5, 10.0), spectrum=spectrum
            )
        ]
        controller = small_controller(
            simulator,
            bins,
            target_se=1e-3,
            pilot_trials=2 * DRAW_BLOCK_SIZE,
            max_trials=n,
            round_blocks=4,
        )
        report = controller.run(bins, seed_for_fn(bins))
        result = report.results[0]
        # energy strata were sampled: the merge carries the variance
        assert result.pof_variance is not None
        se_a = pof_standard_error(result)
        se_u = pof_standard_error(baseline)
        width = 3.0 * math.hypot(
            se_a if math.isfinite(se_a) else 0.02,
            se_u if math.isfinite(se_u) else 0.02,
        )
        assert abs(result.pof_total - baseline.pof_total) <= width


class TestKillAndResume:
    def _controller(self, simulator, journal_dir):
        factory = None
        if journal_dir is not None:
            def factory(round_index):
                return ShardJournal(
                    journal_dir / f"round{round_index:04d}.jsonl",
                    f"test-adaptive-r{round_index}",
                    array_shard_encode,
                    array_shard_decode,
                )
        return AdaptiveCampaignController(
            simulator,
            AdaptiveConfig(
                target_se=3e-4,
                pilot_trials=2 * DRAW_BLOCK_SIZE,
                max_trials=6 * DRAW_BLOCK_SIZE,
                round_blocks=2,
                max_rounds=8,
            ),
            n_jobs=2,
            retry=RetryPolicy(retries=0),
            warm_pool=False,
            shm=False,
            journal_factory=factory,
        )

    def test_resume_replays_identical_campaign(
        self, layout, pof_table, tmp_path, monkeypatch
    ):
        simulator = make_simulator(layout, pof_table, chunk_size=4096)
        bins = [
            AdaptiveBin(ALPHA.name, 1.0, 0.7),
            AdaptiveBin(ALPHA.name, 8.0, 0.7),
        ]
        clean = self._controller(simulator, None).run(
            bins, seed_for_fn(bins)
        )
        assert len(clean.rounds) > 1  # resume must replay real rounds

        marker = tmp_path / "killed"
        monkeypatch.setenv(FAULT_ENV, f"adaptive:1:{marker}")
        with pytest.raises(WorkerCrashError):
            self._controller(simulator, tmp_path).run(
                bins, seed_for_fn(bins)
            )
        assert marker.exists()
        monkeypatch.delenv(FAULT_ENV)

        resumed = self._controller(simulator, tmp_path).run(
            bins, seed_for_fn(bins)
        )
        assert resumed.allocation_history == clean.allocation_history
        assert resumed.total_trials == clean.total_trials
        for ra, rb in zip(resumed.results, clean.results):
            assert ra.pof_total == rb.pof_total
            assert ra.n_particles == rb.n_particles
            assert ra.n_array_hits == rb.n_array_hits
            assert np.array_equal(ra.multiplicity_pmf, rb.multiplicity_pmf)
        # a completed campaign clears its checkpoints
        assert not list(tmp_path.glob("round*.jsonl"))

    def test_strict_retry_never_degrades(self, layout, pof_table):
        # the controller refuses lossy retry policies implicitly: its
        # maps run with policy.strict(), so a lost block raises instead
        # of producing a silently degraded allocation input
        simulator = make_simulator(layout, pof_table)
        controller = self._controller(simulator, None)
        assert controller.retry.strict().allow_partial is False


# -- flow integration ----------------------------------------------------------


class TestFlowIntegration:
    def test_adaptive_config_perturbs_cache_keys(self):
        from repro.core import FlowConfig
        from repro.io.lutio import config_hash

        base = FlowConfig()
        adaptive = dataclasses.replace(
            base, adaptive=AdaptiveConfig(target_se=1e-3)
        )
        assert config_hash(base) != config_hash(adaptive)
        assert config_hash(adaptive) != config_hash(
            dataclasses.replace(base, adaptive=AdaptiveConfig(target_se=2e-3))
        )
