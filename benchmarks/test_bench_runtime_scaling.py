"""Runtime benchmark (paper Section 6 runtime note).

The paper quotes ~2 hours for 10 million array-MC iterations on a 9x9
array.  This bench measures our vectorized kernel's throughput and
extrapolates the 10 M cost, plus the scaling of the per-batch cost with
array size (the slab test is O(n_rays x n_sensitive_fins)).
"""

import numpy as np
import pytest

from repro import get_particle
from repro.layout import CellLayout, SramArrayLayout
from repro.ser import ArrayMcConfig, ArraySerSimulator


@pytest.fixture(scope="module")
def alpha():
    return get_particle("alpha")


def test_array_mc_throughput(flow, alpha, benchmark):
    simulator = flow.simulator()
    rng = np.random.default_rng(0)
    n = 20000

    result = benchmark(simulator.run, alpha, 2.0, 0.7, n, rng)
    assert result.n_particles == n

    per_particle = benchmark.stats["mean"] / n
    ten_million_minutes = per_particle * 1.0e7 / 60.0
    print(
        f"\nRuntime note: {1.0 / per_particle:,.0f} particles/s -> "
        f"10M iterations in ~{ten_million_minutes:.1f} min "
        "(paper: ~2 h on their stack)"
    )


@pytest.mark.parametrize("size", [3, 9, 18])
def test_array_mc_scaling_with_array_size(flow, alpha, size, benchmark):
    layout = SramArrayLayout(
        size,
        size,
        CellLayout(
            fin=flow.design.tech.fin,
            collection_length_nm=flow.design.tech.collection_length_nm,
        ),
    )
    simulator = ArraySerSimulator(
        layout, flow.pof_table(), flow.yield_luts(), ArrayMcConfig()
    )
    rng = np.random.default_rng(1)
    result = benchmark(simulator.run, alpha, 2.0, 0.7, 10000, rng)
    assert result.n_particles == 10000


def test_characterization_cost(benchmark):
    """One full (vdd, combo) POF grid build -- the cell-level kernel."""
    from repro.sram import (
        CharacterizationConfig,
        SramCellDesign,
        characterize_cell,
    )

    design = SramCellDesign()
    config = CharacterizationConfig(
        vdd_list=(0.8,),
        n_charge_points=15,
        n_samples=60,
        max_pair_points=5,
        max_triple_points=4,
    )
    table = benchmark.pedantic(
        characterize_cell, args=(design, config), rounds=1, iterations=1
    )
    assert len(table.pof) == 7
