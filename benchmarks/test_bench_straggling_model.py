"""Ablation: Bohr (Gaussian) vs Moyal (Landau-like) straggling.

The deposit-fluctuation model shapes the upward tail that lets
below-threshold mean deposits occasionally flip a cell.  This ablation
quantifies how much the reproduced POF moves between the two models --
an uncertainty band for the EXPERIMENTS.md results.
"""

import numpy as np
import pytest

from repro import get_particle
from repro.layout import CellLayout, SramArrayLayout
from repro.ser import ArrayMcConfig, ArraySerSimulator
from repro.physics import sample_deposits_kev, ALPHA


def test_straggling_model_ablation(flow, benchmark):
    layout = SramArrayLayout(
        9,
        9,
        CellLayout(
            fin=flow.design.tech.fin,
            collection_length_nm=flow.design.tech.collection_length_nm,
        ),
    )

    def run_both():
        results = {}
        for model in ("bohr", "moyal"):
            # direct mode exercises the straggling sampler per strike
            sim = ArraySerSimulator(
                layout,
                flow.pof_table(),
                config=ArrayMcConfig(deposition_mode="direct"),
            )
            # monkey-patch-free: the direct path calls
            # sample_deposits_kev with default model; emulate the model
            # choice by sampling deposits at the physics level instead
            results[model] = _pof_direct(
                sim, flow, model, np.random.default_rng(17)
            )
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    bohr, moyal = results["bohr"], results["moyal"]
    print(
        f"\nStraggling ablation @2MeV/0.7V: "
        f"bohr POF|hit={bohr:.4f}, moyal POF|hit={moyal:.4f}, "
        f"ratio={moyal / max(bohr, 1e-12):.2f}"
    )
    # the models agree within a modest factor: the reproduced shapes do
    # not hinge on the fluctuation model choice
    assert 0.3 < moyal / max(bohr, 1e-12) < 3.0


def _pof_direct(sim, flow, model, rng):
    """Mean single-cell POF over sampled strike deposits."""
    alpha = get_particle("alpha")
    # sample representative chords from the array geometry
    from repro.physics import sample_rays
    from repro.geometry import chord_lengths

    x_range, y_range, z, _ = sim.layout.launch_window(100.0)
    rays = sample_rays(60000, rng, x_range, y_range, z, "isotropic")
    chords = chord_lengths(rays, sim._sensitive_boxes)
    struck = chords[chords > 0.0]
    deposits = sample_deposits_kev(
        alpha, np.full_like(struck, 2.0), struck, rng, model=model
    )
    charges = deposits * 1e3 / 3.6 * 1.602176634e-19
    triples = np.zeros((len(charges), 3))
    triples[:, 0] = charges
    pofs = flow.pof_table().query(0.7, triples)
    return float(np.mean(pofs))
