"""Figure 11: effect of threshold-voltage process variation on SER.

The paper reports that neglecting PV *underestimates* alpha SER by up
to 45%.  In this reproduction the PV-vs-nominal difference is governed
by where the flip threshold sits relative to the deposit-density of the
struck fins -- a detail the paper's proprietary TCAD/SPICE stack pins
down differently than our synthetic substrate.  The bench therefore
checks the robust parts of the claim:

* PV visibly changes the SER estimate (the two flows do not coincide),
* the PV-vs-nominal ratio stays within a factor-of-2 band (the paper's
  effect is +45% at worst),
* at the lowest supply voltage -- where the paper's effect is the
  design-relevant one -- PV does not *reduce* the estimate by more
  than MC noise,

and records the measured ratios for EXPERIMENTS.md.
"""

import dataclasses

import numpy as np

from conftest import CACHE_DIR, make_flow_config
from repro import SerFlow
from repro.analysis import fig11_process_variation


def test_fig11_process_variation(flow, benchmark):
    nominal_flow = SerFlow(
        dataclasses.replace(
            flow.config, process_variation=False, particles=("alpha",)
        ),
        cache_dir=CACHE_DIR,
    )
    nominal_flow.yield_luts()
    nominal_flow.pof_table()

    def compute():
        # common random numbers: identical MC streams per Vdd so the
        # PV/nominal difference isolates the POF-table change
        sweep_pv_local = _sweep_with_fixed_streams(flow)
        sweep_nom_local = _sweep_with_fixed_streams(nominal_flow)
        return fig11_process_variation(sweep_pv_local, sweep_nom_local)

    pv_series, nom_series = benchmark.pedantic(compute, rounds=1, iterations=1)

    print("\nFig 11: alpha SER, considering vs neglecting PV (normalized)")
    ratios = []
    for vdd, with_pv, without_pv in zip(
        pv_series.x, pv_series.y, nom_series.y
    ):
        ratio = with_pv / without_pv if without_pv > 0 else float("inf")
        ratios.append(ratio)
        print(
            f"  vdd={vdd:.1f}: PV={with_pv:.4f} nominal={without_pv:.4f} "
            f"PV/nominal={ratio:.3f}"
        )

    ratios = np.array(ratios)
    # the two estimates differ measurably somewhere on the sweep
    assert np.max(np.abs(ratios - 1.0)) > 0.01
    # and stay within a factor-2 band (paper: up to 1.45)
    assert np.all(ratios > 0.5)
    assert np.all(ratios < 2.0)
    # at the design-relevant low-Vdd end, neglecting PV must not
    # overestimate the SER by more than MC noise
    assert ratios[0] > 0.9


def _sweep_with_fixed_streams(flow):
    from repro.ser import SerSweep

    sweep = SerSweep()
    for vdd in flow.config.vdd_list:
        flow._rng = np.random.default_rng(int(round(vdd * 1000)))
        sweep.add(flow.fit("alpha", float(vdd)))
    return sweep
