"""Perf harness for adaptive trial allocation (docs/performance.md).

Runs the paper's Fig. 9-style sweep -- alpha particles, two supply
voltages, a log-spaced energy ladder -- twice: once with the uniform
per-bin campaigns of :meth:`ArraySerSimulator.run`, once under the
:class:`~repro.ser.adaptive.AdaptiveCampaignController` with the
uniform campaign's *worst* per-bin standard error as the target.  The
headline figure is ``trial_savings`` -- uniform trials over adaptive
trials at equal-or-better max per-bin SE -- appended to a
``BENCH_adaptive.json`` trajectory artifact that ``repro-ser obs
bench-check`` regression-gates.

Usage (CI runs the tiny scale)::

    PYTHONPATH=src python benchmarks/perf/bench_adaptive.py \
        --scale tiny --check --min-trial-savings 5.0 \
        --out BENCH_adaptive.json

``--check`` additionally asserts the statistical contract:

* unbiasedness -- every bin's adaptive POF within 2 combined standard
  errors of the uniform estimate (the stratified estimator reweights
  exactly, so any systematic gap is a bug, not noise);
* the energy-importance-sampled spectrum campaign agrees with the
  plain :meth:`ArraySerSimulator.run_spectrum` baseline the same way;
* kill-and-resume determinism -- a campaign killed mid-round by the
  :data:`repro.parallel.engine.FAULT_ENV` hook and resumed from its
  round journals replays the identical allocation sequence and
  reproduces the uninterrupted run's results bit for bit.
"""

from __future__ import annotations

import argparse
import datetime
import json
import math
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.analysis import pof_standard_error
from repro.errors import WorkerCrashError
from repro.layout import SramArrayLayout
from repro.parallel import RetryPolicy, ShardJournal
from repro.parallel.engine import FAULT_ENV
from repro.physics import ALPHA, AlphaEmissionSpectrum
from repro.ser import (
    AdaptiveBin,
    AdaptiveCampaignController,
    AdaptiveConfig,
    ArrayMcConfig,
    ArraySerSimulator,
)
from repro.ser.mc import DRAW_BLOCK_SIZE, array_shard_decode, array_shard_encode
from repro.sram import CharacterizationConfig, SramCellDesign, characterize_cell

SCALES = {
    # uniform blocks/bin sizes the baseline; the adaptive run inherits
    # the same per-bin ceiling, so savings come purely from allocation.
    "tiny": dict(
        uniform_blocks=32, pilot_trials=4096, round_blocks=16, n_energies=6
    ),
    "small": dict(
        uniform_blocks=96, pilot_trials=8192, round_blocks=32, n_energies=8
    ),
}

VDDS = (0.7, 0.9)
SEED_ROOT = 4242
SPECTRUM_RANGE = (0.5, 10.0)


def _time(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _make_simulator(n_rows=4, n_cols=4, **overrides):
    """Direct-deposition simulator (no LUT build on the hot path)."""
    design = SramCellDesign()
    table = characterize_cell(
        design,
        CharacterizationConfig(
            vdd_list=VDDS,
            n_charge_points=9,
            n_samples=8,
            max_pair_points=4,
            max_triple_points=3,
            seed=5,
        ),
    )
    layout = SramArrayLayout(n_rows=n_rows, n_cols=n_cols)
    config = ArrayMcConfig(deposition_mode="direct", **overrides)
    return ArraySerSimulator(layout, table, config=config)


def _sweep_bins(scale):
    """Fig. 9-style (vdd, energy) ladder as mono-energetic adaptive bins."""
    energies = np.logspace(
        math.log10(0.8), math.log10(10.0), scale["n_energies"]
    )
    return [
        AdaptiveBin(ALPHA.name, float(energy), float(vdd))
        for vdd in VDDS
        for energy in energies
    ]


def _seed_for(bins):
    """Pure bin -> root SeedSequence map (fresh sequences every call)."""
    index = {bin_.key: i for i, bin_ in enumerate(bins)}

    def seed_for(bin_):
        return np.random.SeedSequence([SEED_ROOT, index[bin_.key]])

    return seed_for


def _combined_se(se_a, n_a, se_b, n_b):
    """2-sigma comparison width; nan SEs fall back to the binomial max."""

    def usable(se, n):
        return se if math.isfinite(se) else math.sqrt(0.25 / max(n, 1))

    return 2.0 * math.hypot(usable(se_a, n_a), usable(se_b, n_b))


def bench_sweep(simulator, scale, jobs, check):
    """Uniform baseline vs adaptive campaign on the mono-energetic sweep."""
    bins = _sweep_bins(scale)
    n_uniform = scale["uniform_blocks"] * DRAW_BLOCK_SIZE

    def run_uniform():
        results = []
        for i, bin_ in enumerate(bins):
            rng = np.random.default_rng(
                np.random.SeedSequence([SEED_ROOT, i])
            )
            results.append(
                simulator.run(
                    ALPHA, bin_.energy_mev, bin_.vdd_v, n_uniform, rng
                )
            )
        return results

    uniform, uniform_s = _time(run_uniform)
    uniform_ses = [pof_standard_error(result) for result in uniform]
    finite = [se for se in uniform_ses if math.isfinite(se)]
    if not finite:
        raise AssertionError(
            "uniform baseline produced no finite standard errors -- "
            "the sweep is too small to compare against"
        )
    target_se = max(finite)
    uniform_trials = n_uniform * len(bins)

    controller = AdaptiveCampaignController(
        simulator,
        AdaptiveConfig(
            target_se=target_se,
            pilot_trials=scale["pilot_trials"],
            max_trials=n_uniform,
            round_blocks=scale["round_blocks"],
        ),
        n_jobs=jobs,
    )
    report, adaptive_s = _time(
        lambda: controller.run(bins, _seed_for(bins))
    )
    adaptive_ses = [
        pof_standard_error(result) for result in report.results
    ]
    savings = uniform_trials / report.total_trials
    max_uniform = max(finite)
    finite_adaptive = [se for se in adaptive_ses if math.isfinite(se)]
    max_adaptive = max(finite_adaptive) if finite_adaptive else math.inf

    print(
        f"{'sweep':>9s}  bins={len(bins)}  uniform: {uniform_trials} trials "
        f"({uniform_s:.2f}s)  adaptive: {report.total_trials} trials "
        f"({adaptive_s:.2f}s)  savings={savings:.2f}x"
    )
    print(
        f"{'':>9s}  max SE uniform={max_uniform:.3e} "
        f"adaptive={max_adaptive:.3e}  rounds={len(report.rounds)}  "
        f"converged={sum(report.converged.values())}/{len(bins)}"
    )
    if check:
        assert max_adaptive <= max_uniform * (1.0 + 1e-9), (
            f"adaptive max per-bin SE {max_adaptive:.3e} worse than "
            f"uniform {max_uniform:.3e}"
        )
        for bin_, a, u, se_a, se_u in zip(
            bins, report.results, uniform, adaptive_ses, uniform_ses
        ):
            width = _combined_se(
                se_a, a.n_particles, se_u, u.n_particles
            )
            gap = abs(a.pof_total - u.pof_total)
            assert gap <= max(width, 1e-12), (
                f"bin {bin_.key}: adaptive POF {a.pof_total:.3e} vs "
                f"uniform {u.pof_total:.3e} differs by {gap:.3e} "
                f"> 2*SE {width:.3e} -- stratified estimator is biased"
            )
        print(f"{'':>9s}  unbiasedness ok (all bins within 2*SE)")
    return {
        "bins": len(bins),
        "uniform_trials": uniform_trials,
        "adaptive_trials": report.total_trials,
        "rounds": len(report.rounds),
        "converged": sum(report.converged.values()),
        "max_se_uniform": max_uniform,
        "max_se_adaptive": max_adaptive,
        "uniform_s": uniform_s,
        "adaptive_s": adaptive_s,
        "savings": savings,
    }


def bench_spectrum(simulator, scale, jobs, check):
    """Energy-stratified spectrum campaign vs plain run_spectrum."""
    spectrum = AlphaEmissionSpectrum()
    e_lo, e_hi = SPECTRUM_RANGE
    n = scale["uniform_blocks"] * DRAW_BLOCK_SIZE

    baseline, baseline_s = _time(
        lambda: simulator.run_spectrum(
            ALPHA,
            spectrum,
            VDDS[0],
            n,
            np.random.default_rng(np.random.SeedSequence([SEED_ROOT, 99])),
            e_min_mev=e_lo,
            e_max_mev=e_hi,
        )
    )
    bins = [
        AdaptiveBin(
            ALPHA.name,
            float(math.sqrt(e_lo * e_hi)),
            VDDS[0],
            e_range=(e_lo, e_hi),
            spectrum=spectrum,
        )
    ]
    se_u = pof_standard_error(baseline)
    controller = AdaptiveCampaignController(
        simulator,
        AdaptiveConfig(
            target_se=max(se_u, 1e-6) if math.isfinite(se_u) else 1e-4,
            pilot_trials=scale["pilot_trials"],
            max_trials=n,
            round_blocks=scale["round_blocks"],
        ),
        n_jobs=jobs,
    )
    report, adaptive_s = _time(
        lambda: controller.run(bins, _seed_for(bins))
    )
    result = report.results[0]
    se_a = pof_standard_error(result)
    print(
        f"{'spectrum':>9s}  baseline: {baseline.pof_total:.4e} "
        f"({baseline.n_particles} trials, {baseline_s:.2f}s)  "
        f"stratified: {result.pof_total:.4e} "
        f"({result.n_particles} trials, {adaptive_s:.2f}s)"
    )
    if check:
        width = _combined_se(
            se_a, result.n_particles, se_u, baseline.n_particles
        )
        gap = abs(result.pof_total - baseline.pof_total)
        assert gap <= max(width, 1e-12), (
            f"spectrum POF gap {gap:.3e} > 2*SE {width:.3e} -- "
            f"energy-stratum reweighting is biased"
        )
        print(f"{'':>9s}  flux-weighted estimate agrees within 2*SE")
    return {
        "baseline_pof": baseline.pof_total,
        "stratified_pof": result.pof_total,
        "baseline_trials": baseline.n_particles,
        "stratified_trials": result.n_particles,
    }


def bench_resume(simulator, scale, jobs):
    """Kill one pilot worker, resume from journals, demand bit-equality."""
    bins = _sweep_bins(scale)[:4]
    # tight enough that refinement runs several rounds past the killed
    # pilot -- the resume must replay the whole allocation sequence,
    # not just finish round 0
    config = AdaptiveConfig(
        target_se=1.5e-4,
        pilot_trials=scale["pilot_trials"],
        max_trials=16 * DRAW_BLOCK_SIZE,
        round_blocks=4,
        max_rounds=16,
    )

    def make_controller(journal_dir):
        factory = None
        if journal_dir is not None:
            def factory(round_index):
                return ShardJournal(
                    Path(journal_dir) / f"round{round_index:04d}.jsonl",
                    f"bench-adaptive-r{round_index}",
                    array_shard_encode,
                    array_shard_decode,
                )
        return AdaptiveCampaignController(
            simulator,
            config,
            n_jobs=jobs,
            retry=RetryPolicy(retries=0),
            warm_pool=False,
            shm=False,
            journal_factory=factory,
        )

    clean = make_controller(None).run(bins, _seed_for(bins))

    with tempfile.TemporaryDirectory() as td:
        marker = Path(td) / "killed.marker"
        # kill a mid-round task (not an early index): the pool breaks
        # at the kill, so only shards completed *before* it are
        # journaled -- a first-task kill would leave nothing to resume
        os.environ[FAULT_ENV] = f"adaptive:5:{marker}"
        try:
            crashed = False
            try:
                make_controller(td).run(bins, _seed_for(bins))
            except WorkerCrashError:
                crashed = True
            assert crashed, (
                "fault hook did not fire -- kill/resume leg proved nothing"
            )
            assert marker.exists(), "worker was not actually killed"
        finally:
            os.environ.pop(FAULT_ENV, None)
        journaled = [p.name for p in Path(td).glob("round*.jsonl")]
        assert journaled, "crashed round left no journal to resume from"
        resumed = make_controller(td).run(bins, _seed_for(bins))

    assert resumed.allocation_history == clean.allocation_history, (
        f"resume diverged from the clean allocation sequence: "
        f"{resumed.allocation_history} vs {clean.allocation_history}"
    )
    assert resumed.total_trials == clean.total_trials
    for a, b in zip(resumed.results, clean.results):
        assert a.pof_total == b.pof_total, (
            f"resumed POF {a.pof_total!r} != clean {b.pof_total!r}"
        )
        assert a.n_particles == b.n_particles
        assert a.n_array_hits == b.n_array_hits
        assert np.array_equal(a.multiplicity_pmf, b.multiplicity_pmf)
    print(
        f"{'resume':>9s}  killed mid-pilot, resumed from "
        f"{len(journaled)} journal(s): allocation + results bit-identical "
        f"({len(clean.rounds)} rounds, {clean.total_trials} trials)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="tiny",
        choices=sorted(SCALES),
        help="problem size (tiny = CI smoke)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="worker processes for the adaptive campaigns (default: 2)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert unbiasedness, SE parity and kill/resume determinism",
    )
    parser.add_argument(
        "--min-trial-savings",
        type=float,
        default=None,
        help="fail unless trial_savings >= this factor (with --check)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_adaptive.json",
        help="trajectory artifact to append this run to",
    )
    args = parser.parse_args(argv)
    scale = SCALES[args.scale]

    print(f"scale={args.scale} jobs={args.jobs} check={args.check}")
    # Normal-incidence beam (accelerated-test geometry) over a launch
    # window inflated well past the array: the core stratum holds ~13%
    # of the area but all of the POF variance -- the regime position
    # stratification exists for.  (At the default 100 nm margin the
    # core bbox IS the window and stratification is a no-op; under the
    # isotropic law frame-launched rays still strike the array at an
    # angle and the frame carries real variance.)
    simulator = _make_simulator(
        margin_nm=1000.0, direction_laws={ALPHA.name: "beam:1.0"}
    )
    sweep = bench_sweep(simulator, scale, args.jobs, args.check)
    spectrum = bench_spectrum(simulator, scale, args.jobs, args.check)
    if args.check:
        bench_resume(simulator, scale, args.jobs)
        if args.min_trial_savings is not None:
            assert sweep["savings"] >= args.min_trial_savings, (
                f"trial savings {sweep['savings']:.2f}x below the "
                f"{args.min_trial_savings:.2f}x gate"
            )
        print("adaptive checks passed")

    entry = {
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(),
        "scale": args.scale,
        "jobs": args.jobs,
        "checked": bool(args.check),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "trial_savings": sweep["savings"],
        "sweep": sweep,
        "spectrum": spectrum,
    }
    out = Path(args.out)
    history = []
    if out.exists():
        try:
            history = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"trajectory appended to {out} ({len(history)} runs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
