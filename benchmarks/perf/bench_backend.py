"""Perf harness for the array-compute backend + cross-campaign fusion.

Times the campaign phase of a flow-level sweep twice: once on the
classic per-campaign path (one ``parallel_map`` per (particle, energy,
Vdd) point) and once through the fused :class:`~repro.ser.fusion.
BatchPlan` (every draw block of the sweep in one map).  Both paths run
the same campaign seeds, the same draw-block partition, and the same
merge order, so their sweeps must agree bit-for-bit -- the speedup is
pure scheduling: one fan-out instead of dozens, one payload broadcast,
one device table upload per sweep.

A second section micro-benchmarks one direct-deposition campaign per
*available* array backend (numpy always; numba / cupy when installed)
and reports each backend's POF deviation from numpy.  The tolerance
contract is max |delta POF| <= 1e-3; the numpy backend itself must be
exact (it *is* the reference).

Appends one run entry to a ``BENCH_backend.json`` trajectory artifact
so speedups can be tracked across commits.

Usage (CI runs the tiny scale with a no-slower-than floor)::

    PYTHONPATH=src python benchmarks/perf/bench_backend.py \
        --scale tiny --check --min-speedup 1.0 --out BENCH_backend.json

``--check`` asserts the fused sweep is bit-identical to the
per-campaign sweep (delta POF = 0.000), that the plan actually fused
(one plan, every campaign in it), that the fused/per-campaign speedup
clears ``--min-speedup``, and that every accelerated backend stays
within the 1e-3 tolerance.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.backend import BACKENDS, CupyBackend, NumbaBackend, NumpyBackend
from repro.core import FlowConfig, SerFlow
from repro.obs.registry import disable_metrics, enable_metrics
from repro.parallel import get_lease, get_pack
from repro.physics import ALPHA
from repro.ser import ArrayMcConfig, ArraySerSimulator
from repro.sram import CharacterizationConfig

TOLERANCE = 1e-3  # max |delta POF| vs numpy for accelerated backends

SCALES = {
    # tiny = CI smoke: 2 particles x 4 Vdd x 4 bins = 32 campaign maps
    # on the per-campaign path, all fused into ONE map by the plan.
    "tiny": dict(
        vdds=(0.7, 0.8, 0.9, 1.1),
        bins=4,
        particles_per_bin=200,
        rows=12,
        char_samples=150,
        campaign_n=10000,
    ),
    "small": dict(
        vdds=(0.7, 0.8, 0.9, 1.1),
        bins=6,
        particles_per_bin=2000,
        rows=12,
        char_samples=150,
        campaign_n=50000,
    ),
    "full": dict(
        vdds=(0.7, 0.8, 0.9, 1.0, 1.1),
        bins=8,
        particles_per_bin=20000,
        rows=16,
        char_samples=200,
        campaign_n=200000,
    ),
}

_BACKEND_CLASSES = {
    "numpy": NumpyBackend,
    "numba": NumbaBackend,
    "cupy": CupyBackend,
}


def make_config(scale) -> FlowConfig:
    """A direct-deposition sweep config (no LUT build on the hot path)."""
    return FlowConfig(
        particles=("alpha", "proton"),
        vdd_list=scale["vdds"],
        n_energy_bins=scale["bins"],
        mc_particles_per_bin=scale["particles_per_bin"],
        array_rows=scale["rows"],
        array_cols=scale["rows"],
        deposition_mode="direct",
        process_variation=True,
        characterization=CharacterizationConfig(
            n_charge_points=9,
            n_samples=scale["char_samples"],
            max_pair_points=4,
            max_triple_points=3,
            seed=5,
        ),
        seed=2014,
    )


def _reset_engine(flow: SerFlow):
    """Back to a cold engine: no leased pools, no segments, no packs."""
    get_lease().shutdown_all()
    get_pack().release_all()
    flow._campaign_packs.clear()


def bench_sweep(flow: SerFlow, reps: int, *, fuse: bool):
    """Min-of-``reps`` sweep timing for one fusion mode.

    Every rep starts from a cold engine, so the fused mode's advantage
    is what it earns within one sweep -- the realistic shape of a CLI
    invocation.  Returns the last rep's sweep, the best wall time, and
    the last rep's metrics counters.
    """
    flow.fuse = fuse
    sweep, best, counters = None, float("inf"), {}
    for _ in range(reps):
        _reset_engine(flow)
        registry = enable_metrics(fresh=True)
        try:
            t0 = time.perf_counter()
            sweep = flow.sweep()
            seconds = time.perf_counter() - t0
            counters = registry.snapshot()["counters"]
        finally:
            disable_metrics()
        best = min(best, seconds)
    _reset_engine(flow)
    return sweep, best, counters


def sweep_delta_pof(a, b) -> float:
    """Largest |delta| over every case's per-bin POF and FIT fields."""
    worst = 0.0
    for particle_name in a.particles():
        for vdd in a.vdd_values(particle_name):
            fit_a = a.get(particle_name, vdd)
            fit_b = b.get(particle_name, vdd)
            worst = max(
                worst,
                float(
                    np.max(
                        np.abs(
                            np.asarray(fit_a.pof_per_bin)
                            - np.asarray(fit_b.pof_per_bin)
                        )
                    )
                ),
            )
            for attr in ("fit_total", "fit_seu", "fit_mbu"):
                rel_a, rel_b = getattr(fit_a, attr), getattr(fit_b, attr)
                scale = max(abs(rel_a), abs(rel_b), 1.0)
                worst = max(worst, abs(rel_a - rel_b) / scale)
    return worst


def bench_backend_campaigns(flow: SerFlow, scale, reps: int):
    """One direct campaign per available backend; deviation vs numpy."""
    layout = flow.layout()
    pof_table = flow.pof_table()
    n = scale["campaign_n"]
    results = {}
    reference = None
    for name in BACKENDS:
        if not _BACKEND_CLASSES[name].available():
            results[name] = {"available": False}
            continue
        simulator = ArraySerSimulator(
            layout,
            pof_table,
            config=ArrayMcConfig(deposition_mode="direct", backend=name),
        )
        best = float("inf")
        outcome = None
        for _ in range(reps):
            rng = np.random.default_rng(11)
            t0 = time.perf_counter()
            outcome = simulator.run(ALPHA, 5.0, 0.7, n, rng)
            best = min(best, time.perf_counter() - t0)
        if name == "numpy":
            reference = outcome
        delta = max(
            abs(outcome.pof_total - reference.pof_total),
            abs(outcome.pof_seu - reference.pof_seu),
            abs(outcome.pof_mbu - reference.pof_mbu),
            float(
                np.max(
                    np.abs(
                        outcome.multiplicity_pmf - reference.multiplicity_pmf
                    )
                )
            ),
        )
        results[name] = {
            "available": True,
            "seconds": best,
            "rays_per_sec": n / best if best > 0 else 0.0,
            "delta_pof": delta,
        }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="tiny",
        choices=sorted(SCALES),
        help="problem size (tiny = CI smoke, full = honest speedups)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="worker count for every pooled map (default: 2)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        help="repetitions per mode; min is reported (default: 3)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert bit-identical fused sweep, fusion counters, the "
        "speedup floor, and the accelerated-backend tolerance",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.3,
        help="with --check, fail below this fused/per-campaign ratio "
        "(default: 1.3; CI uses 1.0 as a no-slower-than floor)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_backend.json",
        help="trajectory artifact to append this run to",
    )
    args = parser.parse_args(argv)
    if args.jobs < 2:
        parser.error("--jobs must be >= 2 (pooled maps are the subject)")

    scale = SCALES[args.scale]
    config = make_config(scale)
    n_maps = (
        len(config.particles) * len(config.vdd_list) * config.n_energy_bins
    )
    available = [
        name for name in BACKENDS if _BACKEND_CLASSES[name].available()
    ]
    print(
        f"scale={args.scale} jobs={args.jobs} reps={args.reps} "
        f"backends={','.join(available)} "
        f"({len(config.particles)} particles x {len(config.vdd_list)} vdd "
        f"x {config.n_energy_bins} bins = {n_maps} campaigns/sweep)"
    )

    flow = SerFlow(config=config, cache_dir=None, n_jobs=args.jobs)
    t0 = time.perf_counter()
    flow.simulator()  # characterization + layout: shared deterministic prep
    print(
        f"prep (characterize + simulator build): {time.perf_counter()-t0:.1f}s"
    )

    per_case_sweep, per_case_s, _ = bench_sweep(flow, args.reps, fuse=False)
    fused_sweep, fused_s, counters = bench_sweep(flow, args.reps, fuse=True)
    speedup = per_case_s / fused_s if fused_s > 0 else float("inf")
    delta = sweep_delta_pof(per_case_sweep, fused_sweep)

    fused_plans = counters.get("backend.fused_plans", 0)
    fused_campaigns = counters.get("backend.fused_campaigns", 0)
    fused_blocks = counters.get("backend.fused_blocks", 0)
    print(
        f"per-campaign: {per_case_s:.3f}s  fused: {fused_s:.3f}s  "
        f"({speedup:.2f}x, delta POF = {delta:.3f})"
    )
    print(
        f"fused-run counters: plans={fused_plans} "
        f"campaigns={fused_campaigns} blocks={fused_blocks}"
    )

    campaigns = bench_backend_campaigns(flow, scale, args.reps)
    for name, stats in campaigns.items():
        if not stats["available"]:
            print(f"backend {name}: not available (skipped)")
            continue
        print(
            f"backend {name}: {stats['seconds']:.3f}s "
            f"({stats['rays_per_sec']:.0f} rays/s, "
            f"delta POF = {stats['delta_pof']:.2e})"
        )

    if args.check:
        assert delta == 0.0, (
            f"fused sweep deviates from per-campaign sweep by {delta:g}"
        )
        assert fused_plans == 1, "fused mode never built a batch plan"
        assert fused_campaigns == n_maps, (
            f"plan fused {fused_campaigns}/{n_maps} campaigns"
        )
        assert speedup >= args.min_speedup, (
            f"speedup {speedup:.2f}x below floor {args.min_speedup:.2f}x"
        )
        assert campaigns["numpy"]["delta_pof"] == 0.0
        for name in ("numba", "cupy"):
            if campaigns[name]["available"]:
                assert campaigns[name]["delta_pof"] <= TOLERANCE, (
                    f"{name} deviates by {campaigns[name]['delta_pof']:g} "
                    f"(> {TOLERANCE:g})"
                )
        print(
            "determinism checks passed (fused == per-campaign at "
            f"delta POF = 0.000, speedup >= {args.min_speedup:.2f}x, "
            f"accelerated backends within {TOLERANCE:g})"
        )

    entry = {
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(),
        "scale": args.scale,
        "jobs": args.jobs,
        "reps": args.reps,
        "checked": bool(args.check),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "backends_available": available,
        "timings_s": {"per_campaign": per_case_s, "fused": fused_s},
        "speedup": speedup,
        "delta_pof": delta,
        "fused_counters": {
            "plans": fused_plans,
            "campaigns": fused_campaigns,
            "blocks": fused_blocks,
        },
        "backend_campaigns": campaigns,
    }
    out = Path(args.out)
    history = []
    if out.exists():
        try:
            history = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"trajectory appended to {out} ({len(history)} runs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
