"""Perf harness for the parallel execution engine (docs/performance.md).

Times the three parallelized hot paths -- electron-yield LUT build,
cell characterization, and the array Monte Carlo -- at each requested
worker count, plus the sparse vs dense strike-kernel comparison, and
appends one run entry to a ``BENCH_parallel.json`` trajectory artifact
so speedups can be tracked across commits.

Usage (CI runs the tiny scale)::

    PYTHONPATH=src python benchmarks/perf/bench_parallel.py \
        --scale tiny --jobs 1,2 --check --out BENCH_parallel.json

``--check`` asserts that every parallel run reproduces the serial
result exactly (the engine's determinism contract), failing the run
otherwise.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.layout import SramArrayLayout
from repro.physics import ALPHA
from repro.sram import CharacterizationConfig, SramCellDesign, characterize_cell
from repro.ser import ArrayMcConfig, ArraySerSimulator
from repro.ser.mc import DRAW_BLOCK_SIZE
from repro.transport import ElectronYieldLUT

SCALES = {
    # (lut trials/energy, lut energy points, char samples, mc particles)
    "tiny": dict(
        lut_trials=2000, lut_points=3, char_samples=8, mc_particles=8192
    ),
    "small": dict(
        lut_trials=20000, lut_points=5, char_samples=50, mc_particles=100000
    ),
    "full": dict(
        lut_trials=100000, lut_points=9, char_samples=200, mc_particles=500000
    ),
}


def _time(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def bench_yield_lut(scale, jobs_list, check):
    energies = np.logspace(-1, 1, scale["lut_points"])

    def build(n_jobs):
        return ElectronYieldLUT.build(
            ALPHA,
            energies,
            scale["lut_trials"],
            np.random.default_rng(11),
            n_jobs=n_jobs,
        )

    timings, serial = {}, None
    for n_jobs in jobs_list:
        lut, seconds = _time(lambda: build(n_jobs))
        timings[str(n_jobs)] = seconds
        if serial is None:
            serial = lut
        elif check:
            assert np.array_equal(serial.quantiles, lut.quantiles), (
                f"yield LUT mismatch at n_jobs={n_jobs}"
            )
            assert np.array_equal(serial.hit_fraction, lut.hit_fraction)
    return timings


def bench_characterize(scale, jobs_list, check):
    design = SramCellDesign()
    config = CharacterizationConfig(
        vdd_list=(0.7, 0.9),
        n_charge_points=9,
        n_samples=scale["char_samples"],
        max_pair_points=4,
        max_triple_points=3,
        seed=5,
    )
    timings, serial = {}, None
    for n_jobs in jobs_list:
        table, seconds = _time(
            lambda: characterize_cell(design, config, n_jobs=n_jobs)
        )
        timings[str(n_jobs)] = seconds
        if serial is None:
            serial = table
        elif check:
            for combo, grid in serial.pof.items():
                assert np.array_equal(grid, table.pof[combo]), (
                    f"characterization mismatch at n_jobs={n_jobs}"
                )
    return timings


def _make_simulator(n_rows=4, n_cols=4, **overrides):
    """Direct-deposition simulator (no LUT build on the hot path)."""
    design = SramCellDesign()
    table = characterize_cell(
        design,
        CharacterizationConfig(
            vdd_list=(0.7, 0.9),
            n_charge_points=9,
            n_samples=8,
            max_pair_points=4,
            max_triple_points=3,
            seed=5,
        ),
    )
    layout = SramArrayLayout(n_rows=n_rows, n_cols=n_cols)
    config = ArrayMcConfig(deposition_mode="direct", **overrides)
    return ArraySerSimulator(layout, table, config=config)


def bench_array_mc(scale, jobs_list, check):
    n = scale["mc_particles"]
    timings, serial = {}, None
    for n_jobs in jobs_list:
        simulator = _make_simulator(n_jobs=n_jobs)
        result, seconds = _time(
            lambda: simulator.run(
                ALPHA, 5.0, 0.7, n, np.random.default_rng(42)
            )
        )
        timings[str(n_jobs)] = seconds
        if serial is None:
            serial = result
        elif check:
            assert serial.pof_total == result.pof_total, (
                f"array MC mismatch at n_jobs={n_jobs}: "
                f"{serial.pof_total} vs {result.pof_total}"
            )
            assert np.array_equal(
                serial.multiplicity_pmf, result.multiplicity_pmf
            )
    return timings


def bench_kernel(scale, check, reps=3):
    """Sparse vs dense strike kernel on identical ray batches.

    Uses a 16x16 array (256 cells): the dense kernel's per-event
    ``(n_events, n_cells, 3)`` tensor cost scales with the cell count,
    which is exactly what the sparse kernel avoids.  Both kernels share
    the ray-geometry front half (``_gather_strikes``), which dominates
    the total, so the harness also times the gather alone and reports
    the backend times (kernel minus gather) -- that difference is what
    the sparse rewrite buys.  Min-of-``reps`` to suppress allocator
    noise.
    """
    from repro.physics import sample_rays

    simulator = _make_simulator(n_rows=16, n_cols=16)
    x_range, y_range, z, _ = simulator.layout.launch_window(
        simulator.config.margin_nm
    )
    n = min(scale["mc_particles"], 2 * DRAW_BLOCK_SIZE)

    def fresh_batch():
        rng = np.random.default_rng(17)
        return rng, sample_rays(n, rng, x_range, y_range, z, "isotropic")

    samples = {"sparse": [], "dense": [], "gather": []}
    outputs = {}
    for _ in range(reps):
        rng, rays = fresh_batch()
        _, seconds = _time(
            lambda: simulator._gather_strikes(ALPHA, 5.0, rays, rng)
        )
        samples["gather"].append(seconds)
        for name, kernel in (
            ("sparse", simulator._process_batch),
            ("dense", simulator._process_batch_dense),
        ):
            rng, rays = fresh_batch()
            output, seconds = _time(
                lambda: kernel(ALPHA, 5.0, 0.7, rays, rng)
            )
            samples[name].append(seconds)
            outputs[name] = output
    if check:
        sparse, dense = outputs["sparse"], outputs["dense"]
        assert sparse[3] == dense[3] and sparse[4] == dense[4]
        np.testing.assert_allclose(sparse[0], dense[0], rtol=1e-12)
        np.testing.assert_allclose(sparse[5], dense[5], rtol=1e-12)
    def backend(name):
        """Best paired (kernel - gather) difference, or None.

        The historical ``min(kernel) - min(gather)`` clamped at 0.0
        reported ``sparse_backend: 0.0`` whenever the shared gather
        front half dominated and cross-rep noise exceeded the backend
        cost -- a zeroed, not measured, figure.  Pairing each rep's
        kernel time with the *same rep's* gather time cancels the
        slow-host drift between reps; when even the best paired
        difference is non-positive the backend is below the timer's
        resolution here, and the honest report is ``null``, not 0.0.
        """
        best = min(
            kernel_s - gather_s
            for kernel_s, gather_s in zip(samples[name], samples["gather"])
        )
        return best if best > 0.0 else None

    return {
        "gather": min(samples["gather"]),
        "sparse": min(samples["sparse"]),
        "dense": min(samples["dense"]),
        "sparse_backend": backend("sparse"),
        "dense_backend": backend("dense"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        default="1,2,4",
        help="comma-separated worker counts to time (default: 1,2,4)",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="problem size (tiny = CI smoke, full = honest speedups)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert parallel results match serial exactly",
    )
    parser.add_argument(
        "--out",
        default="BENCH_parallel.json",
        help="trajectory artifact to append this run to",
    )
    args = parser.parse_args(argv)

    jobs_list = [int(j) for j in args.jobs.split(",") if j.strip()]
    scale = SCALES[args.scale]

    print(f"scale={args.scale} jobs={jobs_list} check={args.check}")
    paths = {}
    for name, bench in (
        ("yield_lut", lambda: bench_yield_lut(scale, jobs_list, args.check)),
        ("characterize", lambda: bench_characterize(scale, jobs_list, args.check)),
        ("array_mc", lambda: bench_array_mc(scale, jobs_list, args.check)),
    ):
        timings = bench()
        paths[name] = timings
        serial = timings[str(jobs_list[0])]
        report = "  ".join(
            f"jobs={j}: {timings[str(j)]:.3f}s"
            f" ({serial / timings[str(j)]:.2f}x)"
            for j in jobs_list
        )
        print(f"{name:>13s}  {report}")

    kernel = bench_kernel(scale, args.check)
    paths["kernel"] = kernel

    def fmt_backend(value):
        return "n/a" if value is None else f"{value:.3f}s"

    sparse_b, dense_b = kernel["sparse_backend"], kernel["dense_backend"]
    ratio = (
        f"({dense_b / sparse_b:.1f}x)"
        if sparse_b is not None and dense_b is not None
        else "(ratio n/a)"
    )
    print(
        f"{'kernel':>13s}  gather: {kernel['gather']:.3f}s  "
        f"sparse backend: {fmt_backend(sparse_b)}  "
        f"dense backend: {fmt_backend(dense_b)}  "
        f"{ratio}"
    )
    if args.check:
        print("determinism checks passed (parallel == serial, sparse == dense)")

    entry = {
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(),
        "scale": args.scale,
        "jobs": jobs_list,
        "checked": bool(args.check),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "timings_s": paths,
    }
    out = Path(args.out)
    history = []
    if out.exists():
        try:
            history = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"trajectory appended to {out} ({len(history)} runs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
