"""Perf harness for the warm-pool + shared-memory execution plane.

Times the campaign phase of a flow-level sweep -- every ``fit`` of a
(particle, vdd) grid, each fanning its energy-bin campaigns across
workers -- twice: once with per-call pools and per-map payload
broadcast (the historical engine), once with the leased warm pool and
the shared-memory payload plane.  Flow maps carry no cost hint, so in
the historical mode every ``parallel_map`` pays pool spin-up, payload
pickling per worker, and interpolator-cache rebuilds inside the fresh
workers; the warm+shm plane pays each of those once per sweep.  Cell
characterization and simulator construction are deterministic shared
prep and run before the clock starts (with a cache directory they are
loaded from disk in production anyway).

Appends one run entry to a ``BENCH_flow.json`` trajectory artifact so
the speedup can be tracked across commits.

Usage (CI runs the tiny scale with a no-slower-than floor)::

    PYTHONPATH=src python benchmarks/perf/bench_flow.py \
        --scale tiny --check --min-speedup 1.0 --out BENCH_flow.json

``--check`` asserts bit-identical sweep outputs between the two modes
(the engine's determinism contract), that the warm run actually reused
a leased pool, and that warm workers served campaigns from the
fingerprint-cached payload.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import FlowConfig, SerFlow
from repro.obs.events import configure_events, disable_events
from repro.obs.registry import disable_metrics, enable_metrics
from repro.obs.trace import configure_tracing, reset_tracing
from repro.parallel import (
    get_lease,
    get_pack,
    set_shm_default,
    set_warm_pool_default,
)
from repro.sram import CharacterizationConfig

SCALES = {
    # ISSUE floor: >= 2 particles x >= 2 Vdd x >= 4 energy bins, jobs >= 2.
    "tiny": dict(
        vdds=(0.7, 0.8, 0.9, 1.1),
        bins=4,
        particles_per_bin=200,
        rows=12,
        char_samples=150,
    ),
    "small": dict(
        vdds=(0.7, 0.8, 0.9, 1.1),
        bins=6,
        particles_per_bin=2000,
        rows=12,
        char_samples=150,
    ),
    "full": dict(
        vdds=(0.7, 0.8, 0.9, 1.0, 1.1),
        bins=8,
        particles_per_bin=20000,
        rows=16,
        char_samples=200,
    ),
}


def make_config(scale) -> FlowConfig:
    """A direct-deposition sweep config (no LUT build on the hot path)."""
    return FlowConfig(
        particles=("alpha", "proton"),
        vdd_list=scale["vdds"],
        n_energy_bins=scale["bins"],
        mc_particles_per_bin=scale["particles_per_bin"],
        array_rows=scale["rows"],
        array_cols=scale["rows"],
        deposition_mode="direct",
        process_variation=True,
        characterization=CharacterizationConfig(
            n_charge_points=9,
            n_samples=scale["char_samples"],
            max_pair_points=4,
            max_triple_points=3,
            seed=5,
        ),
        seed=2014,
    )


def _reset_engine(flow: SerFlow):
    """Back to a cold engine: no leased pools, no segments, no packs."""
    get_lease().shutdown_all()
    get_pack().release_all()
    flow._campaign_packs.clear()


def bench_mode(flow: SerFlow, reps: int, *, warm: bool, telemetry_dir=None):
    """Min-of-``reps`` campaign-phase timing for one engine mode.

    Every rep starts from a cold engine, so the warm mode's advantage
    is what it earns *within* one sweep's worth of fits -- the
    realistic shape of a CLI invocation.  Returns the last rep's fits,
    the best wall time, and the last rep's metrics counters.

    With ``telemetry_dir``, the full observability plane is live for
    every timed rep: the event bus streams worker progress/heartbeats
    to ``events.jsonl`` and spans to ``trace.jsonl`` -- the setup the
    telemetry-overhead mode times against the metrics-only baseline.
    """
    set_warm_pool_default(warm)
    set_shm_default(warm)
    grid = [
        (p, float(v))
        for p in flow.config.particles
        for v in flow.config.vdd_list
    ]
    fits, best, counters = None, float("inf"), {}
    try:
        for _ in range(reps):
            _reset_engine(flow)
            registry = enable_metrics(fresh=True)
            if telemetry_dir is not None:
                configure_events(Path(telemetry_dir) / "events.jsonl")
                configure_tracing(Path(telemetry_dir) / "trace.jsonl")
            try:
                t0 = time.perf_counter()
                fits = [flow.fit(p, v) for p, v in grid]
                seconds = time.perf_counter() - t0
                counters = registry.snapshot()["counters"]
            finally:
                if telemetry_dir is not None:
                    disable_events()
                    reset_tracing()
                disable_metrics()
            best = min(best, seconds)
    finally:
        _reset_engine(flow)
        set_warm_pool_default(True)
        set_shm_default(True)
    return fits, best, counters


def assert_fits_identical(a, b):
    assert len(a) == len(b)
    for fit_a, fit_b in zip(a, b):
        key = (fit_a.particle_name, fit_a.vdd_v)
        for attr in ("fit_total", "fit_seu", "fit_mbu"):
            va, vb = getattr(fit_a, attr), getattr(fit_b, attr)
            assert va == vb, f"{key} {attr}: {va} != {vb}"
        assert np.array_equal(fit_a.pof_per_bin, fit_b.pof_per_bin), (
            f"{key} pof_per_bin differs"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="tiny",
        choices=sorted(SCALES),
        help="problem size (tiny = CI smoke, full = honest speedups)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="worker count for every pooled map (default: 2)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        help="repetitions per mode; min is reported (default: 3)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert bit-identical fits, pool reuse, and payload-cache hits",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="with --check, fail below this warm/fresh ratio "
        "(default: 1.5; CI uses 1.0 as a no-slower-than floor)",
    )
    parser.add_argument(
        "--telemetry-overhead",
        action="store_true",
        help="also time the warm mode with the full telemetry plane "
        "(events + trace) live and report its overhead",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.05,
        help="with --check and --telemetry-overhead, fail if telemetry "
        "costs more than this fraction of wall time (default: 0.05)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_flow.json",
        help="trajectory artifact to append this run to",
    )
    args = parser.parse_args(argv)
    if args.jobs < 2:
        parser.error("--jobs must be >= 2 (pooled maps are the subject)")

    scale = SCALES[args.scale]
    config = make_config(scale)
    n_maps = len(config.particles) * len(config.vdd_list)
    print(
        f"scale={args.scale} jobs={args.jobs} reps={args.reps} "
        f"({len(config.particles)} particles x {len(config.vdd_list)} vdd "
        f"x {config.n_energy_bins} bins = {n_maps} campaign maps/sweep)"
    )

    flow = SerFlow(config=config, cache_dir=None, n_jobs=args.jobs)
    t0 = time.perf_counter()
    flow.simulator()  # characterization + layout: shared deterministic prep
    print(f"prep (characterize + simulator build): {time.perf_counter()-t0:.1f}s")

    fresh_fits, fresh_s, _ = bench_mode(flow, args.reps, warm=False)
    warm_fits, warm_s, counters = bench_mode(flow, args.reps, warm=True)
    speedup = fresh_s / warm_s if warm_s > 0 else float("inf")

    pools_reused = counters.get("parallel.pool.reused", 0)
    payload_hits = counters.get("parallel.shm.payload_hits", 0)
    print(
        f"per-call pools: {fresh_s:.3f}s  warm+shm: {warm_s:.3f}s  "
        f"({speedup:.2f}x)"
    )
    print(
        f"warm-run counters: pools_created="
        f"{counters.get('parallel.pool.created', 0)} "
        f"pools_reused={pools_reused} "
        f"shm_segments={counters.get('parallel.shm.segments', 0)} "
        f"shm_bytes={counters.get('parallel.shm.bytes', 0)} "
        f"worker_payload_hits={payload_hits}"
    )

    telemetry = None
    if args.telemetry_overhead:
        with tempfile.TemporaryDirectory(prefix="bench_obs_") as obs_dir:
            tele_fits, tele_s, _ = bench_mode(
                flow, args.reps, warm=True, telemetry_dir=obs_dir
            )
            events_bytes = (
                Path(obs_dir) / "events.jsonl"
            ).stat().st_size
        overhead = tele_s / warm_s - 1.0 if warm_s > 0 else 0.0
        telemetry = {
            "warm_s": warm_s,
            "telemetry_s": tele_s,
            "overhead": overhead,
            "events_bytes": events_bytes,
        }
        print(
            f"telemetry plane (events + trace): {tele_s:.3f}s vs "
            f"{warm_s:.3f}s bare ({overhead:+.1%}, "
            f"{events_bytes} event bytes over {args.reps} reps)"
        )
        assert_fits_identical(warm_fits, tele_fits)
        print("telemetry determinism check passed (fits bit-identical)")

    if args.check:
        assert_fits_identical(fresh_fits, warm_fits)
        assert pools_reused > 0, "warm run never reused a pool"
        assert payload_hits > 0, (
            "warm workers never served a campaign from the payload cache"
        )
        assert speedup >= args.min_speedup, (
            f"speedup {speedup:.2f}x below floor {args.min_speedup:.2f}x"
        )
        print(
            "determinism checks passed (warm+shm == per-call pools, "
            f"speedup >= {args.min_speedup:.2f}x)"
        )
        if telemetry is not None:
            assert telemetry["overhead"] <= args.max_overhead, (
                f"telemetry overhead {telemetry['overhead']:+.1%} above "
                f"{args.max_overhead:.0%} budget"
            )
            print(
                f"telemetry overhead within budget "
                f"(<= {args.max_overhead:.0%})"
            )

    entry = {
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(),
        "scale": args.scale,
        "jobs": args.jobs,
        "reps": args.reps,
        "checked": bool(args.check),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "timings_s": {"fresh": fresh_s, "warm": warm_s},
        "speedup": speedup,
        "telemetry": telemetry,
        "warm_counters": {
            "pools_created": counters.get("parallel.pool.created", 0),
            "pools_reused": pools_reused,
            "pools_invalidated": counters.get(
                "parallel.pool.invalidated", 0
            ),
            "shm_segments": counters.get("parallel.shm.segments", 0),
            "shm_bytes": counters.get("parallel.shm.bytes", 0),
            "shm_dedup_hits": counters.get("parallel.shm.hits", 0),
            "worker_payload_hits": payload_hits,
        },
    }
    out = Path(args.out)
    history = []
    if out.exists():
        try:
            history = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"trajectory appended to {out} ({len(history)} runs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
