"""Perf harness for the cell characterization kernel (docs/performance.md).

Times the :class:`~repro.sram.fastcell.FastCell` kernel variants on the
characterize stage -- the seed per-role exact kernel, the fused exact
kernel, early-exit integration, and the tabulated I-V backend that is
the current default -- and appends one run entry to a
``BENCH_characterize.json`` trajectory artifact so the speedups can be
tracked across commits.

Usage (CI runs the tiny scale)::

    PYTHONPATH=src python benchmarks/perf/bench_characterize.py \
        --scale tiny --check --out BENCH_characterize.json

``--check`` asserts the kernel contracts: fused, early-exit, settle
hoisting, and batch chunking reproduce the seed exact kernel
*bit-identically*; the tabulated backend stays within the documented
``max |dPOF| <= 0.01`` accuracy budget; and the default configuration
(tabulated + early exit) beats the seed kernel by at least
``--min-speedup`` (3x by default, the PR acceptance bar).
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.sram import CharacterizationConfig, SramCellDesign, characterize_cell

SCALES = {
    # (supply sweep, charge points, variation samples, pair/triple caps)
    "tiny": dict(
        vdd_list=(0.7, 0.9),
        n_charge_points=9,
        n_samples=8,
        max_pair_points=4,
        max_triple_points=3,
        seed=5,
    ),
    "small": dict(
        vdd_list=(0.7, 0.9, 1.1),
        n_charge_points=13,
        n_samples=50,
        max_pair_points=5,
        max_triple_points=4,
        seed=5,
    ),
    "full": dict(),  # the paper-scale CharacterizationConfig defaults
}

#: The benched kernel variants, as CharacterizationConfig overrides.
#: "seed" replicates the pre-kernel-rework hot loop (per-role exact
#: model calls, full horizon, per-task settle); "default" is the
#: shipped configuration.  The single-feature variants isolate each
#: contract asserted by ``--check``.
VARIANTS = {
    "seed": dict(kernel="exact", early_exit=False, hoist_settle=False),
    "fused": dict(kernel="fused", early_exit=False, hoist_settle=False),
    "hoist": dict(kernel="exact", early_exit=False, hoist_settle=True),
    # max_batch is filled in per scale (4 grid points per chunk) so the
    # chunk loop genuinely engages without degenerating to per-point
    # batches at large sample counts
    "chunked": dict(kernel="exact", early_exit=False, hoist_settle=False),
    "early_exit": dict(kernel="fused", early_exit=True, hoist_settle=False),
    "default": dict(),  # tabulated + early exit + hoisted settle
}

#: Accuracy budget of the tabulated backend versus the exact kernel.
POF_TOLERANCE = 0.01


def _time(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _max_pof_dev(a, b) -> float:
    return max(
        float(np.max(np.abs(a.pof[combo] - b.pof[combo]))) for combo in a.pof
    )


def _assert_identical(a, b, label: str) -> None:
    for combo in a.pof:
        assert np.array_equal(a.pof[combo], b.pof[combo]), (
            f"{label}: POF grid of combo {combo} is not bit-identical"
        )


def bench_characterize(scale, check, min_speedup):
    design = SramCellDesign()
    timings, tables = {}, {}
    n_samples = CharacterizationConfig(**scale).n_samples
    for name, overrides in VARIANTS.items():
        if name == "chunked":
            overrides = dict(overrides, max_batch=4 * n_samples)
        config = CharacterizationConfig(**scale, **overrides)
        table, seconds = _time(
            lambda: characterize_cell(design, config, n_jobs=1)
        )
        timings[name] = seconds
        tables[name] = table

    if check:
        seed = tables["seed"]
        _assert_identical(tables["fused"], seed, "fused kernel")
        _assert_identical(tables["hoist"], seed, "settle hoisting")
        _assert_identical(tables["chunked"], seed, "max_batch chunking")
        _assert_identical(tables["early_exit"], seed, "early exit")
        dev = _max_pof_dev(tables["default"], seed)
        assert dev <= POF_TOLERANCE, (
            f"tabulated kernel max |dPOF| {dev:.4f} exceeds the "
            f"{POF_TOLERANCE} budget"
        )
        speedup = timings["seed"] / timings["default"]
        assert speedup >= min_speedup, (
            f"default kernel speedup {speedup:.2f}x below the "
            f"{min_speedup:.1f}x floor (seed {timings['seed']:.3f}s, "
            f"default {timings['default']:.3f}s)"
        )
    return timings, _max_pof_dev(tables["default"], tables["seed"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="problem size (tiny = CI smoke, full = paper scale)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert the kernel equality/accuracy/speedup contracts",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="--check floor for default-vs-seed speedup (default: 3.0)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_characterize.json",
        help="trajectory artifact to append this run to",
    )
    args = parser.parse_args(argv)
    scale = SCALES[args.scale]

    print(f"scale={args.scale} check={args.check}")
    timings, tab_dev = bench_characterize(scale, args.check, args.min_speedup)
    seed = timings["seed"]
    for name in VARIANTS:
        print(
            f"{name:>11s}  {timings[name]:.3f}s"
            f"  ({seed / timings[name]:.2f}x vs seed)"
        )
    print(f"tabulated max |dPOF| vs exact: {tab_dev:.4f}")
    if args.check:
        print(
            "kernel contracts passed (fused/hoist/chunked/early-exit "
            f"bit-identical, |dPOF| <= {POF_TOLERANCE}, "
            f">= {args.min_speedup:.1f}x)"
        )

    entry = {
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(),
        "scale": args.scale,
        "checked": bool(args.check),
        "min_speedup": args.min_speedup,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "timings_s": timings,
        "speedup_default_vs_seed": seed / timings["default"],
        "tabulated_max_pof_dev": tab_dev,
    }
    out = Path(args.out)
    history = []
    if out.exists():
        try:
            history = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"trajectory appended to {out} ({len(history)} runs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
