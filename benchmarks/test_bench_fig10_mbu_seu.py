"""Figure 10: MBU/SEU ratio vs supply voltage.

Published claims checked here:

* alpha MBU/SEU (~6-7% in the paper) is much larger than proton
  MBU/SEU (< 2%);
* the alpha ratio stays within a narrow band across Vdd while the
  proton ratio is small everywhere.
"""

import numpy as np

from conftest import print_series
from repro.analysis import fig10_mbu_seu


def test_fig10_mbu_seu(sweep, benchmark):
    series_map = benchmark(fig10_mbu_seu, sweep)
    print_series("Fig 10: MBU/SEU [%] vs Vdd", list(series_map.values()))

    alpha = series_map["alpha"].y  # percent
    proton = series_map["proton"].y

    # alpha: a few percent at every Vdd, in the paper's 2-10% band
    assert np.all(alpha > 1.0)
    assert np.all(alpha < 15.0)
    assert alpha[0] > 3.0  # strongest at the lowest Vdd

    # proton: below 2% everywhere (the paper's bound)
    assert np.all(proton < 2.0)

    # the species gap: alpha ratio larger at the operating point(s)
    # where the proton statistics are meaningful
    assert alpha[0] > 3.0 * max(proton[0], 1e-9)
