"""Figure 8: normalized array POF vs particle energy at Vdd 0.7/0.8 V.

The paper's claims on this figure:

* POF(alpha) >> POF(proton) at the same energy ("much larger");
* POF decreases toward higher energies (fewer electron-hole pairs);
* POF increases as Vdd drops, for both species.
"""

import numpy as np

from conftest import print_series
from repro.analysis import fig8_pof_vs_energy


def test_fig8_pof_vs_energy(flow, benchmark):
    energies = np.array([0.5, 1.0, 3.0, 10.0, 30.0, 100.0])

    def compute():
        return fig8_pof_vs_energy(
            flow, vdd_values=(0.7, 0.8), energies_mev=energies,
            n_particles=30000,
        )

    series_map = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("Fig 8: normalized POF vs energy", list(series_map.values()))

    alpha_07 = series_map[("alpha", 0.7)].y
    alpha_08 = series_map[("alpha", 0.8)].y
    proton_07 = series_map[("proton", 0.7)].y
    proton_08 = series_map[("proton", 0.8)].y

    # alpha dominates proton at every common energy where either is active
    active = alpha_07 > 0
    assert np.all(alpha_07[active] >= proton_07[active])
    assert np.mean(alpha_07[active] / np.maximum(proton_07[active], 1e-9)) > 5.0

    # POF falls toward high energy (compare the 1 MeV region to 100 MeV)
    assert alpha_07[1] > alpha_07[-1]
    assert proton_07[1] >= proton_07[-1]

    # lower Vdd -> higher POF (integrated over the scan)
    assert alpha_07.sum() >= alpha_08.sum()
    assert proton_07.sum() >= proton_08.sum()

    # proton POF is the more Vdd-sensitive of the two (paper Section 6)
    alpha_sensitivity = alpha_07.sum() / max(alpha_08.sum(), 1e-12)
    proton_sensitivity = proton_07.sum() / max(proton_08.sum(), 1e-12)
    assert proton_sensitivity >= alpha_sensitivity
