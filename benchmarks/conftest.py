"""Shared fixtures for the figure-reproduction benchmarks.

Every benchmark regenerates one table/figure of the paper's evaluation
section at a laptop scale (the paper used 1e7 MC trials per point; the
benches default to a few 1e4, which reproduces every *shape* the paper
reports -- see EXPERIMENTS.md for the measured outcomes).

Expensive artifacts (yield LUTs, POF tables) are cached on disk under
``benchmarks/.bench-cache`` so repeated benchmark runs only pay the
array-MC cost.
"""

from pathlib import Path

import numpy as np
import pytest

from repro import FlowConfig, SerFlow
from repro.sram import CharacterizationConfig

CACHE_DIR = str(Path(__file__).parent / ".bench-cache")

#: Scaled-down evaluation campaign shared by the FIT benches.
BENCH_VDD_LIST = (0.7, 0.8, 0.9, 1.0, 1.1)
BENCH_MC_PARTICLES = 30000
BENCH_ENERGY_BINS = 5


def make_flow_config(**overrides):
    """The benchmark campaign configuration."""
    base = dict(
        vdd_list=BENCH_VDD_LIST,
        yield_trials_per_energy=10000,
        characterization=CharacterizationConfig(
            n_samples=150, n_charge_points=25
        ),
        mc_particles_per_bin=BENCH_MC_PARTICLES,
        n_energy_bins=BENCH_ENERGY_BINS,
        seed=2014,
    )
    base.update(overrides)
    return FlowConfig(**base)


@pytest.fixture(scope="session")
def flow():
    """A flow with warm LUT caches shared by all benches."""
    instance = SerFlow(make_flow_config(), cache_dir=CACHE_DIR)
    # warm the expensive artifacts once, outside any timing loop
    instance.yield_luts()
    instance.pof_table()
    return instance


@pytest.fixture(scope="session")
def sweep(flow):
    """The full Fig. 9/10 sweep, computed once per session."""
    return flow.sweep()


def print_series(title, series_list):
    """Render labeled (x, y) series as an aligned text table."""
    print(f"\n{title}")
    for series in series_list:
        print(f"  [{series.label}]")
        for x, y in zip(series.x, series.y):
            print(f"    {x:12.5g}  {y:12.5g}")
