"""Future-work extension bench: neutron vs charged-particle SER.

The paper defers neutron (indirect ionization) SER to future work; the
library implements it.  This bench regenerates the species comparison
and asserts the physics the literature predicts for SOI FinFETs:

* the neutron FIT rate sits orders of magnitude below the alpha rate
  (tiny sensitive volume -- the paper's reference [12] narrative);
* unlike the charged species, the neutron rate is nearly flat in Vdd
  (every nuclear reaction deposits far more than Qcrit).
"""

import numpy as np
import pytest

from repro.ser import neutron_fit


def test_neutron_vs_charged_species(flow, sweep, benchmark):
    def compute():
        rng = np.random.default_rng(77)
        return {
            vdd: neutron_fit(
                flow.layout(), flow.pof_table(), vdd, 20000, rng, n_bins=4
            )
            for vdd in (0.7, 1.1)
        }

    neutron = benchmark.pedantic(compute, rounds=1, iterations=1)

    alpha_07 = sweep.get("alpha", 0.7).fit_total
    alpha_11 = sweep.get("alpha", 1.1).fit_total
    n_07 = neutron[0.7].fit_total
    n_11 = neutron[1.1].fit_total

    print("\nNeutron extension: FIT normalized to alpha @0.7V")
    for vdd, n_fit, a_fit in ((0.7, n_07, alpha_07), (1.1, n_11, alpha_11)):
        print(
            f"  vdd={vdd:.1f}: alpha={a_fit / alpha_07:.4f} "
            f"neutron={n_fit / alpha_07:.5f}"
        )

    # SOI FinFET: neutron SER far below alpha SER
    assert n_07 > 0.0
    assert n_07 < 0.2 * alpha_07
    # reaction-rate limited: weak Vdd dependence vs alpha's decline
    neutron_slope = n_07 / max(n_11, 1e-12)
    alpha_slope = alpha_07 / max(alpha_11, 1e-12)
    assert neutron_slope < alpha_slope
    assert neutron_slope == pytest.approx(1.0, abs=0.5)
