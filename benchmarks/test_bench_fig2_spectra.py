"""Figure 2: ground-level particle spectra.

Regenerates (a) the sea-level differential proton intensity and (b) the
package alpha emission spectrum, and checks the published properties:
monotone-decreasing proton intensity spanning ~12 decades over
1-1e7 MeV, and an alpha spectrum supported below 10 MeV normalized to
0.001 alpha/(cm^2 h).
"""

import numpy as np

from conftest import print_series
from repro.analysis import (
    fig2a_proton_spectrum,
    fig2b_alpha_spectrum,
    is_monotone_decreasing,
)


def test_fig2a_proton_spectrum(benchmark):
    series = benchmark(fig2a_proton_spectrum, 60)
    print_series("Fig 2(a): proton intensity [1/(m^2 s sr MeV)]", [series])

    assert is_monotone_decreasing(series.y)
    # the published figure spans ~1e-2 down to 1e-14
    assert series.y.max() >= 1e-2 * 0.5
    assert series.y[series.y > 0].min() <= 1e-13
    decades = np.log10(series.y.max() / series.y[series.y > 0].min())
    assert decades >= 11.0


def test_fig2b_alpha_spectrum(benchmark):
    series = benchmark(fig2b_alpha_spectrum, 300)
    print_series("Fig 2(b): alpha emission [1/(cm^2 s MeV)]", [series])

    total = np.trapezoid(series.y, series.x)
    # paper assumption: 0.001 alpha / (cm^2 h)
    assert total == np.float64(total)
    assert abs(total - 0.001 / 3600.0) / (0.001 / 3600.0) < 0.05
    # support confined below 10 MeV with the main activity at 4-9 MeV
    line_region = series.y[(series.x > 4.0) & (series.x < 9.0)].mean()
    low_region = series.y[(series.x > 0.1) & (series.x < 2.0)].mean()
    assert line_region > low_region
