"""Figure 4: normalized electron yield per fin crossing vs energy.

Regenerates the device-level LUT curves for alpha and proton and checks
the published shape: the alpha curve sits above the proton curve across
1-100 MeV (roughly an order of magnitude), and both fall with energy
above their Bragg peaks.
"""

import numpy as np

from conftest import print_series
from repro.analysis import fig4_electron_yield, is_monotone_decreasing


def test_fig4_electron_yield(flow, benchmark):
    luts = flow.yield_luts()
    alpha_series, proton_series = benchmark(fig4_electron_yield, luts)
    print_series(
        "Fig 4: normalized electron yield per fin crossing",
        [alpha_series, proton_series],
    )

    # common energy region of the two LUTs (alpha grid stops at 10 MeV)
    common = (proton_series.x >= alpha_series.x[0]) & (
        proton_series.x <= alpha_series.x[-1]
    )
    proton_on_alpha = np.interp(
        np.log(alpha_series.x), np.log(proton_series.x), proton_series.y
    )

    # paper: alpha generates far more charge at the same energy
    ratio = alpha_series.y / np.maximum(proton_on_alpha, 1e-12)
    assert np.all(ratio[alpha_series.x >= 1.0] > 3.0)
    assert np.max(ratio) > 6.0

    # paper: yield falls with energy above the Bragg peak
    above_peak_alpha = alpha_series.x >= 1.0
    assert is_monotone_decreasing(
        alpha_series.y[above_peak_alpha], tolerance=0.02
    )
    above_peak_proton = proton_series.x >= 1.0
    assert is_monotone_decreasing(
        proton_series.y[above_peak_proton], tolerance=0.02
    )
