"""Section 4 experiment: POF is set by charge, not pulse width/shape.

The paper: "POFs have no sensitivity to the current pulse width" and
the rectangular-vs-triangular shape effect "is still negligible".  This
bench sweeps charge through the flip threshold with rectangular,
triangular, and double-exponential pulses at three widths (1x, 10x,
100x the transit time) on the full MNA engine and counts disagreements
with the rectangular reference.
"""

import numpy as np

from repro import SramCellDesign
from repro.circuit import make_strike_time_grid, pulse_from_charge, run_transient
from repro.sram.qcrit import nominal_critical_charge_c


def run_matrix(design, vdd, charges, shapes, widths):
    outcomes = {}
    for charge in charges:
        for shape in shapes:
            for width in widths:
                wave = pulse_from_charge(shape, charge, width, delay_s=1e-12)
                circuit = design.build_circuit(
                    vdd, strike_waveforms={0: wave}
                )
                times = make_strike_time_grid(1e-12, width, 6e-11)
                result = run_transient(
                    circuit,
                    times,
                    initial_conditions=design.hold_state_guess(vdd),
                )
                outcomes[(charge, shape, width)] = (
                    result.final_voltage("q") < result.final_voltage("qb")
                )
    return outcomes


def test_sec4_pulse_shape_invariance(benchmark):
    design = SramCellDesign()
    vdd = 0.8
    qcrit = nominal_critical_charge_c(design, vdd)
    tau = design.tech.transit_time_s(vdd)

    charges = np.array([0.6, 0.8, 1.2, 1.6]) * qcrit
    shapes = ("rect", "triangle", "dexp")
    widths = (tau, 10 * tau, 100 * tau)

    outcomes = benchmark.pedantic(
        run_matrix,
        args=(design, vdd, charges, shapes, widths),
        rounds=1,
        iterations=1,
    )

    print("\nSec 4: flip outcome vs (charge, shape, width)")
    disagreements = 0
    for charge in charges:
        reference = outcomes[(charge, "rect", widths[0])]
        row = [f"q={charge / qcrit:.2f}*Qcrit"]
        for shape in shapes:
            for width in widths:
                flip = outcomes[(charge, shape, width)]
                row.append("FLIP" if flip else "hold")
                if flip != reference:
                    disagreements += 1
        print("  " + "  ".join(row))

    total = len(charges) * len(shapes) * len(widths)
    print(f"  disagreements vs rect@tau reference: {disagreements}/{total}")

    # charge decides: well-below never flips, well-above always flips,
    # for every shape and width
    for shape in shapes:
        for width in widths:
            assert not outcomes[(charges[0], shape, width)]
            assert outcomes[(charges[-1], shape, width)]

    # the paper's "negligible" sensitivity: allow boundary cases only
    assert disagreements <= max(2, total // 10)
