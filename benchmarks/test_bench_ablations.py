"""Ablation benches for the design choices DESIGN.md calls out.

* charge-deposition mode: paper-faithful ``lut`` hand-off vs fully
  geometry-consistent ``direct`` chords;
* stored data pattern: uniform vs checkerboard;
* alpha arrival law: isotropic package emission vs cosine law;
* array margin: tracks entering from outside the array footprint.
"""

import numpy as np
import pytest

from repro import get_particle
from repro.layout import CellLayout, SramArrayLayout
from repro.ser import ArrayMcConfig, ArraySerSimulator


@pytest.fixture(scope="module")
def alpha():
    return get_particle("alpha")


def _layout(flow, pattern="uniform"):
    return SramArrayLayout(
        9,
        9,
        CellLayout(
            fin=flow.design.tech.fin,
            collection_length_nm=flow.design.tech.collection_length_nm,
        ),
        data_pattern=pattern,
    )


def test_ablation_deposition_mode(flow, alpha, benchmark):
    """lut vs direct deposition at one (energy, vdd) point."""

    def run_both():
        results = {}
        for mode in ("lut", "direct"):
            sim = ArraySerSimulator(
                _layout(flow),
                flow.pof_table(),
                yield_luts=flow.yield_luts(),
                config=ArrayMcConfig(deposition_mode=mode),
            )
            results[mode] = sim.run(
                alpha, 2.0, 0.7, 40000, np.random.default_rng(5)
            )
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lut_pof = results["lut"].pof_total_given_hit
    direct_pof = results["direct"].pof_total_given_hit
    print(
        f"\nAblation deposition mode @2MeV/0.7V: "
        f"lut POF|hit={lut_pof:.4f}, direct POF|hit={direct_pof:.4f}, "
        f"lut MBU/SEU={100 * results['lut'].mbu_to_seu_ratio:.2f}%, "
        f"direct MBU/SEU={100 * results['direct'].mbu_to_seu_ratio:.2f}%"
    )
    # the paper-faithful hand-off and the consistent-geometry variant
    # must agree on the total POF to within a small factor
    assert 0.25 < lut_pof / direct_pof < 4.0


def test_ablation_data_pattern(flow, alpha, benchmark):
    """Uniform vs checkerboard stored data."""

    def run_both():
        results = {}
        for pattern in ("uniform", "checkerboard"):
            sim = ArraySerSimulator(
                _layout(flow, pattern),
                flow.pof_table(),
                yield_luts=flow.yield_luts(),
            )
            results[pattern] = sim.run(
                alpha, 2.0, 0.7, 40000, np.random.default_rng(6)
            )
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    uni = results["uniform"]
    chk = results["checkerboard"]
    print(
        f"\nAblation data pattern @2MeV/0.7V: "
        f"uniform POF|hit={uni.pof_total_given_hit:.4f} "
        f"MBU/SEU={100 * uni.mbu_to_seu_ratio:.2f}% | "
        f"checkerboard POF|hit={chk.pof_total_given_hit:.4f} "
        f"MBU/SEU={100 * chk.mbu_to_seu_ratio:.2f}%"
    )
    # the per-cell sensitive count is identical, so total POF must be
    # pattern-insensitive to first order
    assert uni.pof_total_given_hit == pytest.approx(
        chk.pof_total_given_hit, rel=0.3
    )


def test_ablation_direction_law(flow, alpha, benchmark):
    """Isotropic package alphas vs a (hypothetical) cosine arrival."""

    def run_both():
        results = {}
        for law in ("isotropic", "cosine"):
            sim = ArraySerSimulator(
                _layout(flow),
                flow.pof_table(),
                yield_luts=flow.yield_luts(),
                config=ArrayMcConfig(direction_laws={"alpha": law}),
            )
            results[law] = sim.run(
                alpha, 2.0, 0.7, 40000, np.random.default_rng(7)
            )
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    iso = results["isotropic"]
    cos = results["cosine"]
    print(
        f"\nAblation direction law @2MeV/0.7V: "
        f"isotropic MBU/SEU={100 * iso.mbu_to_seu_ratio:.2f}% | "
        f"cosine MBU/SEU={100 * cos.mbu_to_seu_ratio:.2f}%"
    )
    # grazing-track-rich isotropic emission drives multi-cell upsets
    assert iso.mbu_to_seu_ratio > cos.mbu_to_seu_ratio


def test_ablation_margin(flow, alpha, benchmark):
    """Zero vs default launch margin: side-entering tracks matter."""

    def run_both():
        results = {}
        for margin in (0.0, 100.0):
            sim = ArraySerSimulator(
                _layout(flow),
                flow.pof_table(),
                yield_luts=flow.yield_luts(),
                config=ArrayMcConfig(margin_nm=margin),
            )
            results[margin] = sim.run(
                alpha, 2.0, 0.7, 40000, np.random.default_rng(8)
            )
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(
        f"\nAblation margin @2MeV/0.7V: "
        f"0nm MBU/SEU={100 * results[0.0].mbu_to_seu_ratio:.2f}% | "
        f"100nm MBU/SEU={100 * results[100.0].mbu_to_seu_ratio:.2f}%"
    )
    # both must see strikes; the margin version launches over a larger
    # window so its per-launch POF is diluted but FIT-normalization
    # compensates via the larger area (checked in unit tests)
    assert results[0.0].n_fin_strikes > 0
    assert results[100.0].n_fin_strikes > 0
