"""Figure 9: normalized FIT rate vs supply voltage.

Published claims checked here:

* total SER increases as Vdd drops, for both species;
* proton SER is comparable to alpha SER at Vdd = 0.7 V (within the
  same order of magnitude) but negligible against it at 1.1 V;
* proton SER falls with Vdd at an extremely higher rate than alpha SER.
"""

import numpy as np

from conftest import print_series
from repro.analysis import fig9_fit_vs_vdd, is_monotone_decreasing


def test_fig9_fit_vs_vdd(sweep, benchmark):
    series_map = benchmark(fig9_fit_vs_vdd, sweep)
    print_series("Fig 9: normalized FIT vs Vdd", list(series_map.values()))

    alpha = series_map["alpha"].y
    proton = series_map["proton"].y

    # SER rises at low Vdd (monotone within MC noise)
    assert alpha[0] == max(alpha)
    assert is_monotone_decreasing(alpha, tolerance=0.05 * alpha[0])
    assert proton[0] == max(proton)

    # comparable at 0.7 V: within one order of magnitude
    assert proton[0] / alpha[0] > 0.05
    # negligible at 1.1 V: at least ~10x below alpha
    assert proton[-1] / max(alpha[-1], 1e-12) < 0.3

    # proton falls much faster than alpha across the sweep
    alpha_drop = alpha[0] / max(alpha[-1], 1e-12)
    proton_drop = proton[0] / max(proton[-1], 1e-12)
    assert proton_drop > 3.0 * alpha_drop
    assert proton_drop > 30.0
