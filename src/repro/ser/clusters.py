"""Spatial structure of multi-cell upsets.

The MBU *rate* (paper Fig. 10) says how often two or more cells fail
together; protecting a memory additionally needs the failing cells'
*relative positions* -- bit interleaving only defeats an MBU whose
members land in the same logical word.  This module extracts the
expected count of jointly-failing cell pairs by (|delta_row|,
|delta_col|) offset from an array Monte Carlo campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from ..layout import SramArrayLayout
from ..physics import ParticleType, sample_rays
from .mc import ArraySerSimulator


@dataclass
class PairOffsetStatistics:
    """Expected jointly-failing pair counts by relative offset.

    Attributes
    ----------
    expected_pairs:
        Map ``(|d_row|, |d_col|)`` -> expected number of unordered
        failing pairs with that offset, per launched particle.
    n_particles:
        Campaign size the expectation is normalized by.
    """

    expected_pairs: Dict[Tuple[int, int], float] = field(default_factory=dict)
    n_particles: int = 0

    @property
    def total_pair_rate(self) -> float:
        """Expected failing pairs per launched particle (any offset)."""
        return float(sum(self.expected_pairs.values()))

    def same_row_rate(self) -> float:
        """Pairs with d_row = 0 (the word-interleaving-relevant ones)."""
        return float(
            sum(v for (dr, _), v in self.expected_pairs.items() if dr == 0)
        )

    def same_column_rate(self) -> float:
        """Pairs with d_col = 0."""
        return float(
            sum(v for (_, dc), v in self.expected_pairs.items() if dc == 0)
        )

    def max_column_extent(self) -> int:
        """Largest |d_col| with appreciable pair mass (>= 1% of total)."""
        total = self.total_pair_rate
        if total <= 0:
            return 0
        return max(
            (dc for (_, dc), v in self.expected_pairs.items() if v >= 0.01 * total),
            default=0,
        )


def collect_pair_offsets(
    simulator: ArraySerSimulator,
    particle: ParticleType,
    energy_mev: float,
    vdd_v: float,
    n_particles: int,
    rng: np.random.Generator,
) -> PairOffsetStatistics:
    """Run a campaign and accumulate failing-pair offset expectations.

    For each MC event with per-cell failure probabilities ``p_i``, every
    unordered cell pair contributes ``p_i * p_j`` expected joint
    failures (independence across cells given the deposit, as in the
    paper's eqs. 4-6).
    """
    if n_particles < 1:
        raise ConfigError("need at least one particle")
    layout = simulator.layout
    n_cols = layout.n_cols

    x_range, y_range, z, _ = layout.launch_window(simulator.config.margin_nm)
    law = simulator.config.law_for(particle.name)

    code_parts = []
    value_parts = []
    remaining = n_particles
    while remaining > 0:
        batch = min(remaining, simulator.config.chunk_size)
        remaining -= batch
        rays = sample_rays(batch, rng, x_range, y_range, z, law)
        pof_cells = _event_cell_pofs(simulator, particle, energy_mev, vdd_v, rays, rng)
        if pof_cells is None:
            continue
        stream = _pair_streams(pof_cells, n_cols)
        if stream is not None:
            code_parts.append(stream[0])
            value_parts.append(stream[1])

    if not code_parts:
        return PairOffsetStatistics({}, n_particles)
    # one unbuffered scatter-add over the concatenated streams: adds
    # land per key in encounter order, so every offset's accumulated
    # float is bit-identical to the historical dict loop's
    codes = np.concatenate(code_parts)
    values = np.concatenate(value_parts)
    unique_codes, first_pos, inverse = np.unique(
        codes, return_index=True, return_inverse=True
    )
    acc = np.zeros(len(unique_codes), dtype=np.float64)
    np.add.at(acc, inverse, values)
    normalized = {
        (int(unique_codes[i] // n_cols), int(unique_codes[i] % n_cols)): float(
            acc[i]
        )
        / n_particles
        for i in np.argsort(first_pos, kind="stable")
    }
    return PairOffsetStatistics(normalized, n_particles)


def _pair_streams(pof_cells, n_cols: int):
    """Offset codes and joint probabilities of one batch's failing pairs.

    Returns ``(codes, values)`` where ``codes[i] = |d_row| * n_cols +
    |d_col|`` and ``values[i] = p_a * p_b`` for the ``i``-th unordered
    pair, or ``None`` when the batch has no multi-cell event.  Pairs
    come out in the exact order of the historical per-event nested
    loop -- events ascending, then ``a``-major / ``b``-ascending
    within each event (``np.nonzero`` is row-major, so its flat
    element order *is* that order) -- which is what keeps the
    vectorized accumulation bit-identical (see
    ``tests/test_backend.py``).
    """
    event_idx, cell_idx = np.nonzero(pof_cells)
    n_el = len(event_idx)
    if n_el == 0:
        return None
    # segmented a<b pair expansion over the per-event runs
    seg_starts = np.flatnonzero(np.r_[True, event_idx[1:] != event_idx[:-1]])
    sizes = np.diff(np.append(seg_starts, n_el))
    seg_of = np.repeat(np.arange(len(seg_starts)), sizes)
    local = np.arange(n_el) - seg_starts[seg_of]
    partners = sizes[seg_of] - 1 - local
    n_pairs = int(partners.sum())
    if n_pairs == 0:
        return None
    a_idx = np.repeat(np.arange(n_el), partners)
    run_starts = np.cumsum(partners) - partners
    b_idx = a_idx + 1 + (np.arange(n_pairs) - np.repeat(run_starts, partners))

    probs = pof_cells[event_idx, cell_idx]
    rows = cell_idx // n_cols
    cols = cell_idx % n_cols
    d_row = np.abs(rows[a_idx] - rows[b_idx])
    d_col = np.abs(cols[a_idx] - cols[b_idx])
    return d_row * n_cols + d_col, probs[a_idx] * probs[b_idx]


def _accumulate_pairs_loop(pof_cells, n_cols: int, offsets) -> None:
    """The pre-vectorization per-event pair loop, verbatim.

    Kept as the reference implementation for the bit-identity
    regression test of :func:`_pair_streams`; not used on any hot
    path.
    """
    event_idx, cell_idx = np.nonzero(pof_cells)
    for event in np.unique(event_idx):
        cells = cell_idx[event_idx == event]
        if len(cells) < 2:
            continue
        probs = pof_cells[event, cells]
        rows, cols = cells // n_cols, cells % n_cols
        for a in range(len(cells)):
            for b in range(a + 1, len(cells)):
                key = (
                    int(abs(rows[a] - rows[b])),
                    int(abs(cols[a] - cols[b])),
                )
                offsets[key] = offsets.get(key, 0.0) + float(
                    probs[a] * probs[b]
                )


def _event_cell_pofs(simulator, particle, energy_mev, vdd_v, rays, rng):
    """Per-event per-cell POF matrix for a ray batch (or None).

    Mirrors :meth:`ArraySerSimulator._process_batch` up to the POF
    matrix; kept separate so the hot main path stays lean.
    """
    from ..constants import ELEMENTARY_CHARGE_C
    from ..geometry import chord_lengths

    chords = chord_lengths(rays, simulator._sensitive_boxes)
    event_rows = np.nonzero(np.any(chords > 0.0, axis=1))[0]
    if len(event_rows) == 0:
        return None
    sub = chords[event_rows] > 0.0
    ray_idx, fin_idx = np.nonzero(sub)
    chord_vals = chords[event_rows][ray_idx, fin_idx]

    strike_energies = np.full_like(chord_vals, energy_mev)
    pairs = simulator._pairs_for_strikes(
        particle, strike_energies, chord_vals, rng
    )
    charges = pairs * ELEMENTARY_CHARGE_C

    n_events = len(event_rows)
    cell_of = simulator._sens_cell[fin_idx]
    strike_of = simulator._sens_strike[fin_idx]
    charge_tensor = np.zeros(
        (n_events, simulator.layout.n_cells, 3), dtype=np.float64
    )
    np.add.at(charge_tensor, (ray_idx, cell_of, strike_of), charges)

    cell_mask = np.any(charge_tensor > 0.0, axis=2)
    ev_i, cell_i = np.nonzero(cell_mask)
    pof_cells = np.zeros(
        (n_events, simulator.layout.n_cells), dtype=np.float64
    )
    if len(ev_i):
        pof_cells[ev_i, cell_i] = simulator.pof_table.query(
            vdd_v, charge_tensor[ev_i, cell_i, :]
        )
    return pof_cells
