"""Cross-campaign batch fusion for flow-level sweeps.

The classic sweep path runs one :func:`~repro.parallel.parallel_map`
per (particle, energy, Vdd) campaign: dozens of small fan-outs, each
paying its own scheduling round-trip and each re-priming workers and
device backends before the next point's map starts.  Fusion instead
queues *every* draw block of the whole sweep into one
:class:`BatchPlan` and executes them as a single map: draw blocks from
different campaigns share pool tasks, the one broadcast payload (the
simulator, shipped via the :mod:`repro.parallel.shm` plane) serves all
points, and device backends upload the static tables -- I-V surfaces,
POF grids -- once per sweep, keyed on the same
:func:`~repro.parallel.shm.array_fingerprint` sha256 the shared-memory
plane dedupes on.

Determinism is inherited, not re-proven: each point's draw blocks are
the exact :func:`~repro.ser.mc._draw_blocks` partition, each block
consumes the same :func:`~repro.parallel.spawn_seeds` child stream of
the point's campaign seed, and per-point results merge in block order
-- so a fused sweep is bit-identical to the per-campaign path for any
worker count (asserted by ``tests/test_backend.py``).

Fault tolerance: completed pool tasks journal through the standard
array-shard codec so an interrupted fused sweep resumes
bit-identically; any draw block lost past the retry budget raises
:class:`~repro.errors.WorkerCrashError` (the downstream FIT integral
needs every energy bin, so degradation to a partial sweep is not
meaningful here -- same reasoning as ``SerFlow._run_campaigns``).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import WorkerCrashError
from ..obs import get_logger, get_registry, kv
from ..obs.convergence import record_bin
from ..parallel import parallel_map, spawn_seeds
from ..physics import get_particle
from .mc import DRAW_BLOCK_SIZE, ArrayPofResult, _draw_blocks

_log = get_logger(__name__)

__all__ = ["BatchPlan", "CampaignPoint"]


@dataclass(frozen=True)
class CampaignPoint:
    """One (particle, energy, Vdd) campaign queued into a plan."""

    index: int
    particle_name: str
    energy_mev: float
    vdd_v: float
    n_particles: int
    #: Root :class:`numpy.random.SeedSequence` of the campaign -- the
    #: very seed the per-campaign path would hand ``simulator.run``.
    seed: np.random.SeedSequence


def _fused_task(payload, task):
    """Pool worker: run a task's draw blocks (any campaign mix), in order.

    Each unit is ``(particle_name, energy_mev, vdd_v, size, seed)``;
    the per-block payload is rebuilt from the broadcast simulator
    exactly as ``ArraySerSimulator._run_campaign`` would build it, so a
    block computes the identical result regardless of which campaigns
    share its task.
    """
    simulator = payload["simulator"]
    window = simulator.layout.launch_window(simulator.config.margin_nm)
    results = []
    for particle_name, energy_mev, vdd_v, size, seed in task:
        block_payload = {
            "simulator": simulator,
            "particle": get_particle(particle_name),
            "energy_mev": float(energy_mev),
            "vdd_v": float(vdd_v),
            "window": window,
            "law": simulator.config.law_for(particle_name),
            "spectrum": None,
            "e_range": None,
        }
        results.append(simulator._run_block(block_payload, size, seed))
    return results


class BatchPlan:
    """A whole sweep's draw blocks, fused into one parallel map.

    Parameters
    ----------
    simulator:
        The shared :class:`~repro.ser.mc.ArraySerSimulator`.
    points:
        The queued campaigns, in result order.
    n_jobs, retry, journal, warm_pool, shm:
        The usual execution/fault-tolerance knobs of
        :func:`~repro.parallel.parallel_map`; the retry policy is
        forced strict (see module docstring).
    payload:
        Optional pre-packed broadcast payload holding the simulator
        (``SerFlow._campaign_payload``); defaults to a plain dict.
    """

    def __init__(
        self,
        simulator,
        points: Sequence[CampaignPoint],
        *,
        n_jobs: int = 1,
        retry=None,
        journal=None,
        warm_pool: Optional[bool] = None,
        shm: Optional[bool] = None,
        payload=None,
    ):
        self.simulator = simulator
        self.points = list(points)
        self.n_jobs = n_jobs
        self.retry = retry
        self.journal = journal
        self.warm_pool = warm_pool
        self.shm = shm
        self.payload = payload

    def execute(self) -> List[ArrayPofResult]:
        """Run every queued campaign; one merged result per point.

        Results come back in point order, each bit-identical to what
        ``simulator.run(point...)`` would have produced.
        """
        units = []
        block_counts = []
        for point in self.points:
            blocks = _draw_blocks(point.n_particles)
            seeds = spawn_seeds(
                np.random.default_rng(point.seed), len(blocks)
            )
            block_counts.append(len(blocks))
            for size, seed in zip(blocks, seeds):
                units.append(
                    (
                        point.particle_name,
                        float(point.energy_mev),
                        float(point.vdd_v),
                        size,
                        seed,
                    )
                )
        per_task = max(
            1, math.ceil(self.simulator.config.chunk_size / DRAW_BLOCK_SIZE)
        )
        tasks = [
            units[i : i + per_task] for i in range(0, len(units), per_task)
        ]
        total_particles = sum(point.n_particles for point in self.points)

        metrics = get_registry()
        if metrics.enabled:
            metrics.counter("backend.fused_plans").inc()
            metrics.counter("backend.fused_campaigns").inc(len(self.points))
            metrics.counter("backend.fused_blocks").inc(len(units))
        _log.info(
            "fused batch plan %s",
            kv(
                campaigns=len(self.points),
                blocks=len(units),
                tasks=len(tasks),
                particles=total_particles,
            ),
        )

        t0 = time.perf_counter()
        with metrics.time("fused.plan"):
            nested = parallel_map(
                _fused_task,
                tasks,
                payload=(
                    self.payload
                    if self.payload is not None
                    else {"simulator": self.simulator}
                ),
                n_jobs=self.n_jobs,
                label="fused_campaigns",
                retry=self.retry.strict() if self.retry is not None else None,
                journal=self.journal,
                cost_hint_s=2.0e-6 * total_particles / max(len(tasks), 1),
                warm_pool=self.warm_pool,
                shm=self.shm,
            )
            lost = sum(1 for group in nested if group is None)
            if lost:
                raise WorkerCrashError(
                    f"fused sweep lost {lost}/{len(tasks)} pool tasks to "
                    "worker crashes; the FIT integral needs every energy "
                    "bin, so a fused plan cannot degrade"
                )
            flat = [result for group in nested for result in group]
        elapsed = time.perf_counter() - t0

        # per-point merge, in block order -- the same reduction
        # ArraySerSimulator._run_campaign performs on its own blocks
        results = []
        offset = 0
        per_point_elapsed = elapsed / max(len(self.points), 1)
        with metrics.time("array_mc.merge"):
            for point, n_blocks in zip(self.points, block_counts):
                merged = ArrayPofResult.merge(
                    flat[offset : offset + n_blocks]
                )
                offset += n_blocks
                results.append(merged)
                if metrics.enabled:
                    self.simulator._record_run_metrics(
                        metrics,
                        merged.n_particles,
                        merged.n_array_hits,
                        merged.n_fin_strikes,
                        per_point_elapsed,
                    )
                record_bin(
                    "array-mc",
                    trials=int(merged.n_particles),
                    pof=float(merged.pof_total),
                    particle=merged.particle_name,
                    vdd_v=float(merged.vdd_v),
                    energy_mev=float(merged.energy_mev),
                )
        return results
