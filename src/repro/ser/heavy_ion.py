"""Heavy-ion cross-section characterization: sigma(LET) and Weibull fit.

Accelerated SEE testing does not work in (species, energy) coordinates:
beams are specified by their **LET**, and the measured observable is
the per-bit upset cross section versus LET, conventionally fitted with
the cumulative Weibull

    sigma(L) = sigma_sat * (1 - exp(-((L - L0)/W)^s))    for L > L0.

This module runs that virtual experiment on the library's array: a
mono-LET beam (optionally tilted), deposits = LET x chord with
straggling disabled (beam LETs are quoted as effective surface values),
POF from the cell tables, cross section from the launch-window
normalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..constants import ELEMENTARY_CHARGE_C, SILICON_PAIR_ENERGY_EV
from ..errors import ConfigError
from ..geometry import chord_lengths
from ..physics import sample_rays
from ..sram import PofTable
from ..layout import SramArrayLayout
from .pof import combine


@dataclass(frozen=True)
class CrossSectionPoint:
    """One sigma(LET) measurement."""

    let_kev_per_nm: float
    cross_section_cm2_per_bit: float
    pof_per_particle: float
    n_particles: int


@dataclass(frozen=True)
class WeibullFit:
    """Cumulative-Weibull parameters of a sigma(LET) curve.

    Attributes
    ----------
    sigma_sat_cm2:
        Saturation cross section per bit.
    let_threshold:
        Onset LET L0 [keV/nm].
    width / shape:
        Weibull width W and shape s.
    """

    sigma_sat_cm2: float
    let_threshold: float
    width: float
    shape: float

    def evaluate(self, let_kev_per_nm) -> np.ndarray:
        """sigma(LET) from the fitted parameters (vectorized)."""
        let = np.asarray(let_kev_per_nm, dtype=np.float64)
        x = np.maximum(let - self.let_threshold, 0.0) / self.width
        return self.sigma_sat_cm2 * (1.0 - np.exp(-np.power(x, self.shape)))


class HeavyIonCampaign:
    """Mono-LET beam campaigns against one array + POF table."""

    def __init__(
        self,
        layout: SramArrayLayout,
        pof_table: PofTable,
        margin_nm: float = 100.0,
        chunk_size: int = 8192,
    ):
        if margin_nm < 0:
            raise ConfigError("margin cannot be negative")
        self.layout = layout
        self.pof_table = pof_table
        self.margin_nm = float(margin_nm)
        self.chunk_size = int(chunk_size)
        sensitive = layout.fin_strike >= 0
        self._boxes = layout.packed_boxes[sensitive]
        self._cells = layout.fin_cell[sensitive]
        self._strikes = layout.fin_strike[sensitive]

    def run_let(
        self,
        let_kev_per_nm: float,
        vdd_v: float,
        n_particles: int,
        rng: np.random.Generator,
        direction_law: str = "beam:1.0",
    ) -> CrossSectionPoint:
        """Cross section at one LET.

        ``sigma = POF_per_particle * A_launch / n_bits`` -- the upset
        count per unit fluence per bit, exactly how beam data are
        reduced.
        """
        if let_kev_per_nm <= 0:
            raise ConfigError("LET must be positive")
        if n_particles < 1:
            raise ConfigError("need at least one particle")

        x_range, y_range, z, launch_area = self.layout.launch_window(
            self.margin_nm
        )
        charge_per_nm = (
            let_kev_per_nm * 1.0e3 / SILICON_PAIR_ENERGY_EV
        ) * ELEMENTARY_CHARGE_C

        pof_sum = 0.0
        remaining = n_particles
        while remaining > 0:
            batch = min(remaining, self.chunk_size)
            remaining -= batch
            rays = sample_rays(batch, rng, x_range, y_range, z, direction_law)
            chords = chord_lengths(rays, self._boxes)
            event_rows = np.nonzero(np.any(chords > 0.0, axis=1))[0]
            if len(event_rows) == 0:
                continue
            sub = chords[event_rows] > 0.0
            ray_idx, fin_idx = np.nonzero(sub)
            charges = chords[event_rows][ray_idx, fin_idx] * charge_per_nm

            n_events = len(event_rows)
            tensor = np.zeros((n_events, self.layout.n_cells, 3))
            np.add.at(
                tensor,
                (ray_idx, self._cells[fin_idx], self._strikes[fin_idx]),
                charges,
            )
            mask = np.any(tensor > 0.0, axis=2)
            ev_i, cell_i = np.nonzero(mask)
            pof_cells = np.zeros((n_events, self.layout.n_cells))
            pof_cells[ev_i, cell_i] = self.pof_table.query(
                vdd_v, tensor[ev_i, cell_i, :]
            )
            total, _, _ = combine(pof_cells)
            pof_sum += float(np.sum(total))

        pof = pof_sum / n_particles
        sigma = pof * launch_area / self.layout.n_cells
        return CrossSectionPoint(
            let_kev_per_nm=float(let_kev_per_nm),
            cross_section_cm2_per_bit=float(sigma),
            pof_per_particle=float(pof),
            n_particles=n_particles,
        )

    def sweep_let(
        self,
        lets_kev_per_nm: Sequence[float],
        vdd_v: float,
        n_particles: int,
        rng: np.random.Generator,
        direction_law: str = "beam:1.0",
    ):
        """sigma(LET) curve over a LET grid."""
        return [
            self.run_let(float(let), vdd_v, n_particles, rng, direction_law)
            for let in lets_kev_per_nm
        ]


def fit_weibull(points: Sequence[CrossSectionPoint]) -> WeibullFit:
    """Least-squares cumulative-Weibull fit of a sigma(LET) curve.

    Requires at least four points with at least two non-zero cross
    sections (a threshold and a saturation region).
    """
    lets = np.array([p.let_kev_per_nm for p in points])
    sigmas = np.array([p.cross_section_cm2_per_bit for p in points])
    if len(points) < 4:
        raise ConfigError("need >= 4 LET points for a Weibull fit")
    if np.count_nonzero(sigmas) < 2:
        raise ConfigError("need >= 2 non-zero cross sections to fit")

    from scipy.optimize import curve_fit

    # fit in normalized units: raw cross sections are ~1e-11 cm^2,
    # far below the optimizer's default tolerances
    scale = float(np.max(sigmas))
    normalized = sigmas / scale

    nonzero = lets[sigmas > 0]
    zero_below = lets[sigmas == 0]
    l0_guess = float(np.max(zero_below)) if len(zero_below) else float(
        0.5 * np.min(nonzero)
    )

    def model(let, sigma_sat, l0, width, shape):
        x = np.maximum(let - l0, 0.0) / np.maximum(width, 1e-6)
        return sigma_sat * (1.0 - np.exp(-np.power(x, np.maximum(shape, 0.1))))

    let_span = float(np.ptp(lets))
    p0 = [
        1.0,
        min(max(l0_guess, 1e-4), float(np.max(lets))),
        max(let_span / 4, 1e-3),
        1.5,
    ]
    # physical bounds keep the optimizer off the degenerate ridge
    # (negative threshold + huge shape) that sparse sharp-onset data
    # otherwise admits
    bounds = (
        [0.0, 0.0, 1e-4, 0.3],
        [10.0, float(np.max(lets)), 10.0 * let_span, 20.0],
    )
    try:
        popt, _ = curve_fit(
            model, lets, normalized, p0=p0, bounds=bounds, maxfev=20000
        )
    except RuntimeError as exc:
        raise ConfigError(f"Weibull fit did not converge: {exc}") from exc
    sigma_sat, l0, width, shape = popt
    return WeibullFit(
        sigma_sat_cm2=float(abs(sigma_sat)) * scale,
        let_threshold=float(l0),
        width=float(abs(width)),
        shape=float(abs(shape)),
    )
