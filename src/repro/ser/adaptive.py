"""Adaptive trial allocation + variance-reduced sampling (docs/performance.md).

The uniform campaigns of :class:`~repro.ser.mc.ArraySerSimulator` spend
the same number of trials on every (particle, energy, Vdd) bin whether
its POF estimate converged after 4k draws or needs 400k.  This module
closes the loop with the live convergence plane of PR 6: an
:class:`AdaptiveCampaignController` runs a small uniform *pilot* round
across all bins, then repeatedly allocates the next batch of
:data:`~repro.ser.mc.DRAW_BLOCK_SIZE` draw blocks to the bins with the
largest predicted standard-error reduction (discrete Neyman allocation
on the binomial variance, :func:`repro.analysis.convergence.allocate_blocks`),
stopping per bin once :func:`~repro.analysis.convergence.pof_standard_error`
reaches the caller's ``target_se`` or a hard trial ceiling.

Two variance-reduction layers ride on top of the allocation, both
implemented as *stratified sampling* so the strike kernels stay
untouched and the estimator is exactly unbiased by construction:

* **Position strata** -- the launch window is split into a ``core``
  rectangle (the bounding box of the sensitive fins plus a halo) and
  the surrounding ``frame``.  Each draw block samples one stratum
  uniformly; :meth:`~repro.ser.mc.ArrayPofResult.merge` recombines the
  conditional means as ``sum_s w_s * mean_s`` with ``w_s`` the exact
  area fractions.  Allocation then concentrates blocks on the core,
  where nearly all the variance lives.
* **Energy strata** (spectrum campaigns) -- the energy band is split
  into log-spaced sub-bands weighted by their integral-flux mass, and
  the pilot's POF(E) gradient tilts allocation toward sub-bands where
  POF is steep (importance *concentration*; the weights, and therefore
  the estimate, never depend on how many draws a sub-band received).

Determinism/resume contract: every round's draw blocks consume spawned
children of the bin's root seed in (bin, stratum, block) order, round
results are journaled per round, and every allocation decision is a
pure function of the journaled results -- so killing a campaign
mid-round and resuming replays the identical allocation sequence and
reproduces the final results bit for bit.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError, WorkerCrashError
from ..obs import get_logger, get_registry, kv
from ..obs.convergence import record_bin
from ..obs.events import emit_event
from ..parallel import parallel_map
from ..physics import get_particle
from .mc import DRAW_BLOCK_SIZE, ArrayPofResult

_log = get_logger(__name__)


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the adaptive campaign controller.

    Lives on :class:`~repro.core.flow.FlowConfig` (``adaptive=``) --
    unlike execution knobs it *changes results* (different trial
    counts, stratified estimator), so it must perturb cache keys.
    """

    #: Per-bin POF standard-error target.  Absolute by default;
    #: ``relative_target`` reinterprets it as a fraction of the bin's
    #: current POF estimate (bins with POF == 0 then only stop at the
    #: trial ceiling).
    target_se: float = 5e-4
    relative_target: bool = False
    #: Uniform pilot trials per bin (round 0), rounded up to whole
    #: draw blocks and spread over the bin's strata by weight.
    pilot_trials: int = 8192
    #: Hard per-bin trial ceiling; ``None`` defers to the driver's
    #: default (the flow passes ``mc_particles_per_bin``, so adaptive
    #: never spends more on a bin than the uniform campaign would).
    max_trials: Optional[int] = None
    #: Draw blocks distributed per refinement round and the round cap.
    round_blocks: int = 16
    max_rounds: int = 64
    #: Position stratification (core/frame split of the launch window)
    #: and the halo [nm] inflating the sensitive-fin bounding box.
    stratify: bool = True
    halo_nm: float = 200.0
    #: Energy sub-strata per spectrum bin (<= 1 disables) and the
    #: POF(E)-gradient tilt clip for their allocation priority.
    energy_strata: int = 4
    max_tilt: float = 8.0

    def __post_init__(self):
        if self.target_se <= 0:
            raise ConfigError("target standard error must be positive")
        if self.pilot_trials < 1:
            raise ConfigError("pilot needs at least one trial")
        if self.max_trials is not None and self.max_trials < 1:
            raise ConfigError("trial ceiling must be positive")
        if self.round_blocks < 1:
            raise ConfigError("need at least one block per round")
        if self.max_rounds < 1:
            raise ConfigError("need at least one round")
        if self.halo_nm < 0:
            raise ConfigError("halo cannot be negative")
        if self.energy_strata < 0:
            raise ConfigError("energy strata count cannot be negative")
        if self.max_tilt < 1.0:
            raise ConfigError("max_tilt must be >= 1")


@dataclass(frozen=True)
class AdaptiveBin:
    """One (particle, energy, vdd) campaign point under adaptive control.

    Mono-energetic bins leave ``spectrum``/``e_range`` unset; spectrum
    bins carry both (``energy_mev`` is then the representative energy
    stamped on the results, as in
    :meth:`~repro.ser.mc.ArraySerSimulator.run_spectrum`).
    """

    particle_name: str
    energy_mev: float
    vdd_v: float
    e_range: Optional[Tuple[float, float]] = None
    spectrum: object = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        if self.energy_mev <= 0:
            raise ConfigError("energy must be positive")
        if (self.spectrum is None) != (self.e_range is None):
            raise ConfigError(
                "spectrum bins need both spectrum and e_range; "
                "mono-energetic bins neither"
            )

    @property
    def key(self) -> str:
        return (
            f"{self.particle_name}"
            f".vdd={self.vdd_v:g}.e={self.energy_mev:.6g}"
        )


@dataclass
class AdaptiveRoundRecord:
    """One executed round: what was assigned and where it left each bin."""

    index: int
    #: ``{bin key: {stratum name (None = uniform): draw blocks}}``.
    allocation: Dict[str, Dict[Optional[str], int]]
    #: Cumulative trials and the post-round standard error per bin.
    cumulative_trials: Dict[str, int]
    standard_errors: Dict[str, float]


@dataclass
class AdaptiveReport:
    """Outcome of one adaptive campaign (all bins)."""

    #: Final merged result per bin, in the caller's bin order.
    results: List[ArrayPofResult]
    rounds: List[AdaptiveRoundRecord]
    total_trials: int
    converged: Dict[str, bool]
    at_ceiling: Dict[str, bool]

    @property
    def allocation_history(self) -> List[Dict[str, int]]:
        """Per-round ``{bin key: total blocks}`` -- the resume invariant."""
        return [
            {
                key: sum(strata.values())
                for key, strata in record.allocation.items()
            }
            for record in self.rounds
        ]


def position_strata(layout, margin_nm: float, halo_nm: float) -> List[dict]:
    """Core/frame partition of the launch window, with area weights.

    The ``core`` rectangle is the bounding box of the *sensitive* fin
    boxes (the same subset the sparse strike kernel ray-casts against)
    inflated by ``halo_nm`` and clipped to the launch window; the
    ``frame`` is the remaining border, decomposed into up to four
    rectangles sampled as one stratum.  Weights are exact area
    fractions, so the stratified estimator is unbiased for any
    allocation across the two strata.
    """
    if halo_nm < 0:
        raise ConfigError("halo cannot be negative")
    x_range, y_range, _z, _area = layout.launch_window(margin_nm)
    x0, x1 = float(x_range[0]), float(x_range[1])
    y0, y1 = float(y_range[0]), float(y_range[1])
    total = (x1 - x0) * (y1 - y0)
    if total <= 0:
        raise ConfigError("launch window has zero area")
    whole = [{"name": "window", "weight": 1.0, "rects": ((x0, x1, y0, y1),)}]

    boxes = layout.packed_boxes[layout.fin_strike >= 0]
    if len(boxes) == 0:
        return whole
    cx0 = max(float(np.min(boxes[:, 0])) - halo_nm, x0)
    cy0 = max(float(np.min(boxes[:, 1])) - halo_nm, y0)
    cx1 = min(float(np.max(boxes[:, 3])) + halo_nm, x1)
    cy1 = min(float(np.max(boxes[:, 4])) + halo_nm, y1)
    if cx1 <= cx0 or cy1 <= cy0:
        return whole

    def area(rect):
        return (rect[1] - rect[0]) * (rect[3] - rect[2])

    core = (cx0, cx1, cy0, cy1)
    frame = [
        rect
        for rect in (
            (x0, x1, y0, cy0),  # bottom band, full width
            (x0, x1, cy1, y1),  # top band, full width
            (x0, cx0, cy0, cy1),  # left band, core's y-extent
            (cx1, x1, cy0, cy1),  # right band, core's y-extent
        )
        if area(rect) > 0.0
    ]
    if not frame:  # the core covers the whole window
        return [{"name": "core", "weight": 1.0, "rects": (core,)}]
    frame_area = sum(area(rect) for rect in frame)
    return [
        {"name": "core", "weight": area(core) / total, "rects": (core,)},
        {"name": "frame", "weight": frame_area / total, "rects": tuple(frame)},
    ]


def energy_strata(spectrum, e_lo: float, e_hi: float, count: int) -> List[dict]:
    """Log-spaced energy sub-bands weighted by integral-flux mass.

    Each stratum carries the band, its flux-mass weight (so the
    stratified mean reproduces the flux-weighted POF exactly) and its
    log-center for the POF(E)-gradient tilt.  Zero-mass bands are
    dropped and the weights renormalized over the survivors.
    """
    if count < 2:
        raise ConfigError("need at least two energy strata")
    if not 0 < e_lo < e_hi:
        raise ConfigError("need 0 < e_lo < e_hi")
    edges = np.logspace(math.log10(e_lo), math.log10(e_hi), count + 1)
    masses = np.array(
        [
            spectrum.integral_flux(float(lo), float(hi))
            for lo, hi in zip(edges[:-1], edges[1:])
        ]
    )
    total = float(np.sum(masses))
    if total <= 0:
        raise ConfigError("spectrum has no flux inside the energy band")
    strata = []
    for j, (lo, hi, mass) in enumerate(zip(edges[:-1], edges[1:], masses)):
        if mass <= 0:
            continue
        strata.append(
            {
                "name": f"e{j}",
                "weight": float(mass) / total,
                "e_range": (float(lo), float(hi)),
                "e_index": j,
                "log_center": float(math.sqrt(lo * hi)),
            }
        )
    return strata


def _combined_strata(pos: Optional[List[dict]], energy: Optional[List[dict]]):
    """Cross product of position x energy strata (either side optional).

    Returns ``[None]`` when both are off -- plain uniform blocks, merged
    on the legacy bit-identical path.
    """
    if pos is None and energy is None:
        return [None]
    if energy is None:
        return list(pos)
    if pos is None:
        return list(energy)
    combined = []
    for p in pos:
        for e in energy:
            combined.append(
                {
                    "name": f"{p['name']}|{e['name']}",
                    "weight": p["weight"] * e["weight"],
                    "rects": p["rects"],
                    "e_range": e["e_range"],
                    "e_index": e["e_index"],
                    "log_center": e["log_center"],
                }
            )
    return combined


def _adaptive_task(payload, task):
    """Pool worker: run one bin/stratum's draw blocks, in order.

    The payload carries only the (campaign-invariant) simulator, so
    every round of every bin ships the *same* payload -- warm workers
    and the shared-memory plane reuse the one they already rebuilt.
    Everything that varies rides in the task spec.
    """
    simulator = payload["simulator"]
    spec, blocks = task
    particle = get_particle(spec["particle"])
    block_payload = {
        "simulator": simulator,
        "particle": particle,
        "energy_mev": float(spec["energy_mev"]),
        "vdd_v": float(spec["vdd_v"]),
        "window": simulator.layout.launch_window(simulator.config.margin_nm),
        "law": simulator.config.law_for(particle.name),
        "spectrum": spec.get("spectrum"),
        "e_range": spec.get("e_range"),
        "stratum": spec.get("stratum"),
    }
    return [
        simulator._run_block(block_payload, size, seed)
        for size, seed in blocks
    ]


class AdaptiveCampaignController:
    """Sequential adaptive MC campaign over a set of bins.

    Parameters mirror the flow's execution plane: ``payload`` may be a
    pre-packed :class:`~repro.parallel.shm.PackedPayload` shared across
    rounds, ``journal_factory(round_index)`` returns the round's
    :class:`~repro.parallel.ShardJournal` (or ``None``) so interrupted
    campaigns resume bit-identically, and ``retry`` is forced strict --
    a lost draw block would change every later allocation decision, so
    unrecoverable loss must raise rather than degrade.
    """

    def __init__(
        self,
        simulator,
        config: Optional[AdaptiveConfig] = None,
        *,
        n_jobs: Optional[int] = None,
        retry=None,
        warm_pool: Optional[bool] = None,
        shm: Optional[bool] = None,
        payload=None,
        journal_factory=None,
        stage: str = "adaptive",
        default_max_trials: Optional[int] = None,
    ):
        self.simulator = simulator
        self.config = config if config is not None else AdaptiveConfig()
        self.n_jobs = (
            simulator.config.n_jobs if n_jobs is None else int(n_jobs)
        )
        self.retry = retry
        self.warm_pool = (
            simulator.config.warm_pool if warm_pool is None else warm_pool
        )
        self.shm = simulator.config.shm if shm is None else shm
        self.payload = (
            payload if payload is not None else {"simulator": simulator}
        )
        self.journal_factory = journal_factory
        self.stage = stage
        max_trials = (
            self.config.max_trials
            if self.config.max_trials is not None
            else default_max_trials
        )
        if max_trials is None:
            raise ConfigError(
                "adaptive campaigns need a trial ceiling: set "
                "AdaptiveConfig.max_trials or pass default_max_trials"
            )
        self.max_trials = int(max_trials)
        self._position_strata: Optional[List[dict]] = None

    # -- strata ----------------------------------------------------------

    def _strata_for(self, bin_: AdaptiveBin) -> List[Optional[dict]]:
        pos = None
        if self.config.stratify:
            if self._position_strata is None:
                self._position_strata = position_strata(
                    self.simulator.layout,
                    self.simulator.config.margin_nm,
                    self.config.halo_nm,
                )
            pos = self._position_strata
        energy = None
        if bin_.spectrum is not None and self.config.energy_strata >= 2:
            energy = energy_strata(
                bin_.spectrum,
                bin_.e_range[0],
                bin_.e_range[1],
                self.config.energy_strata,
            )
        return _combined_strata(pos, energy)

    @staticmethod
    def _pilot_split(strata, n_blocks: int) -> Dict[Optional[str], int]:
        """Pilot blocks per stratum: >= 1 each, rest by largest remainder.

        Every stratum *must* appear in the pilot -- the weighted merge
        needs all strata of a point present (weights sum to 1), and the
        controller needs at least a rough variance estimate per stratum
        to allocate later rounds.
        """
        if strata == [None]:
            return {None: n_blocks}
        names = [stratum["name"] for stratum in strata]
        weights = [stratum["weight"] for stratum in strata]
        n_blocks = max(n_blocks, len(strata))
        counts = {name: 1 for name in names}
        extra = n_blocks - len(strata)
        if extra > 0:
            quotas = [w * extra for w in weights]
            floors = [int(math.floor(q)) for q in quotas]
            for name, base in zip(names, floors):
                counts[name] += base
            remainder = extra - sum(floors)
            order = sorted(
                range(len(names)),
                key=lambda i: (-(quotas[i] - floors[i]), i),
            )
            for i in order[:remainder]:
                counts[names[i]] += 1
        return counts

    # -- per-stratum statistics (pure functions of block results) --------

    @staticmethod
    def _stratum_stats(blocks) -> Dict[Optional[str], Tuple[int, float, int]]:
        """``{stratum: (trials, pooled pof, hits)}`` over a bin's blocks."""
        stats: Dict[Optional[str], List[ArrayPofResult]] = {}
        for block in blocks:
            stats.setdefault(block.stratum, []).append(block)
        out = {}
        for name, members in stats.items():
            n = sum(member.n_particles for member in members)
            pof = (
                sum(member.pof_total * member.n_particles for member in members)
                / n
            )
            hits = sum(member.n_array_hits for member in members)
            out[name] = (n, pof, hits)
        return out

    def _tilts_for(self, strata, stats) -> Dict[str, float]:
        """POF(E)-gradient tilt per stratum (1.0 without energy strata)."""
        from ..analysis.convergence import build_energy_tilt

        by_index: Dict[int, List[dict]] = {}
        for stratum in strata:
            if stratum is None or "e_index" not in stratum:
                return {}
            by_index.setdefault(stratum["e_index"], []).append(stratum)
        if len(by_index) < 2:
            return {}
        centers, pofs, indices = [], [], []
        for e_index in sorted(by_index):
            members = by_index[e_index]
            n_tot, pof_sum = 0, 0.0
            for stratum in members:
                n, pof, _hits = stats.get(stratum["name"], (0, 0.0, 0))
                n_tot += n
                pof_sum += pof * n
            centers.append(math.log(members[0]["log_center"]))
            pofs.append(pof_sum / n_tot if n_tot else 0.0)
            indices.append(e_index)
        tilts = build_energy_tilt(centers, pofs, self.config.max_tilt)
        by_e = dict(zip(indices, tilts))
        return {
            stratum["name"]: by_e[stratum["e_index"]] for stratum in strata
        }

    def _split_round(
        self, strata, blocks, n_blocks: int
    ) -> Dict[Optional[str], int]:
        """One bin's refinement blocks, split across its strata."""
        from ..analysis.convergence import (
            StratumState,
            split_blocks_across_strata,
        )

        if strata == [None]:
            return {None: n_blocks}
        stats = self._stratum_stats(blocks)
        tilts = self._tilts_for(strata, stats)
        states = []
        for stratum in strata:
            n, pof, hits = stats.get(stratum["name"], (0, 0.0, 0))
            states.append(
                StratumState(
                    name=stratum["name"],
                    weight=stratum["weight"],
                    trials=n,
                    pof=pof,
                    hits=hits,
                    tilt=tilts.get(stratum["name"], 1.0),
                )
            )
        return split_blocks_across_strata(states, n_blocks, DRAW_BLOCK_SIZE)

    # -- round execution -------------------------------------------------

    def _execute_round(self, round_index, bins, strata, seeds, allocation):
        """Fan one round's draw blocks out and route results per bin.

        Tasks are built for *every* round, replayed or not: spawning
        the seeds keeps each bin's child-stream counter aligned with
        the allocation history, so a resumed campaign's later rounds
        draw the same streams as the uninterrupted run.
        """
        tasks, owners = [], []
        per_task = max(
            1, math.ceil(self.simulator.config.chunk_size / DRAW_BLOCK_SIZE)
        )
        round_trials = 0
        for bin_ in bins:
            alloc = allocation.get(bin_.key)
            if not alloc:
                continue
            total_blocks = sum(alloc.values())
            child_seeds = seeds[bin_.key].spawn(total_blocks)
            cursor = 0
            for stratum in strata[bin_.key]:
                name = None if stratum is None else stratum["name"]
                count = alloc.get(name, 0)
                if count == 0:
                    continue
                pairs = [
                    (DRAW_BLOCK_SIZE, child_seeds[cursor + j])
                    for j in range(count)
                ]
                cursor += count
                round_trials += count * DRAW_BLOCK_SIZE
                spec = {
                    "particle": bin_.particle_name,
                    "energy_mev": float(bin_.energy_mev),
                    "vdd_v": float(bin_.vdd_v),
                    "spectrum": bin_.spectrum,
                    "e_range": bin_.e_range,
                    "stratum": stratum,
                }
                for i in range(0, len(pairs), per_task):
                    tasks.append((spec, pairs[i : i + per_task]))
                    owners.append(bin_.key)
        journal = (
            self.journal_factory(round_index)
            if self.journal_factory is not None
            else None
        )
        nested = parallel_map(
            _adaptive_task,
            tasks,
            payload=self.payload,
            n_jobs=self.n_jobs,
            label="adaptive",
            retry=self.retry.strict() if self.retry is not None else None,
            journal=journal,
            cost_hint_s=2.0e-6 * round_trials / max(len(tasks), 1),
            warm_pool=self.warm_pool,
            shm=self.shm,
        )
        routed: Dict[str, List[ArrayPofResult]] = {}
        for owner, group in zip(owners, nested):
            if group is None:
                raise WorkerCrashError(
                    "adaptive round lost a draw-block task; allocation "
                    "would diverge -- rerun with a strict retry policy"
                )
            routed.setdefault(owner, []).extend(group)
        return routed, journal, round_trials

    # -- the campaign loop -----------------------------------------------

    def run(self, bins: Sequence[AdaptiveBin], seed_for) -> AdaptiveReport:
        """Run the adaptive campaign; ``seed_for(bin)`` gives each bin's
        root :class:`numpy.random.SeedSequence` (a pure function of the
        bin, so resume re-derives the same streams)."""
        from ..analysis.convergence import (
            allocate_blocks,
            pof_standard_error,
        )

        bins = list(bins)
        if not bins:
            raise ConfigError("need at least one bin")
        keys = [bin_.key for bin_ in bins]
        if len(set(keys)) != len(keys):
            raise ConfigError(f"duplicate bin keys in {keys}")

        strata = {bin_.key: self._strata_for(bin_) for bin_ in bins}
        seeds = {bin_.key: seed_for(bin_) for bin_ in bins}
        blocks: Dict[str, List[ArrayPofResult]] = {key: [] for key in keys}
        merged: Dict[str, ArrayPofResult] = {}
        errors: Dict[str, float] = {}
        journals = []
        rounds: List[AdaptiveRoundRecord] = []
        metrics = get_registry()

        pilot_blocks = max(
            1, math.ceil(self.config.pilot_trials / DRAW_BLOCK_SIZE)
        )
        allocation = {
            bin_.key: self._pilot_split(strata[bin_.key], pilot_blocks)
            for bin_ in bins
        }

        t0 = time.perf_counter()
        round_index = 0
        total_trials = 0
        while True:
            routed, journal, round_trials = self._execute_round(
                round_index, bins, strata, seeds, allocation
            )
            if journal is not None:
                journals.append(journal)
            total_trials += round_trials
            for bin_ in bins:
                new = routed.get(bin_.key)
                if not new:
                    continue
                blocks[bin_.key].extend(new)
                merged[bin_.key] = ArrayPofResult.merge(blocks[bin_.key])
                errors[bin_.key] = pof_standard_error(merged[bin_.key])
                record_bin(
                    self.stage,
                    trials=sum(block.n_particles for block in new),
                    pof=float(merged[bin_.key].pof_total),
                    standard_error=errors[bin_.key],
                    particle=bin_.particle_name,
                    vdd_v=float(bin_.vdd_v),
                    energy_mev=float(bin_.energy_mev),
                )
            states = self._budget_states(bins, merged, errors)
            converged_now = sum(1 for state in states if state.converged)
            rounds.append(
                AdaptiveRoundRecord(
                    index=round_index,
                    allocation={
                        key: dict(alloc)
                        for key, alloc in allocation.items()
                        if alloc
                    },
                    cumulative_trials={
                        key: merged[key].n_particles for key in keys
                    },
                    standard_errors=dict(errors),
                )
            )
            emit_event(
                "allocation",
                stage=self.stage,
                round=round_index,
                blocks=sum(
                    sum(alloc.values()) for alloc in allocation.values()
                ),
                trials=round_trials,
                bins={
                    key: sum(alloc.values())
                    for key, alloc in allocation.items()
                    if alloc
                },
                converged=converged_now,
            )
            if metrics.enabled:
                metrics.counter("adaptive.rounds").inc()
                metrics.counter("adaptive.trials").inc(round_trials)
                metrics.counter("adaptive.blocks").inc(
                    round_trials // DRAW_BLOCK_SIZE
                )
            round_index += 1
            if round_index >= self.config.max_rounds:
                _log.warning(
                    "adaptive campaign hit the round cap %s",
                    kv(stage=self.stage, rounds=round_index),
                )
                break
            per_bin = allocate_blocks(
                states, self.config.round_blocks, DRAW_BLOCK_SIZE
            )
            if not per_bin:
                break
            allocation = {
                key: self._split_round(strata[key], blocks[key], count)
                for key, count in per_bin.items()
            }

        converged = {}
        at_ceiling = {}
        for state in self._budget_states(bins, merged, errors):
            converged[state.key] = state.converged
            at_ceiling[state.key] = state.trials >= state.max_trials
        if metrics.enabled:
            metrics.counter("adaptive.bins").inc(len(bins))
            metrics.counter("adaptive.bins_converged").inc(
                sum(converged.values())
            )
            metrics.counter("adaptive.bins_ceiling").inc(
                sum(
                    1
                    for key in keys
                    if at_ceiling[key] and not converged[key]
                )
            )
        _log.info(
            "adaptive campaign done %s",
            kv(
                stage=self.stage,
                bins=len(bins),
                rounds=len(rounds),
                trials=total_trials,
                converged=sum(converged.values()),
                elapsed_s=round(time.perf_counter() - t0, 3),
            ),
        )
        # only a *completed* campaign may drop its checkpoints; an
        # aborted round leaves them for the resume to replay
        for journal in journals:
            journal.clear()
        return AdaptiveReport(
            results=[merged[key] for key in keys],
            rounds=rounds,
            total_trials=total_trials,
            converged=converged,
            at_ceiling=at_ceiling,
        )

    def _budget_states(self, bins, merged, errors):
        from ..analysis.convergence import BinBudgetState as state_cls

        states = []
        for bin_ in bins:
            result = merged[bin_.key]
            target = self.config.target_se
            if self.config.relative_target:
                target *= max(float(result.pof_total), 0.0)
            states.append(
                state_cls(
                    key=bin_.key,
                    trials=int(result.n_particles),
                    pof=float(result.pof_total),
                    standard_error=float(errors[bin_.key]),
                    target_se=target,
                    max_trials=self.max_trials,
                )
            )
        return states
