"""Array-level SER estimation: Monte Carlo, POF combination, FIT."""

from .clusters import PairOffsetStatistics, collect_pair_offsets
from .heavy_ion import (
    CrossSectionPoint,
    HeavyIonCampaign,
    WeibullFit,
    fit_weibull,
)
from .fit import FitResult, fit_from_spectrum_run, integrate_fit
from .fusion import BatchPlan, CampaignPoint
from .neutron_mc import NeutronMcConfig, NeutronSerSimulator, neutron_fit
from .mc import (
    DEFAULT_DIRECTION_LAWS,
    DEPOSITION_MODES,
    ArrayMcConfig,
    ArrayPofResult,
    ArraySerSimulator,
)
from .pof import combine, combine_mbu, combine_seu, combine_total
from .results import SerSweep
from .adaptive import (
    AdaptiveBin,
    AdaptiveCampaignController,
    AdaptiveConfig,
    AdaptiveReport,
    AdaptiveRoundRecord,
    energy_strata,
    position_strata,
)

__all__ = [
    "AdaptiveBin",
    "AdaptiveCampaignController",
    "AdaptiveConfig",
    "AdaptiveReport",
    "AdaptiveRoundRecord",
    "position_strata",
    "energy_strata",
    "ArrayMcConfig",
    "ArrayPofResult",
    "ArraySerSimulator",
    "BatchPlan",
    "CampaignPoint",
    "DEPOSITION_MODES",
    "DEFAULT_DIRECTION_LAWS",
    "combine",
    "combine_total",
    "combine_seu",
    "combine_mbu",
    "FitResult",
    "integrate_fit",
    "fit_from_spectrum_run",
    "HeavyIonCampaign",
    "CrossSectionPoint",
    "WeibullFit",
    "fit_weibull",
    "NeutronSerSimulator",
    "NeutronMcConfig",
    "neutron_fit",
    "PairOffsetStatistics",
    "collect_pair_offsets",
    "SerSweep",
]
