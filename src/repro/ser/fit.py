"""FIT-rate integration (paper Section 5.2, eqs. 7-8).

``SER(FIT) = sum_E POF(E) * IntFlux(E) * Lx * Ly`` over the
discretized particle spectrum, where POF(E) is per particle launched
onto the reference area and IntFlux the integral flux in the bin.

The reference area must match the POF normalization: this module uses
the Monte Carlo *launch window* area (array + margin) together with the
per-launched-particle POFs, which is exactly equivalent to the paper's
``Lx * Ly`` with per-array-hit POFs -- the margin particles' near-zero
POFs are duly paid for with the larger area.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..obs import get_logger, get_registry, kv
from ..physics.spectra import EnergyBins
from ..units import per_second_to_fit
from .mc import ArrayPofResult

_log = get_logger(__name__)


@dataclass(frozen=True)
class FitResult:
    """FIT rates of one (particle, vdd) spectrum integration.

    Attributes
    ----------
    particle_name / vdd_v:
        The integrated case.
    bins:
        The spectrum discretization used (eq. 8).
    pof_per_bin:
        Per-launched-particle POF triples per bin: shape ``(n_bins, 3)``
        ordered (total, seu, mbu).
    fit_total / fit_seu / fit_mbu:
        Failure rates in FIT (failures per 1e9 device hours).
    degraded:
        True when any folded MC campaign lost shards to worker
        crashes: the rates are unbiased but rest on fewer particles,
        so their standard errors are wider than requested.  Degraded
        results are never written to the artifact cache.
    """

    particle_name: str
    vdd_v: float
    bins: EnergyBins
    pof_per_bin: np.ndarray
    fit_total: float
    fit_seu: float
    fit_mbu: float
    degraded: bool = False

    @property
    def mbu_to_seu_ratio(self) -> float:
        """The paper's Fig. 10 metric.

        Degenerate denominators keep their mathematical meaning: an
        MBU rate with **no** SEU rate is ``inf`` (MBU-dominated, not
        "no MBUs"), and 0/0 is ``nan`` (no events at all, ratio
        undefined).
        """
        if self.fit_seu > 0:
            return self.fit_mbu / self.fit_seu
        return math.inf if self.fit_mbu > 0 else math.nan


def fit_from_spectrum_run(
    spectrum,
    result: ArrayPofResult,
    e_min_mev: Optional[float] = None,
    e_max_mev: Optional[float] = None,
) -> FitResult:
    """FIT from a continuous-spectrum campaign (no binning).

    The campaign's POFs are flux-weighted means over the sampled band,
    so the rate is simply ``POF_mean * integral_flux * launch_area`` --
    the zero-bin-error counterpart of eq. 8.
    """
    e_min = e_min_mev if e_min_mev is not None else spectrum.e_min_mev
    e_max = e_max_mev if e_max_mev is not None else spectrum.e_max_mev
    flux = spectrum.integral_flux(e_min, e_max)
    area = result.launch_area_cm2
    edges = np.array([e_min, e_max])
    bins = EnergyBins(edges, np.array([result.energy_mev]), np.array([flux]))
    pof = np.array([[result.pof_total, result.pof_seu, result.pof_mbu]])
    return FitResult(
        particle_name=result.particle_name,
        vdd_v=result.vdd_v,
        bins=bins,
        pof_per_bin=pof,
        fit_total=per_second_to_fit(result.pof_total * flux * area),
        fit_seu=per_second_to_fit(result.pof_seu * flux * area),
        fit_mbu=per_second_to_fit(result.pof_mbu * flux * area),
        degraded=result.degraded,
    )


def integrate_fit(
    particle_name: str,
    vdd_v: float,
    bins: EnergyBins,
    results: Sequence[ArrayPofResult],
) -> FitResult:
    """Fold per-energy MC results with the spectrum (eq. 8).

    ``results[i]`` must be the MC outcome at ``bins.representative_mev[i]``;
    every result must share the same launch area.
    """
    if len(results) != len(bins):
        raise ConfigError(
            f"need one MC result per bin ({len(bins)}), got {len(results)}"
        )
    # relative-tolerance comparison: absolute rounding (the previous
    # ``round(area, 18)`` set) both rejected ulp-different areas from
    # independently built results and passed tiny real mismatches
    area_cm2 = results[0].launch_area_cm2
    for r in results[1:]:
        if not math.isclose(
            r.launch_area_cm2, area_cm2, rel_tol=1e-9, abs_tol=0.0
        ):
            raise ConfigError(
                "all MC results must share one launch area "
                f"(got {r.launch_area_cm2!r} vs {area_cm2!r})"
            )

    pof = np.array(
        [[r.pof_total, r.pof_seu, r.pof_mbu] for r in results]
    )
    flux = bins.integral_flux_per_cm2_s  # [1/(cm^2 s)]
    rates_per_s = pof.T @ flux * area_cm2  # (3,)

    metrics = get_registry()
    if metrics.enabled:
        metrics.counter("fit.integrations").inc()
        metrics.counter("fit.energy_bins").inc(len(bins))
        _log.debug(
            "fit integrated %s",
            kv(
                particle=particle_name,
                vdd=vdd_v,
                bins=len(bins),
                fit_total=per_second_to_fit(float(rates_per_s[0])),
            ),
        )

    return FitResult(
        particle_name=particle_name,
        vdd_v=vdd_v,
        bins=bins,
        pof_per_bin=pof,
        fit_total=per_second_to_fit(float(rates_per_s[0])),
        fit_seu=per_second_to_fit(float(rates_per_s[1])),
        fit_mbu=per_second_to_fit(float(rates_per_s[2])),
        degraded=any(r.degraded for r in results),
    )
