"""Neutron-induced SER of the array (the paper's future work).

Reuses the array layout, POF tables and FIT machinery of the main flow
but replaces the charge-deposition step: a neutron crossing a fin
deposits nothing unless a nuclear reaction occurs inside it
(probability ``n_Si * sigma(E) * chord`` ~ 1e-7 per crossing); a
reaction produces a charged secondary whose local energy deposit is
``min(LET_secondary * collection chord, E_secondary)``.

Because the reaction probability per crossing is tiny while secondary
LETs are huge (a Si recoil deposits tens of fC over a fin -- far above
Qcrit), the neutron SER of an SOI FinFET array is reaction-rate
limited: nearly every reaction flips the struck cell, and the FIT rate
is essentially flux x sensitive volume x cross section.  The MC below
importance-samples the reaction (every crossing is forced to react,
weighted by its reaction probability) so a laptop-scale run resolves
the ~1e-7 events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..constants import ELEMENTARY_CHARGE_C, SILICON_PAIR_ENERGY_EV
from ..errors import ConfigError
from ..geometry import RayBatch, chord_lengths
from ..layout import SramArrayLayout
from ..physics import sample_rays
from ..physics.neutron import NeutronInteractionModel, SeaLevelNeutronSpectrum
from ..sram import PofTable
from ..units import per_second_to_fit
from .mc import ArrayPofResult
from .pof import combine


@dataclass(frozen=True)
class NeutronMcConfig:
    """Knobs of the neutron array Monte Carlo."""

    margin_nm: float = 100.0
    chunk_size: int = 8192
    direction_law: str = "cosine"

    def __post_init__(self):
        if self.margin_nm < 0:
            raise ConfigError("margin cannot be negative")
        if self.chunk_size < 1:
            raise ConfigError("chunk size must be positive")


class NeutronSerSimulator:
    """Indirect-ionization SER of an SRAM array."""

    def __init__(
        self,
        layout: SramArrayLayout,
        pof_table: PofTable,
        interaction: Optional[NeutronInteractionModel] = None,
        config: Optional[NeutronMcConfig] = None,
    ):
        self.layout = layout
        self.pof_table = pof_table
        self.interaction = (
            interaction if interaction is not None else NeutronInteractionModel()
        )
        self.config = config if config is not None else NeutronMcConfig()
        sensitive = self.layout.fin_strike >= 0
        self._sensitive_boxes = self.layout.packed_boxes[sensitive]
        self._sens_cell = self.layout.fin_cell[sensitive]
        self._sens_strike = self.layout.fin_strike[sensitive]

    def run(
        self,
        energy_mev: float,
        vdd_v: float,
        n_neutrons: int,
        rng: np.random.Generator,
    ) -> ArrayPofResult:
        """Importance-sampled POF of one (energy, vdd) point.

        Every fin crossing is forced to undergo a reaction; the event's
        POF contribution is weighted by the physical reaction
        probability.  The returned POFs are per *launched* neutron, so
        they plug into :func:`repro.ser.fit.integrate_fit` unchanged.
        """
        if energy_mev <= 0:
            raise ConfigError("energy must be positive")
        if n_neutrons < 1:
            raise ConfigError("need at least one neutron")

        x_range, y_range, z, launch_area = self.layout.launch_window(
            self.config.margin_nm
        )

        sum_total = sum_seu = sum_mbu = 0.0
        n_strikes = 0
        remaining = n_neutrons
        while remaining > 0:
            batch = min(remaining, self.config.chunk_size)
            remaining -= batch
            rays = sample_rays(
                batch, rng, x_range, y_range, z, self.config.direction_law
            )
            totals, seus, mbus, strikes = self._process_batch(
                energy_mev, vdd_v, rays, rng
            )
            sum_total += totals
            sum_seu += seus
            sum_mbu += mbus
            n_strikes += strikes

        return ArrayPofResult(
            particle_name="neutron",
            energy_mev=float(energy_mev),
            vdd_v=float(vdd_v),
            n_particles=n_neutrons,
            n_array_hits=n_strikes,  # crossings of sensitive fins
            n_fin_strikes=n_strikes,
            pof_total=sum_total / n_neutrons,
            pof_seu=sum_seu / n_neutrons,
            pof_mbu=sum_mbu / n_neutrons,
            launch_area_cm2=launch_area,
        )

    def _process_batch(self, energy_mev, vdd_v, rays: RayBatch, rng):
        chords = chord_lengths(rays, self._sensitive_boxes)
        event_rows = np.nonzero(np.any(chords > 0.0, axis=1))[0]
        if len(event_rows) == 0:
            return 0.0, 0.0, 0.0, 0

        sub = chords[event_rows] > 0.0
        ray_idx, fin_idx = np.nonzero(sub)
        chord_vals = chords[event_rows][ray_idx, fin_idx]
        n_strikes = len(fin_idx)

        # importance sampling: force a reaction in each crossed fin,
        # carry the physical probability as a weight
        weights = self.interaction.reaction_probability(
            energy_mev, chord_vals
        )
        species, sec_energy = self.interaction.sample_secondaries(
            energy_mev, n_strikes, rng
        )
        let = self.interaction.secondary_let_kev_per_nm(species, sec_energy)
        # the secondary is born inside the fin: it can at most deposit
        # its full energy, and at most LET x the local chord (the track
        # continues out of the fin otherwise)
        deposit_kev = np.minimum(let * chord_vals, sec_energy * 1.0e3)
        charges = (
            deposit_kev * 1.0e3 / SILICON_PAIR_ENERGY_EV
        ) * ELEMENTARY_CHARGE_C

        n_events = len(event_rows)
        cell_of = self._sens_cell[fin_idx]
        strike_of = self._sens_strike[fin_idx]
        charge_tensor = np.zeros(
            (n_events, self.layout.n_cells, 3), dtype=np.float64
        )
        # reactions are rare; double reactions on one track are
        # negligible, so each strike is its own weighted event --
        # but strikes sharing a ray still combine for MBU (a single
        # secondary cannot span cells in this model, so MBU requires
        # the track to react in two fins: probability ~ w^2, ignored).
        np.add.at(charge_tensor, (ray_idx, cell_of, strike_of), charges)

        # evaluate POF per strike independently, weighted
        pof_values = self.pof_table.query(
            vdd_v,
            np.stack(
                [
                    np.where(strike_of == 0, charges, 0.0),
                    np.where(strike_of == 1, charges, 0.0),
                    np.where(strike_of == 2, charges, 0.0),
                ],
                axis=1,
            ),
        )
        weighted = pof_values * weights
        # single-reaction events: everything is SEU (double reactions
        # carry weight^2 ~ 1e-14 and are dropped -- documented above)
        total = float(np.sum(weighted))
        return total, total, 0.0, n_strikes


def neutron_fit(
    layout: SramArrayLayout,
    pof_table: PofTable,
    vdd_v: float,
    n_neutrons_per_bin: int,
    rng: np.random.Generator,
    n_bins: int = 6,
    interaction: Optional[NeutronInteractionModel] = None,
    config: Optional[NeutronMcConfig] = None,
):
    """Neutron FIT rate via eq. 8 over the sea-level neutron spectrum."""
    from .fit import integrate_fit

    spectrum = SeaLevelNeutronSpectrum()
    bins = spectrum.make_bins(n_bins, 1.0, 1000.0)
    simulator = NeutronSerSimulator(layout, pof_table, interaction, config)
    results = [
        simulator.run(float(e), vdd_v, n_neutrons_per_bin, rng)
        for e in bins.representative_mev
    ]
    return integrate_fit("neutron", vdd_v, bins, results)
