"""POF combination across cells (paper eqs. 4-6).

Given per-cell failure probabilities for one particle event,

* ``POF_tot = 1 - prod_i (1 - POF_i)``              (eq. 4)
* ``POF_SEU = sum_i POF_i * prod_{j != i} (1 - POF_j)``  (eq. 5)
* ``POF_MBU = POF_tot - POF_SEU``                   (eq. 6)

All functions are vectorized along a leading batch axis (one row per
Monte Carlo event).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ConfigError

#: Probabilities are clipped below 1 by this margin so the numerically
#: convenient ``prod * sum(p / (1-p))`` form of eq. 5 stays finite; the
#: induced error is ~1e-12 absolute, far below MC noise.
_ONE_MINUS_EPS = 1.0 - 1.0e-12


def _validate(pofs) -> np.ndarray:
    pofs = np.atleast_2d(np.asarray(pofs, dtype=np.float64))
    if np.any((pofs < 0.0) | (pofs > 1.0)):
        raise ConfigError("cell POFs must lie in [0, 1]")
    return pofs


def combine_total(pofs) -> np.ndarray:
    """Eq. 4: probability at least one cell fails, per event row."""
    pofs = _validate(pofs)
    return 1.0 - np.prod(1.0 - pofs, axis=-1)


def combine_seu(pofs) -> np.ndarray:
    """Eq. 5: probability exactly one cell fails, per event row."""
    pofs = np.minimum(_validate(pofs), _ONE_MINUS_EPS)
    survive = 1.0 - pofs
    total_survive = np.prod(survive, axis=-1)
    odds = pofs / survive
    return total_survive * np.sum(odds, axis=-1)


def combine_mbu(pofs) -> np.ndarray:
    """Eq. 6: probability two or more cells fail, per event row."""
    return np.maximum(combine_total(pofs) - combine_seu(pofs), 0.0)


def combine(pofs) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(total, seu, mbu)`` per event row in one pass."""
    total = combine_total(pofs)
    seu = combine_seu(pofs)
    mbu = np.maximum(total - seu, 0.0)
    return total, seu, mbu


def multiplicity_pmf(pofs, max_k: int = 8) -> np.ndarray:
    """Failure-count distribution per event (Poisson binomial).

    Generalizes eqs. 4-6: ``pmf[:, k]`` is the probability that exactly
    ``k`` cells fail in the event (``k = 0 .. max_k``, with the final
    bin absorbing ``>= max_k`` failures).  The cluster-size view is what
    an ECC architect needs: single-error-correcting codes survive
    ``k = 1`` but not ``k >= 2`` within a word.

    Vectorized dynamic program over the event batch: each cell updates
    ``pmf <- pmf * (1 - p) + shift(pmf) * p``.
    """
    pofs = _validate(pofs)
    if max_k < 1:
        raise ConfigError("need max_k >= 1")
    n_events = pofs.shape[0]
    pmf = np.zeros((n_events, max_k + 1), dtype=np.float64)
    pmf[:, 0] = 1.0
    for j in range(pofs.shape[1]):
        p = pofs[:, j][:, np.newaxis]
        shifted = np.zeros_like(pmf)
        shifted[:, 1:] = pmf[:, :-1]
        # the top bin absorbs overflow (k >= max_k stays in place)
        shifted[:, -1] += pmf[:, -1]
        pmf = pmf * (1.0 - p) + shifted * p
    return pmf
