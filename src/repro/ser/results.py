"""Result containers for SER sweeps and their serialization."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..errors import ConfigError
from .fit import FitResult


@dataclass
class SerSweep:
    """FIT results over a (particle, vdd) grid.

    The central artifact of the paper's evaluation: Figs. 9-11 are all
    views of one such sweep (or the ratio of two).
    """

    results: Dict[Tuple[str, float], FitResult] = field(default_factory=dict)

    def add(self, result: FitResult):
        """Insert one integration result."""
        self.results[(result.particle_name, result.vdd_v)] = result

    @property
    def degraded(self) -> bool:
        """True when any folded result rests on degraded statistics.

        Degraded sweeps are returned but never cached (see
        :meth:`repro.io.ArtifactCache.get_or_build`), so a later run
        rebuilds them at full statistics.
        """
        return any(result.degraded for result in self.results.values())

    def get(self, particle_name: str, vdd_v: float) -> FitResult:
        """Fetch one result (raises if absent)."""
        try:
            return self.results[(particle_name, float(vdd_v))]
        except KeyError:
            raise ConfigError(
                f"sweep has no result for ({particle_name}, {vdd_v})"
            ) from None

    def particles(self) -> List[str]:
        """Particle names present, sorted."""
        return sorted({p for p, _ in self.results})

    def vdd_values(self, particle_name: str) -> np.ndarray:
        """Sorted vdd grid for one particle."""
        return np.array(
            sorted(v for p, v in self.results if p == particle_name)
        )

    def fit_series(self, particle_name: str) -> Tuple[np.ndarray, np.ndarray]:
        """``(vdd, FIT_total)`` series -- the paper's Fig. 9 curve."""
        vdds = self.vdd_values(particle_name)
        fits = np.array(
            [self.get(particle_name, v).fit_total for v in vdds]
        )
        return vdds, fits

    def mbu_seu_series(self, particle_name: str) -> Tuple[np.ndarray, np.ndarray]:
        """``(vdd, MBU/SEU ratio)`` series -- the paper's Fig. 10 curve."""
        vdds = self.vdd_values(particle_name)
        ratios = np.array(
            [self.get(particle_name, v).mbu_to_seu_ratio for v in vdds]
        )
        return vdds, ratios

    def to_dict(self) -> dict:
        """Plain-python payload (round-trips via :meth:`from_dict`)."""
        payload = []
        for (particle, vdd), result in sorted(self.results.items()):
            payload.append(
                {
                    "particle": particle,
                    "vdd": vdd,
                    "fit_total": result.fit_total,
                    "fit_seu": result.fit_seu,
                    "fit_mbu": result.fit_mbu,
                    "pof_per_bin": result.pof_per_bin.tolist(),
                    "bin_edges_mev": result.bins.edges_mev.tolist(),
                    "bin_flux": result.bins.integral_flux_per_cm2_s.tolist(),
                    "degraded": bool(result.degraded),
                }
            )
        return {"kind": "ser_sweep", "results": payload}

    @classmethod
    def from_dict(cls, payload: dict) -> "SerSweep":
        """Rebuild a sweep saved with :meth:`to_dict`."""
        from ..physics.spectra import EnergyBins

        if payload.get("kind") != "ser_sweep":
            raise ConfigError("payload is not a SER sweep")
        sweep = cls()
        for entry in payload["results"]:
            edges = np.asarray(entry["bin_edges_mev"], dtype=np.float64)
            bins = EnergyBins(
                edges,
                np.sqrt(edges[:-1] * edges[1:]),
                np.asarray(entry["bin_flux"], dtype=np.float64),
            )
            sweep.add(
                FitResult(
                    particle_name=entry["particle"],
                    vdd_v=float(entry["vdd"]),
                    bins=bins,
                    pof_per_bin=np.asarray(entry["pof_per_bin"]),
                    fit_total=float(entry["fit_total"]),
                    fit_seu=float(entry["fit_seu"]),
                    fit_mbu=float(entry["fit_mbu"]),
                    degraded=bool(entry.get("degraded", False)),
                )
            )
        return sweep
