"""Array-level 3-D Monte Carlo (paper Section 5.1).

For each random particle: find the struck fins by ray/box analysis of
the array layout, convert deposits in *sensitive* fins to collected
charges, look the affected cells' POFs up in the SPICE-characterized
:class:`~repro.sram.PofTable`, and combine them into the event's
total/SEU/MBU failure probabilities (eqs. 4-6).  Averaging over the
batch gives the POF of a particle with that energy.

Two charge-deposition modes (DESIGN.md Section 5):

* ``"lut"`` (paper-faithful) -- the pair count of every struck fin is
  drawn from the device-level :class:`~repro.transport.ElectronYieldLUT`
  built with the single-fin Geant4-substitute, mirroring the paper's
  LUT hand-off between levels.
* ``"direct"`` -- deposits are computed from the actual chord through
  each fin (stopping power + straggling), keeping the array geometry
  and the deposit perfectly consistent.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..constants import ELEMENTARY_CHARGE_C
from ..errors import ConfigError
from ..geometry import RayBatch, chord_lengths
from ..layout import SramArrayLayout
from ..obs import get_logger, get_registry, kv
from ..physics import (
    ParticleType,
    sample_deposits_kev,
    sample_pairs,
    sample_rays,
)
from ..sram import PofTable
from ..transport import ElectronYieldLUT
from .pof import combine, multiplicity_pmf

_log = get_logger(__name__)

DEPOSITION_MODES = ("lut", "direct")

#: Default angular law per particle species: package alphas arrive
#: isotropically, atmospheric protons follow the cosine law.
DEFAULT_DIRECTION_LAWS = {"alpha": "isotropic", "proton": "cosine"}


@dataclass(frozen=True)
class ArrayMcConfig:
    """Knobs of the array-level Monte Carlo."""

    deposition_mode: str = "lut"
    margin_nm: float = 100.0
    chunk_size: int = 8192
    direction_laws: Optional[Dict[str, str]] = None
    #: Largest tracked failure multiplicity (the last PMF bin absorbs
    #: events with >= this many failed cells).
    max_multiplicity: int = 8

    def __post_init__(self):
        if self.deposition_mode not in DEPOSITION_MODES:
            raise ConfigError(
                f"unknown deposition mode {self.deposition_mode!r}"
            )
        if self.margin_nm < 0:
            raise ConfigError("margin cannot be negative")
        if self.chunk_size < 1:
            raise ConfigError("chunk size must be positive")

    def law_for(self, particle_name: str) -> str:
        laws = self.direction_laws or DEFAULT_DIRECTION_LAWS
        return laws.get(particle_name, "isotropic")


@dataclass(frozen=True)
class ArrayPofResult:
    """POF estimates for one (particle, energy, vdd) MC campaign.

    POF values are per *launched* particle (launch window = array +
    margin); ``*_given_hit`` values condition on the track crossing the
    array bounding box, matching Fig. 8's "the particle definitely hits
    the layout" normalization.
    """

    particle_name: str
    energy_mev: float
    vdd_v: float
    n_particles: int
    n_array_hits: int
    n_fin_strikes: int
    pof_total: float
    pof_seu: float
    pof_mbu: float
    launch_area_cm2: float
    #: Expected failure-count distribution per launched particle:
    #: ``multiplicity_pmf[k]`` is the probability that exactly ``k``
    #: cells fail (k = 1..max; index 0 unused -- misses dominate it).
    multiplicity_pmf: Optional[np.ndarray] = None

    @property
    def hit_fraction(self) -> float:
        """Fraction of launched tracks crossing the array bounding box."""
        return self.n_array_hits / self.n_particles

    @property
    def pof_total_given_hit(self) -> float:
        """POF conditional on hitting the array (Fig. 8 normalization)."""
        if self.n_array_hits == 0:
            return 0.0
        return self.pof_total * self.n_particles / self.n_array_hits

    @property
    def pof_seu_given_hit(self) -> float:
        if self.n_array_hits == 0:
            return 0.0
        return self.pof_seu * self.n_particles / self.n_array_hits

    @property
    def pof_mbu_given_hit(self) -> float:
        if self.n_array_hits == 0:
            return 0.0
        return self.pof_mbu * self.n_particles / self.n_array_hits

    @property
    def mbu_to_seu_ratio(self) -> float:
        """MBU/SEU ratio (paper Fig. 10); 0 when no SEUs were seen."""
        return self.pof_mbu / self.pof_seu if self.pof_seu > 0 else 0.0

    def mean_cluster_size(self) -> float:
        """Expected failed-cell count conditional on an upset."""
        if self.multiplicity_pmf is None:
            raise ConfigError("multiplicity tracking was not enabled")
        ks = np.arange(len(self.multiplicity_pmf))
        mass = float(np.sum(self.multiplicity_pmf[1:]))
        if mass <= 0:
            return 0.0
        return float(np.sum(ks * self.multiplicity_pmf)) / mass


class ArraySerSimulator:
    """Runs array-level strike campaigns against one layout + POF table."""

    def __init__(
        self,
        layout: SramArrayLayout,
        pof_table: PofTable,
        yield_luts: Optional[Dict[str, ElectronYieldLUT]] = None,
        config: Optional[ArrayMcConfig] = None,
    ):
        self.layout = layout
        self.pof_table = pof_table
        self.yield_luts = dict(yield_luts) if yield_luts else {}
        self.config = config if config is not None else ArrayMcConfig()
        if self.config.deposition_mode == "lut" and not self.yield_luts:
            raise ConfigError(
                "deposition mode 'lut' needs electron-yield LUTs "
                "(build them with ElectronYieldLUT.build)"
            )
        # flat views used by the kernel: only sensitive fins can produce
        # a failure, so the ray-casting works on that subset directly.
        sensitive = self.layout.fin_strike >= 0
        self._sensitive_boxes = self.layout.packed_boxes[sensitive]
        self._sens_cell = self.layout.fin_cell[sensitive]
        self._sens_strike = self.layout.fin_strike[sensitive]
        self._array_bbox = self.layout.bounding_box()

    def run(
        self,
        particle: ParticleType,
        energy_mev: float,
        vdd_v: float,
        n_particles: int,
        rng: np.random.Generator,
    ) -> ArrayPofResult:
        """Monte Carlo POF of one (particle, energy, vdd) point."""
        if energy_mev <= 0:
            raise ConfigError("energy must be positive")
        if n_particles < 1:
            raise ConfigError("need at least one particle")

        x_range, y_range, z, launch_area = self.layout.launch_window(
            self.config.margin_nm
        )
        law = self.config.law_for(particle.name)

        sum_total = 0.0
        sum_seu = 0.0
        sum_mbu = 0.0
        n_hits = 0
        n_strikes = 0
        pmf_sum = np.zeros(self.config.max_multiplicity + 1)

        metrics = get_registry()
        instrumented = metrics.enabled
        progress = _log.isEnabledFor(logging.DEBUG)
        t0 = time.perf_counter() if (instrumented or progress) else 0.0

        done = 0
        remaining = n_particles
        while remaining > 0:
            batch = min(remaining, self.config.chunk_size)
            remaining -= batch
            rays = sample_rays(batch, rng, x_range, y_range, z, law)
            totals, seus, mbus, hits, strikes, pmf = self._process_batch(
                particle, energy_mev, vdd_v, rays, rng
            )
            sum_total += totals
            sum_seu += seus
            sum_mbu += mbus
            n_hits += hits
            n_strikes += strikes
            pmf_sum += pmf
            done += batch
            if progress:
                elapsed = time.perf_counter() - t0
                _log.debug(
                    "array-mc chunk %s",
                    kv(
                        particle=particle.name,
                        energy_mev=float(energy_mev),
                        vdd=vdd_v,
                        done=done,
                        total=n_particles,
                        hits=n_hits,
                        rays_per_s=done / elapsed if elapsed > 0 else 0.0,
                    ),
                )

        if instrumented:
            self._record_run_metrics(
                metrics, n_particles, n_hits, n_strikes,
                time.perf_counter() - t0,
            )

        return ArrayPofResult(
            particle_name=particle.name,
            energy_mev=float(energy_mev),
            vdd_v=float(vdd_v),
            n_particles=n_particles,
            n_array_hits=n_hits,
            n_fin_strikes=n_strikes,
            pof_total=sum_total / n_particles,
            pof_seu=sum_seu / n_particles,
            pof_mbu=sum_mbu / n_particles,
            launch_area_cm2=launch_area,
            multiplicity_pmf=pmf_sum / n_particles,
        )

    def run_spectrum(
        self,
        particle: ParticleType,
        spectrum,
        vdd_v: float,
        n_particles: int,
        rng: np.random.Generator,
        e_min_mev: float = None,
        e_max_mev: float = None,
    ) -> ArrayPofResult:
        """Continuous-spectrum campaign: each track gets its own energy.

        The exact alternative to the paper's eq. 8 discretization --
        energies are sampled from the spectrum's flux density, so the
        averaged POF folds the spectrum with no binning error.  The
        result's ``pof_*`` values are flux-weighted means; multiply by
        ``spectrum.integral_flux(e_min, e_max) * launch_area`` for the
        event rate (see :func:`repro.ser.fit.fit_from_spectrum_run`).
        """
        if n_particles < 1:
            raise ConfigError("need at least one particle")
        e_min = e_min_mev if e_min_mev is not None else spectrum.e_min_mev
        e_max = e_max_mev if e_max_mev is not None else spectrum.e_max_mev

        x_range, y_range, z, launch_area = self.layout.launch_window(
            self.config.margin_nm
        )
        law = self.config.law_for(particle.name)

        sum_total = sum_seu = sum_mbu = 0.0
        n_hits = 0
        n_strikes = 0
        pmf_sum = np.zeros(self.config.max_multiplicity + 1)

        metrics = get_registry()
        instrumented = metrics.enabled
        progress = _log.isEnabledFor(logging.DEBUG)
        t0 = time.perf_counter() if (instrumented or progress) else 0.0

        done = 0
        remaining = n_particles
        while remaining > 0:
            batch = min(remaining, self.config.chunk_size)
            remaining -= batch
            energies = spectrum.sample_energies(
                batch, rng, e_min_mev=e_min, e_max_mev=e_max
            )
            rays = sample_rays(batch, rng, x_range, y_range, z, law)
            totals, seus, mbus, hits, strikes, pmf = self._process_batch(
                particle, energies, vdd_v, rays, rng
            )
            sum_total += totals
            sum_seu += seus
            sum_mbu += mbus
            n_hits += hits
            n_strikes += strikes
            pmf_sum += pmf
            done += batch
            if progress:
                elapsed = time.perf_counter() - t0
                _log.debug(
                    "array-mc spectrum chunk %s",
                    kv(
                        particle=particle.name,
                        vdd=vdd_v,
                        done=done,
                        total=n_particles,
                        hits=n_hits,
                        rays_per_s=done / elapsed if elapsed > 0 else 0.0,
                    ),
                )

        if instrumented:
            self._record_run_metrics(
                metrics, n_particles, n_hits, n_strikes,
                time.perf_counter() - t0,
            )

        return ArrayPofResult(
            particle_name=particle.name,
            energy_mev=float(np.sqrt(e_min * e_max)),
            vdd_v=float(vdd_v),
            n_particles=n_particles,
            n_array_hits=n_hits,
            n_fin_strikes=n_strikes,
            pof_total=sum_total / n_particles,
            pof_seu=sum_seu / n_particles,
            pof_mbu=sum_mbu / n_particles,
            launch_area_cm2=launch_area,
            multiplicity_pmf=pmf_sum / n_particles,
        )

    # -- instrumentation -------------------------------------------------------

    @staticmethod
    def _record_run_metrics(metrics, n_particles, n_hits, n_strikes, elapsed):
        """Fold one campaign into the registry (enabled state only)."""
        metrics.counter("array_mc.runs").inc()
        metrics.counter("array_mc.particles").inc(n_particles)
        metrics.counter("array_mc.hits").inc(n_hits)
        metrics.counter("array_mc.strikes").inc(n_strikes)
        metrics.timer("array_mc.run").observe(elapsed)
        if elapsed > 0:
            metrics.gauge("array_mc.rays_per_sec").set(n_particles / elapsed)

    # -- kernel ----------------------------------------------------------------

    def _process_batch(self, particle, energy_mev, vdd_v, rays: RayBatch, rng):
        # Cheap prefilter: only tracks crossing the array bounding box
        # can strike a fin; run the expensive per-fin test on those.
        bbox_packed = np.concatenate(
            [self._array_bbox.lo, self._array_bbox.hi]
        )[np.newaxis, :]
        empty_pmf = np.zeros(self.config.max_multiplicity + 1)
        array_hits = chord_lengths(rays, bbox_packed)[:, 0] > 0.0
        n_hits = int(np.sum(array_hits))
        if n_hits == 0:
            return 0.0, 0.0, 0.0, 0, 0, empty_pmf

        hit_rays = RayBatch(
            rays.origins[array_hits], rays.directions[array_hits]
        )
        per_ray_energy = np.broadcast_to(
            np.asarray(energy_mev, dtype=np.float64), (len(rays),)
        )[array_hits]
        chords = chord_lengths(hit_rays, self._sensitive_boxes)

        event_rows = np.nonzero(np.any(chords > 0.0, axis=1))[0]
        if len(event_rows) == 0:
            return 0.0, 0.0, 0.0, n_hits, 0, empty_pmf

        sub = chords[event_rows] > 0.0
        ray_idx, fin_idx = np.nonzero(sub)
        chord_vals = chords[event_rows][ray_idx, fin_idx]
        strike_energies = per_ray_energy[event_rows][ray_idx]
        n_strikes = len(fin_idx)

        pairs = self._pairs_for_strikes(
            particle, strike_energies, chord_vals, rng
        )
        charges = pairs * ELEMENTARY_CHARGE_C

        # accumulate per (event, cell, strike-index)
        n_events = len(event_rows)
        cell_of = self._sens_cell[fin_idx]
        strike_of = self._sens_strike[fin_idx]
        charge_tensor = np.zeros(
            (n_events, self.layout.n_cells, 3), dtype=np.float64
        )
        np.add.at(charge_tensor, (ray_idx, cell_of, strike_of), charges)

        # POF lookup only for (event, cell) pairs with any charge
        cell_mask = np.any(charge_tensor > 0.0, axis=2)
        ev_i, cell_i = np.nonzero(cell_mask)
        pof_cells = np.zeros((n_events, self.layout.n_cells), dtype=np.float64)
        if len(ev_i):
            pof_values = self.pof_table.query(
                vdd_v, charge_tensor[ev_i, cell_i, :]
            )
            pof_cells[ev_i, cell_i] = pof_values

        total, seu, mbu = combine(pof_cells)
        pmf = multiplicity_pmf(
            pof_cells, max_k=self.config.max_multiplicity
        ).sum(axis=0)
        pmf[0] = 0.0  # the k=0 bin is dominated by misses; not tracked
        return (
            float(np.sum(total)),
            float(np.sum(seu)),
            float(np.sum(mbu)),
            n_hits,
            n_strikes,
            pmf,
        )

    def _pairs_for_strikes(self, particle, strike_energies, chord_nm, rng):
        """Electron-hole pair counts for each struck sensitive fin.

        ``strike_energies`` is the per-strike particle energy array
        (constant for mono-energetic campaigns, per-track for spectrum
        sampling).
        """
        if self.config.deposition_mode == "direct":
            deposits = sample_deposits_kev(
                particle, strike_energies, chord_nm, rng
            )
            return sample_pairs(deposits, rng)
        lut = self.yield_luts.get(particle.name)
        if lut is None:
            raise ConfigError(
                f"no electron-yield LUT registered for {particle.name!r}"
            )
        return lut.sample_pairs_many(strike_energies, rng)
