"""Array-level 3-D Monte Carlo (paper Section 5.1).

For each random particle: find the struck fins by ray/box analysis of
the array layout, convert deposits in *sensitive* fins to collected
charges, look the affected cells' POFs up in the SPICE-characterized
:class:`~repro.sram.PofTable`, and combine them into the event's
total/SEU/MBU failure probabilities (eqs. 4-6).  Averaging over the
batch gives the POF of a particle with that energy.

Two charge-deposition modes (DESIGN.md Section 5):

* ``"lut"`` (paper-faithful) -- the pair count of every struck fin is
  drawn from the device-level :class:`~repro.transport.ElectronYieldLUT`
  built with the single-fin Geant4-substitute, mirroring the paper's
  LUT hand-off between levels.
* ``"direct"`` -- deposits are computed from the actual chord through
  each fin (stopping power + straggling), keeping the array geometry
  and the deposit perfectly consistent.

Execution model (docs/performance.md): a campaign is partitioned into
fixed-size *draw blocks* of :data:`DRAW_BLOCK_SIZE` particles.  Block
``i`` always consumes the ``i``-th child stream spawned off the
caller's generator, blocks are bundled into pool tasks of roughly
``chunk_size`` particles, and the per-block partial results are merged
in block order -- so for a fixed seed the campaign result is
bit-identical for any ``n_jobs`` and any ``chunk_size``.
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..backend import BACKENDS, get_backend_instance, resolve_backend
from ..constants import ELEMENTARY_CHARGE_C
from ..errors import ConfigError, WorkerCrashError
from ..geometry import RayBatch, chord_lengths
from ..layout import SramArrayLayout
from ..obs import get_logger, get_registry, kv
from ..obs.convergence import record_bin
from ..parallel import parallel_map, spawn_seeds
from ..physics import (
    ParticleType,
    sample_deposits_kev,
    sample_pairs,
    sample_rays,
)
from ..physics.sampling import sample_directions
from ..sram import PofTable
from ..transport import ElectronYieldLUT
from .pof import _ONE_MINUS_EPS, combine, multiplicity_pmf

_log = get_logger(__name__)

DEPOSITION_MODES = ("lut", "direct")

#: Default angular law per particle species: package alphas arrive
#: isotropically, atmospheric protons follow the cosine law.
DEFAULT_DIRECTION_LAWS = {"alpha": "isotropic", "proton": "cosine"}

#: RNG granularity of a campaign.  Particles are partitioned into draw
#: blocks of this fixed size and each block owns one spawned child
#: stream, so a campaign's random numbers depend only on the seed and
#: ``n_particles`` -- never on ``chunk_size`` or the worker count.
DRAW_BLOCK_SIZE = 4096


@dataclass(frozen=True)
class ArrayMcConfig:
    """Knobs of the array-level Monte Carlo."""

    deposition_mode: str = "lut"
    margin_nm: float = 100.0
    #: Target particles per pool task (rounded up to whole draw
    #: blocks).  A scheduling knob only -- it never changes results.
    chunk_size: int = 8192
    direction_laws: Optional[Dict[str, str]] = None
    #: Largest tracked failure multiplicity (the last PMF bin absorbs
    #: events with >= this many failed cells).
    max_multiplicity: int = 8
    #: Worker processes for campaigns (1 = inline, 0 = one per CPU).
    n_jobs: int = 1
    #: Warm-pool leasing / shared-memory payload plane overrides for
    #: the campaign maps (``None`` = process defaults; see
    #: :mod:`repro.parallel.pool` / :mod:`repro.parallel.shm`).
    #: Execution knobs only -- results are bit-identical either way.
    warm_pool: Optional[bool] = None
    shm: Optional[bool] = None
    #: Array-compute backend for the strike kernel (``None`` = process
    #: default; see :mod:`repro.backend`).  Another pure execution
    #: knob: the numpy path is bit-identical to the inline kernels, so
    #: this never participates in cache keys.
    backend: Optional[str] = None

    def __post_init__(self):
        if self.deposition_mode not in DEPOSITION_MODES:
            raise ConfigError(
                f"unknown deposition mode {self.deposition_mode!r}"
            )
        if self.backend is not None and self.backend not in BACKENDS:
            raise ConfigError(
                f"unknown array backend {self.backend!r}; "
                f"choose from {BACKENDS}"
            )
        if self.margin_nm < 0:
            raise ConfigError("margin cannot be negative")
        if self.chunk_size < 1:
            raise ConfigError("chunk size must be positive")
        if self.n_jobs < 0:
            raise ConfigError("n_jobs cannot be negative (0 means auto)")

    def law_for(self, particle_name: str) -> str:
        laws = self.direction_laws or DEFAULT_DIRECTION_LAWS
        return laws.get(particle_name, "isotropic")


@dataclass(frozen=True)
class ArrayPofResult:
    """POF estimates for one (particle, energy, vdd) MC campaign.

    POF values are per *launched* particle (launch window = array +
    margin); ``*_given_hit`` values condition on the track crossing the
    array bounding box, matching Fig. 8's "the particle definitely hits
    the layout" normalization.
    """

    particle_name: str
    energy_mev: float
    vdd_v: float
    n_particles: int
    n_array_hits: int
    n_fin_strikes: int
    pof_total: float
    pof_seu: float
    pof_mbu: float
    launch_area_cm2: float
    #: Expected failure-count distribution per launched particle:
    #: ``multiplicity_pmf[k]`` is the probability that exactly ``k``
    #: cells fail (k = 1..max; index 0 unused -- misses dominate it).
    multiplicity_pmf: Optional[np.ndarray] = None
    #: True when the campaign lost draw blocks to worker crashes past
    #: the retry budget: the POFs are unbiased means over the blocks
    #: that survived, but ``n_particles`` is smaller than requested, so
    #: convergence standard errors (which scale as ``1/sqrt(n)``) are
    #: correspondingly wider.
    degraded: bool = False
    #: Stratified-sampling metadata (:mod:`repro.ser.adaptive`).  A
    #: shard drawn from a sub-region of the launch window (or a
    #: sub-band of the energy spectrum) carries the stratum's
    #: probability mass in ``weight`` and its name in ``stratum``; its
    #: ``pof_*`` values are then *conditional* on the stratum, and
    #: :meth:`merge` recombines strata as ``sum_s w_s * mean_s`` -- the
    #: exact unbiased estimator for the whole window.  Plain uniform
    #: shards keep ``weight == 1.0`` and ``stratum is None``.
    weight: float = 1.0
    stratum: Optional[str] = None
    #: Set only on results produced by a cross-stratum merge: the
    #: unbiased whole-window hit fraction (``n_array_hits /
    #: n_particles`` would over-count strata that were oversampled) and
    #: the stratified estimator variance ``sum_s w_s^2 p_s (1-p_s) /
    #: n_s`` consumed by
    #: :func:`repro.analysis.convergence.pof_standard_error`.
    hit_fraction_weighted: Optional[float] = None
    pof_variance: Optional[float] = None

    @property
    def hit_fraction(self) -> float:
        """Fraction of launched tracks crossing the array bounding box."""
        if self.hit_fraction_weighted is not None:
            return self.hit_fraction_weighted
        return self.n_array_hits / self.n_particles

    def _given_hit(self, pof_value: float) -> float:
        if self.hit_fraction_weighted is None:
            if self.n_array_hits == 0:
                return 0.0
            return pof_value * self.n_particles / self.n_array_hits
        if self.hit_fraction_weighted <= 0.0:
            return 0.0
        return pof_value / self.hit_fraction_weighted

    @property
    def pof_total_given_hit(self) -> float:
        """POF conditional on hitting the array (Fig. 8 normalization)."""
        return self._given_hit(self.pof_total)

    @property
    def pof_seu_given_hit(self) -> float:
        return self._given_hit(self.pof_seu)

    @property
    def pof_mbu_given_hit(self) -> float:
        return self._given_hit(self.pof_mbu)

    @property
    def mbu_to_seu_ratio(self) -> float:
        """MBU/SEU ratio (paper Fig. 10).

        ``inf`` for an MBU-only campaign (MBU rate with no SEU rate is
        MBU-dominated, not "no MBUs"), ``nan`` when neither event type
        was seen (0/0, ratio undefined).
        """
        if self.pof_seu > 0:
            return self.pof_mbu / self.pof_seu
        return math.inf if self.pof_mbu > 0 else math.nan

    def mean_cluster_size(self) -> float:
        """Expected failed-cell count conditional on an upset."""
        if self.multiplicity_pmf is None:
            raise ConfigError("multiplicity tracking was not enabled")
        ks = np.arange(len(self.multiplicity_pmf))
        mass = float(np.sum(self.multiplicity_pmf[1:]))
        if mass <= 0:
            return 0.0
        return float(np.sum(ks * self.multiplicity_pmf)) / mass

    @classmethod
    def merge(cls, shards: Sequence["ArrayPofResult"]) -> "ArrayPofResult":
        """Combine shard campaigns of one (particle, energy, vdd) point.

        POFs and the multiplicity PMF are particle-count-weighted means;
        hit/strike counts add.  The shards must describe the *same*
        campaign point -- mismatched particle/energy/vdd/launch-window
        shards, or shards whose PMFs were tracked with different
        ``max_multiplicity`` settings, raise :class:`ConfigError`
        instead of silently producing a skewed merge.

        When any shard carries stratified-sampling metadata (``stratum``
        set or ``weight != 1``) the merge switches to the weighted
        estimator: shards are pooled per stratum (in shard order, same
        left-to-right summation as the plain path), the named strata are
        recombined as ``sum_s w_s * mean_s`` (their weights must sum to
        1), and any plain uniform shards are folded in by particle
        count.  The result carries ``pof_variance`` /
        ``hit_fraction_weighted`` and cannot be merged again (re-pooling
        an already-recombined estimate would double-count the weights).
        """
        shards = list(shards)
        if not shards:
            raise ConfigError("cannot merge an empty list of shard results")
        first = shards[0]

        def pmf_len(result):
            pmf = result.multiplicity_pmf
            return None if pmf is None else len(pmf)

        for shard in shards[1:]:
            if shard.particle_name != first.particle_name:
                raise ConfigError(
                    "cannot merge shards of different particles "
                    f"({first.particle_name!r} vs {shard.particle_name!r})"
                )
            if shard.energy_mev != first.energy_mev:
                raise ConfigError(
                    "cannot merge shards of different energies "
                    f"({first.energy_mev} vs {shard.energy_mev} MeV)"
                )
            if shard.vdd_v != first.vdd_v:
                raise ConfigError(
                    "cannot merge shards of different supply voltages "
                    f"({first.vdd_v} vs {shard.vdd_v} V)"
                )
            if shard.launch_area_cm2 != first.launch_area_cm2:
                raise ConfigError(
                    "cannot merge shards with different launch windows"
                )
            if pmf_len(shard) != pmf_len(first):
                raise ConfigError(
                    "cannot merge shards with mismatched max_multiplicity: "
                    f"PMF lengths {pmf_len(first)} vs {pmf_len(shard)}"
                )

        n_total = sum(shard.n_particles for shard in shards)
        if n_total < 1:
            raise ConfigError("merged shards contain no particles")

        weighted = any(
            shard.stratum is not None
            or shard.weight != 1.0
            or shard.pof_variance is not None
            or shard.hit_fraction_weighted is not None
            for shard in shards
        )
        if weighted:
            return cls._merge_weighted(shards, n_total)

        # one vectorized pass over the shard axis; np.cumsum accumulates
        # strictly left-to-right (never pairwise like np.sum), so the
        # float summation order -- and therefore every bit of the
        # result -- matches the historical per-attribute Python loops.
        weights = np.array(
            [shard.n_particles for shard in shards], dtype=np.float64
        )
        pof_stack = np.array(
            [
                [shard.pof_total, shard.pof_seu, shard.pof_mbu]
                for shard in shards
            ],
            dtype=np.float64,
        )
        pof_total, pof_seu, pof_mbu = (
            np.cumsum(pof_stack * weights[:, np.newaxis], axis=0)[-1] / n_total
        )

        if first.multiplicity_pmf is None:
            pmf = None
        else:
            pmf_stack = np.stack(
                [shard.multiplicity_pmf for shard in shards]
            ).astype(np.float64, copy=False)
            pmf = (
                np.cumsum(pmf_stack * weights[:, np.newaxis], axis=0)[-1]
                / n_total
            )

        return cls(
            particle_name=first.particle_name,
            energy_mev=first.energy_mev,
            vdd_v=first.vdd_v,
            n_particles=n_total,
            n_array_hits=sum(shard.n_array_hits for shard in shards),
            n_fin_strikes=sum(shard.n_fin_strikes for shard in shards),
            pof_total=float(pof_total),
            pof_seu=float(pof_seu),
            pof_mbu=float(pof_mbu),
            launch_area_cm2=first.launch_area_cm2,
            multiplicity_pmf=pmf,
            degraded=any(shard.degraded for shard in shards),
        )

    @classmethod
    def _merge_weighted(cls, shards, n_total) -> "ArrayPofResult":
        """Stratified merge: pool per stratum, recombine by weight.

        Estimator: ``pof = sum_s w_s * mean_s`` over the named strata
        (exact unbiased reweighting of the conditional per-stratum
        means), convexly combined by particle count with the pooled
        mean of any plain uniform shards.  Per-group pooling uses the
        same left-to-right ``np.cumsum`` summation as the plain merge,
        so re-sharding within a stratum never changes a bit.
        """
        first = shards[0]
        for shard in shards:
            if (
                shard.pof_variance is not None
                or shard.hit_fraction_weighted is not None
            ):
                raise ConfigError(
                    "cannot re-merge an already stratified-merged result: "
                    "its strata were recombined and the per-stratum "
                    "weights no longer apply"
                )
            if shard.stratum is None and shard.weight != 1.0:
                raise ConfigError(
                    "uniform (stratum=None) shards must have weight 1.0, "
                    f"got {shard.weight!r}"
                )

        groups: Dict[Optional[str], List["ArrayPofResult"]] = {}
        for shard in shards:  # dict preserves first-appearance order
            groups.setdefault(shard.stratum, []).append(shard)

        def pool(members):
            """Particle-count-weighted pooling, exact cumsum order."""
            n = sum(member.n_particles for member in members)
            if n < 1:
                raise ConfigError(
                    f"stratum {members[0].stratum!r} has no particles"
                )
            counts = np.array(
                [member.n_particles for member in members], dtype=np.float64
            )
            stack = np.array(
                [
                    [member.pof_total, member.pof_seu, member.pof_mbu]
                    for member in members
                ],
                dtype=np.float64,
            )
            pofs = np.cumsum(stack * counts[:, np.newaxis], axis=0)[-1] / n
            if first.multiplicity_pmf is None:
                pmf = None
            else:
                pmf_stack = np.stack(
                    [member.multiplicity_pmf for member in members]
                ).astype(np.float64, copy=False)
                pmf = (
                    np.cumsum(pmf_stack * counts[:, np.newaxis], axis=0)[-1]
                    / n
                )
            hits = sum(member.n_array_hits for member in members)
            return n, pofs, pmf, hits

        uniform = groups.pop(None, None)
        if not groups:
            raise ConfigError(
                "weighted merge needs at least one named stratum"
            )
        stratum_weights = {}
        for name, members in groups.items():
            w = members[0].weight
            for member in members[1:]:
                if member.weight != w:
                    raise ConfigError(
                        f"stratum {name!r} shards disagree on weight "
                        f"({w!r} vs {member.weight!r})"
                    )
            if not 0.0 < w <= 1.0:
                raise ConfigError(
                    f"stratum {name!r} weight {w!r} outside (0, 1]"
                )
            stratum_weights[name] = w
        total_w = sum(stratum_weights.values())
        if not math.isclose(total_w, 1.0, rel_tol=1e-6, abs_tol=1e-9):
            raise ConfigError(
                "stratum weights must sum to 1 over the merged shards "
                f"(got {total_w!r} from {sorted(stratum_weights)}); "
                "merge all strata of a campaign point together"
            )

        pmf_shape = (
            None
            if first.multiplicity_pmf is None
            else np.zeros(len(first.multiplicity_pmf), dtype=np.float64)
        )
        n_str = 0
        pof_str = np.zeros(3, dtype=np.float64)
        pmf_str = pmf_shape
        hit_str = 0.0
        var_str = 0.0
        for name, members in groups.items():
            n_g, pofs_g, pmf_g, hits_g = pool(members)
            w = stratum_weights[name]
            n_str += n_g
            pof_str += w * pofs_g
            if pmf_str is not None:
                pmf_str = pmf_str + w * pmf_g
            hit_str += w * (hits_g / n_g)
            p_g = min(max(float(pofs_g[0]), 0.0), 1.0)
            var_str += w * w * p_g * (1.0 - p_g) / n_g

        if uniform is not None:
            n_u, pofs_u, pmf_u, hits_u = pool(uniform)
            lam = n_u / (n_u + n_str)
            pof_vec = lam * pofs_u + (1.0 - lam) * pof_str
            pmf = (
                None
                if pmf_str is None
                else lam * pmf_u + (1.0 - lam) * pmf_str
            )
            hit_frac = lam * (hits_u / n_u) + (1.0 - lam) * hit_str
            p_u = min(max(float(pofs_u[0]), 0.0), 1.0)
            variance = (
                lam * lam * p_u * (1.0 - p_u) / n_u
                + (1.0 - lam) * (1.0 - lam) * var_str
            )
        else:
            pof_vec = pof_str
            pmf = pmf_str
            hit_frac = hit_str
            variance = var_str

        return cls(
            particle_name=first.particle_name,
            energy_mev=first.energy_mev,
            vdd_v=first.vdd_v,
            n_particles=n_total,
            n_array_hits=sum(shard.n_array_hits for shard in shards),
            n_fin_strikes=sum(shard.n_fin_strikes for shard in shards),
            pof_total=float(pof_vec[0]),
            pof_seu=float(pof_vec[1]),
            pof_mbu=float(pof_vec[2]),
            launch_area_cm2=first.launch_area_cm2,
            multiplicity_pmf=pmf,
            degraded=any(shard.degraded for shard in shards),
            hit_fraction_weighted=float(hit_frac),
            pof_variance=float(variance),
        )

    # -- serialization (shard-journal checkpoints) ------------------------

    def to_dict(self) -> dict:
        """JSON-safe representation (exact: floats round-trip)."""
        pmf = self.multiplicity_pmf
        return {
            "kind": "array_pof_result",
            "particle_name": self.particle_name,
            "energy_mev": float(self.energy_mev),
            "vdd_v": float(self.vdd_v),
            "n_particles": int(self.n_particles),
            "n_array_hits": int(self.n_array_hits),
            "n_fin_strikes": int(self.n_fin_strikes),
            "pof_total": float(self.pof_total),
            "pof_seu": float(self.pof_seu),
            "pof_mbu": float(self.pof_mbu),
            "launch_area_cm2": float(self.launch_area_cm2),
            "multiplicity_pmf": (
                None if pmf is None else np.asarray(pmf).tolist()
            ),
            "degraded": bool(self.degraded),
            "weight": float(self.weight),
            "stratum": self.stratum,
            "hit_fraction_weighted": (
                None
                if self.hit_fraction_weighted is None
                else float(self.hit_fraction_weighted)
            ),
            "pof_variance": (
                None if self.pof_variance is None else float(self.pof_variance)
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ArrayPofResult":
        """Inverse of :meth:`to_dict`."""
        if payload.get("kind") != "array_pof_result":
            raise ConfigError("payload is not an array POF result")
        pmf = payload.get("multiplicity_pmf")
        return cls(
            particle_name=payload["particle_name"],
            energy_mev=float(payload["energy_mev"]),
            vdd_v=float(payload["vdd_v"]),
            n_particles=int(payload["n_particles"]),
            n_array_hits=int(payload["n_array_hits"]),
            n_fin_strikes=int(payload["n_fin_strikes"]),
            pof_total=float(payload["pof_total"]),
            pof_seu=float(payload["pof_seu"]),
            pof_mbu=float(payload["pof_mbu"]),
            launch_area_cm2=float(payload["launch_area_cm2"]),
            multiplicity_pmf=(
                None if pmf is None else np.asarray(pmf, dtype=np.float64)
            ),
            degraded=bool(payload.get("degraded", False)),
            # pre-stratification journals omit these keys entirely
            weight=float(payload.get("weight", 1.0)),
            stratum=payload.get("stratum"),
            hit_fraction_weighted=(
                None
                if payload.get("hit_fraction_weighted") is None
                else float(payload["hit_fraction_weighted"])
            ),
            pof_variance=(
                None
                if payload.get("pof_variance") is None
                else float(payload["pof_variance"])
            ),
        )


def _draw_blocks(n_particles: int) -> List[int]:
    """The fixed partition of a campaign into draw-block sizes."""
    full, rest = divmod(n_particles, DRAW_BLOCK_SIZE)
    blocks = [DRAW_BLOCK_SIZE] * full
    if rest:
        blocks.append(rest)
    return blocks


def _bundle_tasks(blocks, seeds, chunk_size: int):
    """Group (size, seed) draw blocks into pool tasks of ~chunk_size."""
    per_task = max(1, math.ceil(chunk_size / DRAW_BLOCK_SIZE))
    pairs = list(zip(blocks, seeds))
    return [pairs[i : i + per_task] for i in range(0, len(pairs), per_task)]


def _sample_stratum_rays(n, rng, rects, z, law) -> RayBatch:
    """Launch rays uniformly over a union of disjoint rectangles.

    ``rects`` is a sequence of ``(x_lo, x_hi, y_lo, y_hi)`` launch-plane
    rectangles making up one position stratum; a rectangle is picked
    per ray with probability proportional to its area, then the origin
    is uniform within it -- i.e. uniform over the union.  Directions
    use the same angular law as unstratified sampling.
    """
    rects = np.asarray(rects, dtype=np.float64).reshape(-1, 4)
    areas = (rects[:, 1] - rects[:, 0]) * (rects[:, 3] - rects[:, 2])
    total = float(np.sum(areas))
    if total <= 0.0:
        raise ConfigError("position stratum has zero launch area")
    if len(rects) == 1:
        idx = np.zeros(n, dtype=np.intp)
    else:
        idx = rng.choice(len(rects), size=n, p=areas / total)
    u = rng.random((n, 2))
    origins = np.empty((n, 3), dtype=np.float64)
    origins[:, 0] = rects[idx, 0] + u[:, 0] * (rects[idx, 1] - rects[idx, 0])
    origins[:, 1] = rects[idx, 2] + u[:, 1] * (rects[idx, 3] - rects[idx, 2])
    origins[:, 2] = z
    return RayBatch(origins, sample_directions(n, rng, law))


def _array_task(payload, task):
    """Pool worker: run the task's draw blocks, in order."""
    simulator = payload["simulator"]
    return [simulator._run_block(payload, size, seed) for size, seed in task]


def array_shard_encode(result) -> list:
    """JSON-safe encoding of one pool task's draw-block results."""
    return [block.to_dict() for block in result]


def array_shard_decode(payload: list) -> list:
    """Inverse of :func:`array_shard_encode` (exact round-trip)."""
    return [ArrayPofResult.from_dict(entry) for entry in payload]


class ArraySerSimulator:
    """Runs array-level strike campaigns against one layout + POF table."""

    def __init__(
        self,
        layout: SramArrayLayout,
        pof_table: PofTable,
        yield_luts: Optional[Dict[str, ElectronYieldLUT]] = None,
        config: Optional[ArrayMcConfig] = None,
    ):
        self.layout = layout
        self.pof_table = pof_table
        self.yield_luts = dict(yield_luts) if yield_luts else {}
        self.config = config if config is not None else ArrayMcConfig()
        if self.config.deposition_mode == "lut" and not self.yield_luts:
            raise ConfigError(
                "deposition mode 'lut' needs electron-yield LUTs "
                "(build them with ElectronYieldLUT.build)"
            )
        # flat views used by the kernel: only sensitive fins can produce
        # a failure, so the ray-casting works on that subset directly.
        sensitive = self.layout.fin_strike >= 0
        self._sensitive_boxes = self.layout.packed_boxes[sensitive]
        self._sens_cell = self.layout.fin_cell[sensitive]
        self._sens_strike = self.layout.fin_strike[sensitive]
        self._array_bbox = self.layout.bounding_box()
        # chunk-invariant kernel inputs, hoisted out of the hot loop
        self._bbox_packed = np.concatenate(
            [self._array_bbox.lo, self._array_bbox.hi]
        )[np.newaxis, :]
        self._empty_pmf = np.zeros(self.config.max_multiplicity + 1)
        # resolve the array backend once, to a *name*: instances hold
        # unpicklable state (JIT kernels, device caches), so workers
        # receive the string and look the shared instance up lazily.
        self._backend_name = resolve_backend(self.config.backend)

    def _xp(self):
        """The resolved array-compute backend instance (lazy lookup)."""
        return get_backend_instance(self._backend_name)

    def run(
        self,
        particle: ParticleType,
        energy_mev: float,
        vdd_v: float,
        n_particles: int,
        rng: np.random.Generator,
        retry=None,
        journal=None,
    ) -> ArrayPofResult:
        """Monte Carlo POF of one (particle, energy, vdd) point.

        ``retry`` / ``journal`` are the fault-tolerance knobs of
        :func:`repro.parallel.parallel_map`: a
        :class:`~repro.parallel.RetryPolicy` for transient worker loss
        and an optional :class:`~repro.parallel.ShardJournal`
        checkpoint (construct it with :func:`array_shard_encode` /
        :func:`array_shard_decode`) so an interrupted campaign resumes
        bit-identically.
        """
        if energy_mev <= 0:
            raise ConfigError("energy must be positive")
        return self._run_campaign(
            particle,
            float(energy_mev),
            vdd_v,
            n_particles,
            rng,
            spectrum=None,
            e_range=None,
            retry=retry,
            journal=journal,
        )

    def run_spectrum(
        self,
        particle: ParticleType,
        spectrum,
        vdd_v: float,
        n_particles: int,
        rng: np.random.Generator,
        e_min_mev: Optional[float] = None,
        e_max_mev: Optional[float] = None,
        retry=None,
        journal=None,
    ) -> ArrayPofResult:
        """Continuous-spectrum campaign: each track gets its own energy.

        The exact alternative to the paper's eq. 8 discretization --
        energies are sampled from the spectrum's flux density, so the
        averaged POF folds the spectrum with no binning error.  The
        result's ``pof_*`` values are flux-weighted means; multiply by
        ``spectrum.integral_flux(e_min, e_max) * launch_area`` for the
        event rate (see :func:`repro.ser.fit.fit_from_spectrum_run`).
        """
        e_min = e_min_mev if e_min_mev is not None else spectrum.e_min_mev
        e_max = e_max_mev if e_max_mev is not None else spectrum.e_max_mev
        return self._run_campaign(
            particle,
            float(np.sqrt(e_min * e_max)),
            vdd_v,
            n_particles,
            rng,
            spectrum=spectrum,
            e_range=(float(e_min), float(e_max)),
            retry=retry,
            journal=journal,
        )

    # -- campaign execution ----------------------------------------------------

    def _run_campaign(
        self,
        particle,
        energy_mev,
        vdd_v,
        n_particles,
        rng,
        spectrum,
        e_range,
        retry=None,
        journal=None,
    ) -> ArrayPofResult:
        if n_particles < 1:
            raise ConfigError("need at least one particle")

        window = self.layout.launch_window(self.config.margin_nm)
        blocks = _draw_blocks(n_particles)
        seeds = spawn_seeds(rng, len(blocks))
        tasks = _bundle_tasks(blocks, seeds, self.config.chunk_size)
        payload = {
            "simulator": self,
            "particle": particle,
            "energy_mev": float(energy_mev),
            "vdd_v": float(vdd_v),
            "window": window,
            "law": self.config.law_for(particle.name),
            "spectrum": spectrum,
            "e_range": e_range,
        }

        metrics = get_registry()
        t0 = time.perf_counter()
        with metrics.time("array_mc.run"):
            nested = parallel_map(
                _array_task,
                tasks,
                payload=payload,
                n_jobs=self.config.n_jobs,
                label="array_mc",
                retry=retry,
                journal=journal,
                # ~2 us per particle: tiny campaigns skip pool spin-up
                cost_hint_s=2.0e-6 * n_particles / max(len(tasks), 1),
                warm_pool=self.config.warm_pool,
                shm=self.config.shm,
            )
            lost = sum(1 for group in nested if group is None)
            with metrics.time("array_mc.merge"):
                block_results = [
                    result
                    for group in nested
                    if group is not None
                    for result in group
                ]
                if not block_results:
                    raise WorkerCrashError(
                        "array MC campaign lost every draw block to "
                        "worker crashes; nothing to merge"
                    )
                merged = ArrayPofResult.merge(block_results)
            if lost:
                merged = dataclasses.replace(merged, degraded=True)
                _log.warning(
                    "array MC campaign degraded %s",
                    kv(
                        particle=particle.name,
                        energy_mev=float(energy_mev),
                        vdd=float(vdd_v),
                        lost_tasks=lost,
                        total_tasks=len(tasks),
                        particles=f"{merged.n_particles}/{n_particles}",
                    ),
                )
            elif journal is not None:
                journal.clear()
        elapsed = time.perf_counter() - t0

        if metrics.enabled:
            self._record_run_metrics(
                metrics,
                merged.n_particles,
                merged.n_array_hits,
                merged.n_fin_strikes,
                elapsed,
            )
        record_bin(
            "array-mc",
            trials=int(merged.n_particles),
            pof=float(merged.pof_total),
            particle=merged.particle_name,
            vdd_v=float(merged.vdd_v),
            energy_mev=(
                float(merged.energy_mev)
                if merged.energy_mev is not None
                else None
            ),
        )
        return merged

    def _run_block(self, payload, block_size: int, seed) -> ArrayPofResult:
        """One draw block: sample, strike, combine -- with its own stream.

        An optional ``payload["stratum"]`` dict (see
        :mod:`repro.ser.adaptive`) restricts the block to one sampling
        stratum: ``rects`` confines launch positions to a union of
        launch-plane rectangles and ``e_range`` overrides the spectrum
        sub-band.  The block result then reports the stratum's name and
        probability ``weight`` so :meth:`ArrayPofResult.merge` can
        reweight it exactly; its POF values are conditional on the
        stratum (``launch_area_cm2`` still names the full window).
        """
        rng = np.random.default_rng(seed)
        x_range, y_range, z, launch_area = payload["window"]
        stratum = payload.get("stratum")
        spectrum = payload["spectrum"]
        if spectrum is not None:
            e_min, e_max = payload["e_range"]
            if stratum is not None and stratum.get("e_range") is not None:
                e_min, e_max = stratum["e_range"]
            energy = spectrum.sample_energies(
                block_size, rng, e_min_mev=e_min, e_max_mev=e_max
            )
        else:
            energy = payload["energy_mev"]
        if stratum is not None and stratum.get("rects") is not None:
            rays = _sample_stratum_rays(
                block_size, rng, stratum["rects"], z, payload["law"]
            )
        else:
            rays = sample_rays(
                block_size, rng, x_range, y_range, z, payload["law"]
            )
        totals, seus, mbus, hits, strikes, pmf = self._process_batch(
            payload["particle"], energy, payload["vdd_v"], rays, rng
        )
        _log.debug(
            "array-mc block %s",
            kv(
                particle=payload["particle"].name,
                energy_mev=payload["energy_mev"],
                vdd=payload["vdd_v"],
                particles=block_size,
                hits=hits,
                strikes=strikes,
            ),
        )
        return ArrayPofResult(
            particle_name=payload["particle"].name,
            energy_mev=payload["energy_mev"],
            vdd_v=payload["vdd_v"],
            n_particles=block_size,
            n_array_hits=hits,
            n_fin_strikes=strikes,
            pof_total=totals / block_size,
            pof_seu=seus / block_size,
            pof_mbu=mbus / block_size,
            launch_area_cm2=launch_area,
            multiplicity_pmf=pmf / block_size,
            weight=(1.0 if stratum is None else float(stratum["weight"])),
            stratum=(None if stratum is None else stratum["name"]),
        )

    # -- instrumentation -------------------------------------------------------

    def _record_run_metrics(
        self, metrics, n_particles, n_hits, n_strikes, elapsed
    ):
        """Fold one campaign into the registry (enabled state only)."""
        metrics.counter("array_mc.runs").inc()
        metrics.counter("array_mc.particles").inc(n_particles)
        metrics.counter("array_mc.hits").inc(n_hits)
        metrics.counter("array_mc.strikes").inc(n_strikes)
        metrics.counter(f"backend.runs.{self._backend_name}").inc()
        if elapsed > 0:
            metrics.gauge("array_mc.rays_per_sec").set(n_particles / elapsed)

    # -- kernel ----------------------------------------------------------------

    def _gather_strikes(self, particle, energy_mev, rays: RayBatch, rng):
        """Shared front half of both kernels: rays -> per-strike charges.

        Returns ``(n_hits, n_strikes, n_events, strikes)`` where
        ``strikes`` is ``(ray_idx, cell_of, strike_of, charges)`` or
        ``None`` when the batch produced no fin strikes.  Consumes the
        generator identically in both kernel variants, so dense and
        sparse runs of the same seed see the same physics.
        """
        # Cheap prefilter: only tracks crossing the array bounding box
        # can strike a fin; run the expensive per-fin test on those.
        array_hits = chord_lengths(rays, self._bbox_packed)[:, 0] > 0.0
        n_hits = int(np.sum(array_hits))
        if n_hits == 0:
            return 0, 0, 0, None

        hit_rays = RayBatch(
            rays.origins[array_hits], rays.directions[array_hits]
        )
        per_ray_energy = np.broadcast_to(
            np.asarray(energy_mev, dtype=np.float64), (len(rays),)
        )[array_hits]
        chords = chord_lengths(hit_rays, self._sensitive_boxes)

        event_rows = np.nonzero(np.any(chords > 0.0, axis=1))[0]
        if len(event_rows) == 0:
            return n_hits, 0, 0, None

        sub_chords = chords[event_rows]
        ray_idx, fin_idx = np.nonzero(sub_chords > 0.0)
        chord_vals = sub_chords[ray_idx, fin_idx]
        strike_energies = per_ray_energy[event_rows][ray_idx]

        pairs = self._pairs_for_strikes(
            particle, strike_energies, chord_vals, rng
        )
        charges = pairs * ELEMENTARY_CHARGE_C
        strikes = (
            ray_idx,
            self._sens_cell[fin_idx],
            self._sens_strike[fin_idx],
            charges,
        )
        return n_hits, len(fin_idx), len(event_rows), strikes

    def _process_batch(self, particle, energy_mev, vdd_v, rays: RayBatch, rng):
        """Sparse strike kernel: group strikes by (event, cell) key.

        Never allocates the dense ``(n_events, n_cells, 3)`` charge
        tensor of :meth:`_process_batch_dense` -- strikes are folded
        into per-(event, cell) charge triples via the backend's
        ``unique``/``scatter_add`` primitives, the POF table is queried
        only on touched cells, and eqs. 4-6 plus the multiplicity PMF
        are evaluated with the backend's segmented reductions over the
        touched set (:mod:`repro.backend`; numpy path bit-identical to
        the historical inline kernel).
        """
        n_hits, n_strikes, n_events, strikes = self._gather_strikes(
            particle, energy_mev, rays, rng
        )
        if strikes is None:
            return 0.0, 0.0, 0.0, n_hits, n_strikes, self._empty_pmf.copy()
        ray_idx, cell_of, strike_of, charges = strikes
        xp = self._xp()

        # one row per touched (event, cell) pair; unique sorts the
        # keys, so rows come out event-major with cells ascending --
        # the same per-event cell order the dense kernel reduces in.
        key = ray_idx.astype(np.int64) * self.layout.n_cells + cell_of
        unique_keys, inverse = xp.unique_inverse(xp.asarray(key))
        cell_charges = xp.zeros((len(unique_keys), 3), dtype=np.float64)
        xp.scatter_add(
            cell_charges, (inverse, xp.asarray(strike_of)), xp.asarray(charges)
        )

        # POF lookup only for pairs that actually collected charge;
        # the table query is scipy-backed, so this is a host boundary.
        cell_charges_h = xp.to_numpy(cell_charges)
        touched = np.any(cell_charges_h > 0.0, axis=1)
        if not np.any(touched):
            return 0.0, 0.0, 0.0, n_hits, n_strikes, self._empty_pmf.copy()
        pof = self.pof_table.query(vdd_v, cell_charges_h[touched])
        event_of = xp.to_numpy(unique_keys)[touched] // self.layout.n_cells

        # segmented eqs. 4-6 over each event's touched cells
        starts = np.flatnonzero(
            np.r_[True, event_of[1:] != event_of[:-1]]
        )
        pof_x = xp.asarray(pof)
        starts_x = xp.asarray(starts)
        total, seu, mbu = xp.segment_combine(pof_x, starts_x, _ONE_MINUS_EPS)

        pmf = xp.to_numpy(
            xp.segment_multiplicity(
                pof_x, starts_x, self.config.max_multiplicity
            )
        )
        pmf[0] = 0.0  # the k=0 bin is dominated by misses; not tracked
        return (
            float(np.sum(xp.to_numpy(total))),
            float(np.sum(xp.to_numpy(seu))),
            float(np.sum(xp.to_numpy(mbu))),
            n_hits,
            n_strikes,
            pmf,
        )

    def _sparse_multiplicity(self, pof, starts) -> np.ndarray:
        """Summed Poisson-binomial PMF over variable-size event groups.

        The dynamic program of :func:`repro.ser.pof.multiplicity_pmf`
        run rank-by-rank (see
        :meth:`repro.backend.NumpyBackend.segment_multiplicity`, where
        the kernel now lives); delegates to the resolved backend.
        """
        xp = self._xp()
        return xp.to_numpy(
            xp.segment_multiplicity(
                xp.asarray(pof),
                xp.asarray(starts),
                self.config.max_multiplicity,
            )
        )

    def _process_batch_dense(
        self, particle, energy_mev, vdd_v, rays: RayBatch, rng
    ):
        """Reference kernel materializing the dense charge tensor.

        Kept for regression tests and the ``benchmarks/perf`` harness;
        allocates ``(n_events, n_cells, 3)`` per batch, which the
        sparse :meth:`_process_batch` exists to avoid.
        """
        n_hits, n_strikes, n_events, strikes = self._gather_strikes(
            particle, energy_mev, rays, rng
        )
        if strikes is None:
            return 0.0, 0.0, 0.0, n_hits, n_strikes, self._empty_pmf.copy()
        ray_idx, cell_of, strike_of, charges = strikes

        charge_tensor = np.zeros(
            (n_events, self.layout.n_cells, 3), dtype=np.float64
        )
        np.add.at(charge_tensor, (ray_idx, cell_of, strike_of), charges)

        cell_mask = np.any(charge_tensor > 0.0, axis=2)
        ev_i, cell_i = np.nonzero(cell_mask)
        pof_cells = np.zeros((n_events, self.layout.n_cells), dtype=np.float64)
        if len(ev_i):
            pof_values = self.pof_table.query(
                vdd_v, charge_tensor[ev_i, cell_i, :]
            )
            pof_cells[ev_i, cell_i] = pof_values

        total, seu, mbu = combine(pof_cells)
        pmf = multiplicity_pmf(
            pof_cells, max_k=self.config.max_multiplicity
        ).sum(axis=0)
        pmf[0] = 0.0
        return (
            float(np.sum(total)),
            float(np.sum(seu)),
            float(np.sum(mbu)),
            n_hits,
            n_strikes,
            pmf,
        )

    def _pairs_for_strikes(self, particle, strike_energies, chord_nm, rng):
        """Electron-hole pair counts for each struck sensitive fin.

        ``strike_energies`` is the per-strike particle energy array
        (constant for mono-energetic campaigns, per-track for spectrum
        sampling).
        """
        if self.config.deposition_mode == "direct":
            deposits = sample_deposits_kev(
                particle, strike_energies, chord_nm, rng
            )
            return sample_pairs(deposits, rng)
        lut = self.yield_luts.get(particle.name)
        if lut is None:
            raise ConfigError(
                f"no electron-yield LUT registered for {particle.name!r}"
            )
        return lut.sample_pairs_many(strike_energies, rng)
