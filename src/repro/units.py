"""Unit conventions and conversion helpers.

The library uses a small set of canonical units chosen to keep numbers
near unity in each domain:

========================  =======================================
Quantity                  Canonical unit
========================  =======================================
Particle kinetic energy   MeV
Microscopic deposit       eV (pair creation), keV (chord deposits)
Device geometry           nanometre (nm)
Bulk path length          centimetre (cm)
Mass stopping power       MeV cm^2 / g
Linear stopping power     MeV / cm   (helpers for keV/nm)
Charge                    coulomb (C); femtocoulomb helpers
Time                      second (s); ns/ps/fs helpers
Flux                      1 / (cm^2 s)  [differential: per MeV]
SER                       FIT (failures per 1e9 device hours)
========================  =======================================

Only plain ``float``/``numpy`` values are passed around -- no unit
wrapper objects -- so these helpers are the single place conversions
live.  Every function is trivially invertible and round-trip tested.
"""

from __future__ import annotations

# --- energy -----------------------------------------------------------

EV_PER_MEV = 1.0e6
EV_PER_KEV = 1.0e3
KEV_PER_MEV = 1.0e3


def mev_to_ev(energy_mev):
    """Convert MeV to eV."""
    return energy_mev * EV_PER_MEV


def ev_to_mev(energy_ev):
    """Convert eV to MeV."""
    return energy_ev / EV_PER_MEV


def mev_to_kev(energy_mev):
    """Convert MeV to keV."""
    return energy_mev * KEV_PER_MEV


def kev_to_mev(energy_kev):
    """Convert keV to MeV."""
    return energy_kev / KEV_PER_MEV


# --- length -----------------------------------------------------------

NM_PER_CM = 1.0e7
NM_PER_UM = 1.0e3
CM_PER_M = 1.0e2


def nm_to_cm(length_nm):
    """Convert nanometres to centimetres."""
    return length_nm / NM_PER_CM


def cm_to_nm(length_cm):
    """Convert centimetres to nanometres."""
    return length_cm * NM_PER_CM


def nm_to_um(length_nm):
    """Convert nanometres to micrometres."""
    return length_nm / NM_PER_UM


def um_to_nm(length_um):
    """Convert micrometres to nanometres."""
    return length_um * NM_PER_UM


def m2_to_cm2(area_m2):
    """Convert square metres to square centimetres."""
    return area_m2 * CM_PER_M * CM_PER_M


def cm2_to_m2(area_cm2):
    """Convert square centimetres to square metres."""
    return area_cm2 / (CM_PER_M * CM_PER_M)


# --- stopping power ---------------------------------------------------


def mass_to_linear_stopping(mass_stopping_mev_cm2_g, density_g_cm3):
    """Convert mass stopping power [MeV cm^2/g] to linear [MeV/cm]."""
    return mass_stopping_mev_cm2_g * density_g_cm3


def linear_stopping_to_kev_per_nm(linear_stopping_mev_cm):
    """Convert linear stopping power [MeV/cm] to [keV/nm]."""
    return linear_stopping_mev_cm * KEV_PER_MEV / NM_PER_CM


def kev_per_nm_to_mev_per_cm(stopping_kev_nm):
    """Convert linear stopping power [keV/nm] to [MeV/cm]."""
    return stopping_kev_nm / KEV_PER_MEV * NM_PER_CM


# --- charge -----------------------------------------------------------

FC_PER_C = 1.0e15


def coulomb_to_fc(charge_c):
    """Convert coulomb to femtocoulomb."""
    return charge_c * FC_PER_C


def fc_to_coulomb(charge_fc):
    """Convert femtocoulomb to coulomb."""
    return charge_fc / FC_PER_C


# --- time -------------------------------------------------------------

S_PER_NS = 1.0e-9
S_PER_PS = 1.0e-12
S_PER_FS = 1.0e-15


def ns_to_s(time_ns):
    """Convert nanoseconds to seconds."""
    return time_ns * S_PER_NS


def s_to_ns(time_s):
    """Convert seconds to nanoseconds."""
    return time_s / S_PER_NS


def ps_to_s(time_ps):
    """Convert picoseconds to seconds."""
    return time_ps * S_PER_PS


def fs_to_s(time_fs):
    """Convert femtoseconds to seconds."""
    return time_fs * S_PER_FS


# --- rates ------------------------------------------------------------

SECONDS_PER_HOUR = 3600.0


def per_hour_to_per_second(rate_per_hour):
    """Convert a rate per hour to per second."""
    return rate_per_hour / SECONDS_PER_HOUR


def per_second_to_fit(rate_per_second):
    """Convert an event rate [1/s] to FIT (events per 1e9 hours)."""
    return rate_per_second * SECONDS_PER_HOUR * 1.0e9


def fit_to_per_second(rate_fit):
    """Convert FIT to an event rate [1/s]."""
    return rate_fit / (SECONDS_PER_HOUR * 1.0e9)
