"""Human-readable reporting of flow results (text tables/series).

The paper reports everything normalized; these helpers render the same
rows/series the evaluation section shows, normalized the same way.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..ser import FitResult, SerSweep


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Plain ASCII table with right-aligned numeric columns."""
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float) or isinstance(value, np.floating):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def fit_report(sweep: SerSweep, normalize: bool = True) -> str:
    """Fig. 9-style table: FIT vs Vdd per particle (normalized)."""
    particles = sweep.particles()
    all_fits = [
        sweep.get(p, v).fit_total
        for p in particles
        for v in sweep.vdd_values(p)
    ]
    reference = max(all_fits) if (normalize and all_fits) else 1.0
    reference = reference if reference > 0 else 1.0

    rows = []
    for particle in particles:
        for vdd in sweep.vdd_values(particle):
            result = sweep.get(particle, vdd)
            rows.append(
                [
                    particle,
                    vdd,
                    result.fit_total / reference,
                    result.fit_seu / reference,
                    result.fit_mbu / reference,
                    100.0 * result.mbu_to_seu_ratio,
                ]
            )
    return format_table(
        ["particle", "Vdd [V]", "SER (norm)", "SEU (norm)", "MBU (norm)", "MBU/SEU [%]"],
        rows,
    )


def pof_energy_report(results, normalize: bool = True) -> str:
    """Fig. 8-style table: POF (given array hit) vs energy."""
    pofs = np.array([r.pof_total_given_hit for r in results])
    reference = float(np.max(pofs)) if normalize and np.any(pofs > 0) else 1.0
    rows = [
        [r.particle_name, r.vdd_v, r.energy_mev, p / reference]
        for r, p in zip(results, pofs)
    ]
    return format_table(
        ["particle", "Vdd [V]", "E [MeV]", "POF (norm)"], rows
    )


def comparison_report(
    label_a: str,
    sweep_a: SerSweep,
    label_b: str,
    sweep_b: SerSweep,
    particle: str,
) -> str:
    """Fig. 11-style table: two sweeps side by side with their ratio."""
    vdds = sweep_a.vdd_values(particle)
    rows = []
    for vdd in vdds:
        fit_a = sweep_a.get(particle, vdd).fit_total
        fit_b = sweep_b.get(particle, vdd).fit_total
        ratio = fit_a / fit_b if fit_b > 0 else float("inf")
        rows.append([vdd, fit_a, fit_b, ratio])
    return format_table(
        ["Vdd [V]", f"SER {label_a}", f"SER {label_b}", f"{label_a}/{label_b}"],
        rows,
    )
