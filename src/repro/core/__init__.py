"""The paper's cross-layer flow: orchestration and reporting."""

from .flow import DEFAULT_ENERGY_RANGES, FlowConfig, SerFlow
from .paper_report import generate_report, write_report
from .report import (
    comparison_report,
    fit_report,
    format_table,
    pof_energy_report,
)

__all__ = [
    "FlowConfig",
    "SerFlow",
    "DEFAULT_ENERGY_RANGES",
    "fit_report",
    "pof_energy_report",
    "comparison_report",
    "format_table",
    "generate_report",
    "write_report",
]
