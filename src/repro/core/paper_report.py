"""One-shot markdown reproduction report.

``repro-ser report`` regenerates the paper's evaluation (Figs. 8-10 and
the Fig. 11 comparison) at the configured scale and writes a single
self-describing markdown document -- the artifact to attach to a
reproduction claim.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Optional, Union

from ..analysis import fig8_pof_vs_energy, fig9_fit_vs_vdd, fig10_mbu_seu
from .flow import SerFlow


def _md_table(headers, rows) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        cells = [
            f"{c:.4g}" if isinstance(c, float) else str(c) for c in row
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def generate_report(
    flow: SerFlow,
    include_pv_comparison: bool = True,
    fig8_particles: Optional[int] = None,
) -> str:
    """Run the evaluation campaign and render it as markdown."""
    sweep = flow.sweep()

    sections = [
        "# Reproduction report",
        "",
        "Cross-layer SER analysis of an SOI FinFET SRAM array "
        "(Kiamehr et al., DAC 2014 reproduction).",
        "",
        "## Configuration",
        "",
        _md_table(
            ["setting", "value"],
            [
                ("array", f"{flow.config.array_rows} x {flow.config.array_cols}"),
                ("data pattern", flow.config.data_pattern),
                ("particles", ", ".join(flow.config.particles)),
                ("Vdd grid [V]", ", ".join(f"{v:g}" for v in flow.config.vdd_list)),
                ("MC particles / bin", flow.config.mc_particles_per_bin),
                ("energy bins", flow.config.n_energy_bins),
                ("variation samples", flow.config.characterization.n_samples),
                ("process variation", flow.config.process_variation),
                ("deposition mode", flow.config.deposition_mode),
                ("node capacitance [fF]", flow.design.tech.node_cap_f * 1e15),
                ("sigma(Vth) [mV]", flow.design.tech.sigma_vth_v * 1e3),
            ],
        ),
        "",
        "## Fig. 9 -- normalized FIT vs Vdd",
        "",
    ]

    fig9 = fig9_fit_vs_vdd(sweep)
    rows = []
    vdds = fig9[flow.config.particles[0]].x
    for i, vdd in enumerate(vdds):
        rows.append(
            [f"{vdd:.2f}"]
            + [float(fig9[p].y[i]) for p in flow.config.particles]
        )
    sections.append(
        _md_table(["Vdd [V]"] + [f"{p} (norm)" for p in flow.config.particles], rows)
    )

    sections += ["", "## Fig. 10 -- MBU/SEU [%] vs Vdd", ""]
    fig10 = fig10_mbu_seu(sweep)
    rows = []
    for i, vdd in enumerate(vdds):
        rows.append(
            [f"{vdd:.2f}"]
            + [float(fig10[p].y[i]) for p in flow.config.particles]
        )
    sections.append(
        _md_table(["Vdd [V]"] + [f"{p} [%]" for p in flow.config.particles], rows)
    )

    sections += ["", "## Fig. 8 -- normalized POF vs energy (given array hit)", ""]
    fig8 = fig8_pof_vs_energy(flow, n_particles=fig8_particles)
    keys = sorted(fig8)
    energies = fig8[keys[0]].x
    rows = []
    for i, energy in enumerate(energies):
        rows.append(
            [f"{energy:g}"] + [float(fig8[k].y[i]) for k in keys]
        )
    sections.append(
        _md_table(
            ["E [MeV]"] + [f"{p} @{v:g}V" for (p, v) in keys], rows
        )
    )

    if include_pv_comparison and "alpha" in flow.config.particles:
        sections += ["", "## Fig. 11 -- process variation (alpha)", ""]
        nominal_flow = SerFlow(
            dataclasses.replace(
                flow.config, process_variation=False, particles=("alpha",)
            ),
            design=flow.design,
            cache_dir=None,
        )
        rows = []
        for vdd in flow.config.vdd_list:
            # both flows share the config seed, so each (vdd) fit sees
            # the same MC stream -- common random numbers by design
            with_pv = flow.fit("alpha", float(vdd)).fit_total
            without = nominal_flow.fit("alpha", float(vdd)).fit_total
            ratio = with_pv / without if without > 0 else float("inf")
            rows.append([f"{vdd:.2f}", with_pv, without, ratio])
        sections.append(
            _md_table(
                ["Vdd [V]", "SER with PV", "SER nominal", "PV/nominal"], rows
            )
        )

    sections += [
        "",
        "---",
        "Shapes to check against the paper: SER rises at low Vdd; the "
        "proton curve falls far faster than alpha; alpha MBU/SEU sits "
        "at a few percent with proton far below; POF(alpha) >> "
        "POF(proton) at equal energy.  See EXPERIMENTS.md for the "
        "acceptance criteria and the recorded deviations.",
        "",
    ]
    return "\n".join(sections)


def write_report(
    flow: SerFlow,
    path: Union[str, Path],
    include_pv_comparison: bool = True,
    fig8_particles: Optional[int] = None,
) -> Path:
    """Generate and write the report; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        generate_report(flow, include_pv_comparison, fig8_particles)
    )
    return path
