"""The cross-layer SER estimation flow (paper Fig. 6).

:class:`SerFlow` wires the three levels together exactly as the paper
describes:

1. **Device level** -- build per-particle electron-yield LUTs with the
   Monte Carlo transport engine (Geant4 substitute, Section 3).
2. **Cell level** -- characterize the 6T cell into POF LUTs with the
   vectorized SPICE-substitute, including Vth-variation MC (Section 4).
3. **Array level** -- run the 3-D layout Monte Carlo per spectrum
   energy bin and fold with the particle flux into FIT rates
   (Section 5, eqs. 4-8).

Expensive artifacts (both LUT kinds) are cached on disk keyed by their
configuration hash; "the simulations have to be performed only once to
build up LUTs" is honored across process restarts.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..io import ArtifactCache
from ..layout import CellLayout, SramArrayLayout
from ..obs import get_logger, get_registry, kv, span
from ..parallel import (
    RetryPolicy,
    ShardJournal,
    pack_payload,
    parallel_map,
    resolve_jobs,
    shm_enabled,
)
from ..physics import get_particle, spectrum_for
from ..sram import (
    CharacterizationConfig,
    PofTable,
    SramCellDesign,
    characterize_cell,
)
from ..sram.characterize import (
    characterize_shard_decode,
    characterize_shard_encode,
)
from ..ser import (
    AdaptiveBin,
    AdaptiveCampaignController,
    AdaptiveConfig,
    ArrayMcConfig,
    ArrayPofResult,
    ArraySerSimulator,
    FitResult,
    SerSweep,
    integrate_fit,
)
from ..ser.mc import array_shard_decode, array_shard_encode
from ..transport import ElectronYieldLUT, TransportEngine
from ..transport.lut import lut_shard_decode, lut_shard_encode

_log = get_logger(__name__)

#: Energy range [MeV] folded into the FIT integral per particle.  The
#: published proton spectrum (Fig. 2(a)) spans 1-1e7 MeV; direct-
#: ionization POF is negligible beyond ~100 MeV (Fig. 8 stops there),
#: so higher bins would only add zeros.  Set ``energy_ranges`` in
#: :class:`FlowConfig` to e.g. ``{"proton": (0.1, 100.0)}`` to fold in
#: the sub-MeV extrapolation of the spectrum (the Bragg-peak protons
#: the low-energy direct-ionization literature emphasizes).
DEFAULT_ENERGY_RANGES = {
    # Protons below ~0.4 MeV range out in the back-end-of-line stack
    # before reaching the fins, so the FIT integral starts there; the
    # spectrum extrapolates Fig. 2(a) below its published 1 MeV edge
    # (the low-energy direct-ionization protons of refs. [20-22]).
    "proton": (0.4, 100.0),
    "alpha": (0.5, 10.0),
}


@dataclass(frozen=True)
class FlowConfig:
    """Configuration of the end-to-end flow.

    The defaults are a laptop-scale version of the paper's campaign
    (which used 1e7 trials per LUT energy and per array-MC point);
    raise ``yield_trials_per_energy`` / ``mc_particles_per_bin`` to
    tighten MC noise.
    """

    particles: Tuple[str, ...] = ("alpha", "proton")
    vdd_list: Tuple[float, ...] = (0.7, 0.8, 0.9, 1.0, 1.1)
    # device level
    yield_energy_points: int = 13
    yield_trials_per_energy: int = 20000
    # cell level
    characterization: CharacterizationConfig = field(
        default_factory=CharacterizationConfig
    )
    process_variation: bool = True
    # array level
    array_rows: int = 9
    array_cols: int = 9
    data_pattern: str = "uniform"
    n_energy_bins: int = 8
    mc_particles_per_bin: int = 100000
    deposition_mode: str = "lut"
    margin_nm: float = 100.0
    seed: int = 2014
    #: Per-particle (e_min, e_max) folded into the FIT integral; None
    #: selects :data:`DEFAULT_ENERGY_RANGES`.
    energy_ranges: Optional[Dict[str, Tuple[float, float]]] = None
    #: Adaptive trial allocation for the FIT campaigns (None = the
    #: historical uniform ``mc_particles_per_bin`` budget).  Unlike the
    #: execution knobs on :class:`SerFlow` this *changes results*
    #: (per-bin trial counts, stratified estimator), so it lives on the
    #: config and perturbs cache keys.  ``max_trials=None`` inherits
    #: ``mc_particles_per_bin`` as the per-bin ceiling.
    adaptive: Optional[AdaptiveConfig] = None

    def __post_init__(self):
        if not self.particles:
            raise ConfigError("need at least one particle")
        for name in self.particles:
            get_particle(name)  # validates
        if self.n_energy_bins < 1:
            raise ConfigError("need at least one energy bin")
        if self.mc_particles_per_bin < 1:
            raise ConfigError("need at least one MC particle per bin")
        if self.yield_energy_points < 2:
            raise ConfigError("need at least two yield energy points")

    def energy_range_for(self, particle_name: str) -> Tuple[float, float]:
        """FIT integration energy range [MeV] for a particle."""
        ranges = self.energy_ranges or DEFAULT_ENERGY_RANGES
        try:
            return ranges[particle_name]
        except KeyError:
            raise ConfigError(
                f"no energy range configured for {particle_name!r}"
            ) from None

    def effective_characterization(self) -> CharacterizationConfig:
        """Cell config with the flow's vdd list and PV flag applied."""
        return replace(
            self.characterization,
            vdd_list=tuple(self.vdd_list),
            process_variation=self.process_variation,
        )


def _flow_campaign_task(payload, task):
    """Pool worker: one array-MC campaign of a flow-level scan.

    The payload holds only the (scan-invariant) simulator; everything
    that varies per scan -- particle, vdd, budget -- rides in the task
    tuple, so every map of a sweep ships the *same* payload and warm
    workers reuse the one they already rebuilt.
    """
    particle_name, vdd_v, n_particles, energy_mev, seed = task
    return payload["simulator"].run(
        get_particle(particle_name),
        float(energy_mev),
        float(vdd_v),
        int(n_particles),
        np.random.default_rng(seed),
    )


class SerFlow:
    """End-to-end SER estimation for one cell design + array geometry.

    ``n_jobs`` selects the worker-process count of every Monte Carlo
    stage (1 = inline, 0 = one per CPU).  It deliberately lives on the
    flow object, not on :class:`FlowConfig`: results are bit-identical
    for any worker count, so the execution width must not perturb the
    cache keys derived from the config.  The same reasoning puts the
    fault-tolerance knobs here: ``retry`` (a
    :class:`~repro.parallel.RetryPolicy`, or ``None`` for historical
    fail-fast behavior) governs transient worker loss in every stage,
    and ``resume`` (on by default, needs a ``cache_dir``) checkpoints
    every campaign into a :class:`~repro.parallel.ShardJournal` so an
    interrupted run resumes bit-identically.

    ``warm_pool`` / ``shm`` (``None`` = process defaults, normally on)
    control pool leasing and the shared-memory payload plane of
    :mod:`repro.parallel` across every stage: the flow's hundreds of
    campaigns then reuse warm workers and ship their static inputs
    (layout boxes, POF grids, yield LUTs) once instead of per map.
    Execution knobs like ``n_jobs`` -- results are bit-identical
    either way, so they live outside :class:`FlowConfig` and never
    perturb cache keys.

    ``backend`` names the array-compute backend for the hot kernels
    (``None`` = process default; see :mod:`repro.backend`) and
    ``fuse`` turns on cross-campaign batch fusion for :meth:`sweep`
    (:mod:`repro.ser.fusion`): the whole sweep's draw blocks run as
    one parallel map instead of one map per campaign.  Both are
    execution knobs in the same sense -- the numpy backend path and
    the fused schedule are bit-identical to the defaults, so neither
    lives on :class:`FlowConfig` nor perturbs cache keys.
    """

    def __init__(
        self,
        config: Optional[FlowConfig] = None,
        design: Optional[SramCellDesign] = None,
        cache_dir: Optional[str] = None,
        n_jobs: int = 1,
        retry: Optional[RetryPolicy] = None,
        resume: bool = True,
        warm_pool: Optional[bool] = None,
        shm: Optional[bool] = None,
        backend: Optional[str] = None,
        fuse: bool = False,
    ):
        self.config = config if config is not None else FlowConfig()
        self.design = design if design is not None else SramCellDesign()
        self.cache = ArtifactCache(cache_dir) if cache_dir else None
        self.n_jobs = n_jobs
        self.retry = retry
        self.resume = resume
        self.warm_pool = warm_pool
        self.shm = shm
        self.backend = backend
        self.fuse = bool(fuse)
        self._yield_luts: Optional[Dict[str, ElectronYieldLUT]] = None
        self._pof_table: Optional[PofTable] = None
        self._layout: Optional[SramArrayLayout] = None
        self._simulator: Optional[ArraySerSimulator] = None
        self._campaign_packs: Dict[bool, object] = {}

    def _journal_for(self, name: str, encode, decode, *config_objects):
        """A shard journal under the cache dir, or ``None``.

        Journals need a durable home (the artifact cache directory) and
        are pointless when resume is off, so either condition disables
        checkpointing -- the campaigns still run, just without partial
        credit across process restarts.
        """
        if self.cache is None or not self.resume:
            return None
        return ShardJournal(
            self.cache.journal_path(name, *config_objects),
            self.cache.journal_key(*config_objects),
            encode=encode,
            decode=decode,
        )

    def _campaign_seed(self, *key_parts) -> np.random.SeedSequence:
        """Deterministic child seed for one named campaign.

        A pure function of ``config.seed`` and the campaign key, so
        every campaign's stream is independent of call order and cache
        warmth -- a cold-cache `fit` and a warm-cache one see the same
        random numbers.
        """
        key = "/".join(str(part) for part in key_parts)
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        words = [
            int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)
        ]
        return np.random.SeedSequence([self.config.seed, *words])

    def _campaign_rng(self, *key_parts) -> np.random.Generator:
        return np.random.default_rng(self._campaign_seed(*key_parts))

    # -- stage 1: device level ------------------------------------------------

    def yield_luts(self) -> Dict[str, ElectronYieldLUT]:
        """Electron-yield LUTs per particle (built once, cached)."""
        if self._yield_luts is None:
            with span(
                "yield-luts", particles=",".join(self.config.particles)
            ):
                self._yield_luts = self._build_yield_luts()
        return self._yield_luts

    def _build_yield_luts(self) -> Dict[str, ElectronYieldLUT]:
        from ..geometry import SoiFinWorld

        # The transport target is the full charge-collecting fin
        # segment (channel + drain extension), matching the
        # sensitive volumes the array layout draws.
        from ..geometry import FinGeometry

        tech = self.design.tech
        collection_fin = FinGeometry(
            length_nm=tech.collection_length_nm,
            width_nm=tech.fin.width_nm,
            height_nm=tech.fin.height_nm,
        )
        engine = TransportEngine(world=SoiFinWorld(fin=collection_fin))
        luts = {}
        for name in self.config.particles:
            particle = get_particle(name)
            # The LUT covers the full Fig. 4/8 display range (0.1 -
            # 100 MeV) even when the FIT integral folds a narrower
            # band: POF-vs-energy scans query beyond the FIT bins,
            # and a clamped LUT would flatten them.
            e_lo, e_hi = self.config.energy_range_for(name)
            e_lo, e_hi = min(e_lo, 0.1), max(e_hi, 100.0)
            energies = np.logspace(
                np.log10(e_lo), np.log10(e_hi), self.config.yield_energy_points
            )

            cache_key = {
                "trials": self.config.yield_trials_per_energy,
                "points": self.config.yield_energy_points,
                "range": (e_lo, e_hi),
                "fin": self.design.tech.fin,
                "seed": self.config.seed,
            }
            journal = self._journal_for(
                f"yield-{name}",
                lut_shard_encode,
                lut_shard_decode,
                cache_key,
            )

            def build(
                particle=particle, energies=energies, journal=journal
            ):
                return ElectronYieldLUT.build(
                    particle,
                    energies,
                    self.config.yield_trials_per_energy,
                    self._campaign_rng("yield-lut", particle.name),
                    engine=engine,
                    n_jobs=self.n_jobs,
                    retry=self.retry,
                    journal=journal,
                    warm_pool=self.warm_pool,
                    shm=self.shm,
                )

            if self.cache is not None:
                luts[name] = self.cache.get_or_build(
                    f"yield-{name}", build, cache_key
                )
            else:
                luts[name] = build()
        return luts

    # -- stage 2: cell level -----------------------------------------------------

    def pof_table(self) -> PofTable:
        """Cell POF LUTs (built once, cached)."""
        if self._pof_table is None:
            char_config = self.config.effective_characterization()
            journal = self._journal_for(
                "pof",
                characterize_shard_encode,
                characterize_shard_decode,
                char_config,
                self.design.tech,
            )

            def build():
                return characterize_cell(
                    self.design,
                    char_config,
                    n_jobs=self.n_jobs,
                    retry=self.retry,
                    journal=journal,
                    warm_pool=self.warm_pool,
                    shm=self.shm,
                    backend=self.backend,
                )

            with span(
                "pof-table",
                vdds=len(char_config.vdd_list),
                samples=char_config.n_samples,
            ):
                if self.cache is not None:
                    self._pof_table = self.cache.get_or_build(
                        "pof", build, char_config, self.design.tech
                    )
                else:
                    self._pof_table = build()
        return self._pof_table

    # -- stage 3: array level -----------------------------------------------------

    def layout(self) -> SramArrayLayout:
        """The tiled array layout."""
        if self._layout is None:
            self._layout = SramArrayLayout(
                n_rows=self.config.array_rows,
                n_cols=self.config.array_cols,
                cell=CellLayout(
                    fin=self.design.tech.fin,
                    collection_length_nm=self.design.tech.collection_length_nm,
                ),
                data_pattern=self.config.data_pattern,
                nfins={
                    "pu_l": self.design.nfin_pu,
                    "pu_r": self.design.nfin_pu,
                    "pd_l": self.design.nfin_pd,
                    "pd_r": self.design.nfin_pd,
                    "pg_l": self.design.nfin_pg,
                    "pg_r": self.design.nfin_pg,
                },
            )
        return self._layout

    def simulator(self) -> ArraySerSimulator:
        """The array Monte Carlo simulator (lazy)."""
        if self._simulator is None:
            self._simulator = ArraySerSimulator(
                self.layout(),
                self.pof_table(),
                yield_luts=self.yield_luts(),
                config=ArrayMcConfig(
                    deposition_mode=self.config.deposition_mode,
                    margin_nm=self.config.margin_nm,
                    n_jobs=self.n_jobs,
                    warm_pool=self.warm_pool,
                    shm=self.shm,
                    backend=self.backend,
                ),
            )
        return self._simulator

    def pof_vs_energy(
        self,
        particle_name: str,
        vdd_v: float,
        energies_mev: Sequence[float],
        n_particles: Optional[int] = None,
    ) -> list:
        """Array POF at explicit energies (the paper's Fig. 8 scan)."""
        particle = get_particle(particle_name)
        n = n_particles if n_particles is not None else self.config.mc_particles_per_bin
        energies = [float(e) for e in energies_mev]
        with span(
            "pof-vs-energy",
            particle=particle_name,
            vdd=vdd_v,
            energies=len(energies),
        ):
            return self._run_campaigns(
                "pof-vs-energy", particle, vdd_v, energies, n
            )

    def _campaign_payload(self):
        """The campaign fan-out payload, packed once per (flow, shm mode).

        Every flow-level scan ships the same simulator, so the flow
        pre-packs it a single time (see
        :class:`~repro.parallel.shm.PackedPayload`): repeat fan-outs
        skip per-map pickling entirely, warm workers recognize the
        fingerprint and keep the payload they already rebuilt
        (interpolator caches included), and per-task IPC shrinks to
        shared-memory references.  Inline execution (``n_jobs <= 1``)
        has no transport cost, so it keeps the plain dict.
        """
        if resolve_jobs(self.n_jobs) <= 1:
            return {"simulator": self.simulator()}
        use_shm = shm_enabled(self.shm)
        packed = self._campaign_packs.get(use_shm)
        if packed is None:
            packed = pack_payload(
                {"simulator": self.simulator()}, use_shm=use_shm
            )
            self._campaign_packs[use_shm] = packed
        return packed

    def _run_campaigns(self, stage, particle, vdd_v, energies, n_particles):
        """Independent array-MC campaigns, one per energy, fanned out.

        Each campaign draws from its own :meth:`_campaign_seed` stream,
        so the list of results is a pure function of the flow seed --
        independent of execution order, worker count, and whichever
        campaigns ran earlier in the process.  The campaigns are spread
        across workers here; inside a worker the simulator's own
        (inner) parallelism stands down automatically.

        Fault tolerance operates at this level on whole campaigns:
        completed (energy-point) campaigns are journaled so a crashed
        scan resumes bit-identically, and the retry policy is forced
        strict -- downstream :func:`~repro.ser.fit.integrate_fit`
        needs one result per bin, so unrecoverable loss must raise
        rather than degrade to a hole in the spectrum.
        """
        tasks = [
            (
                particle.name,
                vdd_v,
                n_particles,
                energy,
                self._campaign_seed(
                    stage, particle.name, f"{vdd_v:g}", f"{energy:.9g}"
                ),
            )
            for energy in energies
        ]
        journal = self._journal_for(
            f"{stage}-{particle.name}",
            lambda result: result.to_dict(),
            ArrayPofResult.from_dict,
            self.config,
            self.design.tech,
            {
                "stage": stage,
                "particle": particle.name,
                "vdd": f"{vdd_v:g}",
                "energies": [f"{energy:.9g}" for energy in energies],
                "n_particles": int(n_particles),
            },
        )
        results = parallel_map(
            _flow_campaign_task,
            tasks,
            payload=self._campaign_payload(),
            n_jobs=self.n_jobs,
            label="flow_campaigns",
            retry=self.retry.strict() if self.retry is not None else None,
            journal=journal,
            warm_pool=self.warm_pool,
            shm=self.shm,
        )
        if journal is not None:
            journal.clear()
        return results

    def pair_offsets(
        self,
        particle_name: str,
        vdd_v: float,
        energy_mev: float,
        n_particles: int,
    ):
        """Failing-pair offset statistics of one array campaign.

        The ECC/interleave analysis input (see
        :mod:`repro.reliability.ecc`), exposed on the flow so service
        queries and notebooks draw from the same deterministic
        campaign-seed streams as every other stage.
        """
        from ..ser.clusters import collect_pair_offsets

        particle = get_particle(particle_name)
        with span(
            "pair-offsets",
            particle=particle_name,
            vdd=vdd_v,
            energy=energy_mev,
        ):
            return collect_pair_offsets(
                self.simulator(),
                particle,
                float(energy_mev),
                float(vdd_v),
                int(n_particles),
                self._campaign_rng(
                    "pair-offsets",
                    particle_name,
                    f"{vdd_v:g}",
                    f"{energy_mev:.9g}",
                ),
            )

    def fit(self, particle_name: str, vdd_v: float) -> FitResult:
        """FIT rate of one (particle, vdd) case (eqs. 7-8)."""
        particle = get_particle(particle_name)
        spectrum = spectrum_for(particle_name)
        e_lo, e_hi = self.config.energy_range_for(particle_name)
        bins = spectrum.make_bins(self.config.n_energy_bins, e_lo, e_hi)
        with span("fit", particle=particle_name, vdd=vdd_v, bins=len(bins)):
            energies = [float(energy) for energy in bins.representative_mev]
            if self.config.adaptive is not None:
                results = self._run_campaigns_adaptive(
                    "fit", particle, vdd_v, energies
                )
            else:
                results = self._run_campaigns(
                    "fit",
                    particle,
                    vdd_v,
                    energies,
                    self.config.mc_particles_per_bin,
                )
            self._record_convergence(particle_name, vdd_v, results)
            return integrate_fit(particle_name, vdd_v, bins, results)

    def _run_campaigns_adaptive(self, stage, particle, vdd_v, energies):
        """Adaptive replacement for :meth:`_run_campaigns` (one result
        per energy, in order).

        One :class:`~repro.ser.AdaptiveCampaignController` drives all
        energy bins of the (particle, vdd) case together, so rounds
        compete for draw blocks across the whole scan.  It shares the
        flow's packed payload (warm pool + shm plane reuse across
        rounds), derives each bin's root seed from
        :meth:`_campaign_seed` (pure function of the flow seed), and
        journals every round under the cache dir so ``--resume``
        replays the identical allocation sequence.
        """
        bins = [
            AdaptiveBin(particle.name, energy, float(vdd_v))
            for energy in energies
        ]

        def seed_for(bin_):
            return self._campaign_seed(
                "adaptive",
                stage,
                bin_.particle_name,
                f"{bin_.vdd_v:g}",
                f"{bin_.energy_mev:.9g}",
            )

        def journal_factory(round_index):
            return self._journal_for(
                f"{stage}-{particle.name}-adaptive-r{round_index:04d}",
                array_shard_encode,
                array_shard_decode,
                self.config,
                self.design.tech,
                {
                    "stage": stage,
                    "particle": particle.name,
                    "vdd": f"{vdd_v:g}",
                    "energies": [f"{energy:.9g}" for energy in energies],
                    "round": int(round_index),
                },
            )

        controller = AdaptiveCampaignController(
            self.simulator(),
            self.config.adaptive,
            n_jobs=self.n_jobs,
            retry=self.retry,
            warm_pool=self.warm_pool,
            shm=self.shm,
            payload=self._campaign_payload(),
            journal_factory=journal_factory,
            stage=f"adaptive-{stage}",
            default_max_trials=self.config.mc_particles_per_bin,
        )
        report = controller.run(bins, seed_for)
        return report.results

    def _record_convergence(self, particle_name, vdd_v, results):
        """Per-bin POF standard errors into metrics, events, tracker.

        Every (particle, vdd, energy) campaign goes through
        :func:`~repro.obs.convergence.record_bin`, feeding the
        ``convergence.*`` gauges/histogram, one live ``convergence``
        event per bin, and the process-wide tracker whose p50/p99
        digest lands in the manifest's ``convergence_bins`` section.
        The legacy ``fit.pof_se.*`` worst-per-(particle, vdd) gauges
        and the ``fit.pof_standard_error`` histogram stay as-is (the
        manifest's ``convergence`` section reads them).
        """
        from ..obs.convergence import convergence_active, record_bin

        if not convergence_active():
            return
        from ..analysis.convergence import pof_standard_error

        metrics = get_registry()
        results = [r for r in results if r is not None]
        errors = []
        for result in results:
            error = pof_standard_error(result)
            errors.append(error)
            record_bin(
                "fit",
                trials=int(result.n_particles),
                pof=float(result.pof_total),
                standard_error=error,
                particle=particle_name,
                vdd_v=vdd_v,
                energy_mev=float(result.energy_mev),
            )
        # zero-hit / degraded bins report SE = nan ("unknown"); they
        # must not poison the worst-bin gauge or the histogram
        finite = [error for error in errors if math.isfinite(error)]
        worst = max(finite) if finite else 0.0
        if metrics.enabled:
            histogram = metrics.histogram("fit.pof_standard_error")
            for error in finite:
                histogram.observe(error)
            metrics.gauge(
                f"fit.pof_se.{particle_name}.vdd={vdd_v:g}"
            ).set(worst)
        _log.debug(
            "fit convergence %s",
            kv(particle=particle_name, vdd=vdd_v, max_pof_se=worst),
        )

    def sweep(
        self,
        particles: Optional[Sequence[str]] = None,
        vdd_list: Optional[Sequence[float]] = None,
    ) -> SerSweep:
        """The full evaluation sweep behind Figs. 9 and 10.

        With a cache directory configured, the sweep result itself is
        cached (keyed by the full flow configuration), so repeated
        analysis/example runs skip the Monte Carlo entirely.

        With ``fuse=True`` the sweep's campaigns run as one fused
        :class:`~repro.ser.fusion.BatchPlan` instead of one map per
        (particle, energy, Vdd) point -- bit-identical results (same
        campaign seeds, same block partition, same merge order), same
        cache key, fewer fan-outs.  Adaptive allocation does its own
        cross-bin scheduling, so it keeps the per-case path.
        """
        particles = list(particles or self.config.particles)
        vdd_list = list(vdd_list or self.config.vdd_list)

        def build():
            if self.fuse and self.config.adaptive is None:
                return self._sweep_fused(particles, vdd_list)
            sweep = SerSweep()
            for particle_name in particles:
                for vdd in vdd_list:
                    sweep.add(self.fit(particle_name, float(vdd)))
            return sweep

        with span(
            "sweep",
            particles=",".join(particles),
            vdds=len(vdd_list),
        ):
            if self.cache is not None:
                return self.cache.get_or_build(
                    "sweep",
                    build,
                    self.config,
                    self.design.tech,
                    {"particles": particles, "vdds": vdd_list},
                )
            return build()

    def _sweep_fused(self, particles, vdd_list) -> SerSweep:
        """Fused replacement for the per-case :meth:`fit` loop.

        Queues every (particle, vdd, energy-bin) campaign of the sweep
        into one :class:`~repro.ser.fusion.BatchPlan` -- same campaign
        seeds (:meth:`_campaign_seed` with the ``"fit"`` stage key),
        same uniform ``mc_particles_per_bin`` budget, so each merged
        point is bit-identical to the per-campaign result -- then
        integrates per case exactly as :meth:`fit` does.
        """
        from ..ser.fusion import BatchPlan, CampaignPoint

        points = []
        case_bins = {}
        case_indices = {}
        for particle_name in particles:
            spectrum = spectrum_for(particle_name)
            e_lo, e_hi = self.config.energy_range_for(particle_name)
            bins = spectrum.make_bins(self.config.n_energy_bins, e_lo, e_hi)
            case_bins[particle_name] = bins
            energies = [float(energy) for energy in bins.representative_mev]
            for vdd in vdd_list:
                vdd = float(vdd)
                indices = []
                for energy in energies:
                    indices.append(len(points))
                    points.append(
                        CampaignPoint(
                            index=len(points),
                            particle_name=particle_name,
                            energy_mev=energy,
                            vdd_v=vdd,
                            n_particles=self.config.mc_particles_per_bin,
                            seed=self._campaign_seed(
                                "fit",
                                particle_name,
                                f"{vdd:g}",
                                f"{energy:.9g}",
                            ),
                        )
                    )
                case_indices[(particle_name, vdd)] = indices

        journal = self._journal_for(
            "sweep-fused",
            array_shard_encode,
            array_shard_decode,
            self.config,
            self.design.tech,
            {
                "particles": particles,
                "vdds": [f"{float(vdd):g}" for vdd in vdd_list],
                "n_particles": int(self.config.mc_particles_per_bin),
            },
        )
        plan = BatchPlan(
            self.simulator(),
            points,
            n_jobs=self.n_jobs,
            retry=self.retry,
            journal=journal,
            warm_pool=self.warm_pool,
            shm=self.shm,
            payload=self._campaign_payload(),
        )
        results = plan.execute()
        if journal is not None:
            journal.clear()

        sweep = SerSweep()
        for particle_name in particles:
            bins = case_bins[particle_name]
            for vdd in vdd_list:
                vdd = float(vdd)
                case = [
                    results[i] for i in case_indices[(particle_name, vdd)]
                ]
                self._record_convergence(particle_name, vdd, case)
                sweep.add(integrate_fit(particle_name, vdd, bins, case))
        return sweep
