"""Small 3-D vector helpers on top of numpy.

The library represents points and directions as plain numpy arrays of
shape ``(3,)`` (single) or ``(n, 3)`` (batch).  These helpers keep the
broadcasting conventions in one place; all geometry is axis-aligned so
no general transform machinery is needed.

Geometry canonical unit: **nanometre**.  Axes: ``x``/``y`` span the die
plane, ``z`` points up out of the wafer (``z = 0`` at the top surface of
the buried oxide, fins extend to positive ``z``).
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError


def as_vec3(value) -> np.ndarray:
    """Coerce a length-3 sequence to a float64 ``(3,)`` array."""
    arr = np.asarray(value, dtype=np.float64)
    if arr.shape != (3,):
        raise GeometryError(f"expected a 3-vector, got shape {arr.shape}")
    return arr


def as_vec3_batch(value) -> np.ndarray:
    """Coerce to a float64 ``(n, 3)`` batch, promoting a single vector."""
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise GeometryError(f"expected an (n, 3) batch, got shape {arr.shape}")
    return arr


def norm(vectors: np.ndarray) -> np.ndarray:
    """Euclidean norm along the last axis."""
    return np.linalg.norm(vectors, axis=-1)


def normalize(vectors: np.ndarray) -> np.ndarray:
    """Return unit vectors; raises on (near-)zero input."""
    arr = np.asarray(vectors, dtype=np.float64)
    lengths = norm(arr)
    if np.any(lengths < 1e-300):
        raise GeometryError("cannot normalize a zero-length direction")
    return arr / lengths[..., np.newaxis]


def dot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dot product along the last axis."""
    return np.sum(np.asarray(a) * np.asarray(b), axis=-1)
