"""Axis-aligned boxes and vectorized ray/box chord computation.

The device world (fins, BOX layer, substrate slab, cell footprints) is
entirely axis-aligned, so the classic slab method gives exact chord
lengths.  Two entry points are provided:

* :meth:`Aabb.chord` -- one ray against one box;
* :func:`chord_lengths` -- an ``(n_rays, n_boxes)`` matrix of chord
  lengths, the kernel of the array-level Monte Carlo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GeometryError
from .ray import Ray, RayBatch
from .vec import as_vec3


@dataclass(frozen=True)
class Aabb:
    """Axis-aligned bounding box, corners in nm.

    ``lo`` and ``hi`` are the minimum / maximum corners; every extent
    must be strictly positive (no degenerate boxes -- a zero-thickness
    box can never be struck and indicates a construction bug).
    """

    lo: np.ndarray
    hi: np.ndarray

    def __init__(self, lo, hi):
        lo = as_vec3(lo)
        hi = as_vec3(hi)
        if np.any(hi <= lo):
            raise GeometryError(
                f"degenerate box: lo={lo.tolist()} hi={hi.tolist()}"
            )
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @property
    def size(self) -> np.ndarray:
        """Edge lengths [nm]."""
        return self.hi - self.lo

    @property
    def center(self) -> np.ndarray:
        """Geometric centre [nm]."""
        return 0.5 * (self.lo + self.hi)

    @property
    def volume_nm3(self) -> float:
        """Volume [nm^3]."""
        return float(np.prod(self.size))

    @property
    def diagonal_nm(self) -> float:
        """Length of the main diagonal -- an upper bound on any chord."""
        return float(np.linalg.norm(self.size))

    def contains(self, points) -> np.ndarray:
        """Element-wise containment test for ``(..., 3)`` points."""
        pts = np.asarray(points, dtype=np.float64)
        return np.all((pts >= self.lo) & (pts <= self.hi), axis=-1)

    def translated(self, offset) -> "Aabb":
        """A copy shifted by ``offset`` [nm]."""
        off = as_vec3(offset)
        return Aabb(self.lo + off, self.hi + off)

    def intersect_interval(self, ray: Ray):
        """Entry/exit parameters ``(t_near, t_far)`` or ``None`` if missed.

        Parameters are distances along the ray (which may be negative if
        the origin lies past the box).  A hit requires
        ``t_far > max(t_near, 0)`` when the ray is interpreted as a
        half-line; callers wanting the infinite-line chord use the raw
        interval.
        """
        t_near, t_far = _slab_interval(
            ray.origin[np.newaxis, :],
            ray.direction[np.newaxis, :],
            self.lo[np.newaxis, :],
            self.hi[np.newaxis, :],
        )
        if t_far[0, 0] <= t_near[0, 0]:
            return None
        return float(t_near[0, 0]), float(t_far[0, 0])

    def chord(self, ray: Ray) -> float:
        """Chord length [nm] of the forward half-line through this box."""
        interval = self.intersect_interval(ray)
        if interval is None:
            return 0.0
        t_near, t_far = interval
        entry = max(t_near, 0.0)
        return max(t_far - entry, 0.0)


def _slab_interval(origins, directions, lo, hi):
    """Vectorized slab intersection.

    Parameters
    ----------
    origins, directions:
        ``(n, 3)`` ray data.
    lo, hi:
        ``(m, 3)`` box corners.

    Returns
    -------
    (t_near, t_far):
        ``(n, m)`` arrays; a miss is encoded as ``t_far <= t_near``.
    """
    # Accumulate the slab interval one axis at a time with (n, m)
    # scratch arrays -- avoids (n, m, 3) temporaries, which dominate
    # the array-MC runtime.  Guard zero direction components: a ray
    # parallel to a slab either always or never satisfies it; emulate
    # with +/- inf via errstate-protected division.
    n = origins.shape[0]
    m = lo.shape[0]
    t_near = np.full((n, m), -np.inf, dtype=np.float64)
    t_far = np.full((n, m), np.inf, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_all = 1.0 / directions  # (n, 3); inf where parallel
    # Large finite sentinel: +/- inf would turn into nan under the
    # interval arithmetic (inf - inf) when a parallel-outside slab
    # meets another infinite bound.
    big = 1.0e30
    for axis in range(3):
        o = origins[:, axis][:, np.newaxis]  # (n, 1)
        inv = inv_all[:, axis][:, np.newaxis]
        # 0 * inf -> nan is possible when a parallel ray origin touches
        # a slab plane; the parallel branch below overwrites those rows.
        with np.errstate(invalid="ignore"):
            t1 = (lo[np.newaxis, :, axis] - o) * inv
            t2 = (hi[np.newaxis, :, axis] - o) * inv
        axis_lo = np.minimum(t1, t2)
        axis_hi = np.maximum(t1, t2)
        parallel = directions[:, axis] == 0.0
        if np.any(parallel):
            # A ray parallel to this slab pair either satisfies it for
            # all t (origin inside the slab) or for no t (outside).
            inside = (o >= lo[np.newaxis, :, axis]) & (
                o <= hi[np.newaxis, :, axis]
            )
            rows = parallel[:, np.newaxis]
            axis_lo = np.where(rows, np.where(inside, -big, big), axis_lo)
            axis_hi = np.where(rows, np.where(inside, big, -big), axis_hi)
        np.maximum(t_near, axis_lo, out=t_near)
        np.minimum(t_far, axis_hi, out=t_far)
    return t_near, t_far


def chord_lengths(rays: RayBatch, boxes, forward_only: bool = True):
    """Chord length matrix for a ray batch against a box collection.

    Parameters
    ----------
    rays:
        Batch of ``n`` rays.
    boxes:
        Sequence of :class:`Aabb` (or a pre-stacked ``(m, 6)`` array of
        ``[lo, hi]`` rows from :func:`stack_boxes`).
    forward_only:
        Clip the chord to the forward half-line (particle travels from
        its origin in its direction; matter behind it is not traversed).

    Returns
    -------
    numpy.ndarray
        ``(n, m)`` chord lengths [nm]; 0 where a box is missed.
    """
    lo, hi = _boxes_to_arrays(boxes)
    t_near, t_far = _slab_interval(rays.origins, rays.directions, lo, hi)
    if forward_only:
        t_near = np.maximum(t_near, 0.0)
    lengths = t_far - t_near
    return np.where(lengths > 0.0, lengths, 0.0)


def stack_boxes(boxes) -> np.ndarray:
    """Pack a sequence of :class:`Aabb` into an ``(m, 6)`` array."""
    if len(boxes) == 0:
        raise GeometryError("cannot stack an empty box collection")
    return np.array(
        [np.concatenate([box.lo, box.hi]) for box in boxes], dtype=np.float64
    )


def _boxes_to_arrays(boxes):
    """Accept either Aabb sequences or packed ``(m, 6)`` arrays."""
    if isinstance(boxes, np.ndarray):
        if boxes.ndim != 2 or boxes.shape[1] != 6:
            raise GeometryError(
                f"packed boxes must be (m, 6), got {boxes.shape}"
            )
        return boxes[:, :3], boxes[:, 3:]
    packed = stack_boxes(boxes)
    return packed[:, :3], packed[:, 3:]
