"""SOI FinFET fin geometry and the single-fin simulation world.

The device-level Monte Carlo (paper Section 3) fires particles at the
3-D structure of a *single fin* sitting on the buried oxide (Fig. 3(a)).
:class:`FinGeometry` holds the fin dimensions (defaults follow the
14 nm-node SOI FinFET of Wang et al. [28], the paper's device
reference); :class:`SoiFinWorld` assembles the fin + BOX + substrate
stack used as the Geant4 target.

Axis convention (see :mod:`repro.geometry.vec`): ``x`` is the
source-drain transport direction (fin length), ``y`` crosses the fin
(fin width), ``z`` is vertical with the fin occupying ``0 <= z <= h``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..errors import ConfigError
from ..materials import (
    SILICON,
    SILICON_DIOXIDE,
    SUBSTRATE_SILICON,
    Material,
)
from .box import Aabb


@dataclass(frozen=True)
class FinGeometry:
    """Dimensions of a single fin [nm].

    Defaults are the 14 nm SOI FinFET device of the paper's reference
    [28] (Wang et al.): ~20 nm gate length, ~10 nm fin width, ~25 nm
    fin height.

    Attributes
    ----------
    length_nm:
        Source-to-drain extent L_fin (the ``L`` of the paper's transit
        time formula, eq. 2).
    width_nm:
        Fin width w_fin (the ``w`` of the particle passage time, eq. 1).
    height_nm:
        Fin height above the BOX.
    """

    length_nm: float = 20.0
    width_nm: float = 10.0
    height_nm: float = 25.0

    def __post_init__(self):
        for name in ("length_nm", "width_nm", "height_nm"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"fin {name} must be positive")

    @property
    def volume_nm3(self) -> float:
        """Fin volume [nm^3]."""
        return self.length_nm * self.width_nm * self.height_nm

    @property
    def footprint_nm2(self) -> float:
        """Top-down footprint area [nm^2]."""
        return self.length_nm * self.width_nm

    def box_at(self, center_x: float, center_y: float) -> Aabb:
        """The fin body as an :class:`Aabb` centred at (x, y) on the BOX."""
        half_l = 0.5 * self.length_nm
        half_w = 0.5 * self.width_nm
        return Aabb(
            (center_x - half_l, center_y - half_w, 0.0),
            (center_x + half_l, center_y + half_w, self.height_nm),
        )


@dataclass(frozen=True)
class SoiStack:
    """Vertical layer thicknesses of the SOI stack [nm]."""

    box_thickness_nm: float = 145.0
    substrate_thickness_nm: float = 500.0
    beol_thickness_nm: float = 0.0

    def __post_init__(self):
        if self.box_thickness_nm <= 0:
            raise ConfigError("BOX thickness must be positive")
        if self.substrate_thickness_nm <= 0:
            raise ConfigError("substrate thickness must be positive")
        if self.beol_thickness_nm < 0:
            raise ConfigError("BEOL thickness cannot be negative")


@dataclass(frozen=True)
class Volume:
    """A named, material-tagged axis-aligned volume in a world."""

    name: str
    box: Aabb
    material: Material


class SoiFinWorld:
    """The single-fin Geant4-substitute target: fin + BOX + substrate.

    The world is laterally bounded by ``margin_nm`` of free space around
    the fin so that particles can be launched from outside the solid
    geometry with random positions and directions (paper Section 3.2).
    """

    def __init__(
        self,
        fin: FinGeometry = None,
        stack: SoiStack = None,
        margin_nm: float = 50.0,
    ):
        self.fin = fin if fin is not None else FinGeometry()
        self.stack = stack if stack is not None else SoiStack()
        if margin_nm <= 0:
            raise ConfigError("world margin must be positive")
        self.margin_nm = float(margin_nm)
        self._volumes = self._build_volumes()

    def _build_volumes(self) -> List[Volume]:
        fin_box = self.fin.box_at(0.0, 0.0)
        half_x = 0.5 * self.fin.length_nm + self.margin_nm
        half_y = 0.5 * self.fin.width_nm + self.margin_nm
        box_layer = Aabb(
            (-half_x, -half_y, -self.stack.box_thickness_nm),
            (half_x, half_y, 0.0),
        )
        substrate = Aabb(
            (
                -half_x,
                -half_y,
                -self.stack.box_thickness_nm - self.stack.substrate_thickness_nm,
            ),
            (half_x, half_y, -self.stack.box_thickness_nm),
        )
        volumes = [
            Volume("fin", fin_box, SILICON),
            Volume("box", box_layer, SILICON_DIOXIDE),
            Volume("substrate", substrate, SUBSTRATE_SILICON),
        ]
        if self.stack.beol_thickness_nm > 0:
            from ..materials import BEOL_DIELECTRIC

            beol = Aabb(
                (-half_x, -half_y, self.fin.height_nm),
                (half_x, half_y, self.fin.height_nm + self.stack.beol_thickness_nm),
            )
            volumes.append(Volume("beol", beol, BEOL_DIELECTRIC))
        return volumes

    @property
    def volumes(self) -> List[Volume]:
        """All material volumes, fin first."""
        return list(self._volumes)

    @property
    def fin_volume(self) -> Volume:
        """The (single) charge-collecting fin volume."""
        return self._volumes[0]

    def bounds(self) -> Aabb:
        """World bounding box enclosing every volume plus the top margin."""
        lo = np.min([v.box.lo for v in self._volumes], axis=0)
        hi = np.max([v.box.hi for v in self._volumes], axis=0)
        hi = hi.copy()
        hi[2] += self.margin_nm
        return Aabb(lo, hi)

    def launch_plane_z(self) -> float:
        """Height of the plane from which downward particles are launched."""
        return float(self.bounds().hi[2])
