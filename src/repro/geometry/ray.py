"""Rays (particle tracks) through the device geometry.

A particle track is modeled as an infinite straight line with an origin
and a unit direction -- adequate because at the energies of interest
(0.1-100 MeV) multiple scattering over the <100 nm scales of the fin
stack deflects the track by far less than a fin width.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .vec import as_vec3, normalize


@dataclass(frozen=True)
class Ray:
    """A single straight particle track.

    Attributes
    ----------
    origin:
        Starting point [nm], shape ``(3,)``.
    direction:
        Unit direction, shape ``(3,)``.
    """

    origin: np.ndarray
    direction: np.ndarray

    def __init__(self, origin, direction):
        object.__setattr__(self, "origin", as_vec3(origin))
        object.__setattr__(self, "direction", normalize(as_vec3(direction)))

    def point_at(self, distance):
        """Point ``origin + distance * direction`` (distance in nm)."""
        distance = np.asarray(distance, dtype=np.float64)
        return self.origin + distance[..., np.newaxis] * self.direction


@dataclass(frozen=True)
class RayBatch:
    """A vectorized bundle of rays (shape ``(n, 3)`` origins/directions)."""

    origins: np.ndarray
    directions: np.ndarray

    def __init__(self, origins, directions):
        from .vec import as_vec3_batch

        origins = as_vec3_batch(origins)
        directions = normalize(as_vec3_batch(directions))
        if origins.shape != directions.shape:
            from ..errors import GeometryError

            raise GeometryError(
                f"origins {origins.shape} and directions {directions.shape} "
                "must have matching shapes"
            )
        object.__setattr__(self, "origins", origins)
        object.__setattr__(self, "directions", directions)

    def __len__(self) -> int:
        return self.origins.shape[0]

    def __getitem__(self, index) -> Ray:
        return Ray(self.origins[index], self.directions[index])
