"""Axis-aligned 3-D geometry: vectors, rays, boxes, SOI fin worlds."""

from .box import Aabb, chord_lengths, stack_boxes
from .fin import FinGeometry, SoiFinWorld, SoiStack, Volume
from .ray import Ray, RayBatch
from .vec import as_vec3, as_vec3_batch, dot, norm, normalize

__all__ = [
    "Aabb",
    "chord_lengths",
    "stack_boxes",
    "FinGeometry",
    "SoiStack",
    "SoiFinWorld",
    "Volume",
    "Ray",
    "RayBatch",
    "as_vec3",
    "as_vec3_batch",
    "dot",
    "norm",
    "normalize",
]
