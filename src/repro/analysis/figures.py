"""Series generators for every figure of the paper's evaluation.

Each function returns the plain numpy series behind one published
figure, normalized the way the paper normalizes it.  The benchmark
harness prints these and asserts the paper's qualitative claims; the
examples plot/print them for users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core import SerFlow
from ..physics import AlphaEmissionSpectrum, SeaLevelProtonSpectrum
from ..transport import ElectronYieldLUT
from .normalize import normalized


@dataclass(frozen=True)
class Series:
    """A labeled (x, y) curve."""

    label: str
    x: np.ndarray
    y: np.ndarray


def fig2a_proton_spectrum(n_points: int = 60) -> Series:
    """Fig. 2(a): sea-level differential proton intensity."""
    spectrum = SeaLevelProtonSpectrum()
    energies = np.logspace(0, 7, n_points)
    return Series(
        "proton intensity [1/(m^2 s sr MeV)]",
        energies,
        spectrum.intensity(energies),
    )


def fig2b_alpha_spectrum(n_points: int = 200) -> Series:
    """Fig. 2(b): package alpha emission spectrum."""
    spectrum = AlphaEmissionSpectrum()
    energies = np.linspace(0.1, 10.0, n_points)
    return Series(
        "alpha emission [1/(cm^2 s MeV)]",
        energies,
        spectrum.differential_flux(energies),
    )


def fig4_electron_yield(
    luts: Dict[str, ElectronYieldLUT]
) -> Tuple[Series, Series]:
    """Fig. 4: normalized mean electron count per fin crossing.

    Normalization is joint (both curves divided by the same peak) so
    the alpha/proton ratio is preserved, as in the paper's figure.
    """
    alpha = luts["alpha"]
    proton = luts["proton"]
    peak = max(float(np.max(alpha.mean_pairs)), float(np.max(proton.mean_pairs)))
    return (
        Series("alpha", alpha.energies_mev.copy(), alpha.mean_pairs / peak),
        Series("proton", proton.energies_mev.copy(), proton.mean_pairs / peak),
    )


def fig8_pof_vs_energy(
    flow: SerFlow,
    vdd_values: Sequence[float] = (0.7, 0.8),
    energies_mev: Optional[Sequence[float]] = None,
    n_particles: Optional[int] = None,
) -> Dict[Tuple[str, float], Series]:
    """Fig. 8: array POF (given a layout hit) vs particle energy.

    Returns one series per (particle, vdd), all normalized by the
    common peak as the paper's single-axis plot implies.
    """
    energies = (
        np.asarray(energies_mev, dtype=np.float64)
        if energies_mev is not None
        else np.logspace(-1, 2, 7)
    )
    raw: Dict[Tuple[str, float], np.ndarray] = {}
    for particle in flow.config.particles:
        for vdd in vdd_values:
            results = flow.pof_vs_energy(particle, vdd, energies, n_particles)
            raw[(particle, vdd)] = np.array(
                [r.pof_total_given_hit for r in results]
            )
    peak = max(float(np.max(v)) for v in raw.values())
    peak = peak if peak > 0 else 1.0
    return {
        key: Series(f"{key[0]} vdd={key[1]}", energies.copy(), values / peak)
        for key, values in raw.items()
    }


def fig9_fit_vs_vdd(sweep) -> Dict[str, Series]:
    """Fig. 9: normalized FIT vs Vdd per particle (joint normalization)."""
    peak = 0.0
    series = {}
    for particle in sweep.particles():
        vdds, fits = sweep.fit_series(particle)
        series[particle] = (vdds, fits)
        peak = max(peak, float(np.max(fits)))
    peak = peak if peak > 0 else 1.0
    return {
        particle: Series(particle, vdds, fits / peak)
        for particle, (vdds, fits) in series.items()
    }


def fig10_mbu_seu(sweep) -> Dict[str, Series]:
    """Fig. 10: MBU/SEU percentage vs Vdd per particle."""
    result = {}
    for particle in sweep.particles():
        vdds, ratios = sweep.mbu_seu_series(particle)
        result[particle] = Series(particle, vdds, 100.0 * ratios)
    return result


def fig11_process_variation(
    sweep_with_pv, sweep_without_pv, particle: str = "alpha"
) -> Tuple[Series, Series]:
    """Fig. 11: SER with vs without PV (normalized by the PV peak)."""
    vdds, fits_pv = sweep_with_pv.fit_series(particle)
    _, fits_nom = sweep_without_pv.fit_series(particle)
    peak = float(np.max(fits_pv))
    peak = peak if peak > 0 else 1.0
    return (
        Series("considering PV", vdds, fits_pv / peak),
        Series("neglecting PV", vdds, fits_nom / peak),
    )
