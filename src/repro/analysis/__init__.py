"""Per-figure series generation and shape analysis of results."""

from .convergence import (
    BinBudgetState,
    ConvergenceEstimate,
    StratumState,
    allocate_blocks,
    build_energy_tilt,
    estimate_pof_error,
    pof_standard_error,
    split_blocks_across_strata,
)
from .export import export_figures
from .figures import (
    Series,
    fig2a_proton_spectrum,
    fig2b_alpha_spectrum,
    fig4_electron_yield,
    fig8_pof_vs_energy,
    fig9_fit_vs_vdd,
    fig10_mbu_seu,
    fig11_process_variation,
)
from .sensitivity import (
    SENSITIVITY_PARAMETERS,
    SensitivityResult,
    perturb_technology,
    ser_sensitivities,
)
from .normalize import (
    decades_of_decrease,
    dominance_factor,
    is_monotone_decreasing,
    is_monotone_increasing,
    normalized,
)

__all__ = [
    "Series",
    "export_figures",
    "ConvergenceEstimate",
    "estimate_pof_error",
    "pof_standard_error",
    "BinBudgetState",
    "StratumState",
    "allocate_blocks",
    "split_blocks_across_strata",
    "build_energy_tilt",
    "ser_sensitivities",
    "SensitivityResult",
    "SENSITIVITY_PARAMETERS",
    "perturb_technology",
    "fig2a_proton_spectrum",
    "fig2b_alpha_spectrum",
    "fig4_electron_yield",
    "fig8_pof_vs_energy",
    "fig9_fit_vs_vdd",
    "fig10_mbu_seu",
    "fig11_process_variation",
    "normalized",
    "is_monotone_decreasing",
    "is_monotone_increasing",
    "dominance_factor",
    "decades_of_decrease",
]
