"""Monte Carlo convergence diagnostics and adaptive trial allocation.

The paper runs 1e7 trials per point; users on laptops need to know how
few they can get away with.  These helpers estimate the statistical
error of an array-MC POF by batching, size a campaign for a target
precision, and -- for :mod:`repro.ser.adaptive` -- decide where the
next draw blocks buy the most variance reduction.  The allocation
functions are pure functions of their (journal-replayable) inputs, so a
resumed adaptive campaign re-derives the identical allocation sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..physics import ParticleType
from ..ser import ArraySerSimulator

#: Planning variance for a bin whose standard error is unknown (zero
#: observed hits, or a degraded result): ``p (1 - p)`` maxes out at
#: 1/4, so planning with it allocates generously until the bin yields
#: information.
MAX_BINOMIAL_VARIANCE = 0.25


@dataclass(frozen=True)
class ConvergenceEstimate:
    """Batched MC error estimate for one campaign point.

    Attributes
    ----------
    mean_pof:
        Mean of the per-batch POF estimates.
    standard_error:
        Standard error of the overall mean (batch std / sqrt(batches)).
    n_particles / n_batches:
        Total campaign size and how it was split.
    """

    mean_pof: float
    standard_error: float
    n_particles: int
    n_batches: int

    @property
    def relative_error(self) -> float:
        """SE / mean (inf when the mean is 0 -- no upsets observed)."""
        if self.mean_pof <= 0:
            return float("inf")
        return self.standard_error / self.mean_pof

    def particles_for_relative_error(self, target: float) -> int:
        """Campaign size for a target relative SE (1/sqrt(n) scaling)."""
        if target <= 0:
            raise ConfigError("target relative error must be positive")
        current = self.relative_error
        if not math.isfinite(current):
            raise ConfigError(
                "no upsets observed -- cannot extrapolate; run a larger pilot"
            )
        scale = (current / target) ** 2
        return int(math.ceil(self.n_particles * scale))


def pof_standard_error(result) -> float:
    """Single-campaign standard error of an :class:`ArrayPofResult` POF.

    The per-launched-particle POF is the mean of ``n`` i.i.d. per-event
    failure probabilities in [0, 1]; the binomial bound
    ``sqrt(p (1 - p) / n)`` is therefore a conservative (slightly
    pessimistic, since events contribute fractional probabilities)
    standard error that needs no re-running, unlike
    :func:`estimate_pof_error`.  The flow records this per FIT energy
    bin into the metrics registry, and the run manifest reports it as
    the campaign's convergence diagnostic.

    Edge cases return ``nan`` rather than a misleading number:

    * ``degraded`` results lost draw blocks to worker crashes -- the
      binomial bound over the surviving ``n`` would *understate* the
      uncertainty of what the caller asked for.
    * zero-hit results carry no information about ``p`` beyond "small";
      ``p == 0`` would claim SE = 0, i.e. perfect convergence, exactly
      where the estimate is weakest.

    Results of a stratified merge carry their exact estimator variance
    (``sum_s w_s^2 p_s (1 - p_s) / n_s``) in ``pof_variance``; its
    square root is used directly.
    """
    n = int(result.n_particles)
    if n < 1:
        raise ConfigError("result has no particles")
    if getattr(result, "degraded", False):
        return math.nan
    if int(getattr(result, "n_array_hits", 0)) == 0:
        return math.nan
    variance = getattr(result, "pof_variance", None)
    if variance is not None:
        return math.sqrt(max(float(variance), 0.0))
    p = min(max(float(result.pof_total), 0.0), 1.0)
    return math.sqrt(p * (1.0 - p) / n)


def estimate_pof_error(
    simulator: ArraySerSimulator,
    particle: ParticleType,
    energy_mev: float,
    vdd_v: float,
    n_particles: int,
    rng: np.random.Generator,
    n_batches: int = 10,
) -> ConvergenceEstimate:
    """Batched standard error of the total-POF estimate.

    Splits the campaign into ``n_batches`` independent sub-campaigns and
    reports the spread of their estimates -- the honest MC error bar,
    including all correlation induced inside one batch.
    """
    if n_batches < 2:
        raise ConfigError("need at least two batches for an error estimate")
    per_batch = n_particles // n_batches
    if per_batch < 1:
        raise ConfigError("need at least one particle per batch")

    estimates = np.array(
        [
            simulator.run(particle, energy_mev, vdd_v, per_batch, rng).pof_total
            for _ in range(n_batches)
        ]
    )
    mean = float(np.mean(estimates))
    standard_error = float(
        np.std(estimates, ddof=1) / math.sqrt(n_batches)
    )
    return ConvergenceEstimate(
        mean_pof=mean,
        standard_error=standard_error,
        n_particles=per_batch * n_batches,
        n_batches=n_batches,
    )


# -- adaptive trial allocation (repro.ser.adaptive) -----------------------


@dataclass(frozen=True)
class BinBudgetState:
    """Live convergence state of one (particle, energy, vdd) bin.

    The allocation input: current trial count, POF estimate and
    standard error (``nan`` when unknown), the bin's absolute SE target
    and its hard trial ceiling.  Built from journaled round results, so
    identical journals yield identical allocations.
    """

    key: str
    trials: int
    pof: float
    standard_error: float
    target_se: float
    max_trials: int

    def __post_init__(self):
        if self.trials < 0:
            raise ConfigError("bin trial count cannot be negative")
        if self.target_se < 0:
            raise ConfigError("target standard error cannot be negative")
        if self.max_trials < 1:
            raise ConfigError("trial ceiling must be positive")

    @property
    def variance_scale(self) -> float:
        """``n * SE^2`` -- the (estimated) per-trial variance ``p(1-p)``.

        Falls back to :data:`MAX_BINOMIAL_VARIANCE` when the SE is not
        finite (zero-hit or degraded bins), so uninformative bins keep
        receiving trials instead of being starved.
        """
        if math.isfinite(self.standard_error) and self.trials > 0:
            return self.standard_error * self.standard_error * self.trials
        return MAX_BINOMIAL_VARIANCE

    def predicted_standard_error(self, extra_trials: int) -> float:
        """SE forecast after ``extra_trials`` more draws (1/sqrt(n))."""
        n = self.trials + max(int(extra_trials), 0)
        if n < 1:
            return math.inf
        return math.sqrt(self.variance_scale / n)

    @property
    def converged(self) -> bool:
        """True when the *measured* SE is finite and at/below target."""
        return (
            math.isfinite(self.standard_error)
            and self.standard_error <= self.target_se
        )


def allocate_blocks(
    states: Sequence[BinBudgetState],
    budget_blocks: int,
    block_size: int,
) -> Dict[str, int]:
    """Greedy minimax allocation of the next round's draw blocks.

    Each of the ``budget_blocks`` blocks goes to the bin whose
    *predicted* standard error (after the blocks already assigned this
    round) is largest -- the discrete Neyman allocation on the binomial
    variance estimate, driving the worst bin down first.  Bins at their
    target or ceiling are skipped; ties keep the earliest bin in
    ``states`` order, and the whole function is a pure function of its
    arguments, so replaying journaled rounds reproduces the identical
    sequence.  Returns ``{bin key: blocks}`` for bins that got any.
    """
    if budget_blocks < 0:
        raise ConfigError("block budget cannot be negative")
    if block_size < 1:
        raise ConfigError("block size must be positive")
    assigned: Dict[str, int] = {}
    for state in states:
        if state.key in assigned:
            raise ConfigError(f"duplicate bin key {state.key!r}")
        assigned[state.key] = 0
    for _ in range(budget_blocks):
        best = None
        best_pred = 0.0
        for state in states:
            extra = assigned[state.key] * block_size
            if state.trials + extra >= state.max_trials:
                continue
            pred = state.predicted_standard_error(extra)
            if pred <= state.target_se:
                continue
            if best is None or pred > best_pred:
                best = state
                best_pred = pred
        if best is None:
            break
        assigned[best.key] += 1
    return {key: count for key, count in assigned.items() if count > 0}


@dataclass(frozen=True)
class StratumState:
    """Within-bin stratum statistics for the round's block split.

    ``tilt`` is an importance multiplier (default 1: plain Neyman) --
    energy strata get the POF-gradient tilt of
    :func:`build_energy_tilt` so draws concentrate where POF(E) is
    steep.
    """

    name: str
    weight: float
    trials: int
    pof: float
    hits: int
    tilt: float = 1.0

    @property
    def planning_variance(self) -> float:
        """``p (1 - p)`` estimate, worst-case while uninformative.

        An all-miss stratum is planned with the rule-of-three upper
        confidence bound ``p <= 3 / n`` instead of the worst-case 1/4:
        without the decay, a genuinely quiet stratum (e.g. the frame
        far from the sensitive fins) would hold the maximum planning
        variance forever and soak up every block of every round.
        """
        if self.trials < 1:
            return MAX_BINOMIAL_VARIANCE
        if self.hits < 1:
            return min(MAX_BINOMIAL_VARIANCE, 3.0 / self.trials)
        p = min(max(float(self.pof), 0.0), 1.0)
        return p * (1.0 - p)


def split_blocks_across_strata(
    strata: Sequence[StratumState],
    n_blocks: int,
    block_size: int,
) -> Dict[str, int]:
    """Split one bin's round blocks across its sampling strata.

    Greedy on the marginal variance reduction of the stratified
    estimator: a block to stratum ``s`` shrinks ``sum w_s^2 v_s / n_s``
    by ``w_s^2 v_s (1/n_s - 1/(n_s + B))`` (times the stratum's
    importance ``tilt``).  Deterministic: ties keep the earliest
    stratum in ``strata`` order.
    """
    if n_blocks < 0:
        raise ConfigError("block count cannot be negative")
    if block_size < 1:
        raise ConfigError("block size must be positive")
    if not strata:
        raise ConfigError("need at least one stratum")
    assigned = {}
    for stratum in strata:
        if stratum.name in assigned:
            raise ConfigError(f"duplicate stratum name {stratum.name!r}")
        assigned[stratum.name] = 0
    for _ in range(n_blocks):
        best = None
        best_gain = -1.0
        for stratum in strata:
            n = stratum.trials + assigned[stratum.name] * block_size
            n_eff = max(n, 1)
            gain = (
                stratum.weight
                * stratum.weight
                * stratum.planning_variance
                * stratum.tilt
                * (1.0 / n_eff - 1.0 / (n_eff + block_size))
            )
            if gain > best_gain:
                best = stratum
                best_gain = gain
        assigned[best.name] += 1
    return {name: count for name, count in assigned.items() if count > 0}


def build_energy_tilt(
    log_energies: Sequence[float],
    pofs: Sequence[float],
    max_tilt: float,
) -> List[float]:
    """Importance multipliers from the pilot POF(E) gradient.

    POF(E) is flat almost everywhere and steep only near threshold /
    the Bragg-peak region (paper Figs. 8-9), so draws inside an energy
    bin are worth most where ``|dPOF/dlogE|`` is large.  Central
    differences give a per-stratum gradient magnitude, normalized to
    mean 1 and clipped to ``[1/max_tilt, max_tilt]`` -- the tilt only
    *reorders* allocation priority; the estimator stays exactly
    unbiased because strata are reweighted by their flux mass, not by
    their sampling rate.
    """
    if max_tilt < 1.0:
        raise ConfigError("max_tilt must be >= 1")
    x = np.asarray(log_energies, dtype=np.float64)
    p = np.asarray(pofs, dtype=np.float64)
    if x.shape != p.shape or x.ndim != 1:
        raise ConfigError("log_energies and pofs must be equal-length 1-D")
    if len(x) < 2:
        return [1.0] * len(x)
    grad = np.abs(np.gradient(p, x))
    grad = np.where(np.isfinite(grad), grad, 0.0)
    mean = float(np.mean(grad))
    if mean <= 0.0:
        return [1.0] * len(x)
    tilt = np.clip(grad / mean, 1.0 / max_tilt, max_tilt)
    return [float(t) for t in tilt]
