"""Monte Carlo convergence diagnostics.

The paper runs 1e7 trials per point; users on laptops need to know how
few they can get away with.  These helpers estimate the statistical
error of an array-MC POF by batching, and size a campaign for a target
precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..physics import ParticleType
from ..ser import ArraySerSimulator


@dataclass(frozen=True)
class ConvergenceEstimate:
    """Batched MC error estimate for one campaign point.

    Attributes
    ----------
    mean_pof:
        Mean of the per-batch POF estimates.
    standard_error:
        Standard error of the overall mean (batch std / sqrt(batches)).
    n_particles / n_batches:
        Total campaign size and how it was split.
    """

    mean_pof: float
    standard_error: float
    n_particles: int
    n_batches: int

    @property
    def relative_error(self) -> float:
        """SE / mean (inf when the mean is 0 -- no upsets observed)."""
        if self.mean_pof <= 0:
            return float("inf")
        return self.standard_error / self.mean_pof

    def particles_for_relative_error(self, target: float) -> int:
        """Campaign size for a target relative SE (1/sqrt(n) scaling)."""
        if target <= 0:
            raise ConfigError("target relative error must be positive")
        current = self.relative_error
        if not math.isfinite(current):
            raise ConfigError(
                "no upsets observed -- cannot extrapolate; run a larger pilot"
            )
        scale = (current / target) ** 2
        return int(math.ceil(self.n_particles * scale))


def pof_standard_error(result) -> float:
    """Single-campaign standard error of an :class:`ArrayPofResult` POF.

    The per-launched-particle POF is the mean of ``n`` i.i.d. per-event
    failure probabilities in [0, 1]; the binomial bound
    ``sqrt(p (1 - p) / n)`` is therefore a conservative (slightly
    pessimistic, since events contribute fractional probabilities)
    standard error that needs no re-running, unlike
    :func:`estimate_pof_error`.  The flow records this per FIT energy
    bin into the metrics registry, and the run manifest reports it as
    the campaign's convergence diagnostic.
    """
    p = min(max(float(result.pof_total), 0.0), 1.0)
    n = int(result.n_particles)
    if n < 1:
        raise ConfigError("result has no particles")
    return math.sqrt(p * (1.0 - p) / n)


def estimate_pof_error(
    simulator: ArraySerSimulator,
    particle: ParticleType,
    energy_mev: float,
    vdd_v: float,
    n_particles: int,
    rng: np.random.Generator,
    n_batches: int = 10,
) -> ConvergenceEstimate:
    """Batched standard error of the total-POF estimate.

    Splits the campaign into ``n_batches`` independent sub-campaigns and
    reports the spread of their estimates -- the honest MC error bar,
    including all correlation induced inside one batch.
    """
    if n_batches < 2:
        raise ConfigError("need at least two batches for an error estimate")
    per_batch = n_particles // n_batches
    if per_batch < 1:
        raise ConfigError("need at least one particle per batch")

    estimates = np.array(
        [
            simulator.run(particle, energy_mev, vdd_v, per_batch, rng).pof_total
            for _ in range(n_batches)
        ]
    )
    mean = float(np.mean(estimates))
    standard_error = float(
        np.std(estimates, ddof=1) / math.sqrt(n_batches)
    )
    return ConvergenceEstimate(
        mean_pof=mean,
        standard_error=standard_error,
        n_particles=per_batch * n_batches,
        n_batches=n_batches,
    )
