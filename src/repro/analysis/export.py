"""CSV export of the reproduced figure series.

``repro-ser figures`` writes one CSV per paper figure so users can plot
with their tool of choice (the library deliberately has no plotting
dependency).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Optional, Union

from ..core import SerFlow
from .figures import (
    Series,
    fig2a_proton_spectrum,
    fig2b_alpha_spectrum,
    fig4_electron_yield,
    fig8_pof_vs_energy,
    fig9_fit_vs_vdd,
    fig10_mbu_seu,
)


def _write_series_csv(path: Path, x_name: str, series_list) -> Path:
    """One CSV: first column x, one column per series."""
    path.parent.mkdir(parents=True, exist_ok=True)
    # series may have different x grids; require a shared grid
    reference = series_list[0].x
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_name] + [s.label for s in series_list])
        for i, x in enumerate(reference):
            writer.writerow(
                [f"{x:.8g}"]
                + [
                    f"{s.y[i]:.8g}" if i < len(s.y) else ""
                    for s in series_list
                ]
            )
    return path


def export_figures(
    flow: SerFlow,
    out_dir: Union[str, Path],
    sweep=None,
    pof_energy_particles: Optional[int] = None,
) -> Dict[str, Path]:
    """Regenerate every figure series and write CSVs.

    Parameters
    ----------
    flow:
        A configured flow (LUTs are built on demand).
    out_dir:
        Output directory for the CSVs.
    sweep:
        Optional precomputed :class:`~repro.ser.SerSweep` (runs the
        full campaign when omitted).
    pof_energy_particles:
        MC particles per Fig. 8 energy point (flow default if None).

    Returns
    -------
    dict
        Figure id -> written path.
    """
    out = Path(out_dir)
    written: Dict[str, Path] = {}

    written["fig2a"] = _write_series_csv(
        out / "fig2a_proton_spectrum.csv",
        "energy_mev",
        [fig2a_proton_spectrum()],
    )
    written["fig2b"] = _write_series_csv(
        out / "fig2b_alpha_spectrum.csv",
        "energy_mev",
        [fig2b_alpha_spectrum()],
    )

    luts = flow.yield_luts()
    if "alpha" in luts and "proton" in luts:
        alpha_series, proton_series = fig4_electron_yield(luts)
        written["fig4_alpha"] = _write_series_csv(
            out / "fig4_yield_alpha.csv", "energy_mev", [alpha_series]
        )
        written["fig4_proton"] = _write_series_csv(
            out / "fig4_yield_proton.csv", "energy_mev", [proton_series]
        )

    series_map = fig8_pof_vs_energy(
        flow, n_particles=pof_energy_particles
    )
    for (particle, vdd), series in sorted(series_map.items()):
        key = f"fig8_{particle}_{vdd:.1f}"
        written[key] = _write_series_csv(
            out / f"{key}.csv", "energy_mev", [series]
        )

    if sweep is None:
        sweep = flow.sweep()
    for particle, series in fig9_fit_vs_vdd(sweep).items():
        written[f"fig9_{particle}"] = _write_series_csv(
            out / f"fig9_fit_{particle}.csv", "vdd_v", [series]
        )
    for particle, series in fig10_mbu_seu(sweep).items():
        written[f"fig10_{particle}"] = _write_series_csv(
            out / f"fig10_mbu_seu_{particle}.csv", "vdd_v", [series]
        )
    return written
