"""Normalization and shape-check helpers for reproduced series.

The paper presents every result normalized; quantitative comparison
therefore happens on *shapes*: monotonicity, ratios, crossovers.  The
checks here are shared by the test suite and the benchmark harness.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


def normalized(values, reference: str = "max") -> np.ndarray:
    """Scale a series so its ``max``/``first``/``last`` equals 1."""
    values = np.asarray(values, dtype=np.float64)
    if reference == "max":
        scale = float(np.max(values))
    elif reference == "first":
        scale = float(values[0])
    elif reference == "last":
        scale = float(values[-1])
    else:
        raise ConfigError(f"unknown normalization reference {reference!r}")
    if scale <= 0:
        raise ConfigError("cannot normalize a non-positive series")
    return values / scale


def is_monotone_decreasing(values, tolerance: float = 0.0) -> bool:
    """True when each step decreases (up to an absolute tolerance)."""
    values = np.asarray(values, dtype=np.float64)
    return bool(np.all(np.diff(values) <= tolerance))


def is_monotone_increasing(values, tolerance: float = 0.0) -> bool:
    """True when each step increases (up to an absolute tolerance)."""
    values = np.asarray(values, dtype=np.float64)
    return bool(np.all(np.diff(values) >= -tolerance))


def dominance_factor(series_a, series_b) -> np.ndarray:
    """Pointwise ratio a/b (inf where b is 0 and a is not)."""
    a = np.asarray(series_a, dtype=np.float64)
    b = np.asarray(series_b, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(b > 0, a / np.where(b > 0, b, 1.0), np.inf)
    return np.where((a == 0) & (b == 0), 1.0, ratio)


def decades_of_decrease(values) -> float:
    """log10(first/last) -- how many decades a series falls over its range."""
    values = np.asarray(values, dtype=np.float64)
    if values[0] <= 0 or values[-1] <= 0:
        raise ConfigError("series endpoints must be positive")
    return float(np.log10(values[0] / values[-1]))
