"""Parameter sensitivity of the SER estimate.

Which technology knob moves the soft-error rate most?  This module
computes elasticities ``d ln(SER) / d ln(parameter)`` by re-running the
flow with one parameter perturbed at a time, using common random
numbers so the finite difference is not drowned by MC noise.

Supported parameters (all on the :class:`~repro.devices.TechnologyCard`):

============= =====================================================
``node_cap``   storage-node capacitance (sets Qcrit directly)
``vth``        threshold magnitude of both device flavours
``sigma_vth``  process-variation strength
``fin_height`` fin height (chord lengths and deposits)
``collection`` charge-collection length along the fin
============= =====================================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import FlowConfig, SerFlow
from ..devices import TechnologyCard
from ..errors import ConfigError
from ..geometry import FinGeometry
from ..sram import SramCellDesign

SENSITIVITY_PARAMETERS = (
    "node_cap",
    "vth",
    "sigma_vth",
    "fin_height",
    "collection",
)


@dataclass(frozen=True)
class SensitivityResult:
    """One parameter's finite-difference sensitivity.

    Attributes
    ----------
    parameter:
        Knob name (see module docstring).
    relative_delta:
        Fractional perturbation applied (e.g. 0.1 for +10 %).
    fit_base / fit_perturbed:
        FIT at the base and perturbed configurations.
    elasticity:
        ``ln(FIT_pert / FIT_base) / ln(1 + delta)`` -- the local
        log-log slope; -3 means "+10 % on the knob, ~-25 % on SER".
    """

    parameter: str
    relative_delta: float
    fit_base: float
    fit_perturbed: float

    @property
    def elasticity(self) -> float:
        if self.fit_base <= 0 or self.fit_perturbed <= 0:
            return float("nan")
        return float(
            np.log(self.fit_perturbed / self.fit_base)
            / np.log1p(self.relative_delta)
        )


def perturb_technology(tech: TechnologyCard, parameter: str, relative_delta: float) -> TechnologyCard:
    """A copy of the card with one knob scaled by ``1 + delta``."""
    factor = 1.0 + relative_delta
    if factor <= 0:
        raise ConfigError("perturbation must keep the parameter positive")
    if parameter == "node_cap":
        return dataclasses.replace(tech, node_cap_f=tech.node_cap_f * factor)
    if parameter == "vth":
        return dataclasses.replace(
            tech,
            nmos=dataclasses.replace(
                tech.nmos, vth0_v=tech.nmos.vth0_v * factor
            ),
            pmos=dataclasses.replace(
                tech.pmos, vth0_v=tech.pmos.vth0_v * factor
            ),
        )
    if parameter == "sigma_vth":
        return dataclasses.replace(
            tech, sigma_vth_v=tech.sigma_vth_v * factor
        )
    if parameter == "fin_height":
        fin = FinGeometry(
            tech.fin.length_nm, tech.fin.width_nm, tech.fin.height_nm * factor
        )
        return dataclasses.replace(tech, fin=fin)
    if parameter == "collection":
        return dataclasses.replace(
            tech, collection_length_nm=tech.collection_length_nm * factor
        )
    raise ConfigError(
        f"unknown sensitivity parameter {parameter!r}; expected one of "
        f"{SENSITIVITY_PARAMETERS}"
    )


def ser_sensitivities(
    config: FlowConfig,
    particle_name: str = "alpha",
    vdd_v: float = 0.7,
    parameters: Sequence[str] = SENSITIVITY_PARAMETERS,
    relative_delta: float = 0.15,
    base_design: Optional[SramCellDesign] = None,
    mc_seed: int = 424242,
) -> List[SensitivityResult]:
    """Finite-difference SER sensitivities with common random numbers.

    Every run (base and each perturbation) uses the same MC stream, so
    differences isolate the parameter change.  Cost: one full flow per
    parameter plus one base run -- size the ``config`` accordingly.
    """
    design = base_design if base_design is not None else SramCellDesign()
    # common random numbers: campaigns derive their streams from the
    # config seed, so flows sharing it see identical MC draws.
    crn_config = dataclasses.replace(config, seed=mc_seed)

    def fit_for(active_design: SramCellDesign) -> float:
        flow = SerFlow(crn_config, design=active_design)
        return flow.fit(particle_name, vdd_v).fit_total

    fit_base = fit_for(design)
    results = []
    for parameter in parameters:
        perturbed_tech = perturb_technology(
            design.tech, parameter, relative_delta
        )
        perturbed = dataclasses.replace(design, tech=perturbed_tech)
        results.append(
            SensitivityResult(
                parameter=parameter,
                relative_delta=relative_delta,
                fit_base=fit_base,
                fit_perturbed=fit_for(perturbed),
            )
        )
    return results
