"""Physical constants used throughout the library.

All constants are expressed in the unit system documented in
:mod:`repro.units`: energies in MeV, lengths in cm for bulk physics and
nanometres for device geometry, charge in coulomb, time in seconds.
Values follow CODATA 2018 to the precision relevant for soft-error
analysis (a few significant figures dominate every downstream result).
"""

from __future__ import annotations

import math

#: Elementary charge [C].
ELEMENTARY_CHARGE_C = 1.602176634e-19

#: Electron rest energy m_e c^2 [MeV].
ELECTRON_REST_ENERGY_MEV = 0.51099895

#: Proton rest energy m_p c^2 [MeV].
PROTON_REST_ENERGY_MEV = 938.2720813

#: Alpha-particle rest energy m_alpha c^2 [MeV].
ALPHA_REST_ENERGY_MEV = 3727.379378

#: Ratio of alpha to proton mass (used for effective-charge velocity scaling).
ALPHA_TO_PROTON_MASS_RATIO = ALPHA_REST_ENERGY_MEV / PROTON_REST_ENERGY_MEV

#: Avogadro's number [1/mol].
AVOGADRO = 6.02214076e23

#: Bethe-Bloch front factor K = 4 pi N_A r_e^2 m_e c^2 [MeV cm^2 / mol].
BETHE_K_MEV_CM2_PER_MOL = 0.307075

#: Classical electron radius [cm].
CLASSICAL_ELECTRON_RADIUS_CM = 2.8179403262e-13

#: Mean energy to create one electron-hole pair in silicon [eV].
#: The paper uses 3.6 eV ("for every 3.6 eV of particle energy lost in
#: silicon, an electron-hole pair is generated").
SILICON_PAIR_ENERGY_EV = 3.6

#: Fano factor for silicon (variance of pair count = F * mean).
SILICON_FANO_FACTOR = 0.115

#: Boltzmann constant [eV/K].
BOLTZMANN_EV_PER_K = 8.617333262e-5

#: Thermal voltage kT/q at 300 K [V].
THERMAL_VOLTAGE_300K = BOLTZMANN_EV_PER_K * 300.0

#: Speed of light [cm/s].
SPEED_OF_LIGHT_CM_PER_S = 2.99792458e10

#: Low-field electron mobility in the (lightly doped, fully depleted) fin
#: channel [cm^2 / (V s)].  Used by the paper's transit-time formula
#: (eq. 2); bulk silicon electron mobility is ~1400, confined fins sit
#: lower -- we use a fin-channel value consistent with eq. 2 producing a
#: transit time "more than 10 fs" for the 14 nm device at Vds = 1 V.
FIN_ELECTRON_MOBILITY_CM2_PER_VS = 300.0

#: Seconds per hour (FIT bookkeeping).
SECONDS_PER_HOUR = 3600.0

#: Hours per 1e9 hours (FIT = failures per 1e9 device-hours).
FIT_HOURS = 1.0e9

TWO_PI = 2.0 * math.pi
PI = math.pi
