"""Static noise margin (SNM) extraction for the 6T cell.

Not part of the paper's SER flow, but the standard companion analysis
for any SRAM robustness study (and a strong cross-check of the cell
model: SNM must shrink with Vdd exactly as POF grows).  Implements the
classic Seevinck butterfly-curve construction with the MNA engine:

* **hold SNM** -- word line low, bit lines released;
* **read SNM** -- word line high, bit lines clamped to Vdd (the
  worst-case static condition).

The SNM is the side of the largest square inscribed in the smaller
lobe of the butterfly formed by one inverter's transfer curve and the
mirror of the other's; the standard 45-degree-rotation trick turns the
inscribed square into a vertical gap measurement.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..circuit import Circuit, solve_dc
from ..errors import CharacterizationError, ConfigError
from .cell import SramCellDesign


def inverter_transfer_curve(
    design: SramCellDesign,
    vdd_v: float,
    n_points: int = 61,
    mode: str = "hold",
    vth_shifts_v=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Voltage transfer curve of one cell inverter.

    ``vth_shifts_v`` is the (pu, pd, pg) shift triple of this half-cell.
    In ``"read"`` mode the access transistor (gate high, bit line at
    Vdd) fights the pull-down, degrading the low output level -- the
    classic read-disturb mechanism.
    """
    if mode not in ("hold", "read"):
        raise ConfigError(f"unknown SNM mode {mode!r}")
    if n_points < 3:
        raise ConfigError("need at least 3 sweep points")
    shifts = np.zeros(3) if vth_shifts_v is None else np.asarray(vth_shifts_v)
    if shifts.shape != (3,):
        raise ConfigError("half-cell shifts are a (pu, pd, pg) triple")

    inputs = np.linspace(0.0, vdd_v, n_points)
    outputs = np.empty_like(inputs)
    for i, vin in enumerate(inputs):
        circuit = Circuit("half-cell")
        circuit.add_vsource("vvdd", "vdd", "0", vdd_v)
        circuit.add_vsource("vin", "in", "0", float(vin))
        circuit.add_finfet(
            "pu", "out", "in", "vdd", design.tech.pmos, design.nfin_pu,
            float(shifts[0]),
        )
        circuit.add_finfet(
            "pd", "out", "in", "0", design.tech.nmos, design.nfin_pd,
            float(shifts[1]),
        )
        if mode == "read":
            circuit.add_vsource("vbl", "bl", "0", vdd_v)
            circuit.add_vsource("vwl", "wl", "0", vdd_v)
            circuit.add_finfet(
                "pg", "bl", "wl", "out", design.tech.nmos, design.nfin_pg,
                float(shifts[2]),
            )
        guess = {"vdd": vdd_v, "out": vdd_v if vin < vdd_v / 2 else 0.0}
        outputs[i] = solve_dc(circuit, initial_guess=guess).voltage("out")
    return inputs, outputs


def _rotated_gap_curves(curve_a, curve_b_mirrored):
    """Vertical gap between two curves in the 45-degree-rotated frame.

    ``curve_a`` is ``(x, y)`` points of the first VTC; the second curve
    is passed already mirrored (``(y, x)`` of the second VTC).  Returns
    ``(u_grid, gap)`` with gap = v_a(u) - v_b(u).
    """
    sqrt2 = math.sqrt(2.0)
    xa, ya = curve_a
    xb, yb = curve_b_mirrored
    ua, va = (xa - ya) / sqrt2, (xa + ya) / sqrt2
    ub, vb = (xb - yb) / sqrt2, (xb + yb) / sqrt2
    order_a = np.argsort(ua)
    order_b = np.argsort(ub)
    u_lo = max(ua.min(), ub.min())
    u_hi = min(ua.max(), ub.max())
    if u_hi <= u_lo:
        raise CharacterizationError("butterfly curves do not overlap")
    u_grid = np.linspace(u_lo, u_hi, 401)
    gap = np.interp(u_grid, ua[order_a], va[order_a]) - np.interp(
        u_grid, ub[order_b], vb[order_b]
    )
    return u_grid, gap


def static_noise_margin_v(
    design: SramCellDesign,
    vdd_v: float,
    mode: str = "hold",
    n_points: int = 61,
    vth_shifts_v=None,
) -> float:
    """Static noise margin [V] via the butterfly construction.

    ``vth_shifts_v`` (optional) follows :data:`~repro.sram.cell.ROLES`
    order; the weaker butterfly lobe governs the margin.
    """
    shifts = np.zeros(6) if vth_shifts_v is None else np.asarray(vth_shifts_v)
    if shifts.shape != (6,):
        raise ConfigError("cell shifts follow the 6-role order")

    vin_l, vout_l = inverter_transfer_curve(
        design, vdd_v, n_points, mode, shifts[[0, 1, 2]]
    )
    vin_r, vout_r = inverter_transfer_curve(
        design, vdd_v, n_points, mode, shifts[[3, 4, 5]]
    )

    # butterfly: left VTC vs mirrored right VTC.  The gap is positive
    # in one lobe and negative in the other; the largest inscribed
    # square in each lobe has side |gap|_max / sqrt(2); the SNM is the
    # smaller lobe's square.
    _, gap = _rotated_gap_curves((vin_l, vout_l), (vout_r, vin_r))
    positive = float(np.max(gap))
    negative = float(np.max(-gap))
    snm = min(positive, negative) / math.sqrt(2.0)
    if not np.isfinite(snm) or snm <= 0:
        raise CharacterizationError(
            f"SNM extraction failed at vdd={vdd_v} (mode={mode})"
        )
    return snm


def snm_vs_vdd(
    design: SramCellDesign, vdd_values, mode: str = "hold"
) -> np.ndarray:
    """SNM [V] at each supply voltage (monotone increasing in Vdd)."""
    return np.array(
        [static_noise_margin_v(design, float(v), mode) for v in vdd_values]
    )
