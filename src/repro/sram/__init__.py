"""6T SRAM cell modeling: netlists, fast strike simulation, POF
characterization, and critical-charge extraction."""

from .access import (
    AccessTimingConfig,
    read_disturb_analysis,
    write_analysis,
)
from .cell import ROLES, SENSITIVE_ROLES, STRIKE_TARGETS, SramCellDesign
from .characterize import CharacterizationConfig, characterize_cell
from .fastcell import KERNELS, FastCell
from .ivtab import IVTables
from .pof_cdf import QcritCdfModel
from .pof_lut import PofTable
from .qcrit import (
    critical_charge_samples_c,
    critical_charge_statistics,
    critical_charge_vs_vdd,
    nominal_critical_charge_c,
)
from .snm import snm_vs_vdd, static_noise_margin_v
from .strike import ALL_COMBOS, StrikeScenario, combo_label, combo_of_charges

__all__ = [
    "SramCellDesign",
    "ROLES",
    "SENSITIVE_ROLES",
    "STRIKE_TARGETS",
    "FastCell",
    "KERNELS",
    "IVTables",
    "CharacterizationConfig",
    "characterize_cell",
    "PofTable",
    "QcritCdfModel",
    "AccessTimingConfig",
    "read_disturb_analysis",
    "write_analysis",
    "static_noise_margin_v",
    "snm_vs_vdd",
    "StrikeScenario",
    "ALL_COMBOS",
    "combo_label",
    "combo_of_charges",
    "nominal_critical_charge_c",
    "critical_charge_vs_vdd",
    "critical_charge_samples_c",
    "critical_charge_statistics",
]
