"""Critical-charge extraction (the classic cell-level SER metric).

The paper's circuit-level related work ([14]) characterizes cells by
their critical charge Qcrit -- the smallest collected charge that flips
the cell.  These helpers extract Qcrit from the fast cell model:
nominal values, Vdd sweeps, and full distributions under process
variation (whose spread is what turns the paper's binary POFs into
probabilities).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..devices import VariationModel
from ..errors import ConfigError
from .cell import SramCellDesign
from .fastcell import FastCell

#: Default current kernel of the Qcrit helpers: bit-identical to the
#: exact per-role evaluation, just faster (``docs/performance.md``).
DEFAULT_QCRIT_KERNEL = "fused"

#: Canonical single-strike direction: all charge into I1 (the
#: pull-down of the '1' node -- the classic SRAM-upset path).
I1_DIRECTION = np.array([1.0, 0.0, 0.0])


def nominal_critical_charge_c(
    design: SramCellDesign,
    vdd_v: float,
    direction: Sequence[float] = I1_DIRECTION,
    kernel: str = DEFAULT_QCRIT_KERNEL,
    early_exit: bool = False,
) -> float:
    """Qcrit [C] of the variation-free cell along a strike direction.

    ``kernel`` / ``early_exit`` select the
    :class:`~repro.sram.fastcell.FastCell` evaluation strategy; the
    defaults reproduce the exact bisection bit-for-bit.
    """
    cell = FastCell(design, vdd_v, kernel=kernel, early_exit=early_exit)
    shifts = np.zeros((1, 6))
    return float(
        cell.critical_charge_c(np.asarray(direction, dtype=np.float64), shifts)[0]
    )


def critical_charge_vs_vdd(
    design: SramCellDesign,
    vdd_values: Sequence[float],
    direction: Sequence[float] = I1_DIRECTION,
    kernel: str = DEFAULT_QCRIT_KERNEL,
    early_exit: bool = False,
) -> np.ndarray:
    """Nominal Qcrit [C] at each supply voltage (monotone increasing)."""
    if not len(vdd_values):
        raise ConfigError("need at least one Vdd value")
    return np.array(
        [
            nominal_critical_charge_c(
                design, v, direction, kernel=kernel, early_exit=early_exit
            )
            for v in vdd_values
        ]
    )


def critical_charge_samples_c(
    design: SramCellDesign,
    vdd_v: float,
    n_samples: int,
    rng: np.random.Generator,
    direction: Sequence[float] = I1_DIRECTION,
    variation: Optional[VariationModel] = None,
    kernel: str = DEFAULT_QCRIT_KERNEL,
    early_exit: bool = False,
) -> np.ndarray:
    """Qcrit distribution [C] under threshold-voltage variation.

    Returns one Qcrit per variation sample (vectorized log-bisection).
    """
    if n_samples < 1:
        raise ConfigError("need at least one sample")
    variation = (
        variation
        if variation is not None
        else VariationModel(sigma_vth_v=design.tech.sigma_vth_v)
    )
    shifts = variation.sample_shifts(n_samples, design.nfins(), rng)
    cell = FastCell(design, vdd_v, kernel=kernel, early_exit=early_exit)
    return cell.critical_charge_c(
        np.asarray(direction, dtype=np.float64), shifts
    )


def critical_charge_statistics(
    design: SramCellDesign,
    vdd_v: float,
    n_samples: int,
    rng: np.random.Generator,
    direction: Sequence[float] = I1_DIRECTION,
    kernel: str = DEFAULT_QCRIT_KERNEL,
    early_exit: bool = False,
) -> Tuple[float, float]:
    """``(mean, std)`` of the Qcrit distribution [C]."""
    samples = critical_charge_samples_c(
        design, vdd_v, n_samples, rng, direction,
        kernel=kernel, early_exit=early_exit,
    )
    return float(np.mean(samples)), float(np.std(samples))
