"""Fast vectorized strike simulation of the 6T cell.

The paper's cell characterization needs POF over (Vdd x charge grid x
strike combination x 1000 variation samples) -- far too many transient
runs for a general-purpose MNA engine.  :class:`FastCell` integrates
the cell's exact 2-state ODE (storage nodes ``q``/``qb``; all other
nodes are ideal rails in the hold state) with RK4, vectorized across an
arbitrary batch of (charge, Vth-shift) scenarios.  It uses the *same*
:class:`~repro.devices.FinFETModel` equations as the MNA engine, so the
two agree by construction (an integration test enforces this).

Strike injection modes
----------------------
* ``"impulse"`` (default) -- the paper's rectangular pulse has width
  tau ~ 17 fs (eq. 2), three orders of magnitude faster than the cell's
  ~1.3 ps feedback time, so the deposited charge simply steps the node
  voltage by Q/C before the cell responds.  The paper itself verifies
  POF depends only on charge (Section 4); the impulse limit is that
  observation taken exactly.  Excursions are clamped to
  [-0.6 V, Vdd + 0.6 V], emulating junction clamping of overdriven
  nodes.
* ``"pulse"`` -- resolve a rectangular current pulse of a given width
  explicitly (used by the pulse-width ablation).

Current kernels
---------------
The RK4 stage derivative is served by one of three pluggable kernels
(``kernel=`` at construction; see ``docs/performance.md``):

* ``"exact"`` -- the reference: six per-role compact-model calls per
  stage, exactly the original implementation.
* ``"fused"`` (default) -- two stacked compact-model calls per stage
  (one batched n-type for {pd_l, pg_l, pd_r, pg_r}, one batched p-type
  for {pu_l, pu_r}).  Bit-identical to ``"exact"``: the model is purely
  elementwise, so stacking rows changes nothing but the Python-call
  count.
* ``"tabulated"`` -- bilinear lookups into per-(role-type, Vdd)
  :class:`~repro.sram.ivtab.IVTables` built once per cell and amortized
  over every stage evaluation.  Approximate, with a tested accuracy
  budget; keep ``"exact"`` for ground truth.

Independently, ``early_exit=True`` freezes trajectories whose node
separation has regeneratively latched (checked every
``early_exit_check_every`` steps) and compacts the live batch, so the
fixed integration horizon is only paid near the flip boundary.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigError
from ..obs import get_registry
from ..devices import TechnologyCard
from .cell import ROLES, SENSITIVE_ROLES, STRIKE_TARGETS, SramCellDesign
from .ivtab import DEFAULT_TABLE_POINTS, IVTables

#: Node-voltage clamp margin beyond the rails [V] -- the forward drop
#: of the junctions that catch an overdriven storage node.
_CLAMP_MARGIN_V = 0.6

#: Selectable current kernels.
KERNELS = ("exact", "fused", "tabulated")

#: Default early-exit separation margin as a fraction of Vdd.  A
#: trajectory whose |vq - vqb| stays beyond the margin with a stable
#: sign across two consecutive checks is past the metastable point by
#: more than any excursion the regenerative feedback can still undo,
#: so it can only latch to that side -- the outcome is decided.
#: Stress integration over the reachable post-strike state space shows
#: wrong-side excursions (a trajectory visiting s < -m yet ending
#: unflipped, or vice versa) bounded by ~1.1x the worst per-device
#: |dVth| of the batch, so the default margin is
#: max(0.6 * Vdd, 1.5 * max|dVth|); if mismatch is so extreme that the
#: margin exceeds the latched separation, nothing freezes and the loop
#: silently degrades to the full horizon (correct, just not faster).
#: The equality tests compare against the full-horizon run.
_EARLY_EXIT_MARGIN_FRAC = 0.6

#: Safety factor on the batch's worst |dVth| in the default margin.
_EARLY_EXIT_SHIFT_FACTOR = 1.5

#: Headroom factor on max |dVth| when sizing lazily-built I-V tables,
#: so small follow-up batches don't force a rebuild.
_TABLE_PAD_HEADROOM = 1.5


class _ExactCtx:
    """Per-batch state for the exact per-role kernel."""

    __slots__ = ("shifts",)

    def __init__(self, shifts: np.ndarray):
        self.shifts = shifts

    def take(self, keep: np.ndarray) -> "_ExactCtx":
        return _ExactCtx(self.shifts[keep])


class _FusedCtx:
    """Pre-gathered shift rows for the stacked two-call kernel.

    ``nsh`` rows are (pd_l, pg_l, pd_r, pg_r); ``psh`` rows are
    (pu_l, pu_r) -- the order the stage stacks its terminal voltages.
    """

    __slots__ = ("nsh", "psh")

    def __init__(self, nsh: np.ndarray, psh: np.ndarray):
        self.nsh = nsh
        self.psh = psh

    def take(self, keep: np.ndarray) -> "_FusedCtx":
        return _FusedCtx(self.nsh[:, keep], self.psh[:, keep])


#: Row mask turning the opposite-node voltage into the three effective
#: gate queries: the pass-gate's gate is the grounded word line, so its
#: row ignores the node voltage entirely.
_TAB_GATE_MASK = np.array([[1.0], [0.0], [1.0]])


class _TabCtx:
    """Effective-gate offsets for the tabulated kernel.

    ``offsets`` has shape ``(3, 2n)`` with rows (-d_pd, -d_pg, +d_pu);
    the stage query is ``w3 = other * _TAB_GATE_MASK + offsets`` where
    ``other`` is the opposite-node voltage.  Columns: the first ``n``
    serve node q (devices pd_l/pg_l/pu_l), the last ``n`` node qb
    (pd_r/pg_r/pu_r), so one table query per stage covers both nodes.
    """

    __slots__ = ("tables", "offsets")

    def __init__(self, tables, offsets):
        self.tables = tables
        self.offsets = offsets

    def take(self, keep: np.ndarray) -> "_TabCtx":
        keep2 = np.concatenate([keep, keep])
        return _TabCtx(self.tables, self.offsets[:, keep2])


class FastCell:
    """Vectorized two-node hold-state model of one 6T cell at fixed Vdd.

    Parameters
    ----------
    design, vdd_v:
        Cell design and supply voltage.
    kernel:
        One of :data:`KERNELS`.  ``"fused"`` (default) and ``"exact"``
        are bit-identical; ``"tabulated"`` trades a tested POF accuracy
        budget for speed.
    tables:
        Pre-built :class:`~repro.sram.ivtab.IVTables` for the
        tabulated kernel (must match ``vdd_v``); built lazily from the
        first batch's shift range when omitted.
    table_points:
        Grid points per axis for lazily-built tables.
    early_exit:
        Freeze decided trajectories during strike relaxation and
        compact the live batch (see module docstring).
    early_exit_margin_v:
        Separation margin [V] beyond which a sign-stable |vq - vqb|
        counts as decided; defaults per batch to
        ``max(0.6 * vdd_v, 1.5 * max|dVth|)``.
    early_exit_check_every:
        Steps between early-exit checks.
    backend:
        Array-compute backend for lazily-built I-V tables (``None`` =
        process default; see :mod:`repro.backend`).
    """

    def __init__(
        self,
        design: SramCellDesign,
        vdd_v: float,
        kernel: str = "fused",
        tables: Optional[IVTables] = None,
        table_points: int = DEFAULT_TABLE_POINTS,
        early_exit: bool = False,
        early_exit_margin_v: Optional[float] = None,
        early_exit_check_every: int = 8,
        backend: Optional[str] = None,
    ):
        if vdd_v <= 0:
            raise ConfigError("Vdd must be positive")
        if kernel not in KERNELS:
            raise ConfigError(
                f"unknown cell kernel {kernel!r}; choose from {KERNELS}"
            )
        if early_exit_margin_v is not None and early_exit_margin_v <= 0:
            raise ConfigError("early-exit margin must be positive")
        if early_exit_check_every < 1:
            raise ConfigError("early-exit check interval must be >= 1")
        self.design = design
        self.vdd = float(vdd_v)
        self.cap_f = design.tech.node_cap_f
        self.kernel = kernel
        self.early_exit = bool(early_exit)
        self._ee_margin = (
            float(early_exit_margin_v)
            if early_exit_margin_v is not None
            else None
        )
        self._ee_every = int(early_exit_check_every)
        self._table_points = int(table_points)
        self.backend = backend
        self._nmos = design.tech.nmos
        self._pmos = design.tech.pmos
        self._idx = {role: design.role_index(role) for role in ROLES}
        self._nfin = {role: design.nfin_of(role) for role in ROLES}
        # fin counts in stacked-row order, as column vectors so the
        # per-row scale broadcasts across the batch
        self._nf_n = np.array(
            [
                [self._nfin["pd_l"]],
                [self._nfin["pg_l"]],
                [self._nfin["pd_r"]],
                [self._nfin["pg_r"]]
            ],
            dtype=np.float64,
        )
        self._nf_p = np.array(
            [[self._nfin["pu_l"]], [self._nfin["pu_r"]]], dtype=np.float64
        )
        if tables is not None:
            if abs(tables.vdd - self.vdd) > 1e-12:
                raise ConfigError(
                    "I-V tables were built for a different Vdd"
                )
            if kernel != "tabulated":
                raise ConfigError(
                    "I-V tables require kernel='tabulated'"
                )
        self._tables = tables

    # -- dynamics -------------------------------------------------------------

    def node_currents(
        self, vq: np.ndarray, vqb: np.ndarray, shifts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Currents [A] flowing *into* nodes q and qb (exact reference).

        ``shifts`` has shape ``(n, 6)`` in :data:`~repro.sram.cell.ROLES`
        order.  This is the per-role reference evaluation regardless of
        the configured kernel.
        """
        vdd = self.vdd

        def ids(role, vd, vg, vs):
            model = self.design.model_of(role)
            return self._nfin[role] * model.ids(
                vd, vg, vs, vth_shift=shifts[:, self._idx[role]]
            )

        # Current into q: PU_L sources it, PD_L sinks it, PG_L leaks
        # from BL (= vdd).  A device's ids flows drain -> source, i.e.
        # *out of* its drain node.
        i_q = (
            -ids("pu_l", vq, vqb, vdd)
            - ids("pd_l", vq, vqb, 0.0)
            + ids("pg_l", vdd, 0.0, vq)
        )
        i_qb = (
            -ids("pu_r", vqb, vq, vdd)
            - ids("pd_r", vqb, vq, 0.0)
            + ids("pg_r", vdd, 0.0, vqb)
        )
        return i_q, i_qb

    def _deriv_currents(self, a, b, ctx):
        """Stage currents into (q, qb) under the configured kernel."""
        if isinstance(ctx, _ExactCtx):
            return self.node_currents(a, b, ctx.shifts)
        if isinstance(ctx, _FusedCtx):
            vf = np.full_like(a, self.vdd)
            z = np.zeros_like(a)
            # row order (pd_l, pg_l, pd_r, pg_r) / (pu_l, pu_r)
            vd_n = np.stack((a, vf, b, vf))
            vg_n = np.stack((b, z, a, z))
            vs_n = np.stack((z, a, z, b))
            ids_n = self._nf_n * self._nmos.ids(
                vd_n, vg_n, vs_n, vth_shift=ctx.nsh
            )
            vd_p = np.stack((a, b))
            vg_p = np.stack((b, a))
            vs_p = np.full_like(vd_p, self.vdd)
            ids_p = self._nf_p * self._pmos.ids(
                vd_p, vg_p, vs_p, vth_shift=ctx.psh
            )
            i_q = -ids_p[0] - ids_n[0] + ids_n[1]
            i_qb = -ids_p[1] - ids_n[2] + ids_n[3]
            return i_q, i_qb
        # tabulated: both nodes, all three device types, one gather
        n = a.shape[0]
        u = np.concatenate([a, b])
        other = np.concatenate([b, a])
        i3 = ctx.tables.currents_stacked(
            u, other * _TAB_GATE_MASK + ctx.offsets
        )
        i = -i3[2] - i3[0] + i3[1]
        return i[:n], i[n:]

    def _step(self, vq, vqb, ctx, dt, extra_q=0.0, extra_qb=0.0):
        """One RK4 step; ``extra_*`` are additional injected currents [A]."""
        c = self.cap_f

        def deriv(a, b):
            i_q, i_qb = self._deriv_currents(a, b, ctx)
            return (i_q + extra_q) / c, (i_qb + extra_qb) / c

        k1q, k1b = deriv(vq, vqb)
        k2q, k2b = deriv(vq + 0.5 * dt * k1q, vqb + 0.5 * dt * k1b)
        k3q, k3b = deriv(vq + 0.5 * dt * k2q, vqb + 0.5 * dt * k2b)
        k4q, k4b = deriv(vq + dt * k3q, vqb + dt * k3b)
        vq_new = vq + dt / 6.0 * (k1q + 2 * k2q + 2 * k3q + k4q)
        vqb_new = vqb + dt / 6.0 * (k1b + 2 * k2b + 2 * k3b + k4b)
        return self._clamp(vq_new), self._clamp(vqb_new)

    def _rk4_step(self, vq, vqb, shifts, dt, extra_q=0.0, extra_qb=0.0):
        """One exact-kernel RK4 step (reference; original signature)."""
        return self._step(vq, vqb, _ExactCtx(shifts), dt, extra_q, extra_qb)

    def _clamp(self, v):
        return np.clip(v, -_CLAMP_MARGIN_V, self.vdd + _CLAMP_MARGIN_V)

    # -- kernel plumbing ------------------------------------------------------

    def _make_ctx(self, shifts: np.ndarray):
        """Build the per-batch kernel context for validated ``shifts``."""
        if self.kernel == "exact":
            return _ExactCtx(shifts)
        if self.kernel == "fused":
            nsh = np.stack(
                (
                    shifts[:, self._idx["pd_l"]],
                    shifts[:, self._idx["pg_l"]],
                    shifts[:, self._idx["pd_r"]],
                    shifts[:, self._idx["pg_r"]],
                )
            )
            psh = np.stack(
                (shifts[:, self._idx["pu_l"]], shifts[:, self._idx["pu_r"]])
            )
            return _FusedCtx(nsh, psh)
        tables = self._ensure_tables(shifts)
        offsets = np.stack(
            (
                -np.concatenate(
                    [shifts[:, self._idx["pd_l"]], shifts[:, self._idx["pd_r"]]]
                ),
                -np.concatenate(
                    [shifts[:, self._idx["pg_l"]], shifts[:, self._idx["pg_r"]]]
                ),
                np.concatenate(
                    [shifts[:, self._idx["pu_l"]], shifts[:, self._idx["pu_r"]]]
                ),
            )
        )
        return _TabCtx(tables, offsets)

    def _ensure_tables(self, shifts: np.ndarray) -> IVTables:
        """Return I-V tables whose gate axes cover this shift batch."""
        max_shift = float(np.max(np.abs(shifts))) if shifts.size else 0.0
        if self._tables is None or not self._tables.covers(max_shift):
            self._tables = IVTables(
                self.design,
                self.vdd,
                shift_pad_v=_TABLE_PAD_HEADROOM * max_shift,
                points=self._table_points,
                clamp_margin_v=_CLAMP_MARGIN_V,
                backend=self.backend,
            )
            get_registry().counter("characterize.kernel.table_builds").inc()
        return self._tables

    def _ee_margin_for(self, shifts: np.ndarray) -> float:
        """Early-exit margin [V] for a batch (see module constants)."""
        if self._ee_margin is not None:
            return self._ee_margin
        max_shift = float(np.max(np.abs(shifts))) if shifts.size else 0.0
        return max(
            _EARLY_EXIT_MARGIN_FRAC * self.vdd,
            _EARLY_EXIT_SHIFT_FACTOR * max_shift,
        )

    def _relax(
        self, vq, vqb, ctx, steps: int, dt_s: float, margin: float
    ) -> np.ndarray:
        """Free relaxation for ``steps``; returns the flip mask.

        With ``early_exit`` enabled, trajectories whose separation has
        regeneratively latched are frozen at the checkpoints and the
        live batch is compacted; outcomes equal the full-horizon run.
        """
        if not self.early_exit:
            for _ in range(steps):
                vq, vqb = self._step(vq, vqb, ctx, dt_s)
            return vq < vqb

        n = vq.shape[0]
        outcome = np.zeros(n, dtype=bool)
        active = np.arange(n)
        s_prev = vq - vqb
        done = 0
        frozen_total = 0
        saved_total = 0
        while done < steps and active.size:
            span = min(self._ee_every, steps - done)
            for _ in range(span):
                vq, vqb = self._step(vq, vqb, ctx, dt_s)
            done += span
            s = vq - vqb
            # decided: beyond the margin with a stable sign at two
            # consecutive checkpoints (overshoot past the rails relaxes
            # |s| back toward Vdd, so "still growing" is NOT required)
            decided = (
                (np.abs(s) > margin)
                & (np.abs(s_prev) > margin)
                & (s * s_prev > 0.0)
            )
            if decided.any():
                outcome[active[decided]] = s[decided] < 0.0
                n_dec = int(decided.sum())
                frozen_total += n_dec
                saved_total += n_dec * (steps - done)
                keep = ~decided
                active = active[keep]
                vq = vq[keep]
                vqb = vqb[keep]
                s = s[keep]
                ctx = ctx.take(keep)
            s_prev = s
        if active.size:
            outcome[active] = vq < vqb
        reg = get_registry()
        if reg.enabled and frozen_total:
            reg.counter("characterize.kernel.early_exit.frozen").inc(
                frozen_total
            )
            reg.counter("characterize.kernel.early_exit.steps_saved").inc(
                saved_total
            )
        return outcome

    def _count_run(self):
        reg = get_registry()
        if reg.enabled:
            reg.counter(f"characterize.kernel.runs.{self.kernel}").inc()

    def settle(
        self,
        shifts: np.ndarray,
        t_settle_s: float = 2.0e-11,
        dt_s: float = 2.5e-13,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Relax from the ideal (Vdd, 0) state to the leakage-balanced
        hold point of each variation sample."""
        shifts = self._check_shifts(shifts)
        ctx = self._make_ctx(shifts)
        n = shifts.shape[0]
        vq = np.full(n, self.vdd, dtype=np.float64)
        vqb = np.zeros(n, dtype=np.float64)
        steps = max(int(round(t_settle_s / dt_s)), 1)
        for _ in range(steps):
            vq, vqb = self._step(vq, vqb, ctx, dt_s)
        return vq, vqb

    # -- strike experiments ------------------------------------------------------

    def run_impulse(
        self,
        charges_c: np.ndarray,
        shifts: np.ndarray,
        settled: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        t_sim_s: float = 3.0e-11,
        dt_s: float = 2.5e-13,
    ) -> np.ndarray:
        """Impulse-mode strike batch; returns a boolean flip mask.

        Parameters
        ----------
        charges_c:
            ``(n, 3)`` charges [C] for (I1, I2, I3).
        shifts:
            ``(n, 6)`` per-role Vth shifts [V].
        settled:
            Pre-settled ``(vq, vqb)`` baselines (broadcastable to n);
            computed if omitted.
        """
        charges = self._check_charges(charges_c)
        shifts = self._check_shifts(shifts, charges.shape[0])
        self._count_run()
        if settled is None:
            vq, vqb = self.settle(shifts)
        else:
            vq = np.broadcast_to(settled[0], (charges.shape[0],)).astype(np.float64).copy()
            vqb = np.broadcast_to(settled[1], (charges.shape[0],)).astype(np.float64).copy()

        # I1 pulls q down; I2 and I3 push qb up (STRIKE_TARGETS).
        vq = self._clamp(vq - charges[:, 0] / self.cap_f)
        vqb = self._clamp(vqb + (charges[:, 1] + charges[:, 2]) / self.cap_f)

        steps = max(int(round(t_sim_s / dt_s)), 1)
        return self._relax(
            vq, vqb, self._make_ctx(shifts), steps, dt_s,
            self._ee_margin_for(shifts),
        )

    def run_pulse(
        self,
        charges_c: np.ndarray,
        shifts: np.ndarray,
        pulse_width_s: float,
        settled: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        t_sim_s: float = 3.0e-11,
        dt_s: float = 2.5e-13,
    ) -> np.ndarray:
        """Resolved rectangular-pulse strike batch (width ablation).

        The pulse starts at t = 0 with amplitude ``Q / width`` per
        strike (paper eq. 3) and is integrated with sub-steps fine
        enough to resolve it.
        """
        if pulse_width_s <= 0:
            raise ConfigError("pulse width must be positive")
        charges = self._check_charges(charges_c)
        shifts = self._check_shifts(shifts, charges.shape[0])
        self._count_run()
        ctx = self._make_ctx(shifts)
        if settled is None:
            vq, vqb = self.settle(shifts)
        else:
            vq = np.broadcast_to(settled[0], (charges.shape[0],)).astype(np.float64).copy()
            vqb = np.broadcast_to(settled[1], (charges.shape[0],)).astype(np.float64).copy()

        amp_q = -charges[:, 0] / pulse_width_s
        amp_qb = (charges[:, 1] + charges[:, 2]) / pulse_width_s

        # Phase 1: during the pulse, with >= 20 sub-steps across it.
        # (No early exit here: the injected currents can still reverse
        # a separation that looks decided.)
        pulse_dt = min(dt_s, pulse_width_s / 20.0)
        pulse_steps = max(int(round(pulse_width_s / pulse_dt)), 1)
        for _ in range(pulse_steps):
            vq, vqb = self._step(
                vq, vqb, ctx, pulse_dt, extra_q=amp_q, extra_qb=amp_qb
            )
        # Phase 2: free relaxation.
        steps = max(int(round(t_sim_s / dt_s)), 1)
        return self._relax(
            vq, vqb, ctx, steps, dt_s, self._ee_margin_for(shifts)
        )

    def critical_charge_c(
        self,
        direction: np.ndarray,
        shifts: np.ndarray,
        q_lo_c: float = 1.0e-18,
        q_hi_c: float = 2.0e-14,
        iterations: int = 28,
        settled: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> np.ndarray:
        """Per-sample critical charge along a strike direction [C].

        ``direction`` is a non-negative (3,) unit split of total charge
        over (I1, I2, I3); bisection runs vectorized over the ``shifts``
        batch.  Samples that do not flip even at ``q_hi_c`` report
        ``q_hi_c`` (callers should treat the ceiling as censored).
        """
        direction = np.asarray(direction, dtype=np.float64)
        if direction.shape != (3,) or np.any(direction < 0) or direction.sum() <= 0:
            raise ConfigError("direction must be a non-negative (3,) split")
        direction = direction / direction.sum()
        shifts = self._check_shifts(shifts)
        n = shifts.shape[0]
        if settled is None:
            settled = self.settle(shifts)

        lo = np.full(n, q_lo_c, dtype=np.float64)
        hi = np.full(n, q_hi_c, dtype=np.float64)
        # ensure hi actually flips; if not, it will stay censored at hi
        for _ in range(iterations):
            mid = np.sqrt(lo * hi)  # bisection in log space
            charges = mid[:, np.newaxis] * direction[np.newaxis, :]
            flipped = self.run_impulse(charges, shifts, settled=settled)
            hi = np.where(flipped, mid, hi)
            lo = np.where(flipped, lo, mid)
        return hi

    # -- validation helpers ---------------------------------------------------

    def _check_charges(self, charges_c) -> np.ndarray:
        charges = np.atleast_2d(np.asarray(charges_c, dtype=np.float64))
        if charges.ndim != 2 or charges.shape[1] != 3:
            raise ConfigError("charges must have shape (n, 3)")
        if np.any(charges < 0):
            raise ConfigError("charges cannot be negative")
        return charges

    def _check_shifts(self, shifts, expected_n: Optional[int] = None) -> np.ndarray:
        shifts = np.atleast_2d(np.asarray(shifts, dtype=np.float64))
        if shifts.ndim != 2 or shifts.shape[1] != len(ROLES):
            raise ConfigError(f"shifts must have shape (n, {len(ROLES)})")
        if expected_n is not None and shifts.shape[0] != expected_n:
            if shifts.shape[0] == 1:
                shifts = np.repeat(shifts, expected_n, axis=0)
            else:
                raise ConfigError(
                    "shifts batch size must match charges batch size"
                )
        return shifts
