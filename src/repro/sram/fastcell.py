"""Fast vectorized strike simulation of the 6T cell.

The paper's cell characterization needs POF over (Vdd x charge grid x
strike combination x 1000 variation samples) -- far too many transient
runs for a general-purpose MNA engine.  :class:`FastCell` integrates
the cell's exact 2-state ODE (storage nodes ``q``/``qb``; all other
nodes are ideal rails in the hold state) with RK4, vectorized across an
arbitrary batch of (charge, Vth-shift) scenarios.  It uses the *same*
:class:`~repro.devices.FinFETModel` equations as the MNA engine, so the
two agree by construction (an integration test enforces this).

Strike injection modes
----------------------
* ``"impulse"`` (default) -- the paper's rectangular pulse has width
  tau ~ 17 fs (eq. 2), three orders of magnitude faster than the cell's
  ~1.3 ps feedback time, so the deposited charge simply steps the node
  voltage by Q/C before the cell responds.  The paper itself verifies
  POF depends only on charge (Section 4); the impulse limit is that
  observation taken exactly.  Excursions are clamped to
  [-0.6 V, Vdd + 0.6 V], emulating junction clamping of overdriven
  nodes.
* ``"pulse"`` -- resolve a rectangular current pulse of a given width
  explicitly (used by the pulse-width ablation).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigError
from ..devices import TechnologyCard
from .cell import ROLES, SENSITIVE_ROLES, STRIKE_TARGETS, SramCellDesign

#: Node-voltage clamp margin beyond the rails [V] -- the forward drop
#: of the junctions that catch an overdriven storage node.
_CLAMP_MARGIN_V = 0.6


class FastCell:
    """Vectorized two-node hold-state model of one 6T cell at fixed Vdd."""

    def __init__(self, design: SramCellDesign, vdd_v: float):
        if vdd_v <= 0:
            raise ConfigError("Vdd must be positive")
        self.design = design
        self.vdd = float(vdd_v)
        self.cap_f = design.tech.node_cap_f
        self._nmos = design.tech.nmos
        self._pmos = design.tech.pmos
        self._idx = {role: design.role_index(role) for role in ROLES}
        self._nfin = {role: design.nfin_of(role) for role in ROLES}

    # -- dynamics -------------------------------------------------------------

    def node_currents(
        self, vq: np.ndarray, vqb: np.ndarray, shifts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Currents [A] flowing *into* nodes q and qb (vectorized).

        ``shifts`` has shape ``(n, 6)`` in :data:`~repro.sram.cell.ROLES`
        order.
        """
        vdd = self.vdd

        def ids(role, vd, vg, vs):
            model = self.design.model_of(role)
            return self._nfin[role] * model.ids(
                vd, vg, vs, vth_shift=shifts[:, self._idx[role]]
            )

        # Current into q: PU_L sources it, PD_L sinks it, PG_L leaks
        # from BL (= vdd).  A device's ids flows drain -> source, i.e.
        # *out of* its drain node.
        i_q = (
            -ids("pu_l", vq, vqb, vdd)
            - ids("pd_l", vq, vqb, 0.0)
            + ids("pg_l", vdd, 0.0, vq)
        )
        i_qb = (
            -ids("pu_r", vqb, vq, vdd)
            - ids("pd_r", vqb, vq, 0.0)
            + ids("pg_r", vdd, 0.0, vqb)
        )
        return i_q, i_qb

    def _rk4_step(self, vq, vqb, shifts, dt, extra_q=0.0, extra_qb=0.0):
        """One RK4 step; ``extra_*`` are additional injected currents [A]."""
        c = self.cap_f

        def deriv(a, b):
            i_q, i_qb = self.node_currents(a, b, shifts)
            return (i_q + extra_q) / c, (i_qb + extra_qb) / c

        k1q, k1b = deriv(vq, vqb)
        k2q, k2b = deriv(vq + 0.5 * dt * k1q, vqb + 0.5 * dt * k1b)
        k3q, k3b = deriv(vq + 0.5 * dt * k2q, vqb + 0.5 * dt * k2b)
        k4q, k4b = deriv(vq + dt * k3q, vqb + dt * k3b)
        vq_new = vq + dt / 6.0 * (k1q + 2 * k2q + 2 * k3q + k4q)
        vqb_new = vqb + dt / 6.0 * (k1b + 2 * k2b + 2 * k3b + k4b)
        return self._clamp(vq_new), self._clamp(vqb_new)

    def _clamp(self, v):
        return np.clip(v, -_CLAMP_MARGIN_V, self.vdd + _CLAMP_MARGIN_V)

    def settle(
        self,
        shifts: np.ndarray,
        t_settle_s: float = 2.0e-11,
        dt_s: float = 2.5e-13,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Relax from the ideal (Vdd, 0) state to the leakage-balanced
        hold point of each variation sample."""
        shifts = self._check_shifts(shifts)
        n = shifts.shape[0]
        vq = np.full(n, self.vdd, dtype=np.float64)
        vqb = np.zeros(n, dtype=np.float64)
        steps = max(int(round(t_settle_s / dt_s)), 1)
        for _ in range(steps):
            vq, vqb = self._rk4_step(vq, vqb, shifts, dt_s)
        return vq, vqb

    # -- strike experiments ------------------------------------------------------

    def run_impulse(
        self,
        charges_c: np.ndarray,
        shifts: np.ndarray,
        settled: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        t_sim_s: float = 3.0e-11,
        dt_s: float = 2.5e-13,
    ) -> np.ndarray:
        """Impulse-mode strike batch; returns a boolean flip mask.

        Parameters
        ----------
        charges_c:
            ``(n, 3)`` charges [C] for (I1, I2, I3).
        shifts:
            ``(n, 6)`` per-role Vth shifts [V].
        settled:
            Pre-settled ``(vq, vqb)`` baselines (broadcastable to n);
            computed if omitted.
        """
        charges = self._check_charges(charges_c)
        shifts = self._check_shifts(shifts, charges.shape[0])
        if settled is None:
            vq, vqb = self.settle(shifts)
        else:
            vq = np.broadcast_to(settled[0], (charges.shape[0],)).astype(np.float64).copy()
            vqb = np.broadcast_to(settled[1], (charges.shape[0],)).astype(np.float64).copy()

        # I1 pulls q down; I2 and I3 push qb up (STRIKE_TARGETS).
        vq = self._clamp(vq - charges[:, 0] / self.cap_f)
        vqb = self._clamp(vqb + (charges[:, 1] + charges[:, 2]) / self.cap_f)

        steps = max(int(round(t_sim_s / dt_s)), 1)
        for _ in range(steps):
            vq, vqb = self._rk4_step(vq, vqb, shifts, dt_s)
        return vq < vqb

    def run_pulse(
        self,
        charges_c: np.ndarray,
        shifts: np.ndarray,
        pulse_width_s: float,
        settled: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        t_sim_s: float = 3.0e-11,
        dt_s: float = 2.5e-13,
    ) -> np.ndarray:
        """Resolved rectangular-pulse strike batch (width ablation).

        The pulse starts at t = 0 with amplitude ``Q / width`` per
        strike (paper eq. 3) and is integrated with sub-steps fine
        enough to resolve it.
        """
        if pulse_width_s <= 0:
            raise ConfigError("pulse width must be positive")
        charges = self._check_charges(charges_c)
        shifts = self._check_shifts(shifts, charges.shape[0])
        if settled is None:
            vq, vqb = self.settle(shifts)
        else:
            vq = np.broadcast_to(settled[0], (charges.shape[0],)).astype(np.float64).copy()
            vqb = np.broadcast_to(settled[1], (charges.shape[0],)).astype(np.float64).copy()

        amp_q = -charges[:, 0] / pulse_width_s
        amp_qb = (charges[:, 1] + charges[:, 2]) / pulse_width_s

        # Phase 1: during the pulse, with >= 20 sub-steps across it.
        pulse_dt = min(dt_s, pulse_width_s / 20.0)
        pulse_steps = max(int(round(pulse_width_s / pulse_dt)), 1)
        for _ in range(pulse_steps):
            vq, vqb = self._rk4_step(
                vq, vqb, shifts, pulse_dt, extra_q=amp_q, extra_qb=amp_qb
            )
        # Phase 2: free relaxation.
        steps = max(int(round(t_sim_s / dt_s)), 1)
        for _ in range(steps):
            vq, vqb = self._rk4_step(vq, vqb, shifts, dt_s)
        return vq < vqb

    def critical_charge_c(
        self,
        direction: np.ndarray,
        shifts: np.ndarray,
        q_lo_c: float = 1.0e-18,
        q_hi_c: float = 2.0e-14,
        iterations: int = 28,
        settled: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> np.ndarray:
        """Per-sample critical charge along a strike direction [C].

        ``direction`` is a non-negative (3,) unit split of total charge
        over (I1, I2, I3); bisection runs vectorized over the ``shifts``
        batch.  Samples that do not flip even at ``q_hi_c`` report
        ``q_hi_c`` (callers should treat the ceiling as censored).
        """
        direction = np.asarray(direction, dtype=np.float64)
        if direction.shape != (3,) or np.any(direction < 0) or direction.sum() <= 0:
            raise ConfigError("direction must be a non-negative (3,) split")
        direction = direction / direction.sum()
        shifts = self._check_shifts(shifts)
        n = shifts.shape[0]
        if settled is None:
            settled = self.settle(shifts)

        lo = np.full(n, q_lo_c, dtype=np.float64)
        hi = np.full(n, q_hi_c, dtype=np.float64)
        # ensure hi actually flips; if not, it will stay censored at hi
        for _ in range(iterations):
            mid = np.sqrt(lo * hi)  # bisection in log space
            charges = mid[:, np.newaxis] * direction[np.newaxis, :]
            flipped = self.run_impulse(charges, shifts, settled=settled)
            hi = np.where(flipped, mid, hi)
            lo = np.where(flipped, lo, mid)
        return hi

    # -- validation helpers ---------------------------------------------------

    def _check_charges(self, charges_c) -> np.ndarray:
        charges = np.atleast_2d(np.asarray(charges_c, dtype=np.float64))
        if charges.ndim != 2 or charges.shape[1] != 3:
            raise ConfigError("charges must have shape (n, 3)")
        if np.any(charges < 0):
            raise ConfigError("charges cannot be negative")
        return charges

    def _check_shifts(self, shifts, expected_n: Optional[int] = None) -> np.ndarray:
        shifts = np.atleast_2d(np.asarray(shifts, dtype=np.float64))
        if shifts.ndim != 2 or shifts.shape[1] != len(ROLES):
            raise ConfigError(f"shifts must have shape (n, {len(ROLES)})")
        if expected_n is not None and shifts.shape[0] != expected_n:
            if shifts.shape[0] == 1:
                shifts = np.repeat(shifts, expected_n, axis=0)
            else:
                raise ConfigError(
                    "shifts batch size must match charges batch size"
                )
        return shifts
