"""Strike scenarios: which sensitive devices collect how much charge.

The paper characterizes POF "for different supply voltages, current
pulse magnitudes, and all possible combinations of current pulses (for
I1, I2, I3 and/or any combination of these three currents)".  A
:class:`StrikeScenario` is one such case: a charge per strike index.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Tuple

import numpy as np

from ..errors import ConfigError

#: All non-empty subsets of strike indices {0 (I1), 1 (I2), 2 (I3)}.
ALL_COMBOS: Tuple[Tuple[int, ...], ...] = tuple(
    combo
    for size in (1, 2, 3)
    for combo in combinations(range(3), size)
)


def combo_of_charges(charges) -> Tuple[int, ...]:
    """The combination key (sorted strike indices with charge > 0)."""
    charges = np.asarray(charges, dtype=np.float64)
    if charges.shape != (3,):
        raise ConfigError("a strike scenario has exactly three charges")
    if np.any(charges < 0):
        raise ConfigError("strike charges cannot be negative")
    return tuple(int(i) for i in np.nonzero(charges > 0.0)[0])


def combo_label(combo: Tuple[int, ...]) -> str:
    """Human-readable label, e.g. ``"I1+I3"``."""
    return "+".join(f"I{i + 1}" for i in combo) if combo else "none"


@dataclass(frozen=True)
class StrikeScenario:
    """Charges [C] collected by the I1/I2/I3 sensitive devices."""

    charge_i1_c: float = 0.0
    charge_i2_c: float = 0.0
    charge_i3_c: float = 0.0

    def __post_init__(self):
        if min(self.charge_i1_c, self.charge_i2_c, self.charge_i3_c) < 0:
            raise ConfigError("strike charges cannot be negative")

    @classmethod
    def from_charges(cls, charges) -> "StrikeScenario":
        """Build from a length-3 sequence [C]."""
        charges = np.asarray(charges, dtype=np.float64)
        if charges.shape != (3,):
            raise ConfigError("need exactly three charges")
        return cls(*[float(c) for c in charges])

    @property
    def charges(self) -> np.ndarray:
        """The (3,) charge vector [C]."""
        return np.array(
            [self.charge_i1_c, self.charge_i2_c, self.charge_i3_c]
        )

    @property
    def combo(self) -> Tuple[int, ...]:
        """Active-strike combination key."""
        return combo_of_charges(self.charges)

    @property
    def total_charge_c(self) -> float:
        """Sum of collected charges [C]."""
        return float(np.sum(self.charges))

    def is_empty(self) -> bool:
        """True when no device collects charge."""
        return self.total_charge_c == 0.0
