"""The 6T SOI FinFET SRAM cell (paper Fig. 5(a)).

Node/state convention used throughout the library: storage node ``q``
holds '1' (at Vdd) and ``qb`` holds '0'; word line low (hold state);
both bit lines precharged to Vdd.  Under this bias exactly three
transistors are OFF with |Vds| = Vdd and therefore sensitive to strikes
(the paper's red-bold devices):

==========  =========================  ====================================
Strike      Device (role)              Effect of collected charge
==========  =========================  ====================================
``I1``      left pull-down  (pd_l)     pulls ``q``  ('1') down toward 0
``I2``      right pull-up   (pu_r)     pulls ``qb`` ('0') up toward Vdd
``I3``      right pass-gate (pg_r)     pulls ``qb`` ('0') up (from BLB)
==========  =========================  ====================================

All three reinforce the same flip direction, matching the paper's
treatment of arbitrary combinations of I1/I2/I3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..circuit import Circuit, Waveform
from ..devices import TechnologyCard, default_tech
from ..errors import ConfigError

#: Fixed role order; Vth-shift vectors follow this order everywhere.
ROLES = ("pu_l", "pd_l", "pg_l", "pu_r", "pd_r", "pg_r")

#: Roles sensitive in the canonical hold state, in strike-index order
#: (I1, I2, I3).
SENSITIVE_ROLES = ("pd_l", "pu_r", "pg_r")

#: Map strike index (0=I1, 1=I2, 2=I3) to the storage node it perturbs
#: and the perturbation sign (+1 pushes the node up, -1 down).
STRIKE_TARGETS = (("q", -1), ("qb", +1), ("qb", +1))


@dataclass(frozen=True)
class SramCellDesign:
    """A 6T cell: technology card plus per-role fin counts.

    The default single-fin-per-device cell matches the high-density 6T
    bitcell of the paper's 14 nm reference [28].
    """

    tech: TechnologyCard = field(default_factory=default_tech)
    nfin_pu: int = 1
    nfin_pd: int = 1
    nfin_pg: int = 1

    def __post_init__(self):
        if min(self.nfin_pu, self.nfin_pd, self.nfin_pg) < 1:
            raise ConfigError("fin counts must be >= 1")

    # -- role metadata ------------------------------------------------------

    def nfin_of(self, role: str) -> int:
        """Fin count of a device role."""
        if role.startswith("pu"):
            return self.nfin_pu
        if role.startswith("pd"):
            return self.nfin_pd
        if role.startswith("pg"):
            return self.nfin_pg
        raise ConfigError(f"unknown role {role!r}")

    def nfins(self) -> list:
        """Fin counts in :data:`ROLES` order (for variation sampling)."""
        return [self.nfin_of(role) for role in ROLES]

    def model_of(self, role: str):
        """Compact model of a device role."""
        return self.tech.pmos if role.startswith("pu") else self.tech.nmos

    def role_index(self, role: str) -> int:
        """Index of a role in the canonical order."""
        try:
            return ROLES.index(role)
        except ValueError:
            raise ConfigError(f"unknown role {role!r}") from None

    def sensitive_indices(self) -> list:
        """Role indices of (I1, I2, I3) in :data:`ROLES` order."""
        return [self.role_index(r) for r in SENSITIVE_ROLES]

    # -- netlist construction -------------------------------------------------

    def build_circuit(
        self,
        vdd_v: float,
        vth_shifts_v: Optional[Sequence[float]] = None,
        strike_waveforms: Optional[Dict[int, Waveform]] = None,
    ) -> Circuit:
        """Build the hold-state cell netlist for the MNA engine.

        Parameters
        ----------
        vdd_v:
            Supply voltage.
        vth_shifts_v:
            Six per-role threshold shifts in :data:`ROLES` order
            (default all-zero).
        strike_waveforms:
            Map of strike index (0=I1, 1=I2, 2=I3) to a current
            :class:`~repro.circuit.Waveform`; each is wired with the
            correct polarity per :data:`STRIKE_TARGETS`.

        Returns
        -------
        Circuit
            Nodes: ``vdd q qb bl blb wl`` (+ ground).  Storage nodes
            carry the lumped ``tech.node_cap_f`` capacitance.
        """
        if vdd_v <= 0:
            raise ConfigError("Vdd must be positive")
        shifts = (
            np.zeros(len(ROLES))
            if vth_shifts_v is None
            else np.asarray(vth_shifts_v, dtype=np.float64)
        )
        if shifts.shape != (len(ROLES),):
            raise ConfigError(f"need {len(ROLES)} Vth shifts in ROLES order")

        cell = Circuit("sram6t")
        cell.add_vsource("vvdd", "vdd", "0", vdd_v)
        cell.add_vsource("vwl", "wl", "0", 0.0)
        cell.add_vsource("vbl", "bl", "0", vdd_v)
        cell.add_vsource("vblb", "blb", "0", vdd_v)

        def shift(role):
            return float(shifts[self.role_index(role)])

        cell.add_finfet("pu_l", "q", "qb", "vdd", self.tech.pmos, self.nfin_pu, shift("pu_l"))
        cell.add_finfet("pd_l", "q", "qb", "0", self.tech.nmos, self.nfin_pd, shift("pd_l"))
        cell.add_finfet("pg_l", "bl", "wl", "q", self.tech.nmos, self.nfin_pg, shift("pg_l"))
        cell.add_finfet("pu_r", "qb", "q", "vdd", self.tech.pmos, self.nfin_pu, shift("pu_r"))
        cell.add_finfet("pd_r", "qb", "q", "0", self.tech.nmos, self.nfin_pd, shift("pd_r"))
        cell.add_finfet("pg_r", "blb", "wl", "qb", self.tech.nmos, self.nfin_pg, shift("pg_r"))

        cell.add_capacitor("cq", "q", "0", self.tech.node_cap_f)
        cell.add_capacitor("cqb", "qb", "0", self.tech.node_cap_f)

        if strike_waveforms:
            for strike_index, waveform in strike_waveforms.items():
                node, sign = STRIKE_TARGETS[strike_index]
                name = f"istrike{strike_index + 1}"
                if sign < 0:
                    # charge collected by an NMOS drain: current q -> gnd
                    cell.add_isource(name, node, "0", waveform)
                else:
                    # charge pushed into the node from the rail / bitline
                    source = "vdd" if strike_index == 1 else "blb"
                    cell.add_isource(name, source, node, waveform)
        return cell

    def hold_state_guess(self, vdd_v: float) -> Dict[str, float]:
        """Nodeset steering DC toward the canonical q=1 state."""
        return {"vdd": vdd_v, "q": vdd_v, "qb": 0.0, "bl": vdd_v, "blb": vdd_v, "wl": 0.0}
