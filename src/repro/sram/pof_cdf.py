"""Fast Qcrit-CDF approximation of the POF tables (DESIGN.md §5).

The grid :class:`~repro.sram.pof_lut.PofTable` is the paper-faithful
representation, but it costs one vectorized strike simulation per grid
point.  This module provides the cheaper alternative discussed in
DESIGN.md: per (Vdd, combination), characterize the *critical charge
distribution* under process variation once (a single vectorized
bisection), and evaluate

    POF(q1, q2, q3) ~= P( w . q  >  Qcrit_sample )

via the empirical CDF of the Qcrit samples, where ``w`` are per-strike
effectiveness weights.  Physically, all three strike currents push the
cell toward the *same* flip (I1 discharges the '1' node, I2/I3 charge
the '0' node), so their charges superpose to first order; the weights
absorb the second-order asymmetry between the two storage nodes.

A validation test compares this model against the grid tables; the
array Monte Carlo accepts either (both expose ``query``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..devices import VariationModel
from ..errors import ConfigError
from .cell import SramCellDesign
from .fastcell import FastCell

#: Strike directions used to calibrate the effectiveness weights: all
#: charge into I1, I2, I3 respectively.
_UNIT_DIRECTIONS = (
    np.array([1.0, 0.0, 0.0]),
    np.array([0.0, 1.0, 0.0]),
    np.array([0.0, 0.0, 1.0]),
)


@dataclass
class QcritCdfModel:
    """Empirical Qcrit-CDF POF model for one cell design.

    Attributes
    ----------
    vdd_list:
        Supply voltages characterized, ascending.
    qcrit_samples:
        Map vdd -> sorted array of I1-referenced critical charges [C]
        (one entry per variation sample; a single nominal sample when
        process variation is disabled).
    weights:
        Map vdd -> (3,) strike effectiveness weights relative to I1
        (w[0] == 1 by construction; w[1], w[2] ~ 1 for the symmetric
        cell).
    """

    vdd_list: np.ndarray
    qcrit_samples: Dict[float, np.ndarray]
    weights: Dict[float, np.ndarray]

    # -- construction ------------------------------------------------------

    @classmethod
    def characterize(
        cls,
        design: SramCellDesign,
        vdd_list,
        n_samples: int = 200,
        process_variation: bool = True,
        seed: int = 2014,
    ) -> "QcritCdfModel":
        """Build the model: one vectorized bisection per (vdd, strike).

        Cost is ~3 bisections x len(vdd_list), orders of magnitude
        below the full grid characterization.
        """
        vdds = np.asarray(sorted(float(v) for v in vdd_list))
        if len(vdds) == 0:
            raise ConfigError("need at least one Vdd")
        rng = np.random.default_rng(seed)
        variation = VariationModel(
            sigma_vth_v=design.tech.sigma_vth_v, enabled=process_variation
        )
        n = n_samples if process_variation else 1
        shifts = variation.sample_shifts(n, design.nfins(), rng)

        qcrit_samples: Dict[float, np.ndarray] = {}
        weights: Dict[float, np.ndarray] = {}
        for vdd in vdds:
            cell = FastCell(design, float(vdd))
            settled = cell.settle(shifts)
            per_strike = [
                cell.critical_charge_c(direction, shifts, settled=settled)
                for direction in _UNIT_DIRECTIONS
            ]
            reference = per_strike[0]
            qcrit_samples[float(vdd)] = np.sort(reference)
            # weight_k: how much I_k charge is worth in I1 units
            medians = [float(np.median(q)) for q in per_strike]
            weights[float(vdd)] = np.array(
                [medians[0] / m if m > 0 else 1.0 for m in medians]
            )
        return cls(vdd_list=vdds, qcrit_samples=qcrit_samples, weights=weights)

    # -- queries -------------------------------------------------------------

    def query(self, vdd_v: float, charges_c) -> np.ndarray:
        """POF for ``(n, 3)`` charge rows (PofTable-compatible API)."""
        charges = np.atleast_2d(np.asarray(charges_c, dtype=np.float64))
        if charges.shape[1] != 3:
            raise ConfigError("charges must have shape (n, 3)")
        if np.any(charges < 0):
            raise ConfigError("charges cannot be negative")

        lo, hi, t = self._bracket(vdd_v)
        pof_lo = self._query_at(lo, charges)
        if hi == lo:
            return pof_lo
        pof_hi = self._query_at(hi, charges)
        return (1.0 - t) * pof_lo + t * pof_hi

    def _query_at(self, vdd: float, charges: np.ndarray) -> np.ndarray:
        weights = self.weights[vdd]
        effective = charges @ weights
        samples = self.qcrit_samples[vdd]
        # P(Qcrit <= q_eff), empirical CDF via searchsorted
        ranks = np.searchsorted(samples, effective, side="right")
        return ranks / float(len(samples))

    def _bracket(self, vdd_v: float) -> Tuple[float, float, float]:
        vdds = self.vdd_list
        if vdd_v <= vdds[0]:
            v = float(vdds[0])
            return v, v, 0.0
        if vdd_v >= vdds[-1]:
            v = float(vdds[-1])
            return v, v, 0.0
        hi_idx = int(np.searchsorted(vdds, vdd_v))
        lo, hi = float(vdds[hi_idx - 1]), float(vdds[hi_idx])
        return lo, hi, (vdd_v - lo) / (hi - lo)

    # -- summaries -----------------------------------------------------------

    def qcrit_statistics(self, vdd_v: float) -> Tuple[float, float]:
        """``(median, std)`` of the I1 critical charge at a Vdd.

        Off-grid voltages interpolate the statistics of the two
        bracketing grid points linearly, consistent with :meth:`query`
        (the previous nearest-neighbor snap made the two APIs disagree
        between grid points).
        """
        lo, hi, t = self._bracket(vdd_v)
        samples_lo = self.qcrit_samples[lo]
        median = float(np.median(samples_lo))
        std = float(np.std(samples_lo))
        if hi == lo:
            return median, std
        samples_hi = self.qcrit_samples[hi]
        median_hi = float(np.median(samples_hi))
        std_hi = float(np.std(samples_hi))
        return (
            (1.0 - t) * median + t * median_hi,
            (1.0 - t) * std + t * std_hi,
        )
