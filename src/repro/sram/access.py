"""Dynamic access analysis of the 6T cell: read disturb and write.

The SER flow characterizes the cell in its hold state (word line low),
where the paper's three sensitive transistors live.  A complete cell
model should also demonstrate functional accesses -- both as a sanity
check of the compact model (a cell that cannot be written is not a
memory) and because the *read* condition is the classic worst case for
stability (the access transistor lifts the '0' node).

All analyses run on the full MNA engine with explicit word-line /
bit-line waveforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..circuit import Circuit, Pwl, run_transient
from ..errors import CharacterizationError, ConfigError
from .cell import ROLES, SramCellDesign


@dataclass(frozen=True)
class AccessTimingConfig:
    """Timing of the simulated access cycle."""

    wl_rise_s: float = 2.0e-11
    wl_width_s: float = 2.0e-10
    settle_s: float = 2.0e-10
    dt_s: float = 2.0e-12
    #: Bit-line capacitance [F] -- many cells share a bit line, so it is
    #: orders of magnitude above the storage-node capacitance.
    bitline_cap_f: float = 5.0e-15

    def __post_init__(self):
        if min(self.wl_rise_s, self.wl_width_s, self.settle_s, self.dt_s) <= 0:
            raise ConfigError("access timing values must be positive")
        if self.bitline_cap_f <= 0:
            raise ConfigError("bit-line capacitance must be positive")


def _wordline_waveform(vdd_v: float, config: AccessTimingConfig) -> Pwl:
    t0 = 1.0e-11
    rise_end = t0 + config.wl_rise_s
    fall_start = rise_end + config.wl_width_s
    fall_end = fall_start + config.wl_rise_s
    return Pwl(
        [0.0, t0, rise_end, fall_start, fall_end],
        [0.0, 0.0, vdd_v, vdd_v, 0.0],
    )


def _build_access_circuit(
    design: SramCellDesign,
    vdd_v: float,
    config: AccessTimingConfig,
    write_zero: bool,
    vth_shifts_v=None,
) -> Circuit:
    """Cell with real bit-line loads and a pulsed word line.

    ``write_zero`` drives BL low (attempting to overwrite the stored
    '1'); otherwise both bit lines float at the precharge level through
    their capacitance (read condition).
    """
    shifts = np.zeros(6) if vth_shifts_v is None else np.asarray(vth_shifts_v)
    if shifts.shape != (6,):
        raise ConfigError("need 6 Vth shifts in ROLES order")

    cell = Circuit("sram6t-access")
    cell.add_vsource("vvdd", "vdd", "0", vdd_v)
    cell.add_vsource("vwl", "wl", "0", _wordline_waveform(vdd_v, config))

    def shift(role):
        return float(shifts[design.role_index(role)])

    cell.add_finfet("pu_l", "q", "qb", "vdd", design.tech.pmos, design.nfin_pu, shift("pu_l"))
    cell.add_finfet("pd_l", "q", "qb", "0", design.tech.nmos, design.nfin_pd, shift("pd_l"))
    cell.add_finfet("pg_l", "bl", "wl", "q", design.tech.nmos, design.nfin_pg, shift("pg_l"))
    cell.add_finfet("pu_r", "qb", "q", "vdd", design.tech.pmos, design.nfin_pu, shift("pu_r"))
    cell.add_finfet("pd_r", "qb", "q", "0", design.tech.nmos, design.nfin_pd, shift("pd_r"))
    cell.add_finfet("pg_r", "blb", "wl", "qb", design.tech.nmos, design.nfin_pg, shift("pg_r"))
    cell.add_capacitor("cq", "q", "0", design.tech.node_cap_f)
    cell.add_capacitor("cqb", "qb", "0", design.tech.node_cap_f)

    if write_zero:
        # write drivers: BL forced low, BLB forced high
        cell.add_vsource("vbl", "bl", "0", 0.0)
        cell.add_vsource("vblb", "blb", "0", vdd_v)
    else:
        # read: precharged floating bit lines modeled by their C with a
        # weak precharge keeper (large R to Vdd)
        cell.add_capacitor("cbl", "bl", "0", config.bitline_cap_f)
        cell.add_capacitor("cblb", "blb", "0", config.bitline_cap_f)
        cell.add_resistor("rpre_bl", "bl", "vdd", 1.0e8)
        cell.add_resistor("rpre_blb", "blb", "vdd", 1.0e8)
    return cell


def _run_access(design, vdd_v, config, write_zero, vth_shifts_v):
    circuit = _build_access_circuit(
        design, vdd_v, config, write_zero, vth_shifts_v
    )
    t_stop = (
        1.0e-11
        + 2 * config.wl_rise_s
        + config.wl_width_s
        + config.settle_s
    )
    times = np.arange(0.0, t_stop, config.dt_s)
    initial = {
        "vdd": vdd_v,
        "q": vdd_v,
        "qb": 0.0,
        "wl": 0.0,
        "bl": 0.0 if write_zero else vdd_v,
        "blb": vdd_v,
    }
    return run_transient(circuit, times, initial_conditions=initial)


def read_disturb_analysis(
    design: SramCellDesign,
    vdd_v: float,
    config: Optional[AccessTimingConfig] = None,
    vth_shifts_v=None,
) -> Dict[str, float]:
    """Simulate a read access of the '1' cell.

    Returns
    -------
    dict
        ``survived`` (1.0/0.0), ``max_qb_bump_v`` (peak lift of the '0'
        node during the access -- the read-disturb margin metric), and
        ``bl_droop_v`` (bit-line discharge through the cell, i.e. the
        read signal).
    """
    config = config if config is not None else AccessTimingConfig()
    result = _run_access(design, vdd_v, config, False, vth_shifts_v)
    q = result.voltage("q")
    qb = result.voltage("qb")
    blb = result.voltage("blb")
    survived = 1.0 if q[-1] > qb[-1] else 0.0
    return {
        "survived": survived,
        "max_qb_bump_v": float(np.max(qb)),
        "bl_droop_v": float(vdd_v - np.min(blb)),
    }


def write_analysis(
    design: SramCellDesign,
    vdd_v: float,
    config: Optional[AccessTimingConfig] = None,
    vth_shifts_v=None,
) -> Dict[str, float]:
    """Simulate writing '0' over the stored '1'.

    Returns
    -------
    dict
        ``succeeded`` (1.0/0.0) and ``write_delay_s`` (word-line-rise to
        storage-node crossing; inf if the write failed).
    """
    config = config if config is not None else AccessTimingConfig()
    result = _run_access(design, vdd_v, config, True, vth_shifts_v)
    q = result.voltage("q")
    qb = result.voltage("qb")
    succeeded = q[-1] < qb[-1]
    delay = float("inf")
    if succeeded:
        crossing = np.nonzero(q < qb)[0]
        if len(crossing) == 0:
            raise CharacterizationError("write marked successful without a crossing")
        delay = float(result.times_s[crossing[0]] - 1.0e-11)
    return {"succeeded": 1.0 if succeeded else 0.0, "write_delay_s": delay}
