"""Probability-Of-Failure look-up tables (paper Section 4).

A :class:`PofTable` stores, for every supply voltage and every
combination of the I1/I2/I3 strike currents, the cell flip probability
on a log-spaced charge grid: 1-D for single strikes, 2-D for pairs,
3-D for the triple.  Queries interpolate multilinearly in log-charge
and linearly in Vdd; charges outside the grid clamp to the edges
(the grid is built wide enough that the edges are POF ~ 0 and ~ 1).

With process variation disabled the stored values are the paper's
"deterministic binary" POFs; with it enabled they are MC probabilities
in [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np
from scipy.interpolate import RegularGridInterpolator

from ..errors import ConfigError, LookupError_
from .strike import ALL_COMBOS, combo_label


def _group_codes(codes: np.ndarray):
    """Rows of each distinct code, codes ascending, rows ascending.

    One stable argsort replaces the historical per-code
    ``np.nonzero(codes == code)`` rescans (O(n log n) instead of
    O(k n)); stability keeps each group's rows in original order, so
    the grouping -- and every downstream gather/scatter -- is
    identical to the loop it replaced (``_group_codes_loop`` below is
    kept as the regression reference).
    """
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    if len(sorted_codes) == 0:
        return []
    bounds = np.append(
        np.flatnonzero(np.r_[True, sorted_codes[1:] != sorted_codes[:-1]]),
        len(sorted_codes),
    )
    return [
        (int(sorted_codes[start]), order[start:end])
        for start, end in zip(bounds[:-1], bounds[1:])
    ]


def _group_codes_loop(codes: np.ndarray):
    """The pre-vectorization grouping, verbatim (test reference only)."""
    return [
        (int(code), np.nonzero(codes == code)[0]) for code in np.unique(codes)
    ]


@dataclass
class PofTable:
    """POF over (Vdd, strike combination, charge grid).

    Attributes
    ----------
    vdd_list:
        Sorted supply voltages [V], shape ``(n_vdd,)``.
    charge_axis_c:
        Shared log-spaced charge axis [C], shape ``(n_q,)``.
    pof:
        Map combo -> array of shape ``(n_vdd,) + (n_q,) * len(combo)``.
    process_variation:
        Whether the table was built with variation MC.
    n_samples:
        Variation samples per grid point (1 when nominal).
    """

    vdd_list: np.ndarray
    charge_axis_c: np.ndarray
    pof: Dict[Tuple[int, ...], np.ndarray]
    process_variation: bool = True
    n_samples: int = 0

    def __post_init__(self):
        self.vdd_list = np.asarray(self.vdd_list, dtype=np.float64)
        self.charge_axis_c = np.asarray(self.charge_axis_c, dtype=np.float64)
        if np.any(np.diff(self.vdd_list) <= 0):
            raise ConfigError("vdd_list must be strictly increasing")
        if np.any(np.diff(self.charge_axis_c) <= 0) or np.any(
            self.charge_axis_c <= 0
        ):
            raise ConfigError("charge axis must be positive and increasing")
        n_q = len(self.charge_axis_c)
        for combo, grid in self.pof.items():
            expected = (len(self.vdd_list),) + (n_q,) * len(combo)
            if grid.shape != expected:
                raise ConfigError(
                    f"POF grid for {combo_label(combo)} has shape "
                    f"{grid.shape}, expected {expected}"
                )
        self._interp_cache: Dict = {}

    # -- queries -----------------------------------------------------------

    def query(self, vdd_v: float, charges_c) -> np.ndarray:
        """POF for a batch of charge triples at one supply voltage.

        Parameters
        ----------
        vdd_v:
            Supply voltage; clamped to the tabulated range, linear
            interpolation between tabulated values.
        charges_c:
            ``(n, 3)`` charges [C] for (I1, I2, I3); rows with all
            zeros return POF 0.

        Returns
        -------
        numpy.ndarray
            POF in [0, 1], shape ``(n,)``.
        """
        charges = np.atleast_2d(np.asarray(charges_c, dtype=np.float64))
        if charges.shape[1] != 3:
            raise ConfigError("charges must have shape (n, 3)")
        if np.any(charges < 0):
            raise ConfigError("charges cannot be negative")

        result = np.zeros(charges.shape[0], dtype=np.float64)
        active = charges > 0.0
        # group rows by combination key via a bitmask code (vectorized)
        codes = (
            active[:, 0].astype(np.int64)
            + 2 * active[:, 1].astype(np.int64)
            + 4 * active[:, 2].astype(np.int64)
        )
        lo_idx, hi_idx, weight = self._vdd_bracket(vdd_v)
        for code, rows in _group_codes(codes):
            if code == 0:
                continue
            combo = tuple(i for i in range(3) if code & (1 << i))
            if combo not in self.pof:
                raise LookupError_(
                    f"table has no grid for combination {combo_label(combo)}"
                )
            points = np.log(
                np.clip(
                    charges[rows][:, list(combo)],
                    self.charge_axis_c[0],
                    self.charge_axis_c[-1],
                )
            )
            pof_lo = self._interpolator(combo, lo_idx)(points)
            if hi_idx == lo_idx:
                result[rows] = pof_lo
            else:
                pof_hi = self._interpolator(combo, hi_idx)(points)
                result[rows] = (1.0 - weight) * pof_lo + weight * pof_hi
        return np.clip(result, 0.0, 1.0)

    def query_scenario(self, vdd_v: float, scenario) -> float:
        """POF of a single :class:`~repro.sram.strike.StrikeScenario`."""
        return float(self.query(vdd_v, scenario.charges[np.newaxis, :])[0])

    def _vdd_bracket(self, vdd_v: float):
        vdds = self.vdd_list
        if vdd_v <= vdds[0]:
            return 0, 0, 0.0
        if vdd_v >= vdds[-1]:
            last = len(vdds) - 1
            return last, last, 0.0
        hi = int(np.searchsorted(vdds, vdd_v))
        lo = hi - 1
        weight = (vdd_v - vdds[lo]) / (vdds[hi] - vdds[lo])
        return lo, hi, float(weight)

    def _interpolator(self, combo, vdd_index):
        key = (combo, vdd_index)
        if key not in self._interp_cache:
            log_axis = np.log(self.charge_axis_c)
            grid = self.pof[combo][vdd_index]
            self._interp_cache[key] = RegularGridInterpolator(
                (log_axis,) * len(combo),
                grid,
                method="linear",
                bounds_error=False,
                fill_value=None,
            )
        return self._interp_cache[key]

    # -- inspection -----------------------------------------------------------

    def single_strike_curve(self, vdd_v: float, strike_index: int):
        """``(charge_axis, POF)`` for one single-strike combination."""
        combo = (int(strike_index),)
        charges = np.zeros((len(self.charge_axis_c), 3))
        charges[:, strike_index] = self.charge_axis_c
        return self.charge_axis_c.copy(), self.query(vdd_v, charges)

    def critical_charge_c(
        self, vdd_v: float, strike_index: int = 0, level: float = 0.5
    ) -> float:
        """Charge where the single-strike POF crosses ``level``."""
        axis, pof = self.single_strike_curve(vdd_v, strike_index)
        above = np.nonzero(pof >= level)[0]
        if len(above) == 0:
            raise LookupError_(
                f"POF never reaches {level} on the tabulated charge range"
            )
        i = int(above[0])
        if i == 0:
            return float(axis[0])
        # log-linear inverse interpolation between the bracketing points
        q0, q1 = axis[i - 1], axis[i]
        p0, p1 = pof[i - 1], pof[i]
        if p1 == p0:
            return float(q1)
        t = (level - p0) / (p1 - p0)
        return float(np.exp(np.log(q0) + t * (np.log(q1) - np.log(q0))))

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-python payload for :mod:`repro.io.lutio`."""
        return {
            "kind": "pof_table",
            "vdd_list": self.vdd_list.tolist(),
            "charge_axis_c": self.charge_axis_c.tolist(),
            "process_variation": self.process_variation,
            "n_samples": self.n_samples,
            "pof": {
                ",".join(map(str, combo)): grid.tolist()
                for combo, grid in self.pof.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PofTable":
        """Inverse of :meth:`to_dict`."""
        if payload.get("kind") != "pof_table":
            raise ConfigError("payload is not a POF table")
        pof = {
            tuple(int(x) for x in key.split(",")): np.array(grid)
            for key, grid in payload["pof"].items()
        }
        return cls(
            vdd_list=np.array(payload["vdd_list"]),
            charge_axis_c=np.array(payload["charge_axis_c"]),
            pof=pof,
            process_variation=bool(payload["process_variation"]),
            n_samples=int(payload["n_samples"]),
        )
