"""Tabulated I-V backend for the fast cell kernel.

The hold-state cell only ever evaluates its six transistors in three
configurations -- pull-down (source grounded), pass-gate (drain at the
bit line, gate at the low word line) and pull-up (source at Vdd).  In
each configuration the compact model depends on exactly two scalars:
the free node voltage ``u`` and an *effective gate voltage* ``w`` that
absorbs the per-device threshold shift.  This is exact, not an
approximation: :class:`~repro.devices.finfet.FinFETModel` enters its
threshold only through ``vgs - vth``, so

* NMOS: ``ids(vd, vg, vs, dvth) == ids(vd, vg - dvth, vs, 0)``
* PMOS: ``ids(vd, vg, vs, dvth) == ids(vd, vg + dvth, vs, 0)``

:class:`IVTables` therefore stores one dense ``(3, nu, nw)`` grid per
(design, Vdd) -- one slab per role type, with the role's fin count
baked in -- and evaluates it with bilinear interpolation.  All three
slabs share both axes, so one stage evaluation of the whole batch is a
single index computation plus four flat gathers, regardless of how
many devices or nodes are being served.

The stored value is ``asinh(I / I_SCALE_A)`` rather than the raw
current: in subthreshold the current is exponential in ``w``, which
the asinh compression turns into a *linear* function of ``w``, so
bilinear interpolation is nearly exact precisely where the flip
boundary is decided.  The only approximation error left is the gentle
curvature of the strong-inversion and triode regions (see
``docs/performance.md`` for the measured accuracy budget).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..backend import get_backend_instance, resolve_backend
from ..errors import ConfigError

__all__ = ["IVTables", "DEFAULT_TABLE_POINTS", "I_SCALE_A"]

#: Default points per table axis.  769 points over the ~2.3 V clamped
#: node range is a ~3 mV pitch; with the asinh value compression the
#: resulting critical-charge boundary shift is ~1.5e-4 in log charge,
#: an order of magnitude below the spacing between Monte Carlo samples
#: and the charge grid at characterization scale, which keeps the POF
#: deviation versus the exact kernel inside the documented 0.01 budget
#: (asserted by tests and the perf harness).
DEFAULT_TABLE_POINTS = 769

#: Current scale of the asinh compression [A].  Chosen between the
#: off-state leakage (~nA) and the on-current (~50 uA) so subthreshold
#: currents land on the logarithmic branch of asinh.
I_SCALE_A = 1.0e-9

#: Minimum half-width of the threshold-shift headroom [V] -- keeps the
#: gate axis meaningful in the no-variation case (all shifts zero).
_MIN_W_PAD_V = 0.05


class IVTables:
    """Bilinear LUT of the three hold-state device configurations.

    Slab order along the leading axis is (pull-down, pass-gate,
    pull-up); fin counts are baked into the stored currents.

    Parameters
    ----------
    design:
        Cell design (technology card + fin counts).
    vdd_v:
        Supply voltage the pass-gate/pull-up rails are pinned to.
    shift_pad_v:
        Threshold-shift headroom [V] widening the effective-gate axis;
        must cover ``max |dvth|`` of every query batch
        (:meth:`covers` checks, callers rebuild when exceeded).
    points:
        Grid points per axis.
    clamp_margin_v:
        Node-voltage clamp margin beyond the rails [V] (the ``u`` axis
        spans ``[-margin, vdd + margin]``).
    backend:
        Array-compute backend for the lookup (``None`` = process
        default; see :mod:`repro.backend`).  Execution knob only --
        the numpy path is bit-identical to the inline gather.
    """

    def __init__(
        self,
        design,
        vdd_v: float,
        shift_pad_v: float = _MIN_W_PAD_V,
        points: int = DEFAULT_TABLE_POINTS,
        clamp_margin_v: float = 0.6,
        backend: Optional[str] = None,
    ):
        if vdd_v <= 0:
            raise ConfigError("Vdd must be positive")
        if shift_pad_v < 0:
            raise ConfigError("shift pad cannot be negative")
        if points < 8:
            raise ConfigError("need >= 8 table points per axis")
        self.vdd = float(vdd_v)
        self.points = int(points)
        self.shift_pad_v = max(float(shift_pad_v), _MIN_W_PAD_V)
        pad = self.shift_pad_v
        self.u_lo = -float(clamp_margin_v)
        u_hi = self.vdd + float(clamp_margin_v)
        self.w_lo = self.u_lo - pad
        w_hi = u_hi + pad
        n = self.points
        self.u_inv_step = (n - 1) / (u_hi - self.u_lo)
        self.w_inv_step = (n - 1) / (w_hi - self.w_lo)

        u = np.linspace(self.u_lo, u_hi, n)[:, np.newaxis]
        w = np.linspace(self.w_lo, w_hi, n)[np.newaxis, :]
        nmos = design.tech.nmos
        pmos = design.tech.pmos
        z = np.empty((3, n, n), dtype=np.float64)
        # pull-down: drain at the node, source grounded
        z[0] = np.arcsinh(
            design.nfin_of("pd_l") * nmos.ids(u, w, 0.0) / I_SCALE_A
        )
        # pass-gate: drain at the bit line (vdd), source at the node
        z[1] = np.arcsinh(
            design.nfin_of("pg_l") * nmos.ids(self.vdd, w, u) / I_SCALE_A
        )
        # pull-up: drain at the node, source at vdd
        z[2] = np.arcsinh(
            design.nfin_of("pu_l") * pmos.ids(u, w, self.vdd) / I_SCALE_A
        )
        self.z = z
        self._flat = z.ravel()
        # flat offset of each slab, as a column for (3, m) query batches
        self._slab = (np.arange(3) * n * n)[:, np.newaxis]
        self.backend = backend
        self._backend_name = resolve_backend(backend)

    def covers(self, max_shift_v: float) -> bool:
        """Whether the effective-gate axis absorbs ``max |dvth|``."""
        return float(max_shift_v) <= self.shift_pad_v

    def currents(
        self, u: np.ndarray, w_pd: np.ndarray, w_pg: np.ndarray, w_pu: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Interpolated (pull-down, pass-gate, pull-up) currents [A].

        ``u`` is the free-node voltage of every query; the ``w_*`` are
        the matching effective gate voltages (gate minus shift for the
        n-type roles, gate plus shift for the p-type).
        """
        i = self.currents_stacked(u, np.stack((w_pd, w_pg, w_pu)))
        return i[0], i[1], i[2]

    def currents_stacked(self, u: np.ndarray, w3: np.ndarray) -> np.ndarray:
        """Interpolated currents [A] for a stacked query.

        ``u`` has shape ``(m,)``; ``w3`` has shape ``(3, m)`` with rows
        (pull-down, pass-gate, pull-up).  Returns ``(3, m)`` currents.
        This is the hot entry point: one index computation and four
        flat gathers serve all three device types at once.
        """
        n = self.points
        tu = (u - self.u_lo) * self.u_inv_step
        iu = np.clip(tu.astype(np.int64), 0, n - 2)
        fu = tu - iu
        tw = (w3 - self.w_lo) * self.w_inv_step
        jw = np.clip(tw.astype(np.int64), 0, n - 2)
        fw = tw - jw
        base = self._slab + iu * n + jw
        # the backend's four-gather bilinear blend; the numpy path is
        # the verbatim inline code (device backends upload the raveled
        # table once per sweep, keyed on its content fingerprint)
        xp = get_backend_instance(self._backend_name)
        z = xp.bilinear_gather(
            xp.upload(self._flat),
            xp.asarray(base),
            n,
            xp.asarray(fw),
            xp.asarray(fu),
        )
        return I_SCALE_A * np.sinh(xp.to_numpy(z))

    def __getstate__(self):
        state = self.__dict__.copy()
        # the flat view rebuilds for free; keep the pickle payload lean
        state.pop("_flat", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._flat = self.z.ravel()
        # payloads pickled before the backend knob existed
        self.__dict__.setdefault("backend", None)
        if "_backend_name" not in self.__dict__:
            self._backend_name = resolve_backend(self.backend)
