"""SRAM cell soft-error characterization (paper Section 4).

Builds the POF LUTs: for every supply voltage and every combination of
the three strike currents, the flip probability over a log-spaced
charge grid, with threshold-voltage process variation Monte Carlo
(1000 samples in the paper; configurable here).  The heavy lifting is
the vectorized :class:`~repro.sram.fastcell.FastCell` -- every grid
point of a combination is simulated for every variation sample in one
batched integration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..devices import VariationModel
from ..errors import ConfigError
from ..obs import get_logger, get_registry, kv, span
from ..obs.convergence import convergence_active, record_bin
from ..parallel import parallel_map
from .cell import SramCellDesign
from .fastcell import KERNELS, FastCell
from .ivtab import DEFAULT_TABLE_POINTS, IVTables
from .pof_lut import PofTable
from .strike import ALL_COMBOS

_log = get_logger(__name__)


@dataclass(frozen=True)
class CharacterizationConfig:
    """Knobs of the cell characterization.

    Attributes
    ----------
    vdd_list:
        Supply voltages to characterize (the paper sweeps 0.7-1.1 V).
    n_charge_points:
        Points of the shared log charge axis.
    charge_min_fc / charge_max_fc:
        Charge axis range [fC]; must bracket the critical charge at
        every Vdd (defaults span 0.01-1 fC around the ~0.1 fC Qcrit of
        the calibrated cell).
    n_samples:
        Variation MC samples per grid point (paper: 1000).
    process_variation:
        False reproduces the paper's "neglecting PV" nominal mode
        (binary POFs, a single zero-shift sample).
    max_pair_points / max_triple_points:
        Per-axis grid resolution caps for the 2-D and 3-D combination
        grids (full resolution is kept for the 1-D singles; the paper's
        multi-strike cases are rarer, tolerating coarser grids).
    seed:
        Seed for the variation sampling.
    t_sim_s / dt_s:
        Integration horizon and step of the strike simulations.
    enforce_monotone:
        Clean MC noise by making POF non-decreasing along every charge
        axis (POF is physically monotone in each collected charge).
    kernel:
        :class:`~repro.sram.fastcell.FastCell` current kernel.  The
        default ``"tabulated"`` interpolates per-(role-type, Vdd) I-V
        tables built once per Vdd in the parent; ``"fused"`` and
        ``"exact"`` evaluate the compact model directly and are
        bit-identical to each other (see ``docs/performance.md``).
    early_exit:
        Freeze decided trajectories during the strike relaxation and
        compact the live batch (same POF, fewer integrated steps).
    early_exit_margin_v:
        Override of the early-exit separation margin [V]; ``None``
        uses the validated per-batch default.
    table_points:
        Grid points per axis of the tabulated kernel's I-V tables.
    max_batch:
        Cap on simultaneous (grid point x variation sample) rows per
        :meth:`FastCell.run_impulse` batch -- dense grids with large
        MC are chunked to bound peak memory; POF output is identical.
    hoist_settle:
        Compute the settled baselines once per Vdd in the parent
        (they depend only on (vdd, shifts)) instead of re-running the
        80-step settle in all 7 per-combo tasks; bit-identical.
    """

    vdd_list: Tuple[float, ...] = (0.7, 0.8, 0.9, 1.0, 1.1)
    n_charge_points: int = 21
    charge_min_fc: float = 0.01
    charge_max_fc: float = 1.0
    n_samples: int = 200
    process_variation: bool = True
    max_pair_points: int = 9
    max_triple_points: int = 6
    seed: int = 2014
    t_sim_s: float = 3.0e-11
    dt_s: float = 2.5e-13
    enforce_monotone: bool = True
    kernel: str = "tabulated"
    early_exit: bool = True
    early_exit_margin_v: Optional[float] = None
    table_points: int = DEFAULT_TABLE_POINTS
    max_batch: int = 200_000
    hoist_settle: bool = True

    def __post_init__(self):
        if not self.vdd_list or any(v <= 0 for v in self.vdd_list):
            raise ConfigError("vdd_list must contain positive voltages")
        if list(self.vdd_list) != sorted(self.vdd_list):
            raise ConfigError("vdd_list must be sorted ascending")
        if self.n_charge_points < 4:
            raise ConfigError("need >= 4 charge points")
        if not (0 < self.charge_min_fc < self.charge_max_fc):
            raise ConfigError("need 0 < charge_min < charge_max")
        if self.n_samples < 1:
            raise ConfigError("need >= 1 variation sample")
        if self.max_pair_points < 3 or self.max_triple_points < 3:
            raise ConfigError("pair/triple grids need >= 3 points per axis")
        if self.kernel not in KERNELS:
            raise ConfigError(
                f"unknown cell kernel {self.kernel!r}; choose from {KERNELS}"
            )
        if self.early_exit_margin_v is not None and self.early_exit_margin_v <= 0:
            raise ConfigError("early-exit margin must be positive")
        if self.table_points < 8:
            raise ConfigError("need >= 8 table points per axis")
        if self.max_batch < 1:
            raise ConfigError("max_batch must be >= 1")

    def charge_axis_c(self) -> np.ndarray:
        """The shared log-spaced charge axis [C]."""
        return np.logspace(
            np.log10(self.charge_min_fc * 1e-15),
            np.log10(self.charge_max_fc * 1e-15),
            self.n_charge_points,
        )

    def axis_for_combo(self, combo) -> np.ndarray:
        """Possibly-decimated axis for a multi-strike combination."""
        axis = self.charge_axis_c()
        cap = {
            1: self.n_charge_points,
            2: self.max_pair_points,
            3: self.max_triple_points,
        }[len(combo)]
        if len(axis) <= cap:
            return axis
        picks = np.unique(
            np.round(np.linspace(0, len(axis) - 1, cap)).astype(int)
        )
        return axis[picks]


def _enforce_monotone(grid: np.ndarray) -> np.ndarray:
    """Non-decreasing cumulative max along every charge axis."""
    result = grid.copy()
    for axis in range(result.ndim):
        result = np.maximum.accumulate(result, axis=axis)
    return np.clip(result, 0.0, 1.0)


def _cell_for(
    design: SramCellDesign,
    vdd: float,
    config: CharacterizationConfig,
    tables: Optional[IVTables] = None,
    backend: Optional[str] = None,
) -> FastCell:
    """A :class:`FastCell` configured per the characterization knobs."""
    return FastCell(
        design,
        vdd,
        kernel=config.kernel,
        tables=tables if config.kernel == "tabulated" else None,
        table_points=config.table_points,
        early_exit=config.early_exit,
        early_exit_margin_v=config.early_exit_margin_v,
        backend=backend,
    )


def _characterize_task(payload, task):
    """Pool worker: the finished POF grid of one (combo, vdd) case.

    The grid is a deterministic function of the precomputed variation
    shifts (sampled once in the parent from ``config.seed``), so
    results are identical for any worker count by construction.  The
    parent also precomputes, keyed by Vdd, the settled baselines and
    (for the tabulated kernel) the I-V tables -- both depend only on
    (vdd, shifts), not on the strike combination, so the 7 per-combo
    tasks share them through the broadcast payload.
    """
    combo, vdd = task
    config = payload["config"]
    combo_axis = config.axis_for_combo(combo)
    tables, settled = payload["per_vdd"][vdd]
    grid = _pof_grid_for_combo(
        payload["design"], vdd, combo, combo_axis, payload["shifts"], config,
        settled=settled, tables=tables,
    )
    if config.enforce_monotone:
        grid = _enforce_monotone(grid)
    grid = _resample_to_axis(grid, combo_axis, payload["shared_axis"])

    metrics = get_registry()
    if metrics.enabled:
        combo_points = len(combo_axis) ** len(combo)
        metrics.counter("characterize.grid_points").inc(combo_points)
        metrics.counter("characterize.cell_sims").inc(
            combo_points * payload["shifts"].shape[0]
        )
    return grid


def characterize_shard_encode(grid) -> list:
    """JSON-safe encoding of one (combo, vdd) POF grid for the journal.

    ``ndarray.tolist`` preserves the nesting of every grid rank, so
    the inverse is a plain ``np.asarray`` -- and JSON floats round-trip
    exactly, keeping resumed tables bit-identical.
    """
    return np.asarray(grid, dtype=np.float64).tolist()


def characterize_shard_decode(payload: list) -> np.ndarray:
    """Inverse of :func:`characterize_shard_encode`."""
    return np.asarray(payload, dtype=np.float64)


def characterize_cell(
    design: SramCellDesign,
    config: Optional[CharacterizationConfig] = None,
    n_jobs: int = 1,
    retry=None,
    journal=None,
    warm_pool: Optional[bool] = None,
    shm: Optional[bool] = None,
    backend: Optional[str] = None,
) -> PofTable:
    """Build the full POF table for a cell design.

    Note the decimated multi-strike grids are re-interpolated onto the
    shared axis so the :class:`~repro.sram.pof_lut.PofTable` stores one
    consistent axis (simplifies queries and serialization).

    ``n_jobs`` fans the independent (combo, vdd) grids out across
    worker processes (1 = inline, 0 = one per CPU); the table is
    bit-identical for any worker count.

    A :class:`~repro.parallel.RetryPolicy` in ``retry`` governs
    transient worker loss; graceful degradation is **not** available
    here (every (combo, vdd) grid is required to assemble the table),
    so the policy is forced strict and unrecoverable loss raises
    :class:`~repro.errors.WorkerCrashError` -- the attached ``journal``
    (built with :func:`characterize_shard_encode` /
    :func:`characterize_shard_decode`) preserves the finished grids for
    the next attempt.

    ``warm_pool`` / ``shm`` override the process defaults for pool
    leasing and the shared-memory payload plane (the big per-Vdd
    :class:`~repro.sram.ivtab.IVTables` surfaces ride shared segments);
    pure transport knobs, results are bit-identical either way.

    ``backend`` names the array-compute backend for the tabulated
    kernel's I-V lookups (``None`` = process default; see
    :mod:`repro.backend`) -- an execution knob deliberately outside
    ``config``, since the config participates in cache keys and the
    backend never changes the numpy-path result.
    """
    config = config if config is not None else CharacterizationConfig()
    rng = np.random.default_rng(config.seed)
    variation = VariationModel(
        sigma_vth_v=design.tech.sigma_vth_v,
        enabled=config.process_variation,
    )
    n_samples = config.n_samples if config.process_variation else 1
    shifts = variation.sample_shifts(n_samples, design.nfins(), rng)

    shared_axis = config.charge_axis_c()
    pof_grids = {}

    with span(
        "characterize-cell",
        vdds=len(config.vdd_list),
        combos=len(ALL_COMBOS),
        samples=n_samples,
    ):
        # Per-Vdd precomputation, shared by all 7 combo tasks: the I-V
        # tables of the tabulated kernel and (when hoisted) the settled
        # baselines.  Both depend only on (vdd, shifts), and computing
        # them here keeps them deterministic regardless of how tasks
        # land on workers.
        per_vdd = {}
        for vdd in config.vdd_list:
            cell = _cell_for(design, vdd, config, backend=backend)
            tables = (
                cell._ensure_tables(shifts)
                if config.kernel == "tabulated"
                else None
            )
            settled = (
                cell.settle(shifts, dt_s=config.dt_s)
                if config.hoist_settle
                else None
            )
            per_vdd[vdd] = (tables, settled)

        tasks = [
            (combo, vdd)
            for combo in ALL_COMBOS
            for vdd in config.vdd_list
        ]
        grids = parallel_map(
            _characterize_task,
            tasks,
            payload={
                "design": design,
                "config": config,
                "shifts": shifts,
                "shared_axis": shared_axis,
                "per_vdd": per_vdd,
            },
            n_jobs=n_jobs,
            label="characterize",
            retry=retry.strict() if retry is not None else None,
            journal=journal,
            cost_hint_s=_task_cost_hint_s(config, n_samples),
            warm_pool=warm_pool,
            shm=shm,
        )
        if journal is not None:
            # every grid is present (strict policy) -- the checkpoint
            # has served its purpose
            journal.clear()
        n_vdd = len(config.vdd_list)
        for c, combo in enumerate(ALL_COMBOS):
            per_vdd = grids[c * n_vdd : (c + 1) * n_vdd]
            pof_grids[combo] = np.stack(per_vdd, axis=0)
            _log.debug(
                "characterized combo %s",
                kv(
                    combo="+".join(str(i) for i in combo),
                    vdds=n_vdd,
                    grid_points=len(config.axis_for_combo(combo))
                    ** len(combo),
                    samples=n_samples,
                ),
            )

        if convergence_active() and config.process_variation:
            # One convergence bin per Vdd: each grid point is an
            # n_samples-trial proportion, so the bin reports the
            # least-converged point -- the grid value nearest 0.5,
            # where the binomial bound peaks.
            for v_i, vdd in enumerate(config.vdd_list):
                values = np.concatenate(
                    [
                        pof_grids[combo][v_i].ravel()
                        for combo in ALL_COMBOS
                    ]
                )
                worst_p = (
                    float(values[np.argmin(np.abs(values - 0.5))])
                    if values.size
                    else 0.0
                )
                record_bin(
                    "characterize",
                    trials=int(n_samples),
                    pof=worst_p,
                    vdd_v=float(vdd),
                )

    return PofTable(
        vdd_list=np.array(config.vdd_list),
        charge_axis_c=shared_axis,
        pof=pof_grids,
        process_variation=config.process_variation,
        n_samples=n_samples,
    )


def _task_cost_hint_s(config: CharacterizationConfig, n_samples: int) -> float:
    """Rough wall-clock estimate [s] of one (combo, vdd) grid task.

    Used by :func:`~repro.parallel.parallel_map` to skip pool spin-up
    when the whole map is cheaper than forking workers.  The model is
    (rows x steps) at an empirical ~25 ns per row-step for the mean
    combo grid, plus a fixed per-task floor; precision is irrelevant --
    only the inline-vs-pool break-even (~tens of ms) matters.
    """
    mean_points = sum(
        len(config.axis_for_combo(combo)) ** len(combo)
        for combo in ALL_COMBOS
    ) / len(ALL_COMBOS)
    steps = max(int(round(config.t_sim_s / config.dt_s)), 1)
    if not config.hoist_settle:
        steps += 80
    return 2.5e-8 * mean_points * n_samples * steps + 0.005


def _pof_grid_for_combo(
    design: SramCellDesign,
    vdd: float,
    combo,
    axis_c: np.ndarray,
    shifts: np.ndarray,
    config: CharacterizationConfig,
    settled: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    tables: Optional[IVTables] = None,
) -> np.ndarray:
    """POF over the charge mesh of one (vdd, combo) case.

    ``settled`` / ``tables`` are the per-Vdd precomputations hoisted
    into the parent (computed here when absent, with identical
    results).  The (grid point x variation sample) expansion is
    chunked under ``config.max_batch`` rows; chunks are independent
    row ranges of the same batch, so the POF is identical to the
    unchunked evaluation.
    """
    cell = _cell_for(design, vdd, config, tables=tables)
    n_samples = shifts.shape[0]
    if settled is None:
        settled = cell.settle(shifts, dt_s=config.dt_s)

    mesh = np.meshgrid(*([axis_c] * len(combo)), indexing="ij")
    n_points = mesh[0].size
    charges = np.zeros((n_points, 3), dtype=np.float64)
    for dim, strike_index in enumerate(combo):
        charges[:, strike_index] = mesh[dim].ravel()

    # tile: every grid point runs every variation sample -- in chunks
    # of whole grid points so peak memory stays under max_batch rows
    points_per_chunk = max(1, config.max_batch // n_samples)
    flipped_chunks = []
    for start in range(0, n_points, points_per_chunk):
        chunk = charges[start : start + points_per_chunk]
        n_chunk = chunk.shape[0]
        charges_full = np.repeat(chunk, n_samples, axis=0)
        shifts_full = np.tile(shifts, (n_chunk, 1))
        settled_full = (
            np.tile(settled[0], n_chunk),
            np.tile(settled[1], n_chunk),
        )
        flipped_chunks.append(
            cell.run_impulse(
                charges_full,
                shifts_full,
                settled=settled_full,
                t_sim_s=config.t_sim_s,
                dt_s=config.dt_s,
            )
        )
    flipped = (
        np.concatenate(flipped_chunks)
        if len(flipped_chunks) > 1
        else flipped_chunks[0]
    )
    pof_flat = flipped.reshape(n_points, n_samples).mean(axis=1)
    return pof_flat.reshape(mesh[0].shape)


def _resample_to_axis(
    grid: np.ndarray, from_axis: np.ndarray, to_axis: np.ndarray
) -> np.ndarray:
    """Interpolate a POF grid onto the shared axis (log-charge linear)."""
    if len(from_axis) == len(to_axis) and np.allclose(from_axis, to_axis):
        return grid
    from scipy.interpolate import RegularGridInterpolator

    ndim = grid.ndim
    interp = RegularGridInterpolator(
        (np.log(from_axis),) * ndim,
        grid,
        method="linear",
        bounds_error=False,
        fill_value=None,
    )
    mesh = np.meshgrid(*([np.log(to_axis)] * ndim), indexing="ij")
    points = np.stack([m.ravel() for m in mesh], axis=-1)
    return np.clip(interp(points).reshape(mesh[0].shape), 0.0, 1.0)
