"""The 14 nm SOI FinFET technology card.

The paper simulates a 14 nm SOI FinFET SRAM with device parameters from
Wang et al. [28] and a PTM-style model card [29] -- both unavailable in
the open.  This card is calibrated to the published figures of merit of
that generation instead (DESIGN.md Section 2):

* I_on ~ 50 uA / fin at Vdd = 0.8 V, I_off < 1 nA / fin,
* |Vth| ~ 0.25 V, subthreshold swing ~ 70 mV/dec,
* sigma(Vth) ~ 30 mV for a single-fin device [28],
* storage-node capacitance ~ 0.15 fF,
* fin 20 x 10 x 25 nm; carrier transit time > 10 fs at 1 V (paper
  Section 3.3 quotes exactly this check for eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..constants import FIN_ELECTRON_MOBILITY_CM2_PER_VS
from ..errors import ConfigError
from ..geometry import FinGeometry
from ..units import nm_to_cm
from .finfet import NMOS, PMOS, FinFETModel


@dataclass(frozen=True)
class TechnologyCard:
    """Everything the cell- and array-level code needs about the process.

    Attributes
    ----------
    name:
        Card identifier.
    nmos / pmos:
        Per-fin compact models.
    fin:
        Fin geometry (shared by the transport world and the layout).
    sigma_vth_v:
        Threshold-voltage standard deviation of a single-fin device [V]
        (random dopant/work-function fluctuation; [28] reports ~30 mV
        at this node).
    node_cap_f:
        Lumped storage-node capacitance [F] (gate + junction + wire).
    vdd_nominal_v:
        Nominal supply.
    electron_mobility_cm2_vs:
        Channel electron mobility for the transit-time formula (eq. 2).
    """

    name: str = "soi-finfet-14nm"
    nmos: FinFETModel = field(
        default_factory=lambda: FinFETModel(
            name="nfet14",
            polarity=NMOS,
            vth0_v=0.30,
            beta_a_per_valpha=1.10e-4,
            alpha=1.3,
            n_factor=1.53,
        )
    )
    pmos: FinFETModel = field(
        default_factory=lambda: FinFETModel(
            name="pfet14",
            polarity=PMOS,
            vth0_v=0.30,
            beta_a_per_valpha=0.95e-4,
            alpha=1.3,
            n_factor=1.53,
        )
    )
    fin: FinGeometry = field(
        default_factory=lambda: FinGeometry(
            length_nm=20.0, width_nm=10.0, height_nm=30.0
        )
    )
    sigma_vth_v: float = 0.050
    node_cap_f: float = 2.6e-16
    #: Length of the charge-collecting fin segment [nm].  The silicon
    #: fin is continuous through the gate: the reverse-biased drain
    #: extension collects drift charge beyond the channel proper, so
    #: the sensitive volume is longer than the gate length.
    collection_length_nm: float = 60.0
    vdd_nominal_v: float = 0.8
    electron_mobility_cm2_vs: float = FIN_ELECTRON_MOBILITY_CM2_PER_VS

    def __post_init__(self):
        if self.sigma_vth_v < 0:
            raise ConfigError("sigma_vth cannot be negative")
        if self.node_cap_f <= 0:
            raise ConfigError("node capacitance must be positive")
        if self.vdd_nominal_v <= 0:
            raise ConfigError("nominal Vdd must be positive")
        if self.electron_mobility_cm2_vs <= 0:
            raise ConfigError("mobility must be positive")
        if self.collection_length_nm < self.fin.length_nm:
            raise ConfigError(
                "collection length cannot be shorter than the channel"
            )

    def transit_time_s(self, vds_v: float) -> float:
        """Carrier transit time tau = L_fin^2 / (mu_e Vds) (paper eq. 2).

        This is the width of the paper's rectangular parasitic current
        pulse (eq. 3).
        """
        if vds_v <= 0:
            raise ConfigError("Vds must be positive for a transit time")
        length_cm = nm_to_cm(self.fin.length_nm)
        return length_cm * length_cm / (
            self.electron_mobility_cm2_vs * vds_v
        )


def technology_at_temperature(tech: TechnologyCard, temperature_k: float) -> TechnologyCard:
    """A card with both device flavours moved to a junction temperature.

    Applies the compact model's standard temperature coefficients (Vth,
    mobility, subthreshold slope); geometry and capacitances are
    temperature-independent at this fidelity.
    """
    from dataclasses import replace

    return replace(
        tech,
        nmos=tech.nmos.at_temperature(temperature_k),
        pmos=tech.pmos.at_temperature(temperature_k),
    )


def default_tech() -> TechnologyCard:
    """The library's calibrated 14 nm SOI FinFET card."""
    return TechnologyCard()
