"""FinFET compact model, technology card, and process-variation model."""

from .finfet import NMOS, PMOS, FinFETModel
from .tech import TechnologyCard, default_tech, technology_at_temperature
from .variation import VariationModel

__all__ = [
    "FinFETModel",
    "NMOS",
    "PMOS",
    "TechnologyCard",
    "default_tech",
    "technology_at_temperature",
    "VariationModel",
]
