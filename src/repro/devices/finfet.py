"""Smooth compact I-V model for short-channel SOI FinFETs.

The proprietary 14 nm model card the paper uses (via [28, 29]) is
replaced by a smooth EKV/alpha-power hybrid that captures exactly the
behaviours the SRAM flip dynamics depend on:

* exponential subthreshold conduction with a realistic swing,
* alpha-power-law strong inversion with velocity saturation
  (``alpha`` between 1 and 2, short-channel devices sit near 1.3),
* smooth triode-to-saturation transition (tanh) and channel-length
  modulation,
* full drain-source symmetry (the model is evaluated source-referenced
  from the lower-potential terminal, so ``vds`` of either sign works),
* a per-device threshold-voltage shift hook for process variation.

The same vectorized functions serve both the MNA circuit engine and the
fast array-characterization path (:mod:`repro.sram.fastcell`), so the
two solvers agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..constants import THERMAL_VOLTAGE_300K
from ..errors import ConfigError

NMOS = 1
PMOS = -1


@dataclass(frozen=True)
class FinFETModel:
    """Compact-model card for one device flavour.

    Attributes
    ----------
    name:
        Card identifier (``"nfet14"`` ...).
    polarity:
        ``NMOS`` (+1) or ``PMOS`` (-1).
    vth0_v:
        Nominal threshold voltage magnitude [V].
    beta_a_per_valpha:
        Strong-inversion transconductance coefficient per fin
        [A / V^alpha]: ``Id_sat = beta * veff^alpha``.
    alpha:
        Velocity-saturation exponent (2 = long channel, ~1.3 at 14 nm).
    n_factor:
        Subthreshold slope factor; swing = ``n vt ln10 / alpha``.
    vdsat_coeff:
        Saturation voltage proportionality: ``vdsat = max(vdsat_min,
        vdsat_coeff * veff)``.
    vdsat_min_v:
        Floor of the saturation voltage [V].
    lambda_v:
        Channel-length modulation [1/V].
    cgg_f:
        Total gate capacitance per fin [F] (split evenly gs/gd).
    cdb_f:
        Drain junction/fringe capacitance per fin [F] (small in SOI).
    """

    name: str
    polarity: int
    vth0_v: float
    beta_a_per_valpha: float
    alpha: float
    n_factor: float
    vdsat_coeff: float = 0.6
    vdsat_min_v: float = 0.05
    lambda_v: float = 0.05
    cgg_f: float = 4.0e-17
    cdb_f: float = 1.0e-17
    #: Junction temperature [K].  Enters the subthreshold slope through
    #: kT/q; use :meth:`at_temperature` to also apply the Vth and
    #: mobility temperature coefficients.
    temperature_k: float = 300.0

    def __post_init__(self):
        if self.polarity not in (NMOS, PMOS):
            raise ConfigError("polarity must be +1 (NMOS) or -1 (PMOS)")
        if self.vth0_v <= 0:
            raise ConfigError("vth0 must be a positive magnitude")
        if self.beta_a_per_valpha <= 0:
            raise ConfigError("beta must be positive")
        if not (1.0 <= self.alpha <= 2.0):
            raise ConfigError("alpha must lie in [1, 2]")
        if self.n_factor < 1.0:
            raise ConfigError("subthreshold n-factor must be >= 1")
        if self.vdsat_min_v <= 0 or self.vdsat_coeff <= 0:
            raise ConfigError("saturation-voltage parameters must be positive")
        if self.lambda_v < 0:
            raise ConfigError("channel-length modulation cannot be negative")
        if self.temperature_k <= 0:
            raise ConfigError("temperature must be positive")

    # -- core NMOS-referenced equations (vectorized) ----------------------

    @property
    def thermal_voltage_v(self) -> float:
        """kT/q at the model's junction temperature [V]."""
        from ..constants import BOLTZMANN_EV_PER_K

        return BOLTZMANN_EV_PER_K * self.temperature_k

    def _veff(self, vgs, vth):
        """Smooth effective overdrive: n*vt*softplus((vgs-vth)/(n*vt))."""
        nvt = self.n_factor * self.thermal_voltage_v
        x = (np.asarray(vgs, dtype=np.float64) - vth) / nvt
        # log1p(exp(x)) computed stably on both branches
        return nvt * np.where(x > 30.0, x, np.log1p(np.exp(np.minimum(x, 30.0))))

    def _core_ids(self, vgs, vds, vth):
        """Drain current for a source-referenced NMOS with vds >= 0."""
        veff = self._veff(vgs, vth)
        vdsat = np.maximum(self.vdsat_min_v, self.vdsat_coeff * veff)
        idsat = self.beta_a_per_valpha * np.power(veff, self.alpha)
        return idsat * np.tanh(np.asarray(vds, dtype=np.float64) / vdsat) * (
            1.0 + self.lambda_v * np.asarray(vds, dtype=np.float64)
        )

    def ids(self, vd, vg, vs, vth_shift=0.0):
        """Terminal current flowing drain -> source [A] (vectorized).

        Sign conventions: positive current exits the drain node for a
        conducting NMOS (drain above source); PMOS mirrors.  ``vth_shift``
        adds to the threshold magnitude (process variation hook).
        """
        vd = np.asarray(vd, dtype=np.float64)
        vg = np.asarray(vg, dtype=np.float64)
        vs = np.asarray(vs, dtype=np.float64)
        vth = self.vth0_v + np.asarray(vth_shift, dtype=np.float64)

        if self.polarity == NMOS:
            hi, lo = np.maximum(vd, vs), np.minimum(vd, vs)
            ids_mag = self._core_ids(vg - lo, hi - lo, vth)
            sign = np.where(vd >= vs, 1.0, -1.0)
            return sign * ids_mag
        # PMOS: mirror every potential
        hi, lo = np.maximum(vd, vs), np.minimum(vd, vs)
        ids_mag = self._core_ids(hi - vg, hi - lo, vth)
        sign = np.where(vd >= vs, -1.0, 1.0)
        # current flows source -> drain when conducting: drain->source
        # current is negative for vd < vs ... sign handled above.
        return -sign * ids_mag

    # -- figures of merit ---------------------------------------------------

    def on_current(self, vdd: float) -> float:
        """|Id| at |vgs| = |vds| = vdd [A per fin]."""
        if self.polarity == NMOS:
            return float(self.ids(vdd, vdd, 0.0))
        return float(abs(self.ids(0.0, 0.0, vdd)))

    def off_current(self, vdd: float) -> float:
        """|Id| at vgs = 0, |vds| = vdd [A per fin]."""
        if self.polarity == NMOS:
            return float(abs(self.ids(vdd, 0.0, 0.0)))
        return float(abs(self.ids(0.0, vdd, vdd)))

    def subthreshold_swing_mv_dec(self) -> float:
        """Analytic subthreshold swing [mV/decade]."""
        import math

        return (
            self.n_factor * self.thermal_voltage_v * math.log(10.0) / self.alpha
        ) * 1.0e3

    def with_shift(self, delta_vth_v: float) -> "FinFETModel":
        """A copy with the threshold magnitude shifted (corner modeling)."""
        return replace(self, vth0_v=self.vth0_v + delta_vth_v)

    #: Threshold temperature coefficient [V/K] (magnitude decreases as
    #: the junction heats -- typical advanced-node value ~0.7 mV/K).
    VTH_TEMP_COEFF_V_PER_K = 7.0e-4
    #: Mobility temperature exponent (phonon-scattering limited).
    MOBILITY_TEMP_EXPONENT = 1.5

    def at_temperature(self, temperature_k: float) -> "FinFETModel":
        """A copy with the standard temperature coefficients applied.

        Three effects relative to the card's reference temperature:
        the subthreshold slope widens with kT/q, |Vth| drops by
        ~0.7 mV/K, and the drive current degrades with mobility as
        ``(T0/T)^1.5``.  Hotter silicon is therefore leakier *and*
        weaker -- the combination that makes SER grow with temperature.
        """
        if temperature_k <= 0:
            raise ConfigError("temperature must be positive")
        delta_t = temperature_k - self.temperature_k
        new_vth = max(
            self.vth0_v - self.VTH_TEMP_COEFF_V_PER_K * delta_t, 1.0e-3
        )
        mobility_factor = (
            self.temperature_k / temperature_k
        ) ** self.MOBILITY_TEMP_EXPONENT
        return replace(
            self,
            vth0_v=new_vth,
            beta_a_per_valpha=self.beta_a_per_valpha * mobility_factor,
            temperature_k=float(temperature_k),
        )
