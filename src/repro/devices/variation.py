"""Process-variation model: per-device threshold-voltage fluctuation.

The paper "consider[s] the threshold voltage variation by performing
1000 MC simulations" (Section 4).  At the 14 nm SOI FinFET node the
dominant local variation source is the work-function/RDF-induced Vth
shift, well described as an independent zero-mean Gaussian per device
with sigma ~30 mV for a single fin ([28]); multi-fin devices average
fins, shrinking sigma by 1/sqrt(n_fin) (Pelgrom scaling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class VariationModel:
    """Gaussian Vth variation with Pelgrom fin-count scaling.

    Attributes
    ----------
    sigma_vth_v:
        Single-fin threshold standard deviation [V].
    enabled:
        When False, :meth:`sample_shifts` returns zeros (the paper's
        "neglecting process variation" mode).
    """

    sigma_vth_v: float = 0.030
    enabled: bool = True

    def __post_init__(self):
        if self.sigma_vth_v < 0:
            raise ConfigError("sigma_vth cannot be negative")

    def device_sigma(self, nfin: int) -> float:
        """Sigma of an ``nfin``-fin device [V] (Pelgrom 1/sqrt scaling)."""
        if nfin < 1:
            raise ConfigError("nfin must be >= 1")
        return self.sigma_vth_v / np.sqrt(float(nfin))

    def sample_shifts(
        self,
        n_samples: int,
        nfins: Sequence[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sample Vth shifts [V] of shape ``(n_samples, n_devices)``.

        ``nfins`` lists the fin count of each device in the cell (the
        6T cell passes six entries).  Shifts are independent across
        devices and samples.
        """
        if n_samples < 1:
            raise ConfigError("need at least one variation sample")
        nfins = list(nfins)
        if not nfins:
            raise ConfigError("need at least one device")
        if not self.enabled:
            return np.zeros((n_samples, len(nfins)), dtype=np.float64)
        sigmas = np.array([self.device_sigma(n) for n in nfins])
        return rng.standard_normal((n_samples, len(nfins))) * sigmas

    def corner_shifts(self, nfins: Sequence[int], n_sigma: float) -> np.ndarray:
        """Deterministic all-devices-shifted corner (slow/fast studies)."""
        sigmas = np.array([self.device_sigma(n) for n in nfins])
        return n_sigma * sigmas
