"""Query schema and wire protocol of the SER service.

One characterized model — yield LUTs, POF tables, array layout — can
answer many SER questions; this module defines the *question*: a
:class:`QuerySpec` naming everything that changes the answer (tech
card, particles, spectrum binning, Vdd range, array geometry, MC
budgets, seed, optional adaptive sampling and ECC/interleave
analysis) and nothing that doesn't (worker counts, sockets, cache
locations live on :class:`~repro.service.engine.ExecutionOptions`).

Canonicalization is the load-bearing part: :meth:`QuerySpec.canonical_key`
maps a spec onto the same sha256 configuration hash family the
:class:`~repro.io.ArtifactCache` keys artifacts by, so two clients
asking the same question — in any field order, over any front-end —
land on one key.  The engine coalesces in-flight requests and
memoizes completed results on that key, and the flow's own disk cache
keys (derived from the identical :class:`~repro.core.FlowConfig`)
line up underneath it.

The wire format is newline-delimited JSON, one object per line, over
a unix or TCP socket:

* requests: ``{"op": "query", "id": ..., "tenant": ..., "spec":
  {...}, "watch": bool}``, plus ``ping`` / ``stats`` / ``shutdown``.
* responses: ``{"id": ..., "ok": true, "result": {...}, "source":
  "campaign" | "coalesced" | "memo", "wall_s": ...}`` or ``{"ok":
  false, "error": ..., "code": "bad-request" | "rejected" |
  "failed"}``.
* progress (only with ``watch``): ``{"id": ..., "event": {...}}``
  lines interleaved while the campaign runs, fanned out from the live
  :class:`~repro.obs.events.EventRing`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Optional, Tuple

from ..errors import ConfigError
from ..io import config_hash

__all__ = [
    "QueryError",
    "QuerySpec",
    "decode_line",
    "encode_line",
    "ECC_SCHEMES",
]

#: ECC schemes a query may ask to fold over the MBU statistics (see
#: :mod:`repro.reliability.ecc`).
ECC_SCHEMES = ("none", "SEC-DED", "DEC-TED")


class QueryError(ConfigError):
    """A request that cannot be turned into a well-formed campaign."""


@dataclass(frozen=True)
class QuerySpec:
    """One SER question, canonicalized.

    Field defaults mirror the ``repro-ser`` CLI defaults, so an empty
    query asks exactly what a bare ``repro-ser sweep`` computes.
    """

    # what to sweep
    particles: Tuple[str, ...] = ("alpha", "proton")
    vdd_list: Tuple[float, ...] = (0.7, 0.8, 0.9, 1.0, 1.1)
    # array geometry / data
    array_rows: int = 9
    array_cols: int = 9
    data_pattern: str = "uniform"
    # spectrum folding
    n_energy_bins: int = 8
    # MC budgets
    mc_particles: int = 50000
    samples: int = 200
    yield_trials: int = 20000
    yield_points: int = 13
    seed: int = 2014
    variation: bool = True
    # cell kernel
    cell_kernel: str = "tabulated"
    cell_early_exit: bool = True
    cell_max_batch: int = 200_000
    # adaptive sampling (changes results => part of the key)
    adaptive: bool = False
    target_se: float = 5e-4
    target_se_relative: bool = False
    max_trials: Optional[int] = None
    pilot_trials: int = 8192
    # optional ECC / interleaving analysis riding on the sweep
    ecc: Optional[str] = None
    interleave: int = 4
    ecc_pair_particles: int = 20000

    def __post_init__(self):
        # normalize list-ish inputs so from_dict(json) and native
        # construction canonicalize identically
        object.__setattr__(
            self, "particles", tuple(str(p) for p in self.particles)
        )
        object.__setattr__(
            self, "vdd_list", tuple(float(v) for v in self.vdd_list)
        )
        if not self.particles:
            raise QueryError("query needs at least one particle")
        if not self.vdd_list:
            raise QueryError("query needs at least one vdd")
        if self.ecc is not None and self.ecc not in ECC_SCHEMES:
            raise QueryError(
                f"unknown ecc scheme {self.ecc!r} (one of {ECC_SCHEMES})"
            )
        if self.interleave < 1:
            raise QueryError("interleave distance must be >= 1")
        if self.ecc_pair_particles < 1:
            raise QueryError("ecc_pair_particles must be positive")

    @classmethod
    def from_dict(cls, payload: dict) -> "QuerySpec":
        """Build a spec from a decoded request, rejecting junk fields."""
        if not isinstance(payload, dict):
            raise QueryError("spec must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise QueryError(f"unknown spec field(s): {unknown}")
        try:
            return cls(**payload)
        except (TypeError, ValueError) as exc:
            raise QueryError(f"malformed spec: {exc}") from exc

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["particles"] = list(self.particles)
        payload["vdd_list"] = list(self.vdd_list)
        return payload

    def to_flow_config(self):
        """The :class:`~repro.core.FlowConfig` this query compiles to.

        This is *the* canonical compilation — the CLI front-end builds
        its flows through the same path (see
        :func:`~repro.service.engine.build_flow`), so a query and the
        equivalent one-shot command produce bit-identical results and
        share every artifact-cache key.
        """
        from ..core import FlowConfig
        from ..ser import AdaptiveConfig
        from ..sram import CharacterizationConfig

        adaptive = None
        if self.adaptive:
            adaptive = AdaptiveConfig(
                target_se=self.target_se,
                relative_target=self.target_se_relative,
                pilot_trials=self.pilot_trials,
                max_trials=self.max_trials,
            )
        try:
            return FlowConfig(
                particles=self.particles,
                vdd_list=self.vdd_list,
                yield_trials_per_energy=self.yield_trials,
                yield_energy_points=self.yield_points,
                characterization=CharacterizationConfig(
                    vdd_list=self.vdd_list,
                    n_samples=self.samples,
                    kernel=self.cell_kernel,
                    early_exit=self.cell_early_exit,
                    max_batch=self.cell_max_batch,
                ),
                process_variation=self.variation,
                array_rows=self.array_rows,
                array_cols=self.array_cols,
                data_pattern=self.data_pattern,
                n_energy_bins=self.n_energy_bins,
                mc_particles_per_bin=self.mc_particles,
                seed=self.seed,
                adaptive=adaptive,
            )
        except ConfigError as exc:
            raise QueryError(str(exc)) from exc

    def canonical_key(self, design=None) -> str:
        """The request's identity: the artifact-cache hash of its campaign.

        Built from the compiled flow configuration, the technology
        card, and the service-only analysis fields — the same
        ``config_hash`` family (and the same leading components) the
        flow's sweep artifact is cached under, so request coalescing,
        result memoization, and the disk cache all agree on what
        "identical query" means.
        """
        from ..sram import SramCellDesign

        design = design if design is not None else SramCellDesign()
        return config_hash(
            self.to_flow_config(),
            design.tech,
            {
                "particles": list(self.particles),
                "vdds": list(self.vdd_list),
                "ecc": self.ecc,
                "interleave": self.interleave if self.ecc else None,
                "ecc_pair_particles": (
                    self.ecc_pair_particles if self.ecc else None
                ),
            },
        )


def encode_line(message: dict) -> bytes:
    """One wire line: compact JSON + newline."""
    return (json.dumps(message, sort_keys=True, default=str) + "\n").encode(
        "utf-8"
    )


def decode_line(line: bytes) -> dict:
    """Parse one wire line; raises :class:`QueryError` on junk."""
    try:
        message = json.loads(line.decode("utf-8", errors="replace"))
    except json.JSONDecodeError as exc:
        raise QueryError(f"undecodable request line: {exc}") from exc
    if not isinstance(message, dict):
        raise QueryError("request must be a JSON object")
    return message
