"""The asyncio SER-service daemon: NDJSON queries over a socket.

``repro-ser serve`` runs one of these: a long-lived front-end over a
:class:`~repro.service.engine.CampaignEngine`, listening on a unix
socket (the default — same-host clients, file permissions as the
ACL) or a TCP port.  Clients send newline-delimited JSON requests
(see :mod:`repro.service.protocol`) and read responses matched by
``id``; with ``"watch": true`` the daemon interleaves live progress
events — fanned out of the process-wide
:class:`~repro.obs.events.EventRing` — while the campaign runs.

Design notes
------------
* The asyncio loop only moves bytes and futures; campaigns run on the
  engine's worker threads (which in turn fan out to the warm process
  pools).  A slow campaign never blocks another client's admission,
  rejection, or stats round-trip.
* Every request line is dispatched as its own task, so two queries
  pipelined on one connection coalesce in flight exactly like queries
  from two connections.
* A client that disconnects mid-campaign abandons only its *reply*:
  the campaign keeps running, the result lands in the engine memo and
  the artifact cache, and the next asker gets it instantly.  (Killing
  work on disconnect would let one flaky client waste everyone's
  shared single-flight.)
"""

from __future__ import annotations

import asyncio
import os
from typing import Optional

from ..obs import get_event_bus, get_logger, kv
from .engine import AdmissionError, CampaignEngine, ServiceError
from .protocol import QueryError, QuerySpec, decode_line, encode_line

__all__ = ["ServiceDaemon"]

_log = get_logger(__name__)

#: Poll period for fanning ring events out to watching clients [s].
EVENT_POLL_S = 0.2


def _consume_result(future):
    """Mark an abandoned campaign result as retrieved (no loop noise)."""
    if not future.cancelled():
        future.exception()


class ServiceDaemon:
    """Serve a :class:`CampaignEngine` over a unix or TCP socket."""

    def __init__(
        self,
        engine: CampaignEngine,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
    ):
        if socket_path is None and port is None:
            raise ServiceError("need a unix socket path or a TCP port")
        if socket_path is not None and port is not None:
            raise ServiceError("choose one of unix socket / TCP port")
        self.engine = engine
        self.socket_path = socket_path
        self.host = host if host is not None else "127.0.0.1"
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown: Optional[asyncio.Event] = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self):
        self._shutdown = asyncio.Event()
        if self.socket_path is not None:
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)  # stale socket from a crash
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.socket_path
            )
            where = self.socket_path
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
            where = f"{self.host}:{self.port}"
        _log.info("ser service listening %s", kv(on=where))

    async def serve_until_shutdown(self):
        """Run until a ``shutdown`` request (or :meth:`stop`) arrives."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.stop()

    async def stop(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.socket_path is not None and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        if self._shutdown is not None:
            self._shutdown.set()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        send_lock = asyncio.Lock()
        tasks = []
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break  # client hung up; in-flight campaigns carry on
                task = asyncio.ensure_future(
                    self._dispatch(line, writer, send_lock)
                )
                tasks.append(task)
                tasks = [t for t in tasks if not t.done()]
        except (
            ConnectionResetError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,  # server closed mid-read at shutdown
        ):
            pass
        finally:
            # replies to a gone client are pointless; the engine-side
            # work is deliberately left running (see module docstring)
            for task in tasks:
                task.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _send(self, writer, send_lock, message: dict):
        async with send_lock:
            writer.write(encode_line(message))
            await writer.drain()

    async def _dispatch(self, line: bytes, writer, send_lock):
        request_id = None
        try:
            message = decode_line(line)
            request_id = message.get("id")
            op = message.get("op", "query")
            if op == "ping":
                await self._send(
                    writer, send_lock, {"id": request_id, "ok": True, "pong": True}
                )
            elif op == "stats":
                await self._send(
                    writer,
                    send_lock,
                    {"id": request_id, "ok": True, "stats": self.engine.stats()},
                )
            elif op == "shutdown":
                await self._send(
                    writer, send_lock, {"id": request_id, "ok": True, "stopping": True}
                )
                self._shutdown.set()
            elif op == "query":
                await self._serve_query(message, writer, send_lock)
            else:
                raise QueryError(f"unknown op {op!r}")
        except QueryError as exc:
            await self._reply_error(
                writer, send_lock, request_id, "bad-request", exc
            )
        except AdmissionError as exc:
            await self._reply_error(
                writer, send_lock, request_id, "rejected", exc
            )
        except (ConnectionResetError, asyncio.CancelledError):
            raise
        except Exception as exc:  # campaign errors -> structured reply
            await self._reply_error(
                writer, send_lock, request_id, "failed", exc
            )

    async def _reply_error(self, writer, send_lock, request_id, code, exc):
        try:
            await self._send(
                writer,
                send_lock,
                {
                    "id": request_id,
                    "ok": False,
                    "code": code,
                    "error": str(exc),
                },
            )
        except (ConnectionResetError, OSError):
            pass  # client is gone; nothing to tell

    async def _serve_query(self, message: dict, writer, send_lock):
        request_id = message.get("id")
        tenant = str(message.get("tenant", "default"))
        spec = QuerySpec.from_dict(message.get("spec") or {})
        loop = asyncio.get_event_loop()
        t0 = loop.time()
        # the watch baseline must predate the submission: a fast
        # campaign can emit its first events before the fan-out task
        # ever runs, and those must still reach the client
        baseline_seq = self._ring_seq()
        future = self.engine.submit(spec, tenant=tenant)
        # shield: cancelling this dispatch task (client hung up, server
        # stopping) must never propagate through wrap_future into the
        # engine's future — that future is shared by every coalesced
        # waiter and resolves from the worker thread
        inner = asyncio.wrap_future(future)
        inner.add_done_callback(_consume_result)
        aio_future = asyncio.shield(inner)
        watch_task = None
        if message.get("watch"):
            watch_task = asyncio.ensure_future(
                self._fan_out_events(
                    request_id, writer, send_lock, aio_future, baseline_seq
                )
            )
        try:
            result = await aio_future
        except BaseException:
            if watch_task is not None:
                watch_task.cancel()
            raise
        if watch_task is not None:
            await watch_task  # final drain: events precede the reply
        await self._send(
            writer,
            send_lock,
            {
                "id": request_id,
                "ok": True,
                "source": result.get("source", "campaign"),
                "wall_s": loop.time() - t0,
                "result": result,
            },
        )

    @staticmethod
    def _ring_seq() -> int:
        """Highest event seq currently in the ring (0 when dark)."""
        bus = get_event_bus()
        if bus is None or bus.ring is None:
            return 0
        return max((e.get("seq", 0) for e in bus.ring.snapshot()), default=0)

    async def _fan_out_events(
        self, request_id, writer, send_lock, aio_future, last_seq: int
    ):
        """Stream ring events to a watching client while its query runs.

        The ring is process-global — a watcher sees the progress of
        every running campaign (including the one it shares through
        coalescing, which is exactly the point).  Runs one final drain
        after the query resolves so no event is lost between the last
        poll and the reply.
        """
        bus = get_event_bus()
        if bus is None or bus.ring is None:
            return
        try:
            while True:
                done = aio_future.done()
                for event in bus.ring.snapshot():
                    seq = event.get("seq", 0)
                    if seq <= last_seq:
                        continue
                    last_seq = seq
                    await self._send(
                        writer,
                        send_lock,
                        {"id": request_id, "event": event},
                    )
                if done:
                    return
                await asyncio.sleep(EVENT_POLL_S)
        except (ConnectionResetError, OSError):
            pass  # watcher gone; the query reply path handles the rest
