"""SER-as-a-service: one engine API, two front-ends.

* :mod:`repro.service.protocol` — the query schema
  (:class:`QuerySpec`) and its canonicalization onto artifact-cache
  keys, plus the NDJSON wire format.
* :mod:`repro.service.engine` — :func:`build_flow` / :func:`run_query`
  (the orchestration core the CLI now drives) and
  :class:`CampaignEngine` (single-flight coalescing, memoization,
  admission control, per-tenant fair scheduling).
* :mod:`repro.service.daemon` — the asyncio socket server behind
  ``repro-ser serve``.
* :mod:`repro.service.client` — the blocking client behind
  ``repro-ser query``.
"""

from .client import ServiceClient
from .daemon import ServiceDaemon
from .engine import (
    AdmissionError,
    CampaignEngine,
    ExecutionOptions,
    ServiceError,
    build_flow,
    get_service_ledger,
    reset_service_ledger,
    run_query,
)
from .protocol import QueryError, QuerySpec

__all__ = [
    "AdmissionError",
    "CampaignEngine",
    "ExecutionOptions",
    "QueryError",
    "QuerySpec",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceError",
    "build_flow",
    "get_service_ledger",
    "reset_service_ledger",
    "run_query",
]
