"""The campaign engine: one orchestration core behind every front-end.

Historically the ``repro-ser`` CLI was the only way to reach the
execution substrate (warm pools, shared-memory payloads, journaled
resume, adaptive allocation): parse args, build a
:class:`~repro.core.SerFlow`, run, exit.  This module splits that
orchestration out so *any* front-end — the one-shot CLI, the
long-lived :mod:`repro.service.daemon`, a notebook — drives the same
three calls:

* :func:`build_flow` compiles a :class:`~repro.service.protocol.QuerySpec`
  plus :class:`ExecutionOptions` into a ready :class:`~repro.core.SerFlow`
  (the CLI's former private ``_make_flow``);
* :func:`run_query` executes one compiled query end-to-end (sweep +
  optional ECC/interleave analysis) and returns a JSON-safe result;
* :class:`CampaignEngine` serves *many* queries from one process:
  single-flight coalescing of identical in-flight requests (N equal
  queries -> 1 campaign), memoization of completed results, admission
  control over a bounded queue, and per-tenant round-robin scheduling
  over a bounded campaign budget.

The engine's concurrency primitive mirrors the artifact cache's
cross-process build lock (:class:`~repro.io.BuildLock`): in-process
requests coalesce on the canonical query key here; independent
*processes* racing the same artifact coalesce on the lock file in
:meth:`~repro.io.ArtifactCache.get_or_build`.  Together a query is
computed once per key no matter how many clients, connections, or
daemons ask.

Everything is observable through :mod:`repro.obs`: ``service.*``
counters (requests / coalesced / memo_hits / rejected / campaigns /
failures), the ``service.request`` and ``service.campaign`` timers
(exact p50/p99), queue-depth and in-flight gauges, one trace span per
request and campaign, and a per-served-campaign ledger surfaced in
the run manifest's ``service`` section.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ReproError
from ..obs import get_logger, get_registry, kv, span
from .protocol import QuerySpec

__all__ = [
    "AdmissionError",
    "CampaignEngine",
    "ExecutionOptions",
    "ServiceError",
    "build_flow",
    "get_service_ledger",
    "reset_service_ledger",
    "run_query",
]

_log = get_logger(__name__)


class ServiceError(ReproError):
    """A request the service could not serve."""


class AdmissionError(ServiceError):
    """Rejected at admission: the pending-campaign queue is full."""


@dataclass(frozen=True)
class ExecutionOptions:
    """How to run campaigns — never *what* they compute.

    Mirrors the :class:`~repro.core.SerFlow` execution knobs: all of
    these are results-invariant (bit-identical for any value), so they
    live outside :class:`~repro.service.protocol.QuerySpec` and never
    perturb canonical keys.
    """

    cache_dir: Optional[str] = None
    n_jobs: int = 1
    retry: Optional[object] = None  # a repro.parallel.RetryPolicy
    resume: bool = True
    warm_pool: Optional[bool] = None
    shm: Optional[bool] = None
    #: Array-compute backend (``None`` = process default; see
    #: :mod:`repro.backend`) and cross-campaign batch fusion for
    #: sweeps (:mod:`repro.ser.fusion`) -- results-invariant like the
    #: rest of the execution plane.
    backend: Optional[str] = None
    fuse: bool = False


def build_flow(spec: QuerySpec, options: Optional[ExecutionOptions] = None):
    """Compile one query into a ready :class:`~repro.core.SerFlow`.

    The single construction path shared by the CLI and the daemon:
    results (and artifact-cache keys) depend only on ``spec``; the
    execution plane comes from ``options``.
    """
    from ..core import SerFlow

    options = options if options is not None else ExecutionOptions()
    return SerFlow(
        spec.to_flow_config(),
        cache_dir=options.cache_dir,
        n_jobs=options.n_jobs,
        retry=options.retry,
        resume=options.resume,
        warm_pool=options.warm_pool,
        shm=options.shm,
        backend=options.backend,
        fuse=options.fuse,
    )


def run_query(spec: QuerySpec, flow=None, options=None) -> dict:
    """Execute one query end-to-end; returns a JSON-safe result dict.

    The sweep itself rides the flow's artifact cache (so repeated
    queries in any process are answered from disk); the optional
    ECC/interleave section folds the array's failing-pair offset
    statistics into uncorrectable-word rates per (particle, vdd) at
    the spectrum's peak-flux energy.
    """
    if flow is None:
        flow = build_flow(spec, options)
    with span("service.query", particles=",".join(spec.particles)):
        sweep = flow.sweep(
            particles=spec.particles, vdd_list=spec.vdd_list
        )
        cases = []
        for particle in sweep.particles():
            for vdd in sweep.vdd_values(particle):
                fit = sweep.get(particle, float(vdd))
                cases.append(
                    {
                        "particle": particle,
                        "vdd": float(vdd),
                        "fit_total": fit.fit_total,
                        "fit_seu": fit.fit_seu,
                        "fit_mbu": fit.fit_mbu,
                        "mbu_to_seu_ratio": fit.mbu_to_seu_ratio,
                        "degraded": bool(fit.degraded),
                    }
                )
        result = {
            "kind": "ser_result",
            "key": spec.canonical_key(flow.design),
            "cases": cases,
            "sweep": sweep.to_dict(),
            "degraded": bool(sweep.degraded),
        }
        if spec.ecc is not None:
            result["ecc"] = _ecc_analysis(spec, flow, sweep)
        return result


def _ecc_analysis(spec: QuerySpec, flow, sweep) -> List[dict]:
    """ECC/interleave word-failure rates riding on a finished sweep."""
    from ..physics import spectrum_for
    from ..reliability import DEC_TED, NO_ECC, SEC_DED, word_failure_rates

    scheme = {"none": NO_ECC, "SEC-DED": SEC_DED, "DEC-TED": DEC_TED}[spec.ecc]
    analyses = []
    for particle in sweep.particles():
        # pair statistics are collected at the spectrum's peak-flux
        # energy bin — the representative strike population
        spectrum = spectrum_for(particle)
        e_lo, e_hi = flow.config.energy_range_for(particle)
        bins = spectrum.make_bins(spec.n_energy_bins, e_lo, e_hi)
        peak = int(bins.integral_flux_per_cm2_s.argmax())
        energy = float(bins.representative_mev[peak])
        for vdd in sweep.vdd_values(particle):
            offsets = flow.pair_offsets(
                particle, float(vdd), energy, spec.ecc_pair_particles
            )
            analysis = word_failure_rates(
                sweep.get(particle, float(vdd)),
                offsets,
                scheme=scheme,
                interleave_distance=spec.interleave,
            )
            analyses.append(
                {
                    "particle": particle,
                    "vdd": float(vdd),
                    "scheme": analysis.scheme.name,
                    "interleave_distance": analysis.interleave_distance,
                    "raw_seu_rate": analysis.raw_seu_rate,
                    "raw_mbu_rate": analysis.raw_mbu_rate,
                    "uncorrectable_rate": analysis.uncorrectable_rate,
                    "same_word_pair_fraction": (
                        analysis.same_word_pair_fraction
                    ),
                    "correction_gain": analysis.correction_gain,
                    "pair_energy_mev": energy,
                }
            )
    return analyses


class ServiceLedger:
    """Process-wide record of served campaigns (manifest ``service``).

    Mirrors the convergence tracker's pattern: engines append one
    entry per campaign they run; :func:`~repro.obs.build_manifest`
    reads the summary at manifest time.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._campaigns: List[dict] = []

    def record(self, entry: dict):
        with self._lock:
            self._campaigns.append(dict(entry))

    def reset(self):
        with self._lock:
            self._campaigns = []

    def summary(self) -> List[dict]:
        with self._lock:
            return [dict(entry) for entry in self._campaigns]


_LEDGER = ServiceLedger()


def get_service_ledger() -> ServiceLedger:
    return _LEDGER


def reset_service_ledger():
    _LEDGER.reset()


class _Campaign:
    """One in-flight unit of work shared by every coalesced request."""

    __slots__ = (
        "key", "spec", "tenant", "future", "waiters",
        "submitted_at", "request_t0s",
    )

    def __init__(self, key: str, spec: QuerySpec, tenant: str):
        self.key = key
        self.spec = spec
        self.tenant = tenant
        self.future: Future = Future()
        self.waiters = 1
        self.submitted_at = time.monotonic()
        self.request_t0s: List[float] = [self.submitted_at]


class CampaignEngine:
    """Serve many SER queries from one process, fairly and only once each.

    Parameters
    ----------
    options:
        Execution plane for every campaign (cache dir, worker budget
        per campaign, retry/resume, warm-pool/shm switches).
    max_concurrent:
        Campaigns running at once; with ``options.n_jobs`` workers
        each this bounds the total worker budget.
    max_pending:
        Admission control — campaigns (not requests: coalesced
        requests are free) allowed to *wait* for a running slot, on
        top of the slots themselves.  Submissions past the bound raise
        :class:`AdmissionError` immediately instead of growing an
        unbounded queue (``0`` = reject whenever every slot is busy).
    memo_size:
        Completed results memoized in-process (LRU).  Degraded results
        are never memoized — the next request recomputes at full
        statistics, matching the artifact cache's discipline.
    runner:
        The campaign executor, ``spec -> result dict``; defaults to
        :func:`run_query` under ``options``.  Tests inject fakes here.
    design:
        Cell design the canonical keys (and default runner) bind to.
    """

    def __init__(
        self,
        options: Optional[ExecutionOptions] = None,
        max_concurrent: int = 1,
        max_pending: int = 16,
        memo_size: int = 128,
        runner=None,
        design=None,
    ):
        from ..sram import SramCellDesign

        if max_concurrent < 1:
            raise ServiceError("max_concurrent must be >= 1")
        if max_pending < 0:
            raise ServiceError("max_pending cannot be negative")
        self.options = options if options is not None else ExecutionOptions()
        self.max_concurrent = int(max_concurrent)
        self.max_pending = int(max_pending)
        self.memo_size = int(memo_size)
        self.design = design if design is not None else SramCellDesign()
        self._runner = runner if runner is not None else self._run
        self._memo: "OrderedDict[str, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._inflight: Dict[str, _Campaign] = {}
        self._queues: Dict[str, deque] = {}  # tenant -> pending campaigns
        self._tenant_rr: deque = deque()  # round-robin order of tenants
        self._running = 0
        self._pending = 0
        self._served = 0
        self._stopped = False
        self._threads: List[threading.Thread] = []
        self._scheduler = threading.Thread(
            target=self._schedule_loop, name="ser-engine-scheduler",
            daemon=True,
        )
        self._scheduler.start()

    # -- submission ------------------------------------------------------------

    def submit(self, spec: QuerySpec, tenant: str = "default") -> Future:
        """Enqueue one query; returns the future of its result dict.

        Identical in-flight queries (same canonical key) coalesce onto
        one campaign regardless of tenant; completed keys are answered
        from the memo without touching the queue.  The future resolves
        with the result dict (its ``source`` field says which path
        served it) or raises the campaign's error.
        """
        metrics = get_registry()
        metrics.counter("service.requests").inc()
        t0 = time.monotonic()
        key = spec.canonical_key(self.design)
        with self._lock:
            if self._stopped:
                raise ServiceError("engine is shut down")
            memo = self._memo_get(key)
            if memo is not None:
                metrics.counter("service.memo_hits").inc()
                metrics.timer("service.request").observe(
                    time.monotonic() - t0
                )
                future: Future = Future()
                future.set_result(dict(memo, source="memo"))
                return future
            campaign = self._inflight.get(key)
            if campaign is not None:
                metrics.counter("service.coalesced").inc()
                campaign.waiters += 1
                campaign.request_t0s.append(t0)
                _log.debug(
                    "coalesced request %s",
                    kv(key=key, waiters=campaign.waiters, tenant=tenant),
                )
                return campaign.future
            # the pending bound applies to campaigns that must *wait*:
            # the scheduler drains pending into free running slots
            # asynchronously, so a submission racing an idle slot is
            # admitted even while it is still (briefly) queued.
            free_slots = max(0, self.max_concurrent - self._running)
            if self._pending >= self.max_pending + free_slots:
                metrics.counter("service.rejected").inc()
                raise AdmissionError(
                    f"admission queue full ({self._pending} waiting "
                    f"campaigns >= {self.max_pending} allowed)"
                )
            campaign = _Campaign(key, spec, tenant)
            campaign.request_t0s[0] = t0
            self._inflight[key] = campaign
            queue = self._queues.get(tenant)
            if queue is None:
                queue = self._queues[tenant] = deque()
                self._tenant_rr.append(tenant)
            queue.append(campaign)
            self._pending += 1
            self._gauges_locked()
            self._wake.notify_all()
            return campaign.future

    def _memo_get(self, key: str) -> Optional[dict]:
        result = self._memo.get(key)
        if result is not None:
            self._memo.move_to_end(key)
        return result

    def _memo_put(self, key: str, result: dict):
        self._memo[key] = result
        self._memo.move_to_end(key)
        while len(self._memo) > self.memo_size:
            self._memo.popitem(last=False)

    # -- scheduling ------------------------------------------------------------

    def _schedule_loop(self):
        while True:
            with self._wake:
                while not self._stopped and (
                    self._pending == 0 or self._running >= self.max_concurrent
                ):
                    self._wake.wait()
                if self._stopped:
                    return
                campaign = self._next_campaign_locked()
                if campaign is None:
                    continue
                self._pending -= 1
                self._running += 1
                self._gauges_locked()
            worker = threading.Thread(
                target=self._execute,
                args=(campaign,),
                name=f"ser-campaign-{campaign.key[:8]}",
                daemon=True,
            )
            worker.start()
            with self._lock:
                self._threads.append(worker)
                self._threads = [
                    t for t in self._threads if t.is_alive()
                ]

    def _next_campaign_locked(self) -> Optional[_Campaign]:
        """Round-robin over tenants with pending campaigns (fairness).

        One campaign per tenant per turn: a tenant that floods the
        queue only delays itself — the rotation hands each tenant the
        next slot in order.
        """
        for _ in range(len(self._tenant_rr)):
            tenant = self._tenant_rr[0]
            self._tenant_rr.rotate(-1)
            queue = self._queues.get(tenant)
            if queue:
                return queue.popleft()
        return None

    def _execute(self, campaign: _Campaign):
        metrics = get_registry()
        source = "campaign"
        error: Optional[BaseException] = None
        t0 = time.monotonic()
        try:
            with span(
                "service.campaign",
                key=campaign.key,
                tenant=campaign.tenant,
                particles=",".join(campaign.spec.particles),
            ):
                result = self._runner(campaign.spec)
        except BaseException as exc:  # propagate to every waiter
            error = exc
        wall_s = time.monotonic() - t0
        with self._lock:
            self._inflight.pop(campaign.key, None)
            self._running -= 1
            self._served += 1
            waiters = campaign.waiters
            if error is None and isinstance(result, dict):
                if not result.get("degraded"):
                    self._memo_put(campaign.key, result)
            self._gauges_locked()
            self._wake.notify_all()
        metrics.counter("service.campaigns").inc()
        metrics.timer("service.campaign").observe(wall_s)
        for request_t0 in campaign.request_t0s:
            metrics.timer("service.request").observe(
                time.monotonic() - request_t0
            )
        entry = {
            "key": campaign.key,
            "tenant": campaign.tenant,
            "particles": list(campaign.spec.particles),
            "vdds": list(campaign.spec.vdd_list),
            "requests": waiters,
            "wall_s": wall_s,
            "ok": error is None,
        }
        get_service_ledger().record(entry)
        if error is not None:
            metrics.counter("service.failures").inc()
            _log.warning(
                "campaign failed %s", kv(key=campaign.key, error=error)
            )
            self._resolve(campaign, error=error)
        else:
            _log.info(
                "campaign served %s",
                kv(key=campaign.key, requests=waiters, wall_s=f"{wall_s:.2f}"),
            )
            self._resolve(campaign, result=dict(result, source=source))

    @staticmethod
    def _resolve(campaign: _Campaign, result=None, error=None):
        """Resolve the shared future, tolerating a front-end cancel.

        The future is handed to arbitrary front-ends; one of them
        cancelling it (the engine never marks it running, so
        ``cancel()`` succeeds while queued) must not crash the worker
        thread — the campaign's side effects (memo, artifact cache,
        ledger) are already committed either way.
        """
        try:
            if error is not None:
                campaign.future.set_exception(error)
            else:
                campaign.future.set_result(result)
        except InvalidStateError:
            _log.warning(
                "campaign future was cancelled by a front-end %s",
                kv(key=campaign.key),
            )

    def _run(self, spec: QuerySpec) -> dict:
        return run_query(spec, options=self.options)

    def _gauges_locked(self):
        metrics = get_registry()
        metrics.gauge("service.queue_depth").set(float(self._pending))
        metrics.gauge("service.inflight").set(float(self._running))

    # -- introspection / lifecycle ---------------------------------------------

    def stats(self) -> dict:
        """Live engine state plus the ``service.*`` metric digest."""
        metrics = get_registry()
        snapshot = metrics.snapshot() if metrics.enabled else {}
        counters = snapshot.get("counters", {})
        timers = snapshot.get("timers", {})
        request = timers.get("service.request", {})
        with self._lock:
            state = {
                "pending": self._pending,
                "running": self._running,
                "inflight_keys": sorted(self._inflight),
                "served": self._served,
                "tenants": sorted(self._queues),
                "memo_entries": len(self._memo),
            }
        return {
            **state,
            "requests": counters.get("service.requests", 0),
            "coalesced": counters.get("service.coalesced", 0),
            "memo_hits": counters.get("service.memo_hits", 0),
            "rejected": counters.get("service.rejected", 0),
            "campaigns": counters.get("service.campaigns", 0),
            "failures": counters.get("service.failures", 0),
            "request_p50_s": request.get("p50_s", 0.0),
            "request_p99_s": request.get("p99_s", 0.0),
        }

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Block until no campaign is pending or running."""
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        with self._wake:
            while self._pending or self._running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._wake.wait(timeout=remaining)
        return True

    def shutdown(self, wait: bool = True, timeout_s: Optional[float] = None):
        """Stop admitting; optionally wait for in-flight campaigns.

        Pending (not yet started) campaigns are failed with
        :class:`ServiceError` so their waiters unblock.
        """
        with self._wake:
            if self._stopped:
                return
            self._stopped = True
            abandoned = []
            for queue in self._queues.values():
                abandoned.extend(queue)
                queue.clear()
            self._pending = 0
            for campaign in abandoned:
                self._inflight.pop(campaign.key, None)
            self._gauges_locked()
            self._wake.notify_all()
        for campaign in abandoned:
            campaign.future.set_exception(
                ServiceError("engine shut down before campaign started")
            )
        if wait:
            deadline = (
                time.monotonic() + timeout_s
                if timeout_s is not None
                else None
            )
            for thread in list(self._threads):
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                thread.join(timeout=remaining)
