"""Blocking client for the SER-service daemon.

The consumption side of :mod:`repro.service.daemon`: open a socket,
send one newline-delimited JSON request per call, read lines until
the response with the matching ``id`` arrives.  Progress lines (from
``watch=True``) are handed to an ``on_event`` callback as they
stream.  Used by ``repro-ser query`` and the test/CI harnesses; no
asyncio on this side — a plain socket keeps the client usable from
any context (shell loops, notebooks, other services).
"""

from __future__ import annotations

import itertools
import socket
from typing import Callable, Optional

from .engine import ServiceError
from .protocol import QuerySpec, decode_line, encode_line

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to a running daemon over its unix or TCP socket."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ):
        if socket_path is None and port is None:
            raise ServiceError("need a unix socket path or a TCP port")
        self.socket_path = socket_path
        self.host = host if host is not None else "127.0.0.1"
        self.port = port
        self.timeout_s = timeout_s
        self._ids = itertools.count(1)
        self._sock: Optional[socket.socket] = None
        self._recv_buffer = b""

    # -- plumbing --------------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout_s)
            sock.connect(self.socket_path)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
        self._sock = sock
        return sock

    def close(self):
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._recv_buffer = b""

    def __enter__(self):
        self._connect()
        return self

    def __exit__(self, *exc_info):
        self.close()

    def _read_line(self) -> bytes:
        sock = self._connect()
        while b"\n" not in self._recv_buffer:
            chunk = sock.recv(65536)
            if not chunk:
                raise ServiceError("server closed the connection")
            self._recv_buffer += chunk
        line, self._recv_buffer = self._recv_buffer.split(b"\n", 1)
        return line

    def _roundtrip(
        self,
        message: dict,
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        request_id = next(self._ids)
        message = dict(message, id=request_id)
        sock = self._connect()
        sock.sendall(encode_line(message))
        while True:
            reply = decode_line(self._read_line())
            if reply.get("id") != request_id:
                continue  # a pipelined sibling's line; not ours
            if "event" in reply:
                if on_event is not None:
                    on_event(reply["event"])
                continue
            return reply

    # -- operations ------------------------------------------------------------

    def query(
        self,
        spec,
        tenant: str = "default",
        watch: bool = False,
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        """Run one SER query; returns the full response envelope.

        ``spec`` is a :class:`~repro.service.protocol.QuerySpec` or a
        plain dict of its fields.  Raises :class:`ServiceError` on a
        rejection or campaign failure (the error code is in the
        message).
        """
        if isinstance(spec, QuerySpec):
            spec = spec.to_dict()
        reply = self._roundtrip(
            {
                "op": "query",
                "tenant": tenant,
                "spec": spec,
                "watch": bool(watch or on_event is not None),
            },
            on_event=on_event,
        )
        if not reply.get("ok"):
            raise ServiceError(
                f"query {reply.get('code', 'failed')}: {reply.get('error')}"
            )
        return reply

    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"}).get("pong"))

    def stats(self) -> dict:
        reply = self._roundtrip({"op": "stats"})
        if not reply.get("ok"):
            raise ServiceError(f"stats failed: {reply.get('error')}")
        return reply["stats"]

    def shutdown(self) -> bool:
        reply = self._roundtrip({"op": "shutdown"})
        return bool(reply.get("stopping"))
