"""Material description records for stopping-power and ionization models.

A :class:`Material` carries the handful of bulk parameters the
device-level physics needs: effective atomic number/weight, density,
mean excitation energy (the ``I`` of Bethe-Bloch) and the mean energy
required to create one electron-hole pair (for semiconductors and
insulators where carrier generation matters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigError


@dataclass(frozen=True)
class Material:
    """Bulk material parameters.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"Si"``.
    atomic_number:
        Effective atomic number Z (electrons per atom / formula unit).
    atomic_weight:
        Effective atomic weight A [g/mol] per formula unit carrying
        ``atomic_number`` electrons, so Z/A is the electron density
        parameter used by Bethe-Bloch.
    density_g_cm3:
        Mass density [g/cm^3].
    mean_excitation_ev:
        Mean excitation energy I [eV] of the Bethe formula.
    pair_energy_ev:
        Mean energy to create one electron-hole pair [eV]; ``None``
        for materials where generated carriers are never collected
        (structural/packaging materials).
    collects_charge:
        Whether energy deposited in this material produces carriers
        that can contribute to a transient current.  In the paper's SOI
        model only the fin silicon collects charge (the BOX blocks
        substrate diffusion charge).
    """

    name: str
    atomic_number: float
    atomic_weight: float
    density_g_cm3: float
    mean_excitation_ev: float
    pair_energy_ev: Optional[float] = None
    collects_charge: bool = False

    def __post_init__(self):
        if self.atomic_number <= 0 or self.atomic_weight <= 0:
            raise ConfigError(
                f"material {self.name!r}: Z and A must be positive "
                f"(got Z={self.atomic_number}, A={self.atomic_weight})"
            )
        if self.density_g_cm3 <= 0:
            raise ConfigError(
                f"material {self.name!r}: density must be positive "
                f"(got {self.density_g_cm3})"
            )
        if self.mean_excitation_ev <= 0:
            raise ConfigError(
                f"material {self.name!r}: mean excitation energy must be "
                f"positive (got {self.mean_excitation_ev})"
            )
        if self.collects_charge and self.pair_energy_ev is None:
            raise ConfigError(
                f"material {self.name!r}: a charge-collecting material "
                "needs a pair_energy_ev"
            )

    @property
    def z_over_a(self) -> float:
        """Z/A [mol/g] -- the electron-density factor of Bethe-Bloch."""
        return self.atomic_number / self.atomic_weight

    def electrons_per_cm3(self) -> float:
        """Electron number density [1/cm^3]."""
        from ..constants import AVOGADRO

        return AVOGADRO * self.z_over_a * self.density_g_cm3
