"""Material parameter records and the built-in material library."""

from .library import (
    BEOL_DIELECTRIC,
    MATERIALS,
    SILICON,
    SILICON_DIOXIDE,
    SUBSTRATE_SILICON,
    get_material,
)
from .material import Material

__all__ = [
    "Material",
    "SILICON",
    "SILICON_DIOXIDE",
    "SUBSTRATE_SILICON",
    "BEOL_DIELECTRIC",
    "MATERIALS",
    "get_material",
]
