"""Pre-defined materials used by the SOI FinFET device stack.

Parameter sources: densities and mean excitation energies follow the
standard NIST/ICRU-37 values; the silicon electron-hole pair energy is
the 3.6 eV the paper quotes.
"""

from __future__ import annotations

from ..constants import SILICON_PAIR_ENERGY_EV
from .material import Material

#: Crystalline silicon -- the fin body.  The only material in the SOI
#: stack whose deposited energy converts into collected charge.
SILICON = Material(
    name="Si",
    atomic_number=14.0,
    atomic_weight=28.0855,
    density_g_cm3=2.329,
    mean_excitation_ev=173.0,
    pair_energy_ev=SILICON_PAIR_ENERGY_EV,
    collects_charge=True,
)

#: Buried oxide (BOX) and gate oxide.  SiO2 formula unit: Z=30, A=60.08.
SILICON_DIOXIDE = Material(
    name="SiO2",
    atomic_number=30.0,
    atomic_weight=60.0843,
    density_g_cm3=2.196,
    mean_excitation_ev=139.2,
    pair_energy_ev=17.0,
    collects_charge=False,
)

#: Bulk silicon substrate below the BOX.  Same physics as the fin
#: silicon but generated carriers never reach the fin (the BOX blocks
#: the diffusion path -- paper Section 3.3), so it does not collect.
SUBSTRATE_SILICON = Material(
    name="Si-substrate",
    atomic_number=14.0,
    atomic_weight=28.0855,
    density_g_cm3=2.329,
    mean_excitation_ev=173.0,
    pair_energy_ev=SILICON_PAIR_ENERGY_EV,
    collects_charge=False,
)

#: Back-end-of-line dielectric approximated as SiO2 with reduced density
#: (metal fill ignored; only matters as an energy-degrading overburden).
BEOL_DIELECTRIC = Material(
    name="BEOL",
    atomic_number=30.0,
    atomic_weight=60.0843,
    density_g_cm3=1.8,
    mean_excitation_ev=139.2,
    pair_energy_ev=None,
    collects_charge=False,
)

#: Registry by name for serialization round-trips.
MATERIALS = {
    mat.name: mat
    for mat in (SILICON, SILICON_DIOXIDE, SUBSTRATE_SILICON, BEOL_DIELECTRIC)
}


def get_material(name: str) -> Material:
    """Look a material up by name.

    Raises
    ------
    KeyError
        If the material is not registered.
    """
    return MATERIALS[name]
