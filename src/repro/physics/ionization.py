"""Conversion of deposited energy into electron-hole pairs.

The paper's rule: "for every 3.6 eV of particle energy lost in silicon,
an electron-hole pair is generated".  On top of the mean we apply Fano
statistics -- the pair count fluctuates with variance ``F * n_mean``
(F = 0.115 in silicon), sampled as a clamped Gaussian (excellent for
the n >> 1 counts relevant here).
"""

from __future__ import annotations

import numpy as np

from ..constants import SILICON_FANO_FACTOR, SILICON_PAIR_ENERGY_EV
from ..errors import PhysicsError
from ..materials import SILICON, Material


def mean_pairs(deposit_kev, material: Material = SILICON):
    """Mean electron-hole pair count for a deposit [keV] (vectorized)."""
    deposit = np.asarray(deposit_kev, dtype=np.float64)
    if np.any(deposit < 0):
        raise PhysicsError("energy deposit must be non-negative")
    pair_energy = material.pair_energy_ev
    if pair_energy is None:
        raise PhysicsError(
            f"material {material.name!r} has no pair-creation energy"
        )
    return deposit * 1.0e3 / pair_energy


def sample_pairs(
    deposit_kev,
    rng: np.random.Generator,
    material: Material = SILICON,
    fano_factor: float = SILICON_FANO_FACTOR,
):
    """Sample pair counts with Fano statistics (vectorized, integer >= 0)."""
    mean = mean_pairs(deposit_kev, material)
    sigma = np.sqrt(fano_factor * mean)
    counts = mean + sigma * rng.standard_normal(np.shape(mean))
    return np.maximum(np.rint(counts), 0.0)


def pairs_to_charge_coulomb(pair_count):
    """Collected charge [C] for a pair count (one carrier type collected)."""
    from ..constants import ELEMENTARY_CHARGE_C

    return np.asarray(pair_count, dtype=np.float64) * ELEMENTARY_CHARGE_C


def charge_to_pairs(charge_coulomb):
    """Inverse of :func:`pairs_to_charge_coulomb`."""
    from ..constants import ELEMENTARY_CHARGE_C

    return np.asarray(charge_coulomb, dtype=np.float64) / ELEMENTARY_CHARGE_C
