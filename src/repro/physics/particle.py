"""Particle species and relativistic kinematics.

The paper analyses the two directly-ionizing ground-level species:
low-energy protons (atmospheric) and alpha particles (terrestrial,
from package U/Th contamination).  Neutrons ionize only indirectly and
are explicitly out of scope (the paper's future work).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import (
    ALPHA_REST_ENERGY_MEV,
    PROTON_REST_ENERGY_MEV,
    SPEED_OF_LIGHT_CM_PER_S,
)
from ..errors import PhysicsError


@dataclass(frozen=True)
class ParticleType:
    """An ion species.

    Attributes
    ----------
    name:
        Identifier (``"proton"`` / ``"alpha"``).
    charge_number:
        Bare nuclear charge z (1 for proton, 2 for alpha).
    rest_energy_mev:
        Rest mass energy m c^2 [MeV].
    """

    name: str
    charge_number: int
    rest_energy_mev: float

    def gamma(self, kinetic_energy_mev):
        """Lorentz factor for a kinetic energy [MeV] (vectorized)."""
        energy = np.asarray(kinetic_energy_mev, dtype=np.float64)
        if np.any(energy < 0):
            raise PhysicsError("kinetic energy must be non-negative")
        return 1.0 + energy / self.rest_energy_mev

    def beta_squared(self, kinetic_energy_mev):
        """v^2/c^2 for a kinetic energy [MeV] (vectorized)."""
        gamma = self.gamma(kinetic_energy_mev)
        return 1.0 - 1.0 / (gamma * gamma)

    def beta(self, kinetic_energy_mev):
        """v/c for a kinetic energy [MeV] (vectorized)."""
        return np.sqrt(self.beta_squared(kinetic_energy_mev))

    def speed_cm_per_s(self, kinetic_energy_mev):
        """Particle speed [cm/s]."""
        return self.beta(kinetic_energy_mev) * SPEED_OF_LIGHT_CM_PER_S

    def passage_time_s(self, kinetic_energy_mev, path_nm):
        """Time to traverse ``path_nm`` nanometres (paper eq. 1)."""
        from ..units import nm_to_cm

        speed = self.speed_cm_per_s(kinetic_energy_mev)
        return nm_to_cm(np.asarray(path_nm, dtype=np.float64)) / speed

    def kinetic_from_beta(self, beta):
        """Inverse kinematics: kinetic energy [MeV] from v/c."""
        beta = np.asarray(beta, dtype=np.float64)
        if np.any((beta < 0) | (beta >= 1)):
            raise PhysicsError("beta must lie in [0, 1)")
        gamma = 1.0 / np.sqrt(1.0 - beta * beta)
        return (gamma - 1.0) * self.rest_energy_mev


PROTON = ParticleType(
    name="proton", charge_number=1, rest_energy_mev=PROTON_REST_ENERGY_MEV
)

ALPHA = ParticleType(
    name="alpha", charge_number=2, rest_energy_mev=ALPHA_REST_ENERGY_MEV
)

_PARTICLES = {"proton": PROTON, "alpha": ALPHA}


def get_particle(name: str) -> ParticleType:
    """Look up a particle by name (``"proton"`` or ``"alpha"``)."""
    try:
        return _PARTICLES[name]
    except KeyError:
        raise PhysicsError(
            f"unknown particle {name!r}; expected one of {sorted(_PARTICLES)}"
        ) from None
