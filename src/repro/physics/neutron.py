"""Neutron spectrum and neutron-silicon interaction model.

The paper's declared future work: "The study of neutron radiation SER,
which causes indirect ionization of materials".  This module provides
the physics for that extension:

* :class:`SeaLevelNeutronSpectrum` -- the ground-level neutron flux
  (JEDEC JESD89A / Gordon et al. shape): ~13 n/(cm^2 h) above 1 MeV
  with the evaporation (~1-2 MeV) and cascade (~100 MeV) humps,
  parametrized as log-log anchors like the proton spectrum.
* :class:`NeutronInteractionModel` -- neutrons deposit no charge
  directly; a strike matters only when a nuclear reaction inside (or
  immediately around) the sensitive silicon produces a charged
  secondary.  We model the dominant channels at a burst-generation
  level of fidelity:

  - **elastic Si recoil** (all energies): recoil energy up to
    ``4 A/(A+1)^2 ~ 13.3%`` of the neutron energy, sampled uniformly
    (isotropic CM scattering);
  - **(n, alpha) / (n, p)** (above ~4 / ~8 MeV): evaporation-spectrum
    secondaries of a few MeV;
  - **heavy spallation fragments** (above ~20 MeV): Mg/Al/Na fragments
    treated as high-LET recoils.

  Secondary LETs: alphas and protons reuse the library's stopping
  model; Si-class recoils use a dedicated LET table (TRIM-order
  values -- recoil LET in silicon peaks near ~3 keV/nm at ~1-5 MeV).

The fidelity target mirrors the rest of the library: correct orders of
magnitude and correct *shape* (SOI FinFETs' tiny collection volume
makes the neutron-reaction probability per crossing ~1e-7, which is
why FinFET neutron SER is far below planar -- e.g. Fang & Oates [12]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ConfigError, PhysicsError
from ..materials import SILICON
from .particle import ALPHA, PROTON
from .spectra import _SpectrumBase
from .stopping import let_kev_per_nm

#: Silicon number density [1/cm^3].
_SILICON_ATOMS_PER_CM3 = 4.996e22

#: Maximum elastic energy-transfer fraction to a Si-28 recoil.
ELASTIC_MAX_TRANSFER = 4.0 * 28.0855 / (1.0 + 28.0855) ** 2  # ~0.133

#: Secondary species codes.
SECONDARY_SI_RECOIL = 0
SECONDARY_ALPHA = 1
SECONDARY_PROTON = 2
SECONDARY_FRAGMENT = 3


class SeaLevelNeutronSpectrum(_SpectrumBase):
    """Ground-level differential neutron flux [1/(cm^2 s MeV)].

    Anchors follow the JESD89A reference spectrum (NYC, sea level,
    outdoors); the integral above 1 MeV is ~13 n/(cm^2 h) ~ 3.6e-3
    n/(cm^2 s).
    """

    _ANCHORS_E_MEV = np.array(
        [0.1, 0.3, 1.0, 2.0, 5.0, 10.0, 30.0, 100.0, 300.0, 1000.0]
    )
    # differential flux anchors [1/(cm^2 s MeV)] -- 1/E-ish with the
    # evaporation hump near 1-2 MeV and the cascade hump near 100 MeV
    _ANCHORS_FLUX = np.array(
        [2.7e-3, 1.1e-3, 5.9e-4, 4.1e-4, 1.4e-4, 5.9e-5, 1.6e-5, 6.3e-6, 1.1e-6, 9.0e-8]
    )

    e_min_mev = 0.1
    e_max_mev = 1000.0

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ConfigError("spectrum scale must be positive")
        self.scale = float(scale)
        self._log_e = np.log(self._ANCHORS_E_MEV)
        self._log_f = np.log(self._ANCHORS_FLUX)

    def differential_flux(self, energy_mev):
        """Differential through-surface flux [1/(cm^2 s MeV)]."""
        energy = np.asarray(energy_mev, dtype=np.float64)
        if np.any(energy <= 0):
            raise PhysicsError("energy must be positive")
        log_flux = np.interp(np.log(energy), self._log_e, self._log_f)
        result = self.scale * np.exp(log_flux)
        in_range = (energy >= self.e_min_mev) & (energy <= self.e_max_mev)
        return np.where(in_range, result, 0.0)


#: LET of Si-class recoils in silicon [keV/nm] vs recoil energy [MeV]
#: (TRIM-order magnitudes: recoil LET rises to ~3 keV/nm by a few MeV,
#: then flattens/declines; dominated by nuclear + electronic stopping).
_SI_RECOIL_E_MEV = np.array([0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0])
_SI_RECOIL_LET_KEV_NM = np.array([0.45, 0.8, 1.3, 1.9, 2.6, 3.1, 2.8, 2.2])


def si_recoil_let_kev_per_nm(energy_mev):
    """LET [keV/nm] of a silicon recoil at a given energy (vectorized)."""
    energy = np.asarray(energy_mev, dtype=np.float64)
    if np.any(energy <= 0):
        raise PhysicsError("recoil energy must be positive")
    return np.interp(
        np.log(energy),
        np.log(_SI_RECOIL_E_MEV),
        _SI_RECOIL_LET_KEV_NM,
    )


@dataclass(frozen=True)
class NeutronInteractionModel:
    """Reaction probabilities and secondary sampling for n + Si.

    Attributes
    ----------
    sigma_elastic_barn / sigma_n_alpha_barn / sigma_n_p_barn /
    sigma_spallation_barn:
        Channel cross sections [barn] at their plateau; simple energy
        thresholds gate the inelastic channels.  Values are
        ENDF-plateau order of magnitude (elastic ~2 b, (n,alpha) ~0.15 b
        above ~6 MeV, (n,p) ~0.1 b above ~8 MeV, spallation ~0.4 b
        above ~20 MeV).
    """

    sigma_elastic_barn: float = 2.0
    sigma_n_alpha_barn: float = 0.15
    sigma_n_p_barn: float = 0.10
    sigma_spallation_barn: float = 0.40
    threshold_n_alpha_mev: float = 4.0
    threshold_n_p_mev: float = 8.0
    threshold_spallation_mev: float = 20.0

    def channel_cross_sections_cm2(self, energy_mev) -> np.ndarray:
        """Per-channel cross sections [cm^2], shape ``(n, 4)``.

        Channel order: (Si recoil, alpha, proton, fragment).
        """
        energy = np.atleast_1d(np.asarray(energy_mev, dtype=np.float64))
        barn = 1.0e-24
        sigma = np.zeros((len(energy), 4), dtype=np.float64)
        sigma[:, SECONDARY_SI_RECOIL] = self.sigma_elastic_barn * barn
        sigma[:, SECONDARY_ALPHA] = np.where(
            energy >= self.threshold_n_alpha_mev,
            self.sigma_n_alpha_barn * barn,
            0.0,
        )
        sigma[:, SECONDARY_PROTON] = np.where(
            energy >= self.threshold_n_p_mev, self.sigma_n_p_barn * barn, 0.0
        )
        sigma[:, SECONDARY_FRAGMENT] = np.where(
            energy >= self.threshold_spallation_mev,
            self.sigma_spallation_barn * barn,
            0.0,
        )
        return sigma

    def reaction_probability(self, energy_mev, chord_nm) -> np.ndarray:
        """P(any reaction) for chords [nm] at neutron energies [MeV]."""
        sigma_total = self.channel_cross_sections_cm2(energy_mev).sum(axis=1)
        chord_cm = np.atleast_1d(np.asarray(chord_nm, dtype=np.float64)) * 1e-7
        # thin-target limit: P = n * sigma * l  (P ~ 1e-7 per fin)
        return _SILICON_ATOMS_PER_CM3 * sigma_total * chord_cm

    def sample_secondaries(
        self, energy_mev: float, n: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample ``n`` reaction outcomes at one neutron energy.

        Returns
        -------
        (species, energy_mev):
            Channel codes and secondary kinetic energies [MeV].
        """
        if n < 1:
            raise ConfigError("need at least one secondary")
        sigma = self.channel_cross_sections_cm2(energy_mev)[0]
        total = sigma.sum()
        if total <= 0:
            raise PhysicsError("no open reaction channel at this energy")
        probs = sigma / total
        species = rng.choice(4, size=n, p=probs)

        energies = np.empty(n, dtype=np.float64)
        u = rng.uniform(0.0, 1.0, size=n)
        # elastic: isotropic CM -> recoil energy uniform on
        # [0, max_transfer * E]
        recoil = species == SECONDARY_SI_RECOIL
        energies[recoil] = (
            u[recoil] * ELASTIC_MAX_TRANSFER * energy_mev
        )
        # (n, alpha) / (n, p): evaporation spectrum ~ few MeV, capped by
        # the available energy above threshold
        for code, mean_mev, threshold in (
            (SECONDARY_ALPHA, 2.5, self.threshold_n_alpha_mev),
            (SECONDARY_PROTON, 3.0, self.threshold_n_p_mev),
        ):
            mask = species == code
            if np.any(mask):
                available = max(energy_mev - threshold * 0.5, 0.1)
                raw = rng.exponential(mean_mev, size=int(mask.sum()))
                energies[mask] = np.minimum(raw + 0.1, available)
        # spallation fragments: a few MeV heavy ion
        frag = species == SECONDARY_FRAGMENT
        if np.any(frag):
            energies[frag] = np.minimum(
                rng.exponential(4.0, size=int(frag.sum())) + 0.5,
                0.5 * energy_mev,
            )
        return species, np.maximum(energies, 1.0e-3)

    def secondary_let_kev_per_nm(self, species: np.ndarray, energy_mev: np.ndarray) -> np.ndarray:
        """LET [keV/nm] of sampled secondaries (vectorized)."""
        species = np.asarray(species)
        energy = np.asarray(energy_mev, dtype=np.float64)
        let = np.zeros_like(energy)
        recoil_like = (species == SECONDARY_SI_RECOIL) | (
            species == SECONDARY_FRAGMENT
        )
        if np.any(recoil_like):
            let[recoil_like] = si_recoil_let_kev_per_nm(energy[recoil_like])
        alpha_mask = species == SECONDARY_ALPHA
        if np.any(alpha_mask):
            let[alpha_mask] = let_kev_per_nm(ALPHA, energy[alpha_mask], SILICON)
        proton_mask = species == SECONDARY_PROTON
        if np.any(proton_mask):
            let[proton_mask] = let_kev_per_nm(PROTON, energy[proton_mask], SILICON)
        return let
