"""Particle physics: kinematics, stopping power, straggling, ionization,
angular sampling, and ground-level flux spectra."""

from .ionization import (
    charge_to_pairs,
    mean_pairs,
    pairs_to_charge_coulomb,
    sample_pairs,
)
from .neutron import (
    NeutronInteractionModel,
    SeaLevelNeutronSpectrum,
    si_recoil_let_kev_per_nm,
)
from .particle import ALPHA, PROTON, ParticleType, get_particle
from .sampling import (
    DIRECTION_LAWS,
    sample_directions,
    sample_positions_on_plane,
    sample_rays,
)
from .spectra import (
    ALPHA_EMISSION_RATE_PER_CM2_H,
    AlphaEmissionSpectrum,
    EnergyBins,
    SeaLevelProtonSpectrum,
    spectrum_for,
)
from .stopping import (
    bragg_peak_energy_mev,
    effective_charge,
    let_kev_per_nm,
    linear_stopping_power_mev_cm,
    mass_stopping_power,
    mean_chord_deposit_kev,
    proton_bethe_mev_cm2_g,
)
from .straggling import bohr_variance_mev2, sample_deposits_kev

__all__ = [
    "ParticleType",
    "PROTON",
    "ALPHA",
    "get_particle",
    "mass_stopping_power",
    "linear_stopping_power_mev_cm",
    "let_kev_per_nm",
    "proton_bethe_mev_cm2_g",
    "effective_charge",
    "bragg_peak_energy_mev",
    "mean_chord_deposit_kev",
    "bohr_variance_mev2",
    "sample_deposits_kev",
    "mean_pairs",
    "sample_pairs",
    "pairs_to_charge_coulomb",
    "charge_to_pairs",
    "sample_directions",
    "sample_positions_on_plane",
    "sample_rays",
    "DIRECTION_LAWS",
    "SeaLevelProtonSpectrum",
    "AlphaEmissionSpectrum",
    "SeaLevelNeutronSpectrum",
    "NeutronInteractionModel",
    "si_recoil_let_kev_per_nm",
    "EnergyBins",
    "spectrum_for",
    "ALPHA_EMISSION_RATE_PER_CM2_H",
]
