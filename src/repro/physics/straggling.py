"""Energy-loss straggling for thin-layer traversals.

A particle crossing a nanometre-scale chord deposits a *fluctuating*
amount of energy around the thin-layer mean ``dE/dx * chord``.  We use
the Bohr model: Gaussian fluctuations with variance

    Omega^2 [MeV^2] = 0.1569 * z_eff^2 * (Z/A) * rho*t [g/cm^2]
                      * (1 - beta^2/2) / (1 - beta^2)

truncated to the physical range [0, E_kinetic].  For chords this thin
the true distribution is Landau-like (skewed with a high-energy tail);
the Gaussian approximation slightly narrows the extreme tail but the
downstream observable -- the POF threshold crossing -- is dominated by
the much wider process-variation smearing (DESIGN.md Section 5).
"""

from __future__ import annotations

import numpy as np

from ..errors import PhysicsError
from ..materials import SILICON, Material
from ..units import nm_to_cm
from .particle import ParticleType
from .stopping import effective_charge

#: Bohr straggling constant 4 pi N_A r_e^2 (m_e c^2)^2 [MeV^2 cm^2/mol].
_BOHR_CONSTANT = 0.1569


def bohr_variance_mev2(
    particle: ParticleType,
    energy_mev,
    chord_nm,
    material: Material = SILICON,
):
    """Bohr straggling variance [MeV^2] for a chord [nm] (vectorized)."""
    energy = np.asarray(energy_mev, dtype=np.float64)
    chord = np.asarray(chord_nm, dtype=np.float64)
    if np.any(chord < 0):
        raise PhysicsError("chord length must be non-negative")
    beta2 = particle.beta_squared(energy)
    z_eff = effective_charge(particle, energy)
    areal_density = material.density_g_cm3 * nm_to_cm(chord)
    relativistic = (1.0 - beta2 / 2.0) / np.maximum(1.0 - beta2, 1e-12)
    return (
        _BOHR_CONSTANT
        * z_eff
        * z_eff
        * material.z_over_a
        * areal_density
        * relativistic
    )


#: Mean and standard deviation of the standard Moyal distribution.
_MOYAL_MEAN = 1.2703628454614782  # Euler-Mascheroni + ln 2
_MOYAL_STD = float(np.pi / np.sqrt(2.0))

STRAGGLING_MODELS = ("bohr", "moyal")


def _sample_standard_moyal(rng: np.random.Generator, shape) -> np.ndarray:
    """Exact standard-Moyal variates: ``-ln(N(0,1)^2)``.

    If ``Z ~ N(0,1)`` then ``-ln(Z^2)`` has exactly the Moyal density
    ``exp(-(x + e^-x)/2) / sqrt(2 pi)`` -- the classic Landau
    approximation with its long upward tail.
    """
    z = rng.standard_normal(shape)
    # guard the measure-zero z == 0 case
    z = np.where(z == 0.0, 1e-300, z)
    return -np.log(z * z)


def sample_deposits_kev(
    particle: ParticleType,
    energy_mev,
    chord_nm,
    rng: np.random.Generator,
    material: Material = SILICON,
    model: str = "bohr",
):
    """Sample straggled chord deposits [keV] (vectorized).

    Parameters
    ----------
    particle, energy_mev, chord_nm, material:
        As in :func:`bohr_variance_mev2`; arrays broadcast together.
    rng:
        Numpy random generator (the library never touches global seed
        state -- reproducibility is the caller's responsibility).
    model:
        ``"bohr"`` -- Gaussian fluctuations (thick-layer limit);
        ``"moyal"`` -- Landau-like skewed fluctuations (thin-layer
        limit: narrow bulk below the mean plus a long upward tail),
        matched to the Bohr variance and the thin-layer mean.

    Returns
    -------
    numpy.ndarray
        Deposited energy [keV], truncated to ``[0, E_kinetic]``; exactly
        0 where the chord is 0.
    """
    from ..errors import PhysicsError
    from .stopping import mean_chord_deposit_kev

    if model not in STRAGGLING_MODELS:
        raise PhysicsError(f"unknown straggling model {model!r}")

    energy = np.asarray(energy_mev, dtype=np.float64)
    chord = np.asarray(chord_nm, dtype=np.float64)
    energy, chord = np.broadcast_arrays(energy, chord)

    mean_kev = mean_chord_deposit_kev(particle, energy, chord, material)
    sigma_kev = np.sqrt(
        np.maximum(bohr_variance_mev2(particle, energy, chord, material), 0.0)
    ) * 1.0e3
    # Thin-layer guard: for fast particles over nm chords the Bohr sigma
    # can exceed the mean by orders of magnitude, where the true
    # (Landau) distribution is a narrow bulk plus a rare high tail.
    # Clipping a huge symmetric Gaussian at zero would inflate the mean
    # several-fold; capping sigma at the mean keeps the sampled mean
    # within ~10% of the physical value while retaining an upward tail.
    sigma_kev = np.minimum(sigma_kev, mean_kev)

    if model == "moyal":
        # scale/shift the standard Moyal to the Bohr variance and the
        # thin-layer mean: deposit = mpv + w * X, w = sigma / std(X)
        width = sigma_kev / _MOYAL_STD
        mpv = mean_kev - width * _MOYAL_MEAN
        deposits = mpv + width * _sample_standard_moyal(rng, mean_kev.shape)
    else:
        noise = rng.standard_normal(mean_kev.shape)
        deposits = mean_kev + sigma_kev * noise
    energy_kev = energy * 1.0e3
    deposits = np.clip(deposits, 0.0, energy_kev)
    return np.where(chord > 0.0, deposits, 0.0)
