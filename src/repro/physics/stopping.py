"""Electronic stopping power of protons and alphas in device materials.

This module is the physics heart of the Geant4 substitution.  Over the
nanometre-scale chords of a fin, the mean energy deposited by a
directly-ionizing particle is ``dE/dx * chord``, so the electron-yield
LUT of paper Fig. 4 is shaped entirely by the stopping power curve.

Model structure
---------------
* **Protons, E >= 1 MeV** -- the Bethe formula with silicon's mean
  excitation energy (I = 173 eV).  Verified against PSTAR-order anchor
  values to within a few percent in the unit tests.
* **Protons, 10 keV <= E < 1 MeV** -- Bethe is invalid near/below the
  Bragg peak, so we log-log interpolate a built-in anchor table of
  PSTAR-order electronic stopping values for silicon.  The table joins
  the Bethe branch continuously (blended over the 0.8-1.3 MeV overlap).
* **Protons, E < 10 keV** -- Lindhard-Scharff velocity-proportional
  scaling (``S ~ sqrt(E)``) anchored at the 10 keV table point.
* **Alphas** -- effective-charge scaling of the proton curve at equal
  velocity: ``S_alpha(E) = Z_eff(beta)^2 * S_p(E * m_p/m_alpha)`` with
  the Ziegler effective charge ``Z_eff = 2 (1 - exp(-125 beta / 2^(2/3)))``.

Absolute accuracy is ~10 % against the evaluated PSTAR/ASTAR data --
ample for the paper's *normalized* results, and the shape (Bragg-peak
position, high-energy fall-off, alpha/proton ratio) is faithful.

For non-silicon materials the silicon curve is scaled by the
Bethe-Bloch Z/A electron-density factor and the leading-log of the mean
excitation energy ratio -- those layers only degrade energy, they never
collect charge, so this approximation is inconsequential downstream.
"""

from __future__ import annotations

import math

import numpy as np

from ..constants import (
    ALPHA_TO_PROTON_MASS_RATIO,
    BETHE_K_MEV_CM2_PER_MOL,
    ELECTRON_REST_ENERGY_MEV,
)
from ..errors import PhysicsError
from ..materials import SILICON, Material
from .particle import ALPHA, PROTON, ParticleType

# Anchor table: electronic mass stopping power of protons in silicon,
# PSTAR-order values [E in MeV -> S in MeV cm^2 / g].  The >= 1 MeV tail
# agrees with our Bethe branch by construction.
_PROTON_SI_ANCHORS_MEV = np.array(
    [0.01, 0.02, 0.04, 0.06, 0.08, 0.10, 0.15, 0.20, 0.30, 0.50, 0.70, 1.00]
)
_PROTON_SI_ANCHORS_S = np.array(
    [220.0, 315.0, 430.0, 490.0, 515.0, 512.0, 475.0, 438.0, 370.0, 288.0, 232.0, 183.0]
)

#: Below this proton energy the Bethe formula is replaced by the table.
_BETHE_MIN_MEV = 1.0
#: Blend window upper edge: table and Bethe are mixed on [1.0, 1.3] MeV.
_BETHE_BLEND_MEV = 1.3
#: Below the lowest anchor the Lindhard sqrt(E) branch takes over.
_TABLE_MIN_MEV = float(_PROTON_SI_ANCHORS_MEV[0])

_LOG_ANCHOR_E = np.log(_PROTON_SI_ANCHORS_MEV)
_LOG_ANCHOR_S = np.log(_PROTON_SI_ANCHORS_S)


def proton_bethe_mev_cm2_g(energy_mev, material: Material = SILICON):
    """Bethe mass stopping power for protons [MeV cm^2/g] (vectorized).

    Only meaningful above ~0.5 MeV; the public entry point
    :func:`mass_stopping_power` handles the low-energy regimes.
    """
    energy = np.asarray(energy_mev, dtype=np.float64)
    beta2 = PROTON.beta_squared(energy)
    gamma = PROTON.gamma(energy)
    gamma2 = gamma * gamma
    me = ELECTRON_REST_ENERGY_MEV
    mass_ratio = me / PROTON.rest_energy_mev
    t_max = (
        2.0 * me * beta2 * gamma2
        / (1.0 + 2.0 * gamma * mass_ratio + mass_ratio * mass_ratio)
    )
    i_mev = material.mean_excitation_ev * 1.0e-6
    with np.errstate(divide="ignore", invalid="ignore"):
        argument = 2.0 * me * beta2 * gamma2 * t_max / (i_mev * i_mev)
        bracket = 0.5 * np.log(argument) - beta2
        stopping = (
            BETHE_K_MEV_CM2_PER_MOL * material.z_over_a / beta2 * bracket
        )
    return np.where(np.isfinite(stopping) & (stopping > 0), stopping, 0.0)


def _proton_table_mev_cm2_g(energy_mev):
    """Log-log interpolation of the silicon anchor table (E in MeV)."""
    energy = np.asarray(energy_mev, dtype=np.float64)
    log_s = np.interp(np.log(energy), _LOG_ANCHOR_E, _LOG_ANCHOR_S)
    return np.exp(log_s)


def _proton_lindhard_mev_cm2_g(energy_mev):
    """sqrt(E) low-energy branch anchored at the lowest table point."""
    energy = np.asarray(energy_mev, dtype=np.float64)
    scale = _PROTON_SI_ANCHORS_S[0] / math.sqrt(_TABLE_MIN_MEV)
    return scale * np.sqrt(energy)


def _proton_silicon_mev_cm2_g(energy_mev):
    """Full-range proton electronic stopping in silicon [MeV cm^2/g]."""
    energy = np.asarray(energy_mev, dtype=np.float64)
    result = np.empty_like(energy, dtype=np.float64)

    low = energy < _TABLE_MIN_MEV
    table = (energy >= _TABLE_MIN_MEV) & (energy < _BETHE_MIN_MEV)
    blend = (energy >= _BETHE_MIN_MEV) & (energy < _BETHE_BLEND_MEV)
    high = energy >= _BETHE_BLEND_MEV

    if np.any(low):
        result[low] = _proton_lindhard_mev_cm2_g(energy[low])
    if np.any(table):
        result[table] = _proton_table_mev_cm2_g(energy[table])
    if np.any(blend):
        # Linear-in-logE mix between the table edge and the Bethe branch
        # keeps the curve C0-continuous through the hand-off.
        e_blend = energy[blend]
        weight = (np.log(e_blend) - math.log(_BETHE_MIN_MEV)) / (
            math.log(_BETHE_BLEND_MEV) - math.log(_BETHE_MIN_MEV)
        )
        table_val = _proton_table_mev_cm2_g(
            np.minimum(e_blend, _PROTON_SI_ANCHORS_MEV[-1])
        )
        bethe_val = proton_bethe_mev_cm2_g(e_blend)
        result[blend] = (1.0 - weight) * table_val + weight * bethe_val
    if np.any(high):
        result[high] = proton_bethe_mev_cm2_g(energy[high])
    return result


def effective_charge(particle: ParticleType, energy_mev):
    """Ziegler effective charge of an ion at kinetic energy [MeV].

    Low-velocity ions drag bound electrons along, screening the nuclear
    charge; the Ziegler parametrization
    ``Z_eff = z (1 - exp(-125 beta / z^(2/3)))`` captures this.  For
    protons the charge state is taken as fully stripped (z = 1).
    """
    if particle.charge_number == 1:
        return np.ones_like(np.asarray(energy_mev, dtype=np.float64))
    beta = particle.beta(energy_mev)
    z = float(particle.charge_number)
    return z * (1.0 - np.exp(-125.0 * beta / z ** (2.0 / 3.0)))


def _material_scale(material: Material) -> float:
    """Scale factor from silicon to another material (leading order).

    Ratio of the Bethe prefactor (Z/A) and of the leading logarithm via
    the mean excitation energies, evaluated at a representative 1 MeV
    proton.  Exact for silicon (factor 1).
    """
    if material.name.startswith("Si") and material.mean_excitation_ev == SILICON.mean_excitation_ev:
        return material.z_over_a / SILICON.z_over_a
    z_over_a_ratio = material.z_over_a / SILICON.z_over_a
    log_ratio = math.log(1.0e6 / material.mean_excitation_ev) / math.log(
        1.0e6 / SILICON.mean_excitation_ev
    )
    return z_over_a_ratio * log_ratio


def mass_stopping_power(particle: ParticleType, energy_mev, material: Material = SILICON):
    """Electronic mass stopping power [MeV cm^2/g] (vectorized).

    Parameters
    ----------
    particle:
        :data:`~repro.physics.particle.PROTON` or
        :data:`~repro.physics.particle.ALPHA`.
    energy_mev:
        Kinetic energy [MeV]; scalar or array.  Must be positive.
    material:
        Target material (default silicon).
    """
    energy = np.asarray(energy_mev, dtype=np.float64)
    if np.any(energy <= 0):
        raise PhysicsError("stopping power requires positive kinetic energy")

    if particle.name == "proton":
        silicon_value = _proton_silicon_mev_cm2_g(energy)
    elif particle.name == "alpha":
        equivalent_proton_e = energy / ALPHA_TO_PROTON_MASS_RATIO
        z_eff = effective_charge(ALPHA, energy)
        silicon_value = z_eff * z_eff * _proton_silicon_mev_cm2_g(
            equivalent_proton_e
        )
    else:
        raise PhysicsError(f"no stopping model for particle {particle.name!r}")

    return silicon_value * _material_scale(material)


def linear_stopping_power_mev_cm(particle: ParticleType, energy_mev, material: Material = SILICON):
    """Linear stopping power dE/dx [MeV/cm]."""
    return mass_stopping_power(particle, energy_mev, material) * material.density_g_cm3


def let_kev_per_nm(particle: ParticleType, energy_mev, material: Material = SILICON):
    """Linear energy transfer [keV/nm] -- convenient at fin scale."""
    from ..units import linear_stopping_to_kev_per_nm

    return linear_stopping_to_kev_per_nm(
        linear_stopping_power_mev_cm(particle, energy_mev, material)
    )


def bragg_peak_energy_mev(particle: ParticleType, material: Material = SILICON):
    """Energy [MeV] at which the stopping power peaks (grid search)."""
    energies = np.logspace(-3, 2, 2000)
    stopping = mass_stopping_power(particle, energies, material)
    return float(energies[int(np.argmax(stopping))])


def mean_chord_deposit_kev(particle: ParticleType, energy_mev, chord_nm, material: Material = SILICON):
    """Mean energy deposited [keV] over a chord [nm] (thin-layer limit).

    Valid while the deposit is a small fraction of the kinetic energy --
    always true for nm-scale chords above ~10 keV.  The deposit is
    clamped to the available kinetic energy so the thin-layer formula
    degrades gracefully at the very lowest energies.
    """
    let = let_kev_per_nm(particle, energy_mev, material)
    deposit = let * np.asarray(chord_nm, dtype=np.float64)
    energy_kev = np.asarray(energy_mev, dtype=np.float64) * 1.0e3
    return np.minimum(deposit, energy_kev)
