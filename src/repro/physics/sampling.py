"""Random sampling of particle launch positions and directions.

The device- and array-level Monte Carlos both launch particles "with
random directions and positions" (paper Sections 3.2 and 5.1).  Three
angular laws are provided:

* ``isotropic`` -- uniform over the full sphere (alphas emitted inside
  the package next to the die can arrive from any direction);
* ``hemisphere`` -- uniform over the downward hemisphere;
* ``cosine`` -- cosine-weighted downward hemisphere, the correct arrival
  law for an isotropic external radiation field crossing a horizontal
  surface (atmospheric protons).

Positions are sampled uniformly on a horizontal launch rectangle above
the geometry.
"""

from __future__ import annotations

import numpy as np

from ..constants import TWO_PI
from ..errors import ConfigError
from ..geometry import RayBatch

DIRECTION_LAWS = ("isotropic", "hemisphere", "cosine")

#: Prefix for fixed-zenith beam laws: ``"beam:<cos_theta>"`` emulates
#: accelerated beam testing at a tilt angle (azimuth randomized).
BEAM_LAW_PREFIX = "beam:"


def _parse_beam_law(law: str) -> float:
    try:
        cos_theta = float(law[len(BEAM_LAW_PREFIX):])
    except ValueError:
        raise ConfigError(f"malformed beam law {law!r}") from None
    if not (0.0 < cos_theta <= 1.0):
        raise ConfigError("beam cos(theta) must lie in (0, 1]")
    return cos_theta


def sample_directions(
    n: int, rng: np.random.Generator, law: str = "cosine"
) -> np.ndarray:
    """Sample ``n`` unit direction vectors with the given angular law.

    All laws produce *downward-going* directions (negative z) -- for the
    ``isotropic`` law, upward-going particles can never strike a fin
    from above the die, so the z-component sign is folded down and the
    doubled solid angle is accounted for in the flux normalization of
    the callers (an emitter surrounding the die delivers the same
    downward current as the folded law).

    ``"beam:<cos_theta>"`` produces a fixed zenith angle with uniform
    azimuth -- the tilt-and-rotate geometry of accelerated beam tests.
    """
    phi = rng.uniform(0.0, TWO_PI, size=n)
    u = rng.uniform(0.0, 1.0, size=n)
    if law.startswith(BEAM_LAW_PREFIX):
        cos_theta = np.full(n, _parse_beam_law(law))
    elif law not in DIRECTION_LAWS:
        raise ConfigError(
            f"unknown direction law {law!r}; expected one of "
            f"{DIRECTION_LAWS} or 'beam:<cos_theta>'"
        )
    elif law == "cosine":
        cos_theta = np.sqrt(u)  # pdf ~ cos(theta) on the hemisphere
    elif law == "hemisphere":
        cos_theta = u
    else:  # isotropic, folded downward
        cos_theta = u
    sin_theta = np.sqrt(np.maximum(1.0 - cos_theta * cos_theta, 0.0))
    directions = np.empty((n, 3), dtype=np.float64)
    directions[:, 0] = sin_theta * np.cos(phi)
    directions[:, 1] = sin_theta * np.sin(phi)
    directions[:, 2] = -cos_theta
    # Guard the measure-zero cos_theta == 0 case (direction in-plane):
    # nudge to a tiny downward component so every ray eventually exits.
    flat = directions[:, 2] == 0.0
    if np.any(flat):
        directions[flat, 2] = -1e-9
        directions[flat] /= np.linalg.norm(
            directions[flat], axis=1, keepdims=True
        )
    return directions


def sample_positions_on_plane(
    n: int,
    rng: np.random.Generator,
    x_range,
    y_range,
    z: float,
) -> np.ndarray:
    """Sample ``n`` launch points uniformly on a horizontal rectangle.

    Parameters
    ----------
    x_range, y_range:
        ``(lo, hi)`` extents [nm] of the launch rectangle.
    z:
        Launch height [nm].
    """
    x_lo, x_hi = map(float, x_range)
    y_lo, y_hi = map(float, y_range)
    if x_hi <= x_lo or y_hi <= y_lo:
        raise ConfigError("launch rectangle must have positive extents")
    positions = np.empty((n, 3), dtype=np.float64)
    positions[:, 0] = rng.uniform(x_lo, x_hi, size=n)
    positions[:, 1] = rng.uniform(y_lo, y_hi, size=n)
    positions[:, 2] = z
    return positions


def sample_rays(
    n: int,
    rng: np.random.Generator,
    x_range,
    y_range,
    z: float,
    law: str = "cosine",
) -> RayBatch:
    """Sample a :class:`~repro.geometry.RayBatch` of launch rays."""
    origins = sample_positions_on_plane(n, rng, x_range, y_range, z)
    directions = sample_directions(n, rng, law)
    return RayBatch(origins, directions)
